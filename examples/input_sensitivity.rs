//! Input sensitivity (§1 and the gzip discussion of §5.2): a profile is
//! only *likely* true. Train gzip's kernel on an input where the promoted
//! hash-head cell is never aliased, then deploy it on the reference input
//! where the aliasing store fires for 1/16 of iterations. The result stays
//! correct — every mis-speculation is caught by a failed `ld.c` — and the
//! mis-speculation ratio lands around the paper's ~6%.
//!
//! ```text
//! cargo run --example input_sensitivity
//! ```

use specframe::prelude::*;

fn main() {
    let w = workload_by_name("gzip", Scale::Test).expect("workload");
    let mut m = w.module.clone();
    prepare_module(&mut m);

    // train on the clean input (mode = 0)
    let mut profiler = AliasProfiler::new();
    run_with(&m, w.entry, &w.train_args, w.fuel, &mut profiler).unwrap();
    let aprof = profiler.finish();

    let mut spec = m.clone();
    optimize(
        &mut spec,
        &OptOptions {
            data: SpecSource::Profile(&aprof),
            control: ControlSpec::Static,
            strength_reduction: true,
            lftr: true,
            store_sinking: false,
            target: Default::default(),
        },
    );
    let prog = lower_module(&spec);

    // deploy on the training input: speculation always holds
    let (r_train, c_train) = run_machine(&prog, w.entry, &w.train_args, w.fuel).unwrap();
    // deploy on the reference input: the alias actually happens sometimes
    let (r_ref, c_ref) = run_machine(&prog, w.entry, &w.ref_args, w.fuel).unwrap();

    // the oracle: unoptimized interpreter on the reference input
    let (want, _) = run(&m, w.entry, &w.ref_args, w.fuel).unwrap();
    assert_eq!(r_ref, want, "mis-speculated run must still be correct");

    println!("gzip kernel trained on mode=0, deployed on both inputs\n");
    println!("                        train input   reference input");
    println!(
        "result                {:>13?} {:>17?}",
        r_train.unwrap(),
        r_ref.unwrap()
    );
    println!(
        "check loads           {:>13} {:>17}",
        c_train.check_loads, c_ref.check_loads
    );
    println!(
        "failed checks         {:>13} {:>17}",
        c_train.failed_checks, c_ref.failed_checks
    );
    println!(
        "mis-speculation       {:>12.2}% {:>16.2}%",
        c_train.mis_speculation_ratio() * 100.0,
        c_ref.mis_speculation_ratio() * 100.0
    );
    println!();
    println!("the profile lied about the reference input — and the program");
    println!("is still correct, because every stale value was re-loaded by a");
    println!("failed check (the paper's ALAT guarantee).");
}
