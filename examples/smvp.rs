//! The §5.1 case study: equake's `smvp` under speculative register
//! promotion (the paper's Figure 9 kernel).
//!
//! ```text
//! cargo run --release --example smvp
//! ```

use specframe::prelude::*;

fn main() {
    let w = workload_by_name("equake_smvp", Scale::Test).expect("workload");
    let mut m = w.module.clone();
    prepare_module(&mut m);

    let mut profiler = AliasProfiler::new();
    run_with(&m, w.entry, &w.train_args, w.fuel, &mut profiler).unwrap();
    let aprof = profiler.finish();

    let mut baseline = m.clone();
    optimize(
        &mut baseline,
        &OptOptions {
            data: SpecSource::None,
            control: ControlSpec::Static,
            strength_reduction: true,
            lftr: true,
            store_sinking: false,
            target: Default::default(),
        },
    );
    let (rb, cb) = run_machine(&lower_module(&baseline), w.entry, &w.ref_args, w.fuel).unwrap();

    let mut spec = m.clone();
    optimize(
        &mut spec,
        &OptOptions {
            data: SpecSource::Profile(&aprof),
            control: ControlSpec::Static,
            strength_reduction: true,
            lftr: true,
            store_sinking: false,
            target: Default::default(),
        },
    );
    let (rs, cs) = run_machine(&lower_module(&spec), w.entry, &w.ref_args, w.fuel).unwrap();
    assert_eq!(rb, rs);

    println!("smvp (Figure 9 kernel) — paper reports: 39.8% of loads become");
    println!("checks, 6% speedup (14% manually tuned bound)\n");
    println!("                       baseline   speculative");
    println!(
        "loads retired     {:>12} {:>13}",
        cb.loads_retired, cs.loads_retired
    );
    println!("fp loads          {:>12} {:>13}", cb.fp_loads, cs.fp_loads);
    println!(
        "check loads       {:>12} {:>13}",
        cb.check_loads, cs.check_loads
    );
    println!(
        "failed checks     {:>12} {:>13}",
        cb.failed_checks, cs.failed_checks
    );
    println!("cycles            {:>12} {:>13}", cb.cycles, cs.cycles);
    println!(
        "data cycles       {:>12} {:>13}",
        cb.data_access_cycles, cs.data_access_cycles
    );
    println!();
    println!(
        "loads -> checks   = {:.1}% of baseline loads",
        cs.check_loads as f64 / cb.loads_retired as f64 * 100.0
    );
    println!(
        "load reduction    = {:.1}%",
        (cb.loads_retired - cs.loads_retired) as f64 / cb.loads_retired as f64 * 100.0
    );
    println!(
        "speedup           = {:.1}%",
        (cb.cycles as f64 / cs.cycles as f64 - 1.0) * 100.0
    );
    println!(
        "mis-speculation   = {:.2}%",
        cs.mis_speculation_ratio() * 100.0
    );
}
