//! The speculative SSA form itself — the paper's Example 1 (§3.1).
//!
//! `*p` may alias both `a` and `b`; the profile observes that only `b` is
//! ever touched. In the speculative SSA form the χ over `b` is flagged
//! (`chi_s`, must be honoured) while the χ over `a` stays a *speculative
//! weak update* (plain `chi`, ignorable under a run-time check).
//!
//! ```text
//! cargo run --example speculative_ssa
//! ```

use specframe::prelude::*;

const SRC: &str = r#"
global a: i64[1]
global b: i64[1]

func ex1(p: ptr) -> i64 {
  var x: i64
  var y: i64
entry:
  store.i64 [@a], 1
  store.i64 [@b], 2
  store.i64 [p], 4
  x = load.i64 [@a]
  store.i64 [@a], 4
  y = load.i64 [p]
  ret y
}

func main(sel: i64) -> i64 {
  var q: ptr
  var r: i64
entry:
  br sel, ua, ub
ua:
  q = @a
  jmp go
ub:
  q = @b
  jmp go
go:
  r = call ex1(q)
  ret r
}
"#;

fn main() {
    let m = parse_module(SRC).expect("parse");
    let aa = AliasAnalysis::analyze(&m);
    let fid = m.func_by_name("ex1").unwrap();

    println!("=== traditional HSSA (every chi/mu flagged — Example 1(a)) ===\n");
    let hf = build_hssa(&m, fid, &aa, SpecMode::NoSpeculation);
    println!("{}", print_hssa(&m, &hf));

    // profile with p == &b: the alias with `a` never materializes
    let mut profiler = AliasProfiler::new();
    run_with(&m, "main", &[Value::I(0)], 100_000, &mut profiler).unwrap();
    let aprof = profiler.finish();

    println!("=== speculative SSA (profile: p -> b only — Example 1(b)) ===\n");
    let hf = build_hssa(&m, fid, &aa, SpecMode::Profile(&aprof));
    println!("{}", print_hssa(&m, &hf));
    println!("note: the store through p now carries chi_s over b and vv,");
    println!("      but only a weak chi over a — the speculative weak update");
    println!("      the paper's extended SSAPRE may ignore.");
}
