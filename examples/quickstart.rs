//! Quickstart: the whole framework on one small program.
//!
//! A loop-invariant load of global `a` cannot be promoted to a register
//! because a store through `p` *may* alias it; the alias profile shows it
//! never does, so speculative SSAPRE promotes it anyway and guards the
//! value with an ALAT check (`ld.c`). Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use specframe::prelude::*;

const SRC: &str = r#"
global a: i64[1] = [7]
global b: i64[1]

func kern(p: ptr, n: i64) -> i64 {
  var i: i64
  var c: i64
  var v: i64
  var acc: i64
entry:
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  v = load.i64 [@a]
  acc = add acc, v
  store.i64 [p], acc
  i = add i, 1
  jmp head
exit:
  ret acc
}

func main(sel: i64, n: i64) -> i64 {
  var r: i64
  var p: ptr
entry:
  br sel, ua, ub
ua:
  p = @a
  jmp go
ub:
  p = @b
  jmp go
go:
  r = call kern(p, n)
  ret r
}
"#;

fn main() {
    let mut m = parse_module(SRC).expect("parse");
    prepare_module(&mut m);
    let args = [Value::I(0), Value::I(1000)];

    // 1. profile the training run (here: the same input)
    let mut profiler = AliasProfiler::new();
    run_with(&m, "main", &args, 10_000_000, &mut profiler).expect("profiling run");
    let aprof = profiler.finish();

    // 2. baseline: O3-style, no data speculation
    let mut baseline = m.clone();
    optimize(
        &mut baseline,
        &OptOptions {
            data: SpecSource::None,
            control: ControlSpec::Static,
            strength_reduction: true,
            lftr: true,
            store_sinking: false,
            target: Default::default(),
        },
    );
    let (rb, cb) = run_machine(&lower_module(&baseline), "main", &args, 10_000_000).unwrap();

    // 3. speculative: alias-profile-guided data speculation
    let mut spec = m.clone();
    let stats = optimize(
        &mut spec,
        &OptOptions {
            data: SpecSource::Profile(&aprof),
            control: ControlSpec::Static,
            strength_reduction: true,
            lftr: true,
            store_sinking: false,
            target: Default::default(),
        },
    );
    let (rs, cs) = run_machine(&lower_module(&spec), "main", &args, 10_000_000).unwrap();

    assert_eq!(rb, rs, "speculation must not change the result");
    println!("result                    = {:?}", rs.unwrap());
    println!();
    println!("                     baseline   speculative");
    println!(
        "loads retired     {:>11} {:>13}",
        cb.loads_retired, cs.loads_retired
    );
    println!(
        "check loads       {:>11} {:>13}",
        cb.check_loads, cs.check_loads
    );
    println!(
        "failed checks     {:>11} {:>13}",
        cb.failed_checks, cs.failed_checks
    );
    println!("cycles            {:>11} {:>13}", cb.cycles, cs.cycles);
    println!();
    println!(
        "load reduction    = {:.1}%",
        (cb.loads_retired - cs.loads_retired) as f64 / cb.loads_retired as f64 * 100.0
    );
    println!(
        "speedup           = {:.1}%",
        (cb.cycles as f64 / cs.cycles as f64 - 1.0) * 100.0
    );
    println!();
    println!("static optimizer stats: {stats:?}");
    println!();
    println!("--- speculative kern (note ld.a / ldc) ---");
    let f = spec.func_by_name("kern").unwrap();
    let mut out = String::new();
    specframe::ir::display::print_function(&mut out, &spec, spec.func(f));
    println!("{out}");
}
