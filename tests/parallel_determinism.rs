//! Regression test for the parallel driver's determinism contract.
//!
//! `optimize_with` fans the per-function pipeline out over worker threads;
//! the contract (see `DESIGN.md`) is that the result is *bit-identical* for
//! every job count, because the module is only touched at the deterministic
//! fan-out/join points and fresh memory sites are renumbered serially at
//! the join. This test pins that down over every workload and every
//! speculation configuration: a serial run (`jobs = 1`) and a heavily
//! oversubscribed run (`jobs = 8`) must print the same module and report
//! the same `OptStats`.

use specframe::ir::display::print_module;
use specframe::prelude::*;

fn configs() -> Vec<(&'static str, OptOptions<'static>)> {
    vec![
        ("baseline", OptOptions::default()),
        (
            "heuristic",
            OptOptions {
                data: SpecSource::Heuristic,
                control: ControlSpec::Static,
                strength_reduction: true,
                lftr: true,
                store_sinking: true,
                target: Default::default(),
            },
        ),
        (
            "aggressive",
            OptOptions {
                data: SpecSource::Aggressive,
                control: ControlSpec::Static,
                strength_reduction: true,
                lftr: true,
                store_sinking: true,
                target: Default::default(),
            },
        ),
    ]
}

#[test]
fn serial_and_parallel_runs_are_bit_identical() {
    for w in all_workloads(Scale::Test) {
        for (cname, opts) in configs() {
            let mut serial = w.module.clone();
            let mut parallel = w.module.clone();
            let r1 = optimize_with(&mut serial, &opts, &PipelineConfig { jobs: 1 });
            let r8 = optimize_with(&mut parallel, &opts, &PipelineConfig { jobs: 8 });

            assert_eq!(
                r1.stats, r8.stats,
                "{}/{cname}: OptStats diverge between jobs=1 and jobs=8",
                w.name
            );
            let s1 = print_module(&serial);
            let s8 = print_module(&parallel);
            assert_eq!(
                s1, s8,
                "{}/{cname}: printed module diverges between jobs=1 and jobs=8",
                w.name
            );

            // The optimized module must still pass the verifier and compute
            // the same checksum as the pristine program.
            verify_module(&parallel)
                .unwrap_or_else(|e| panic!("{}/{cname}: verify failed: {e}", w.name));
            let (want, _) = run(&w.module, w.entry, &w.ref_args, w.fuel).unwrap();
            let (got, _) = run(&parallel, w.entry, &w.ref_args, w.fuel).unwrap();
            assert_eq!(want, got, "{}/{cname}: optimized checksum changed", w.name);
        }
    }
}

/// The same contract extended to `--dump-after`: per-pass snapshots are
/// captured inside the workers but assembled at the deterministic join, so
/// the rendered dump stream must also be byte-identical at any job count.
#[test]
fn pass_dumps_are_bit_identical_across_job_counts() {
    let hooks = PipelineHooks {
        dump_after: Pass::ALL.into_iter().collect(),
        ..Default::default()
    };
    for w in all_workloads(Scale::Test) {
        for (cname, opts) in configs() {
            let mut serial = w.module.clone();
            let mut parallel = w.module.clone();
            let (_, d1) =
                optimize_with_hooks(&mut serial, &opts, &PipelineConfig { jobs: 1 }, &hooks);
            let (_, d8) =
                optimize_with_hooks(&mut parallel, &opts, &PipelineConfig { jobs: 8 }, &hooks);
            assert_eq!(
                render_dumps(&d1),
                render_dumps(&d8),
                "{}/{cname}: dump stream diverges between jobs=1 and jobs=8",
                w.name
            );
        }
    }
}
