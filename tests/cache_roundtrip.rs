//! The compile cache's headline invariant: a cached compile is
//! **byte-identical** to an uncached one — cold, warm, at any `--jobs`
//! level — and damaged entries degrade to a fresh compile, never to
//! wrong output.

use specframe::prelude::*;
use std::path::{Path, PathBuf};

fn temp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("specframe-cachert-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn req(cache: Option<&Path>, jobs: usize) -> CompileRequest {
    CompileRequest {
        spec: "heuristic".into(),
        control: "static".into(),
        jobs,
        cache_dir: cache.map(Path::to_path_buf),
        ..Default::default()
    }
}

fn compile_mega(seed: u64, funcs: usize, r: &CompileRequest) -> (String, CompileOutput) {
    let out = compile_module(mega_module(seed, funcs), r).expect("compile");
    (specframe::ir::display::print_module(&out.module), out)
}

/// Every `*.spcc` entry file under the cache root, sorted for
/// deterministic sabotage targets.
fn entry_files(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for shard in std::fs::read_dir(dir).expect("cache dir") {
        let shard = shard.unwrap().path();
        if !shard.is_dir() {
            continue;
        }
        for f in std::fs::read_dir(&shard).unwrap() {
            let p = f.unwrap().path();
            if p.extension().is_some_and(|e| e == "spcc") {
                files.push(p);
            }
        }
    }
    files.sort();
    files
}

#[test]
fn cold_and_warm_match_uncached_at_every_jobs_level() {
    const FUNCS: usize = 40;
    let dir = temp_cache("parity");

    let (baseline, base_out) = compile_mega(11, FUNCS, &req(None, 1));
    assert_eq!(base_out.report.cache.probes(), 0, "no cache attached");

    let (cold, cold_out) = compile_mega(11, FUNCS, &req(Some(&dir), 1));
    assert_eq!(cold, baseline, "cold cached compile diverged from uncached");
    assert_eq!(cold_out.report.cache.hits, 0);
    assert_eq!(cold_out.report.cache.misses, FUNCS as u64);

    for jobs in [1, 2, 4] {
        let (warm, warm_out) = compile_mega(11, FUNCS, &req(Some(&dir), jobs));
        assert_eq!(warm, baseline, "warm cached compile diverged (jobs {jobs})");
        assert_eq!(warm_out.report.cache.hits, FUNCS as u64, "jobs {jobs}");
        assert_eq!(warm_out.report.cache.misses, 0, "jobs {jobs}");
        assert_eq!(warm_out.report.cache.stale, 0, "jobs {jobs}");
        // replayed stats are the stored ones: identical to a fresh compile
        assert_eq!(warm_out.report.stats, base_out.report.stats, "jobs {jobs}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn damaged_entries_recompile_fresh_and_heal() {
    const FUNCS: usize = 30;
    let dir = temp_cache("sabotage");

    let (baseline, _) = compile_mega(23, FUNCS, &req(None, 1));
    compile_mega(23, FUNCS, &req(Some(&dir), 1)); // populate

    // sabotage three entries on disk: truncation, a payload bit flip, and
    // a version skew — the three corruption families the codec must catch
    let files = entry_files(&dir);
    assert_eq!(files.len(), FUNCS);
    let bytes = std::fs::read(&files[0]).unwrap();
    std::fs::write(&files[0], &bytes[..bytes.len() / 2]).unwrap();
    let mut bytes = std::fs::read(&files[1]).unwrap();
    let mid = 24 + (bytes.len() - 24) / 2; // a payload byte, past the header
    bytes[mid] ^= 0x40;
    std::fs::write(&files[1], bytes).unwrap();
    let mut bytes = std::fs::read(&files[2]).unwrap();
    bytes[4..8].copy_from_slice(&999u32.to_le_bytes());
    std::fs::write(&files[2], bytes).unwrap();

    let (warm, out) = compile_mega(23, FUNCS, &req(Some(&dir), 2));
    assert_eq!(warm, baseline, "sabotaged cache changed the output");
    assert_eq!(out.report.cache.stale, 3, "{:?}", out.report.cache);
    assert_eq!(out.report.cache.hits, FUNCS as u64 - 3);
    let stale_warnings: Vec<_> = out
        .report
        .warnings
        .iter()
        .filter(|w| w.pass == "cache")
        .collect();
    assert_eq!(stale_warnings.len(), 3, "{:?}", out.report.warnings);
    assert!(
        stale_warnings
            .iter()
            .all(|w| w.message.contains("recompiled from source")),
        "{stale_warnings:?}"
    );

    // the recompiles were written back: the next run is all hits again
    let (healed, out) = compile_mega(23, FUNCS, &req(Some(&dir), 1));
    assert_eq!(healed, baseline);
    assert_eq!(
        out.report.cache.hits, FUNCS as u64,
        "{:?}",
        out.report.cache
    );
    assert_eq!(out.report.cache.stale, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn capped_cache_evicts_and_still_produces_identical_output() {
    use specframe::core::{FuncCache, OptOptions, PipelineConfig, SpecSource};
    const FUNCS: usize = 25;
    const CAP: usize = 10;
    let dir = temp_cache("evict");

    let opts = OptOptions {
        data: SpecSource::Heuristic,
        control: ControlSpec::Static,
        strength_reduction: true,
        lftr: true,
        store_sinking: false,
        target: Default::default(),
    };
    let hooks = PipelineHooks::default();
    let cfg = PipelineConfig { jobs: 1 };

    let mut plain = mega_module(3, FUNCS);
    prepare_module(&mut plain);
    let (_, _) = specframe::core::try_optimize_cached(&mut plain, &opts, &cfg, &hooks, None)
        .expect("uncached");
    let baseline = specframe::ir::display::print_module(&plain);

    let cache = FuncCache::open(&dir).with_max_entries(CAP);
    let mut m = mega_module(3, FUNCS);
    prepare_module(&mut m);
    let (report, _) =
        specframe::core::try_optimize_cached(&mut m, &opts, &cfg, &hooks, Some(&cache))
            .expect("cached");
    assert_eq!(specframe::ir::display::print_module(&m), baseline);
    assert_eq!(
        report.cache.evicts,
        (FUNCS - CAP) as u64,
        "{:?}",
        report.cache
    );
    assert_eq!(entry_files(&dir).len(), CAP);

    // a second capped run still matches, mixing hits with recompiles
    let cache = FuncCache::open(&dir).with_max_entries(CAP);
    let mut m = mega_module(3, FUNCS);
    prepare_module(&mut m);
    let (report, _) =
        specframe::core::try_optimize_cached(&mut m, &opts, &cfg, &hooks, Some(&cache))
            .expect("cached rerun");
    assert_eq!(specframe::ir::display::print_module(&m), baseline);
    assert!(report.cache.hits > 0, "{:?}", report.cache);
    assert_eq!(report.cache.stale, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fault_injection_disables_the_cache() {
    let dir = temp_cache("inject");
    compile_mega(31, 10, &req(Some(&dir), 1)); // populate

    let mut r = req(Some(&dir), 1);
    r.hooks.inject_spec_fail = Some("f3".into());
    let out = compile_module(mega_module(31, 10), &r).expect("inject compile");
    // with a fault hook armed, nothing may be served from (or written to)
    // the cache — the run behaves exactly like an uncached one
    assert_eq!(out.report.cache.probes(), 0, "{:?}", out.report.cache);
    assert_eq!(out.report.stats.spec_fallbacks, 1);
    std::fs::remove_dir_all(&dir).unwrap();
}
