//! Property test: speculation never changes semantics.
//!
//! Random loop programs with may-aliased memory traffic are pushed through
//! every optimizer configuration; both the reference interpreter and the
//! EPIC machine must compute exactly the result of the unoptimized
//! program — on the training input *and* on the adversarial input where
//! the profiled assumptions are false (the checks must recover).

use proptest::prelude::*;
use specframe::prelude::*;

/// One statement template of the generated loop body.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// `acc += g0[k]`
    LoadG0(u8),
    /// `g0[k] = acc` (source of kills for LoadG0)
    StoreG0(u8),
    /// `x = p[k]; acc += x` — p is the selected pointer (may-alias!)
    LoadP(u8),
    /// `p[k] = acc`
    StoreP(u8),
    /// `acc += f2i(f0[k])` (float traffic for TBAA + fp latency paths)
    LoadF(u8),
    /// `f0[k] = i2f(acc)`
    StoreF(u8),
    /// `acc = acc + c`
    AddC(i8),
    /// `acc += i * c` (strength-reduction candidate)
    MulIv(u8),
    /// a diamond inside the loop body: `if (i % 2) acc += g0[k] else p[k] = acc`
    /// — exercises Φ insertion, control speculation and φ lowering
    Diamond(u8),
    /// a call to a helper that reads g0 (call χ/μ lists + mod/ref)
    CallHelper,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..8).prop_map(Step::LoadG0),
        (0u8..8).prop_map(Step::StoreG0),
        (0u8..8).prop_map(Step::LoadP),
        (0u8..8).prop_map(Step::StoreP),
        (0u8..8).prop_map(Step::LoadF),
        (0u8..8).prop_map(Step::StoreF),
        any::<i8>().prop_map(Step::AddC),
        (1u8..6).prop_map(Step::MulIv),
        (0u8..8).prop_map(Step::Diamond),
        Just(Step::CallHelper),
    ]
}

/// Renders the generated program. `p` selects between `g0` and `g1` via
/// the first argument, so stores through `p` may or may not truly alias
/// the direct `g0` accesses.
fn render(steps: &[Step]) -> String {
    let mut body = String::new();
    for (si, s) in steps.iter().enumerate() {
        let t = format!("t{si}");
        match s {
            Step::LoadG0(_) => {
                body += &format!("  var {t}: i64\n");
            }
            Step::LoadP(k) => {
                let _ = k;
                body += &format!("  var {t}: i64\n");
            }
            Step::LoadF(_) => {
                body += &format!("  var {t}: f64\n  var {t}i: i64\n");
            }
            Step::StoreF(_) => {
                body += &format!("  var {t}: f64\n");
            }
            Step::MulIv(_) => {
                body += &format!("  var {t}: i64\n");
            }
            Step::Diamond(_) => {
                body += &format!("  var {t}c: i64\n  var {t}v: i64\n");
            }
            Step::CallHelper => {
                body += &format!("  var {t}: i64\n");
            }
            _ => {}
        }
    }
    let decls = body;
    let mut body = String::new();
    for (si, s) in steps.iter().enumerate() {
        let t = format!("t{si}");
        match s {
            Step::LoadG0(k) => {
                body += &format!("  {t} = load.i64 [@g0 + {k}]\n  acc = add acc, {t}\n");
            }
            Step::StoreG0(k) => {
                body += &format!("  store.i64 [@g0 + {k}], acc\n");
            }
            Step::LoadP(k) => {
                body += &format!("  {t} = load.i64 [p + {k}]\n  acc = add acc, {t}\n");
            }
            Step::StoreP(k) => {
                body += &format!("  store.i64 [p + {k}], acc\n");
            }
            Step::LoadF(k) => {
                body += &format!(
                    "  {t} = load.f64 [@f0 + {k}]\n  {t}i = f2i {t}\n  acc = add acc, {t}i\n"
                );
            }
            Step::StoreF(k) => {
                body += &format!("  {t} = i2f acc\n  store.f64 [@f0 + {k}], {t}\n");
            }
            Step::AddC(c) => {
                body += &format!("  acc = add acc, {c}\n");
            }
            Step::MulIv(c) => {
                body += &format!("  {t} = mul i, {c}\n  acc = add acc, {t}\n");
            }
            Step::Diamond(k) => {
                // blocks are named per step index, so multiple diamonds
                // coexist; the parser requires every block terminated
                body += &format!(
                    "  {t}c = mod i, 2\n  br {t}c, d{si}t, d{si}e\nd{si}t:\n  {t}v = load.i64 [@g0 + {k}]\n  acc = add acc, {t}v\n  jmp d{si}j\nd{si}e:\n  store.i64 [p + {k}], acc\n  jmp d{si}j\nd{si}j:\n"
                );
            }
            Step::CallHelper => {
                body += &format!("  {t} = call helper(acc)\n  acc = add acc, {t}\n");
            }
        }
    }
    format!(
        r#"
global g0: i64[8] = [3, 1, 4, 1, 5, 9, 2, 6]
global g1: i64[8]
global f0: f64[8] = [1.5, 2.5, 0.5, 3.0, 1.0, 2.0, 4.5, 0.25]

func helper(x: i64) -> i64 {{
  var v: i64
entry:
  v = load.i64 [@g0 + 2]
  v = add v, x
  ret v
}}

func main(sel: i64, n: i64) -> i64 {{
  var p: ptr
  var i: i64
  var c: i64
  var acc: i64
{decls}entry:
  acc = 0
  i = 0
  br sel, ua, ub
ua:
  p = @g0
  jmp head
ub:
  p = @g1
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
{body}  i = add i, 1
  jmp head
exit:
  ret acc
}}
"#
    )
}

fn check_program(steps: &[Step]) {
    let src = render(steps);
    let mut m = parse_module(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    prepare_module(&mut m);
    verify_module(&m).unwrap();

    let train = [Value::I(0), Value::I(6)]; // p = g1: no aliasing
    let adversarial = [Value::I(1), Value::I(6)]; // p = g0: profile lies

    let (want_train, _) = run(&m, "main", &train, 1_000_000).unwrap();
    let (want_adv, _) = run(&m, "main", &adversarial, 1_000_000).unwrap();

    let mut ap = AliasProfiler::new();
    let mut ep = EdgeProfiler::new();
    {
        let mut obs = specframe::profile::observer::Compose(vec![&mut ap, &mut ep]);
        run_with(&m, "main", &train, 1_000_000, &mut obs).unwrap();
    }
    let aprof = ap.finish();
    let eprof = ep.finish();

    let configs: Vec<(&str, OptOptions)> = vec![
        ("baseline", OptOptions::default()),
        (
            "cspec",
            OptOptions {
                data: SpecSource::None,
                control: ControlSpec::Profile(&eprof),
                strength_reduction: true,
                lftr: true,
                store_sinking: false,
                target: Default::default(),
            },
        ),
        (
            "profile",
            OptOptions {
                data: SpecSource::Profile(&aprof),
                control: ControlSpec::Profile(&eprof),
                strength_reduction: true,
                lftr: true,
                store_sinking: false,
                target: Default::default(),
            },
        ),
        (
            "heuristic",
            OptOptions {
                data: SpecSource::Heuristic,
                control: ControlSpec::Static,
                strength_reduction: true,
                lftr: true,
                store_sinking: false,
                target: Default::default(),
            },
        ),
        (
            "aggressive",
            OptOptions {
                data: SpecSource::Aggressive,
                control: ControlSpec::Static,
                strength_reduction: false,
                lftr: false,
                store_sinking: false,
                target: Default::default(),
            },
        ),
    ];
    for (name, opts) in configs {
        let mut om = m.clone();
        optimize(&mut om, &opts);
        verify_module(&om).unwrap_or_else(|e| panic!("{name}: {e}\n{src}"));

        // interpreter equivalence
        let (it, _) = run(&om, "main", &train, 1_000_000)
            .unwrap_or_else(|e| panic!("{name}(train) interp: {e}\n{src}"));
        assert_eq!(it, want_train, "{name}: train divergence\n{src}");
        let (ia, _) = run(&om, "main", &adversarial, 1_000_000)
            .unwrap_or_else(|e| panic!("{name}(adv) interp: {e}\n{src}"));
        assert_eq!(ia, want_adv, "{name}: adversarial divergence\n{src}");

        // machine equivalence (co-simulation)
        let prog = lower_module(&om);
        let (mt, _) = run_machine(&prog, "main", &train, 1_000_000)
            .unwrap_or_else(|e| panic!("{name}(train) machine: {e}\n{src}"));
        assert_eq!(mt, want_train, "{name}: machine train divergence\n{src}");
        let (ma, _) = run_machine(&prog, "main", &adversarial, 1_000_000)
            .unwrap_or_else(|e| panic!("{name}(adv) machine: {e}\n{src}"));
        assert_eq!(
            ma, want_adv,
            "{name}: machine adversarial divergence\n{src}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        max_shrink_iters: 200,
        ..ProptestConfig::default()
    })]

    #[test]
    fn optimized_programs_compute_the_same_results(
        steps in proptest::collection::vec(step_strategy(), 1..10)
    ) {
        check_program(&steps);
    }
}

/// A few directed shapes that have bitten during development.
#[test]
fn regression_shapes() {
    use Step::*;
    let shapes: Vec<Vec<Step>> = vec![
        vec![LoadG0(0), StoreP(0), LoadG0(0)],
        vec![LoadG0(3), StoreP(3), LoadG0(3), StoreG0(3), LoadG0(3)],
        vec![LoadP(1), StoreG0(1), LoadP(1)],
        vec![LoadF(2), StoreP(2), LoadF(2)],
        vec![MulIv(4), StoreP(0), MulIv(4)],
        vec![StoreP(0), LoadG0(0), StoreP(0), LoadG0(0)],
        vec![LoadG0(7), AddC(-3), LoadG0(7), AddC(5), LoadG0(7)],
        vec![Diamond(0), LoadG0(0)],
        vec![LoadG0(1), Diamond(1), LoadG0(1)],
        vec![CallHelper, LoadG0(2), CallHelper],
        vec![Diamond(3), Diamond(3), StoreP(3)],
    ];
    for s in shapes {
        check_program(&s);
    }
}
