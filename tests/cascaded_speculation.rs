//! Cascaded data speculation — the paper's Appendix B `chk.a` scenario:
//! an indirect reference whose *address* comes from a speculative check
//! statement. Here a pointer cell is speculatively promoted, and the data
//! it points to is promoted as well; the data check's address register is
//! the pointer's promoted temporary.
//!
//! IA-64 needs `chk.a` + recovery code for this because `ld.c` cannot
//! re-run the dependent address computation. Our check model re-loads with
//! the *current* register contents, and CodeMotion orders the pointer
//! check before the dependent data check, so the inline reload subsumes
//! the recovery block (documented in `specframe-machine`). This test pins
//! that behaviour down, including the nasty case where the pointer cell
//! itself is updated mid-loop.

use specframe::prelude::*;

/// `tab[0]` holds a pointer to the current buffer; the loop loads through
/// it every iteration. Stores through `w` may alias both the pointer cell
/// and the buffer. On the training input they never do; on the
/// adversarial input the pointer cell is *retargeted* mid-run, so the
/// promoted pointer AND the promoted data are both stale at once.
const SRC: &str = r#"
global tab: ptr[1]
global buf1: i64[4] = [100, 0, 0, 0]
global buf2: i64[4] = [999, 0, 0, 0]

func kern(w: ptr, n: i64, flip: i64) -> i64 {
  var i: i64
  var c: i64
  var p: ptr
  var v: i64
  var acc: i64
  var half: i64
  var ishalf: i64
entry:
  half = div n, 2
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  p = load.ptr [@tab]
  v = load.i64 [p]
  acc = add acc, v
  store.i64 [w], acc
  ishalf = eq i, half
  ishalf = mul ishalf, flip
  br ishalf, retarget, cont
retarget:
  store.ptr [@tab], @buf2
  jmp cont
cont:
  i = add i, 1
  jmp head
exit:
  ret acc
}

func main(sel: i64, n: i64, flip: i64) -> i64 {
  var r: i64
  var w: ptr
entry:
  store.ptr [@tab], @buf1
  br sel, ua, ub
ua:
  w = @buf1
  jmp go
ub:
  w = @buf2
  jmp go
go:
  r = call kern(w, n, flip)
  ret r
}
"#;

struct Built {
    spec: Module,
}

fn build() -> Built {
    let mut m = parse_module(SRC).unwrap();
    prepare_module(&mut m);
    // train: sel = 0 takes ub (w = @buf2, never read while the pointer
    // targets buf1); flip = 0 keeps the pointer stable
    let train = [Value::I(0), Value::I(20), Value::I(0)];
    let mut ap = AliasProfiler::new();
    let mut ep = EdgeProfiler::new();
    {
        let mut obs = specframe::profile::observer::Compose(vec![&mut ap, &mut ep]);
        run_with(&m, "main", &train, 1_000_000, &mut obs).unwrap();
    }
    let aprof = ap.finish();
    let eprof = ep.finish();
    let mut spec = m.clone();
    optimize(
        &mut spec,
        &OptOptions {
            data: SpecSource::Profile(&aprof),
            control: ControlSpec::Profile(&eprof),
            strength_reduction: false,
            lftr: false,
            store_sinking: false,
            target: Default::default(),
        },
    );
    Built { spec }
}

fn reference(args: &[Value]) -> Option<Value> {
    let mut m = parse_module(SRC).unwrap();
    prepare_module(&mut m);
    run(&m, "main", args, 1_000_000).unwrap().0
}

#[test]
fn both_levels_get_promoted() {
    let b = build();
    let printed = specframe::ir::display::print_module(&b.spec);
    // the pointer load and the data load both become checks somewhere
    assert!(
        printed.contains("ldc.ptr") || printed.contains("ldc.i64"),
        "{printed}"
    );
    let fid = b.spec.func_by_name("kern").unwrap();
    let kern = b.spec.func(fid);
    let checks = kern
        .blocks
        .iter()
        .flat_map(|bl| bl.insts.iter())
        .filter(|i| matches!(i, specframe::ir::Inst::CheckLoad { .. }))
        .count();
    assert!(checks >= 2, "pointer and data checks expected:\n{printed}");
}

#[test]
fn stable_run_is_fast_and_correct() {
    let b = build();
    let args = [Value::I(0), Value::I(20), Value::I(0)];
    let want = reference(&args);
    let prog = lower_module(&b.spec);
    let (got, c) = run_machine(&prog, "main", &args, 1_000_000).unwrap();
    assert_eq!(got, want);
    assert_eq!(c.failed_checks, 0, "{c:?}");
    assert!(c.check_loads > 0);
}

#[test]
fn retargeted_pointer_recovers_through_cascaded_checks() {
    let b = build();
    // flip = 1: halfway through, the pointer cell is retargeted to buf2 —
    // the promoted pointer is stale, and therefore the promoted data too
    let args = [Value::I(0), Value::I(20), Value::I(1)];
    let want = reference(&args);
    let prog = lower_module(&b.spec);
    let (got, c) = run_machine(&prog, "main", &args, 1_000_000).unwrap();
    assert_eq!(got, want, "cascaded mis-speculation must stay correct");
    assert!(
        c.failed_checks > 0,
        "the retargeting store must fail at least the pointer check: {c:?}"
    );
}

#[test]
fn aliasing_w_also_recovers() {
    let b = build();
    // sel = 1 takes ua: w == buf1, so the per-iteration store really does
    // clobber the loaded data cell every iteration
    let args = [Value::I(1), Value::I(10), Value::I(0)];
    let want = reference(&args);
    let prog = lower_module(&b.spec);
    let (got, c) = run_machine(&prog, "main", &args, 1_000_000).unwrap();
    assert_eq!(got, want);
    assert!(c.failed_checks > 0, "{c:?}");
    assert!(c.mis_speculation_ratio() > 0.3, "{c:?}");
}
