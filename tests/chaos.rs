//! Chaos-recovery harness: kill a real `specc --serve-queue` process at
//! every named crashpoint mid-drain, restart it, and assert the system
//! converges — the cache verifies clean (or self-heals its debris), the
//! re-drain completes every request, and the compiled artifacts are
//! byte-identical to an uncrashed reference run.
//!
//! Crashpoints are armed through `SPECFRAME_CRASH_AT=<point>:<n>` (the
//! process aborts at the n-th hit of the named point); see
//! `specframe_core::crashpoint::POINTS` for the catalog.

use std::path::{Path, PathBuf};
use std::process::Command;

fn specc() -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_specc"));
    // never inherit an armed crashpoint from the harness environment
    c.env_remove("SPECFRAME_CRASH_AT");
    c.env_remove("SPECFRAME_CACHE_DIR");
    c
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "specc_chaos_{tag}_{}_{}",
            std::process::id(),
            std::thread::current()
                .name()
                .unwrap_or("t")
                .replace("::", "_")
        ));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).expect("create temp dir");
        TempDir(p)
    }

    fn path(&self) -> &Path {
        &self.0
    }

    fn join(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Seeds `queue` with two mega requests whose `-o` outputs land in `out`.
fn seed_queue(queue: &Path, out: &Path) {
    std::fs::write(
        queue.join("a.req"),
        format!("mega 9:6 -o {}\n", out.join("a.ir").display()),
    )
    .unwrap();
    std::fs::write(
        queue.join("b.req"),
        format!("mega 11:4 -o {}\n", out.join("b.ir").display()),
    )
    .unwrap();
}

/// Drains `queue` against `cache`; returns (status-success, stderr).
fn drain(queue: &Path, cache: &Path, crash_at: Option<&str>) -> (bool, String) {
    let mut cmd = specc();
    cmd.arg("--serve-queue")
        .arg(queue)
        .arg("--cache-dir")
        .arg(cache);
    if let Some(point) = crash_at {
        cmd.env("SPECFRAME_CRASH_AT", point);
    }
    let out = cmd.output().expect("spawn specc --serve-queue");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Strips the counters a crash/restart legitimately moves: wall time is
/// nondeterministic and a re-drain may hit where the reference missed.
/// Everything else in a response — above all the compiled module bytes
/// behind the `-o` files — must match exactly.
fn normalize_resp(text: &str) -> String {
    text.lines()
        .map(|line| {
            line.split_whitespace()
                .map(|tok| {
                    for pfx in [
                        "hits=", "misses=", "stale=", "retries=", "ioerr=", "wall_ms=",
                    ] {
                        if let Some(rest) = tok.strip_prefix(pfx) {
                            let _ = rest;
                            return format!("{pfx}X");
                        }
                    }
                    tok.to_string()
                })
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Names of files in `dir` with the given extension-suffix, sorted.
fn files_with_suffix(dir: &Path, suffix: &str) -> Vec<String> {
    let mut v: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(suffix))
        .collect();
    v.sort();
    v
}

/// True if any file anywhere under `dir` has a name starting `.tmp-`.
fn cache_has_tmp_debris(dir: &Path) -> bool {
    fn walk(d: &Path) -> bool {
        let Ok(rd) = std::fs::read_dir(d) else {
            return false;
        };
        for e in rd.flatten() {
            let p = e.path();
            if p.is_dir() {
                if walk(&p) {
                    return true;
                }
            } else if e.file_name().to_string_lossy().starts_with(".tmp-") {
                return true;
            }
        }
        false
    }
    walk(dir)
}

/// The tentpole scenario, once per crashpoint: reference run, crashed run,
/// verify, re-drain, converge.
fn crash_and_converge(point: &str) {
    let tag = point.replace('-', "_");
    let ref_queue = TempDir::new(&format!("{tag}_refq"));
    let ref_cache = TempDir::new(&format!("{tag}_refc"));
    let ref_out = TempDir::new(&format!("{tag}_refo"));
    seed_queue(ref_queue.path(), ref_out.path());
    let (ok, err) = drain(ref_queue.path(), ref_cache.path(), None);
    assert!(ok, "reference drain failed: {err}");
    let ref_a = std::fs::read(ref_out.join("a.ir")).unwrap();
    let ref_b = std::fs::read(ref_out.join("b.ir")).unwrap();
    let ref_resp_a = std::fs::read_to_string(ref_queue.join("a.resp")).unwrap();
    let ref_resp_b = std::fs::read_to_string(ref_queue.join("b.resp")).unwrap();

    let queue = TempDir::new(&format!("{tag}_q"));
    let cache = TempDir::new(&format!("{tag}_c"));
    let out = TempDir::new(&format!("{tag}_o"));
    seed_queue(queue.path(), out.path());
    let (ok, err) = drain(queue.path(), cache.path(), Some(&format!("{point}:1")));
    assert!(!ok, "crashpoint {point} did not abort the drain: {err}");
    assert!(
        err.contains(point),
        "abort notice for {point} missing from stderr: {err}"
    );

    // the cache must verify clean after the crash (debris is reported and
    // swept, never counted as corruption)
    let verify = specc()
        .args(["cache", "verify", "--cache-dir"])
        .arg(cache.path())
        .output()
        .expect("cache verify");
    assert!(
        verify.status.success(),
        "cache verify failed after {point} crash: {}{}",
        String::from_utf8_lossy(&verify.stdout),
        String::from_utf8_lossy(&verify.stderr)
    );

    // restart: the re-drain must complete every request
    let (ok, err) = drain(queue.path(), cache.path(), None);
    assert!(ok, "re-drain after {point} crash failed: {err}");

    // converged: no requests left, both responses present, no debris
    assert_eq!(
        files_with_suffix(queue.path(), ".req"),
        Vec::<String>::new(),
        "requests left after re-drain ({point})"
    );
    assert_eq!(
        files_with_suffix(queue.path(), ".resp"),
        vec!["a.resp".to_string(), "b.resp".to_string()],
        "responses missing after re-drain ({point})"
    );
    assert_eq!(
        files_with_suffix(queue.path(), ".resp.tmp"),
        Vec::<String>::new(),
        "orphaned .resp.tmp left after re-drain ({point})"
    );
    assert!(
        !cache_has_tmp_debris(cache.path()),
        "stale cache .tmp-* left after re-drain ({point})"
    );

    // the artifacts converge on the uncrashed reference byte-for-byte
    assert_eq!(
        std::fs::read(out.join("a.ir")).unwrap(),
        ref_a,
        "a.ir diverged from the reference after {point} crash"
    );
    assert_eq!(
        std::fs::read(out.join("b.ir")).unwrap(),
        ref_b,
        "b.ir diverged from the reference after {point} crash"
    );
    // responses match too, modulo wall time and hit/miss distribution
    // (a crash after a cache commit legitimately turns misses into hits)
    let norm = |p: &Path| normalize_resp(&std::fs::read_to_string(p).unwrap());
    assert_eq!(norm(&queue.join("a.resp")), normalize_resp(&ref_resp_a));
    assert_eq!(norm(&queue.join("b.resp")), normalize_resp(&ref_resp_b));

    // a third drain is a no-op that still succeeds (idempotence)
    let (ok, err) = drain(queue.path(), cache.path(), None);
    assert!(ok, "idempotent extra drain failed ({point}): {err}");
}

#[test]
fn crash_at_cache_pre_rename_converges() {
    crash_and_converge("cache-pre-rename");
}

#[test]
fn crash_at_cache_post_rename_converges() {
    crash_and_converge("cache-post-rename");
}

#[test]
fn crash_at_queue_pre_resp_rename_converges() {
    crash_and_converge("queue-pre-resp-rename");
}

#[test]
fn crash_at_queue_pre_remove_req_converges() {
    crash_and_converge("queue-pre-remove-req");
}

#[test]
fn unreadable_request_is_quarantined_and_the_drain_continues() {
    let queue = TempDir::new("quarantine");
    let cache = TempDir::new("quarantine_cache");
    let out = TempDir::new("quarantine_out");
    // a directory named *.req defeats read_to_string on every platform,
    // modeling an unreadable/corrupt request file
    std::fs::create_dir(queue.join("bad.req")).unwrap();
    std::fs::write(
        queue.join("good.req"),
        format!("mega 9:6 -o {}\n", out.join("good.ir").display()),
    )
    .unwrap();

    let (ok, err) = drain(queue.path(), cache.path(), None);
    assert!(ok, "drain with a quarantined request failed: {err}");
    assert!(
        err.contains("1 quarantined"),
        "quarantine count missing from summary: {err}"
    );
    let bad_err = std::fs::read_to_string(queue.join("bad.err")).unwrap();
    assert!(
        bad_err.starts_with("unreadable request:"),
        "quarantine note: {bad_err}"
    );
    let good = std::fs::read_to_string(queue.join("good.resp")).unwrap();
    assert!(
        good.starts_with("ok in="),
        "good request not served: {good}"
    );
    assert!(out.join("good.ir").exists());
}

#[test]
fn deadline_zero_exits_code_5_and_writes_no_cache_entry() {
    let cache = TempDir::new("deadline_cache");
    let out = specc()
        .args(["--mega", "5:4", "--deadline-ms", "0", "--cache-dir"])
        .arg(cache.path())
        .output()
        .expect("specc --deadline-ms 0");
    assert_eq!(
        out.status.code(),
        Some(5),
        "deadline abort should exit 5: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // no partial (or complete) cache entries may exist after a cancel
    let stats = specc()
        .args(["cache", "stats", "--cache-dir"])
        .arg(cache.path())
        .output()
        .expect("cache stats");
    let text = String::from_utf8_lossy(&stats.stdout).into_owned();
    assert!(
        text.contains("0 entries"),
        "cache not empty after deadline abort: {text}"
    );
    assert!(!cache_has_tmp_debris(cache.path()));
}
