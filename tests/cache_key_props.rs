//! Cache-key soundness properties.
//!
//! The compile cache replays a stored lowering whenever the key matches,
//! so the key must change with *everything* the pipeline's output depends
//! on — function body, optimizer configuration, and the alias-profile
//! slice feeding the likeliness oracle — while staying bit-stable across
//! independently constructed modules (no pointer values, no hash-map
//! iteration order, nothing process-local may reach the hash).

use proptest::prelude::*;
use specframe::core::{KeyContext, OptOptions, SpecSource};
use specframe::prelude::*;
use specframe_alias::AliasAnalysis;

/// One statement of a generated straight-line body: `x = <op> x, <operand>`.
#[derive(Debug, Clone, Copy)]
struct Step {
    op: usize,
    operand: i64,
}

// side-effect-free, total operators only: the generated bodies must
// always verify, whatever the sequence
const OPS: [&str; 8] = ["add", "sub", "mul", "and", "or", "xor", "shl", "shr"];

fn step_strategy() -> impl Strategy<Value = Step> {
    (0usize..OPS.len(), -8i64..8).prop_map(|(op, operand)| Step { op, operand })
}

fn render_body(steps: &[Step]) -> String {
    let mut s = String::new();
    for st in steps {
        s.push_str(&format!("  x = {} x, {}\n", OPS[st.op], st.operand));
    }
    s
}

/// A two-function module whose bodies are the given step sequences.
fn render_module(f_steps: &[Step], g_steps: &[Step]) -> String {
    format!(
        "func f(a: i64) -> i64 {{\n  var x: i64\nentry:\n  x = a\n{}  ret x\n}}\n\n\
         func g(a: i64) -> i64 {{\n  var x: i64\nentry:\n  x = a\n{}  ret x\n}}\n",
        render_body(f_steps),
        render_body(g_steps)
    )
}

const HEURISTIC: OptOptions<'static> = OptOptions {
    data: SpecSource::Heuristic,
    control: ControlSpec::Static,
    strength_reduction: true,
    lftr: true,
    store_sinking: false,
    target: TargetId::Epic,
};

/// Builds the module from source and derives every function's key.
fn keys_of(src: &str, opts: &OptOptions, hooks: &PipelineHooks) -> Vec<String> {
    let mut m = parse_module(src).expect("generated module parses");
    verify_module(&m).expect("generated module verifies");
    prepare_module(&mut m);
    let aa = AliasAnalysis::analyze(&m);
    let kc = KeyContext::new(&m, &aa, opts, hooks);
    (0..m.funcs.len())
        .map(|fi| kc.function_key(fi).hex())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Two independent builds of the same source produce the same keys —
    /// the in-process half of restart stability (the cross-process half
    /// is the CI serve gate, which hits across separate `specc` runs).
    #[test]
    fn key_is_stable_across_independent_builds(
        f in proptest::collection::vec(step_strategy(), 1..12),
        g in proptest::collection::vec(step_strategy(), 1..12),
    ) {
        let src = render_module(&f, &g);
        let hooks = PipelineHooks::default();
        prop_assert_eq!(
            keys_of(&src, &HEURISTIC, &hooks),
            keys_of(&src, &HEURISTIC, &hooks)
        );
    }

    /// Editing one function's body changes that function's key and ONLY
    /// that function's key: entries of untouched functions stay valid.
    #[test]
    fn body_edit_changes_only_that_functions_key(
        f in proptest::collection::vec(step_strategy(), 1..12),
        g in proptest::collection::vec(step_strategy(), 1..12),
        edit in step_strategy(),
    ) {
        let hooks = PipelineHooks::default();
        let before = keys_of(&render_module(&f, &g), &HEURISTIC, &hooks);
        let mut g2 = g.clone();
        g2.push(edit);
        let after = keys_of(&render_module(&f, &g2), &HEURISTIC, &hooks);
        prop_assert_eq!(&before[0], &after[0]);
        prop_assert_ne!(&before[1], &after[1]);
    }

    /// Every optimizer-configuration axis is a key axis.
    #[test]
    fn config_change_changes_key(
        f in proptest::collection::vec(step_strategy(), 1..12),
    ) {
        let src = render_module(&f, &f);
        let hooks = PipelineHooks::default();
        let base = keys_of(&src, &HEURISTIC, &hooks);

        let variants = [
            OptOptions { data: SpecSource::None, ..HEURISTIC },
            OptOptions { data: SpecSource::Aggressive, ..HEURISTIC },
            OptOptions { control: ControlSpec::Off, ..HEURISTIC },
            OptOptions { strength_reduction: false, ..HEURISTIC },
            OptOptions { lftr: false, ..HEURISTIC },
            OptOptions { store_sinking: true, ..HEURISTIC },
            OptOptions { target: TargetId::Swr, ..HEURISTIC },
        ];
        for v in variants.iter() {
            prop_assert_ne!(&base[0], &keys_of(&src, v, &hooks)[0]);
        }

        let hooked = PipelineHooks { verify_each: true, ..Default::default() };
        prop_assert_ne!(&base[0], &keys_of(&src, &HEURISTIC, &hooked)[0]);
        let audited = PipelineHooks { audit_spec: true, ..Default::default() };
        prop_assert_ne!(&base[0], &keys_of(&src, &HEURISTIC, &audited)[0]);
    }
}

/// The alias-profile slice is in the key: training runs that disagree
/// about what a load aliases must produce different keys, and identical
/// training runs identical ones — even though the profile lives in hash
/// maps whose iteration order the hash must never see.
#[test]
fn profile_slice_changes_key() {
    const SRC: &str = r#"
global a: i64[1] = [1]
global b: i64[1] = [2]

func leaf(sel: i64) -> i64 {
  var p: ptr
  var v: i64
entry:
  br sel, yes, no
yes:
  p = @a
  jmp go
no:
  p = @b
  jmp go
go:
  v = load.i64 [p]
  ret v
}
"#;
    let mut m = parse_module(SRC).unwrap();
    prepare_module(&mut m);
    let aa = AliasAnalysis::analyze(&m);

    let profile_for = |sel: i64| {
        let mut ap = AliasProfiler::new();
        run_with(&m, "leaf", &[Value::I(sel)], 100_000, &mut ap).unwrap();
        ap.finish()
    };
    let key_with = |p: &specframe::profile::AliasProfile| {
        let opts = OptOptions {
            data: SpecSource::Profile(p),
            ..HEURISTIC
        };
        KeyContext::new(&m, &aa, &opts, &PipelineHooks::default())
            .function_key(0)
            .hex()
    };

    let via_a = profile_for(1);
    let via_b = profile_for(0);
    let via_a_again = profile_for(1);
    assert_eq!(
        key_with(&via_a),
        key_with(&via_a_again),
        "same training run must reproduce the key"
    );
    assert_ne!(
        key_with(&via_a),
        key_with(&via_b),
        "different alias behavior must move the key"
    );
}

/// The execution target is a key axis: the oracle's profitability
/// verdicts and the machine lowering of any audited artifact both move
/// with `--target`, so an `epic` entry must never replay for `swr` —
/// the target fingerprint is hashed into every function key.
#[test]
fn target_changes_key() {
    let f = [Step { op: 0, operand: 3 }];
    let hooks = PipelineHooks::default();
    let src = render_module(&f, &f);
    let epic = keys_of(&src, &HEURISTIC, &hooks);
    let swr = keys_of(
        &src,
        &OptOptions {
            target: TargetId::Swr,
            ..HEURISTIC
        },
        &hooks,
    );
    assert_eq!(epic.len(), swr.len());
    for (e, s) in epic.iter().zip(&swr) {
        assert_ne!(e, s, "--target must move every function key");
    }
    // and the axis is stable: the same target reproduces the same keys
    assert_eq!(epic, keys_of(&src, &HEURISTIC, &hooks));
}

/// Module context is in the key: adding a global or a function signature
/// shifts every key (callee sets and global layout feed the pipeline).
#[test]
fn module_context_changes_key() {
    let f = [Step { op: 0, operand: 3 }];
    let hooks = PipelineHooks::default();
    let base = keys_of(&render_module(&f, &f), &HEURISTIC, &hooks);
    let with_global = format!("global extra: i64[4]\n\n{}", render_module(&f, &f));
    assert_ne!(base[0], keys_of(&with_global, &HEURISTIC, &hooks)[0]);
}
