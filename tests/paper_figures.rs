//! Every illustrative figure of the paper as an executable test.
//!
//! Figure / example index:
//! * Figure 1 — control speculation hides load latency (`ld.s` + check);
//! * Figure 2 — redundancy elimination with data speculation
//!   (`ld.a`/`ld.c`);
//! * Example 1 (§3.1) — the speculative SSA form's χs/μs flags;
//! * Figure 5 — the three occurrence relationships (redundant / not /
//!   speculatively redundant);
//! * Figure 6 — enhanced Φ-insertion exposes speculative anticipation;
//! * Figure 7 — enhanced renaming assigns the same h-version across a
//!   speculative weak update;
//! * Figure 8 — CodeMotion emits the advanced-load flag and the check.

use specframe::ir::{CheckKind, Inst, LoadSpec};
use specframe::prelude::*;

/// Profiles `m` on `args`, optimizes a copy with data+control speculation,
/// and returns (baseline module, speculative module).
fn compile_both(src: &str, train: &[Value]) -> (Module, Module) {
    let mut m = parse_module(src).expect("parse");
    prepare_module(&mut m);
    let mut ap = AliasProfiler::new();
    let mut ep = EdgeProfiler::new();
    {
        let mut obs = specframe::profile::observer::Compose(vec![&mut ap, &mut ep]);
        run_with(&m, "main", train, 10_000_000, &mut obs).unwrap();
    }
    let aprof = ap.finish();
    let eprof = ep.finish();

    let mut base = m.clone();
    optimize(
        &mut base,
        &OptOptions {
            data: SpecSource::None,
            control: ControlSpec::Profile(&eprof),
            strength_reduction: false,
            lftr: false,
            store_sinking: false,
            target: Default::default(),
        },
    );
    let mut spec = m.clone();
    optimize(
        &mut spec,
        &OptOptions {
            data: SpecSource::Profile(&aprof),
            control: ControlSpec::Profile(&eprof),
            strength_reduction: false,
            lftr: false,
            store_sinking: false,
            target: Default::default(),
        },
    );
    (base, spec)
}

fn count_insts(m: &Module, f: &str, pred: impl Fn(&Inst) -> bool) -> usize {
    let fid = m.func_by_name(f).unwrap();
    m.func(fid)
        .blocks
        .iter()
        .flat_map(|b| b.insts.iter())
        .filter(|i| pred(i))
        .count()
}

/// Figure 1: `if (c) x = *y` with a hot taken path — the load is hoisted
/// above the branch as a control-speculative load.
#[test]
fn fig1_control_speculation_hoists_load() {
    let src = r#"
global y: i64[1] = [5]

func main(n: i64) -> i64 {
  var i: i64
  var c: i64
  var cc: i64
  var x: i64
  var acc: i64
entry:
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  cc = mod i, 16
  cc = ne cc, 0
  br cc, taken, skip
taken:
  x = load.i64 [@y]
  acc = add acc, x
  jmp latch
skip:
  acc = add acc, 1
  jmp latch
latch:
  i = add i, 1
  jmp head
exit:
  ret acc
}
"#;
    let args = [Value::I(64)];
    // figure 1 contrasts *control speculation itself*: compile once with
    // it off and once with it on (no data speculation in either)
    let mut m = parse_module(src).unwrap();
    prepare_module(&mut m);
    let mut ep = EdgeProfiler::new();
    run_with(&m, "main", &args, 10_000_000, &mut ep).unwrap();
    let eprof = ep.finish();
    let mut base = m.clone();
    optimize(
        &mut base,
        &OptOptions {
            data: SpecSource::None,
            control: ControlSpec::Off,
            strength_reduction: false,
            lftr: false,
            store_sinking: false,
            target: Default::default(),
        },
    );
    let mut spec = m.clone();
    optimize(
        &mut spec,
        &OptOptions {
            data: SpecSource::None,
            control: ControlSpec::Profile(&eprof),
            strength_reduction: false,
            lftr: false,
            store_sinking: false,
            target: Default::default(),
        },
    );

    // the speculative binary contains an ld.s (or the load moved into an
    // always-executed position guarded by a NaT check)
    let spec_loads = count_insts(&spec, "main", |i| {
        matches!(
            i,
            Inst::Load {
                spec: LoadSpec::Speculative,
                ..
            }
        )
    });
    let nat_checks = count_insts(&spec, "main", |i| {
        matches!(
            i,
            Inst::CheckLoad {
                kind: CheckKind::Nat,
                ..
            }
        )
    });
    assert!(
        spec_loads + nat_checks > 0,
        "control speculation must fire:\n{}",
        specframe::ir::display::print_module(&spec)
    );

    // dynamic effect: fewer real loads, same result
    let pb = lower_module(&base);
    let ps = lower_module(&spec);
    let (rb, cb) = run_machine(&pb, "main", &args, 1_000_000).unwrap();
    let (rs, cs) = run_machine(&ps, "main", &args, 1_000_000).unwrap();
    assert_eq!(rb, rs);
    assert!(
        cs.loads_retired < cb.loads_retired,
        "hoisting must reduce loads: {} -> {}",
        cb.loads_retired,
        cs.loads_retired
    );
}

/// Figure 2: `= *p; *q = …; = *p` — with the profile saying p and q never
/// alias, the second load becomes `ld.c` and the first `ld.a`.
#[test]
fn fig2_data_speculation_removes_redundant_load() {
    let src = r#"
global a: i64[4] = [10, 20, 30, 40]
global b: i64[4]

func kern(p: ptr, q: ptr) -> i64 {
  var x: i64
  var y: i64
entry:
  x = load.i64 [p]
  store.i64 [q], 99
  y = load.i64 [p]
  x = add x, y
  ret x
}

func main(sel: i64) -> i64 {
  var r: i64
  var q: ptr
entry:
  br sel, ua, ub
ua:
  q = @a
  jmp go
ub:
  q = @b
  jmp go
go:
  r = call kern(@a, q)
  ret r
}
"#;
    let (_base, spec) = compile_both(src, &[Value::I(0)]);

    let advanced = count_insts(&spec, "kern", |i| {
        matches!(
            i,
            Inst::Load {
                spec: LoadSpec::Advanced,
                ..
            }
        )
    });
    let checks = count_insts(&spec, "kern", |i| {
        matches!(
            i,
            Inst::CheckLoad {
                kind: CheckKind::Alat,
                ..
            }
        )
    });
    let plain_loads = count_insts(&spec, "kern", |i| {
        matches!(
            i,
            Inst::Load {
                spec: LoadSpec::Normal,
                ..
            }
        )
    });
    assert_eq!(
        advanced,
        1,
        "first load becomes ld.a:\n{}",
        specframe::ir::display::print_module(&spec)
    );
    assert_eq!(checks, 1, "second load becomes ld.c");
    assert_eq!(plain_loads, 0, "no plain load of *p remains in kern");

    // non-aliasing run: check succeeds; aliasing run: stays correct
    let prog = lower_module(&spec);
    let (r0, c0) = run_machine(&prog, "main", &[Value::I(0)], 100_000).unwrap();
    assert_eq!(r0, Some(Value::I(20)));
    assert_eq!(c0.failed_checks, 0);
    let (r1, c1) = run_machine(&prog, "main", &[Value::I(1)], 100_000).unwrap();
    assert_eq!(r1, Some(Value::I(109)), "aliasing run: 10 + 99");
    assert_eq!(c1.failed_checks, 1, "the check must catch the alias");
}

/// Example 1 (§3.1): χs on the profiled alias, weak χ on the other.
#[test]
fn example1_speculative_ssa_flags() {
    let src = r#"
global a: i64[1]
global b: i64[1]

func ex1(p: ptr) -> i64 {
  var x: i64
  var y: i64
entry:
  store.i64 [@a], 1
  store.i64 [@b], 2
  store.i64 [p], 4
  x = load.i64 [@a]
  y = load.i64 [p]
  x = add x, y
  ret x
}

func main(sel: i64) -> i64 {
  var q: ptr
  var r: i64
entry:
  br sel, ua, ub
ua:
  q = @a
  jmp go
ub:
  q = @b
  jmp go
go:
  r = call ex1(q)
  ret r
}
"#;
    let m = parse_module(src).unwrap();
    let aa = AliasAnalysis::analyze(&m);
    let mut ap = AliasProfiler::new();
    run_with(&m, "main", &[Value::I(0)], 100_000, &mut ap).unwrap();
    let aprof = ap.finish();
    let fid = m.func_by_name("ex1").unwrap();
    let hf = build_hssa(&m, fid, &aa, SpecMode::Profile(&aprof));
    let dump = print_hssa(&m, &hf);
    // the *p store: chi_s over b (observed), weak chi over a (not observed)
    assert!(dump.contains("b2 <- chi_s(b1)"), "{dump}");
    assert!(dump.contains("a2 <- chi(a1)"), "{dump}");
    // the *p load: mu_s over b, weak mu over a
    assert!(dump.contains("mu_s(b2)"), "{dump}");
    assert!(dump.contains("mu(a"), "{dump}");
}

/// Figure 5(c): an occurrence separated from its first computation only by
/// a speculative weak update is *speculatively redundant* — same h-version
/// plus a check — while the baseline treats it as not redundant.
#[test]
fn fig5_speculatively_redundant_occurrence() {
    let src = r#"
global a: i64[1] = [3]
global b: i64[1]

func kern(p: ptr) -> i64 {
  var x: i64
  var y: i64
entry:
  x = load.i64 [@a]
  store.i64 [p], 7
  y = load.i64 [@a]
  x = add x, y
  ret x
}

func main(sel: i64) -> i64 {
  var q: ptr
  var r: i64
entry:
  br sel, ua, ub
ua:
  q = @a
  jmp go
ub:
  q = @b
  jmp go
go:
  r = call kern(q)
  ret r
}
"#;
    let (base, spec) = compile_both(src, &[Value::I(0)]);
    // baseline: both loads of `a` survive (the may-alias kills redundancy)
    let base_loads = count_insts(&base, "kern", |i| matches!(i, Inst::Load { .. }));
    assert_eq!(base_loads, 2, "baseline keeps both loads");
    // speculative: one ld.a + one ld.c
    let spec_loads = count_insts(&spec, "kern", |i| matches!(i, Inst::Load { .. }));
    let spec_checks = count_insts(&spec, "kern", |i| matches!(i, Inst::CheckLoad { .. }));
    assert_eq!(spec_loads, 1, "one real load remains");
    assert_eq!(spec_checks, 1, "the second becomes a check");
}

/// Figure 6: the merge point whose expression is killed only by a weak
/// update becomes *speculatively anticipated*, enabling PRE across the
/// diamond.
#[test]
fn fig6_enhanced_phi_insertion() {
    let src = r#"
global a: i64[1] = [11]
global b: i64[1]

func kern(p: ptr, sel: i64) -> i64 {
  var x: i64
  var y: i64
entry:
  x = load.i64 [@a]
  br sel, wr, nw
wr:
  store.i64 [p], 5
  jmp merge
nw:
  x = add x, 1
  jmp merge
merge:
  y = load.i64 [@a]
  x = add x, y
  ret x
}

func main(sel: i64, wsel: i64) -> i64 {
  var q: ptr
  var r: i64
entry:
  br sel, ua, ub
ua:
  q = @a
  jmp go
ub:
  q = @b
  jmp go
go:
  r = call kern(q, wsel)
  ret r
}
"#;
    // train: q = &b (no aliasing), taking the store path
    let (base, spec) = compile_both(src, &[Value::I(0), Value::I(1)]);
    let base_loads = count_insts(&base, "kern", |i| matches!(i, Inst::Load { .. }));
    let spec_loads = count_insts(&spec, "kern", |i| matches!(i, Inst::Load { .. }));
    let spec_checks = count_insts(&spec, "kern", |i| matches!(i, Inst::CheckLoad { .. }));
    assert_eq!(base_loads, 2, "baseline reloads at the merge");
    assert!(
        spec_loads < 2 && spec_checks >= 1,
        "speculation turns the merge load into a check: loads={spec_loads} checks={spec_checks}\n{}",
        specframe::ir::display::print_module(&spec)
    );
    // both paths still compute correctly, including the aliasing deploy
    let prog = lower_module(&spec);
    for sel in [0i64, 1] {
        for wsel in [0i64, 1] {
            let m0 = parse_module(src).unwrap();
            let (want, _) = run(&m0, "main", &[Value::I(sel), Value::I(wsel)], 100_000).unwrap();
            let (got, _) =
                run_machine(&prog, "main", &[Value::I(sel), Value::I(wsel)], 100_000).unwrap();
            assert_eq!(got, want, "sel={sel} wsel={wsel}");
        }
    }
}

/// Figure 7: renaming assigns the same h-version across the weak update —
/// observable as zero *plain* reloads of the second occurrence (it reloads
/// from the temporary instead of from memory).
#[test]
fn fig7_enhanced_renaming() {
    // same program as fig5; here we check the machine-level effect: the
    // speculative version does strictly fewer memory loads per call
    let src = r#"
global a: i64[1] = [3]
global b: i64[1]

func kern(p: ptr) -> i64 {
  var x: i64
  var y: i64
entry:
  x = load.i64 [@a]
  store.i64 [p], 7
  y = load.i64 [@a]
  x = add x, y
  ret x
}

func main(sel: i64) -> i64 {
  var q: ptr
  var r: i64
entry:
  br sel, ua, ub
ua:
  q = @a
  jmp go
ub:
  q = @b
  jmp go
go:
  r = call kern(q)
  ret r
}
"#;
    let (base, spec) = compile_both(src, &[Value::I(0)]);
    let (rb, cb) = run_machine(&lower_module(&base), "main", &[Value::I(0)], 100_000).unwrap();
    let (rs, cs) = run_machine(&lower_module(&spec), "main", &[Value::I(0)], 100_000).unwrap();
    assert_eq!(rb, rs);
    assert_eq!(cb.loads_retired, 2);
    assert_eq!(cs.loads_retired, 1);
    assert_eq!(cs.check_loads, 1);
    assert_eq!(cs.failed_checks, 0);
}

/// Figure 8: the final output carries the advance-load flag on the saving
/// load and a check statement at the speculative reload — visible in the
/// printed IR as `load.a` and `ldc`.
#[test]
fn fig8_codemotion_output_shape() {
    let src = r#"
global a: i64[1] = [3]
global b: i64[1]

func kern(p: ptr) -> i64 {
  var x: i64
  var y: i64
entry:
  x = load.i64 [@a]
  store.i64 [p], 7
  y = load.i64 [@a]
  x = add x, y
  ret x
}

func main(sel: i64) -> i64 {
  var q: ptr
  var r: i64
entry:
  br sel, ua, ub
ua:
  q = @a
  jmp go
ub:
  q = @b
  jmp go
go:
  r = call kern(q)
  ret r
}
"#;
    let (_base, spec) = compile_both(src, &[Value::I(0)]);
    let printed = specframe::ir::display::print_module(&spec);
    assert!(printed.contains("load.a.i64 [@a]"), "{printed}");
    assert!(printed.contains("ldc.i64 [@a]"), "{printed}");
}
