//! Acceptance check for the per-function analysis cache: one `optimize`
//! call computes the dominator tree **at most once per function** on the
//! no-CFG-edit path (every pass after `prepare_module` only rewrites
//! instructions).
//!
//! The backing counter (`specframe_analysis::dom_compute_count`) is
//! process-global, so this file deliberately contains a single `#[test]` —
//! its own test binary — to keep other tests' dominator builds out of the
//! delta. `PassTimings::dom_computes` is that delta, measured inside
//! `optimize_with` itself.

use specframe::prelude::*;

#[test]
fn dominators_computed_once_per_function() {
    for w in all_workloads(Scale::Test) {
        let nf = w.module.funcs.len() as u64;
        let opts = OptOptions {
            data: SpecSource::Heuristic,
            control: ControlSpec::Static,
            strength_reduction: true,
            lftr: true,
            store_sinking: true,
            target: Default::default(),
        };
        let mut m = w.module.clone();
        let report = optimize_with(&mut m, &opts, &PipelineConfig { jobs: 1 });
        assert_eq!(
            report.timings.dom_computes, nf,
            "{}: expected exactly one DomTree::compute per function ({nf}), got {}",
            w.name, report.timings.dom_computes
        );
    }
}
