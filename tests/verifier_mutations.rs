//! Mutation coverage for the verification stack.
//!
//! Each test seeds one corruption class from the verification contract
//! (DESIGN.md) into an otherwise-healthy artifact and asserts the
//! matching checker rejects it *with location attribution* — proving the
//! verifiers would actually catch a buggy pass, not just bless healthy
//! output. The four classes:
//!
//! 1. a dangling block target in the IR (structural verifier),
//! 2. a stale χ operand version in HSSA (HSSA checker),
//! 3. a dropped `ld.c` after optimization (speculation-safety auditor),
//! 4. a check whose address was swapped away from its advanced load's
//!    (auditor pairing rule).

use specframe::hssa::{build_hssa, verify_hssa_detailed, SpecMode};
use specframe::ir::{BlockId, Inst, Operand, Terminator};
use specframe::prelude::*;

/// The shared guinea pig: a loop with a speculatively redundant load
/// (killed only by a may-aliasing store), so the heuristic config emits
/// an `ld.a`/`ld.c` pair for tests 3 and 4.
const SRC: &str = r#"
global a: i64[1] = [7]
global b: i64[1]

func kern(p: ptr, n: i64) -> i64 {
  var i: i64
  var c: i64
  var v: i64
  var acc: i64
entry:
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  v = load.i64 [@a]
  acc = add acc, v
  store.i64 [p], acc
  i = add i, 1
  jmp head
exit:
  ret acc
}

func main(sel: i64, n: i64) -> i64 {
  var r: i64
  var p: ptr
entry:
  br sel, ua, ub
ua:
  p = @a
  jmp go
ub:
  p = @b
  jmp go
go:
  r = call kern(p, n)
  ret r
}
"#;

fn healthy() -> Module {
    let mut m = parse_module(SRC).unwrap();
    prepare_module(&mut m);
    verify_module(&m).unwrap();
    m
}

/// Optimizes with the heuristic config and returns the module plus the
/// position of its first ALAT check (`func`, `block`, `inst`).
fn optimized_with_check() -> (Module, (usize, usize, usize)) {
    let mut m = healthy();
    let stats = optimize(
        &mut m,
        &OptOptions {
            data: SpecSource::Heuristic,
            control: ControlSpec::Static,
            strength_reduction: true,
            lftr: false,
            store_sinking: false,
            target: Default::default(),
        },
    );
    assert!(stats.checks > 0, "speculation must fire: {stats:?}");
    for (fi, f) in m.funcs.iter().enumerate() {
        for (bi, b) in f.blocks.iter().enumerate() {
            for (ii, inst) in b.insts.iter().enumerate() {
                if matches!(inst, Inst::CheckLoad { .. }) {
                    return (m, (fi, bi, ii));
                }
            }
        }
    }
    panic!("no check emitted despite stats.checks > 0");
}

#[test]
fn dangling_block_target_is_caught_with_block_attribution() {
    let mut m = healthy();
    let kern = m.func_by_name("kern").unwrap();
    let f = &mut m.funcs[kern.index()];
    let nblocks = f.blocks.len();
    let bad = f
        .blocks
        .iter_mut()
        .position(|b| matches!(b.term, Terminator::Jump(_)))
        .expect("a jmp to corrupt");
    f.blocks[bad].term = Terminator::Jump(BlockId(nblocks as u32 + 7));
    let e = verify_module(&m).expect_err("dangling target must be rejected");
    let text = e.to_string();
    assert!(
        text.contains("block") || text.contains("target"),
        "message should name the bad edge: {text}"
    );
    assert!(
        e.block.is_some() && text.contains(&format!("bb={bad}")),
        "error must be anchored to the corrupted block: {text}"
    );
}

#[test]
fn stale_chi_version_is_caught_by_the_hssa_checker() {
    let m = healthy();
    let aa = AliasAnalysis::analyze(&m);
    let kern = m.func_by_name("kern").unwrap();
    let mut hf = build_hssa(&m, kern, &aa, SpecMode::Heuristic);
    verify_hssa_detailed(&hf).expect("healthy HSSA must verify");
    let b = hf
        .blocks
        .iter()
        .position(|b| b.stmts.iter().any(|s| !s.chi.is_empty()))
        .expect("the store must carry a chi");
    let st = hf.blocks[b]
        .stmts
        .iter_mut()
        .find(|s| !s.chi.is_empty())
        .unwrap();
    st.chi[0].old_ver = 1_000_000; // far past any issued version
    let e = verify_hssa_detailed(&hf).expect_err("stale chi version must be rejected");
    assert!(e.msg.contains("stale version"), "{e:?}");
    assert_eq!(
        e.block,
        Some(b),
        "error must be anchored to the chi's block"
    );
}

#[test]
fn dropped_check_is_caught_by_the_auditor() {
    let (mut m, (fi, bi, ii)) = optimized_with_check();
    m.funcs[fi].blocks[bi].insts.remove(ii);
    // the mutation is structurally invisible…
    verify_module(&m).expect("a dropped check is structurally fine");
    // …but the auditor proves the ld.a is now never validated
    let prog = lower_module(&m);
    let e = audit_program(&prog).expect_err("dropped ld.c must fail the audit");
    assert!(e.msg.contains("never validated"), "{e}");
    assert_eq!(e.func, m.funcs[fi].name, "attributed to the right function");
}

#[test]
fn swapped_check_address_is_caught_by_the_auditor() {
    let (mut m, (fi, bi, ii)) = optimized_with_check();
    let other = m.global_by_name("b").unwrap();
    match &mut m.funcs[fi].blocks[bi].insts[ii] {
        Inst::CheckLoad { base, .. } => {
            assert_ne!(*base, Operand::GlobalAddr(other), "pick a different base");
            *base = Operand::GlobalAddr(other);
        }
        _ => unreachable!("position found above"),
    }
    verify_module(&m).expect("a swapped base is structurally fine");
    let prog = lower_module(&m);
    let e = audit_program(&prog).expect_err("mismatched check address must fail the audit");
    assert!(e.msg.contains("re-executes"), "{e}");
    assert_eq!(e.func, m.funcs[fi].name, "attributed to the right function");
}
