//! The parallel-driver determinism contract, checked on the synthetic
//! mega-module the compile-throughput work targets.
//!
//! `tests/parallel_determinism.rs` pins jobs-level byte-parity over the
//! eight hand-written workloads; those are small and shape-poor compared
//! to the generated module (deep loop nests with speculative load
//! candidates, call chains, hundred-op straight-line blocks, 48 shared
//! globals). This test runs the same contract — identical printed module,
//! identical `OptStats`, identical `--dump-after` streams at every job
//! count — over a 150-function generated module, so a scheduling-order
//! bug in the chunked work-claiming driver or an ordering bug in the
//! dense-index kernel storage cannot hide behind workload simplicity.

use specframe::ir::display::print_module;
use specframe::prelude::*;

const SEED: u64 = 7;
const FUNCS: usize = 150;

fn opts() -> OptOptions<'static> {
    OptOptions {
        data: SpecSource::Heuristic,
        control: ControlSpec::Static,
        strength_reduction: true,
        lftr: true,
        store_sinking: true,
        target: Default::default(),
    }
}

#[test]
fn mega_module_is_bit_identical_across_job_counts() {
    let mut base = mega_module(SEED, FUNCS);
    prepare_module(&mut base);

    let mut serial = base.clone();
    let r1 = optimize_with(&mut serial, &opts(), &PipelineConfig { jobs: 1 });
    let s1 = print_module(&serial);
    verify_module(&serial).expect("optimized mega-module must verify");

    for jobs in [2, 4] {
        let mut parallel = base.clone();
        let rj = optimize_with(&mut parallel, &opts(), &PipelineConfig { jobs });
        assert_eq!(
            r1.stats, rj.stats,
            "OptStats diverge between jobs=1 and jobs={jobs}"
        );
        assert_eq!(
            s1,
            print_module(&parallel),
            "printed module diverges between jobs=1 and jobs={jobs}"
        );
    }
}

#[test]
fn mega_module_dumps_are_bit_identical_across_job_counts() {
    let hooks = PipelineHooks {
        dump_after: [Pass::Hssa, Pass::Ssapre].into_iter().collect(),
        ..Default::default()
    };
    let mut base = mega_module(SEED, FUNCS);
    prepare_module(&mut base);

    let mut serial = base.clone();
    let (_, d1) = optimize_with_hooks(&mut serial, &opts(), &PipelineConfig { jobs: 1 }, &hooks);
    let r1 = render_dumps(&d1);
    assert!(
        r1.contains("dump-after ssapre"),
        "mega-module must produce ssapre dumps"
    );

    for jobs in [2, 4] {
        let mut parallel = base.clone();
        let (_, dj) = optimize_with_hooks(&mut parallel, &opts(), &PipelineConfig { jobs }, &hooks);
        assert_eq!(
            r1,
            render_dumps(&dj),
            "dump stream diverges between jobs=1 and jobs={jobs}"
        );
    }
}
