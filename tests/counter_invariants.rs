//! Cross-benchmark invariants over the `pfmon`-style counters.
//!
//! These assert the *structure* of the paper's evaluation rather than any
//! particular number: speculation removes loads but never correctness,
//! checks appear exactly where speculation fired, failures only where the
//! training input lied, and both potential estimators of §5.3 dominate (or
//! track) the achieved reduction.

use specframe_bench::{run_all, BenchResult};
use specframe_workloads::Scale;

fn results() -> Vec<BenchResult> {
    run_all(Scale::Test)
}

#[test]
fn speculation_never_increases_loads() {
    for r in results() {
        assert!(
            r.profile.counters.loads_retired <= r.baseline.counters.loads_retired,
            "{}: {} -> {}",
            r.name,
            r.baseline.counters.loads_retired,
            r.profile.counters.loads_retired
        );
        assert!(
            r.heuristic.counters.loads_retired <= r.baseline.counters.loads_retired,
            "{}: heuristic grew loads",
            r.name
        );
    }
}

#[test]
fn checks_appear_iff_data_speculation_fired() {
    for r in results() {
        let fired = r.profile.opt.checks > 0 || r.profile.opt.control_spec_loads > 0;
        if fired {
            assert!(
                r.profile.counters.check_loads > 0,
                "{}: static checks but none retired",
                r.name
            );
        } else {
            assert_eq!(
                r.profile.counters.check_loads, 0,
                "{}: dynamic checks without static ones",
                r.name
            );
        }
        // the baseline never emits data-speculative checks
        assert_eq!(r.baseline.opt.data_spec_reloads, 0, "{}", r.name);
    }
}

#[test]
fn failed_checks_only_under_input_sensitivity() {
    for r in results() {
        // only gzip trains on a different input than it measures
        if r.name == "gzip" {
            assert!(
                r.profile.counters.failed_checks > 0,
                "gzip must mis-speculate on the reference input"
            );
        } else {
            assert_eq!(
                r.profile.counters.failed_checks, 0,
                "{}: profile holds, checks must not fail",
                r.name
            );
        }
        assert!(
            r.profile.counters.failed_checks <= r.profile.counters.check_loads,
            "{}: more failures than checks",
            r.name
        );
    }
}

#[test]
fn counter_arithmetic_is_consistent() {
    for r in results() {
        for (cfg, c) in [
            ("baseline", r.baseline.counters),
            ("profile", r.profile.counters),
            ("heuristic", r.heuristic.counters),
            ("aggressive", r.aggressive.counters),
        ] {
            assert_eq!(
                c.int_loads + c.fp_loads,
                c.loads_retired,
                "{}/{cfg}: load split",
                r.name
            );
            assert!(
                c.data_access_cycles <= c.cycles,
                "{}/{cfg}: data cycles exceed total",
                r.name
            );
            assert!(c.check_ratio() >= 0.0 && c.check_ratio() <= 1.0);
            assert!(c.insts > 0 && c.cycles >= c.insts / 2);
        }
    }
}

#[test]
fn aggressive_removes_at_least_as_much_as_profile() {
    for r in results() {
        assert!(
            r.potential_aggressive() + 1e-9 >= r.load_reduction(),
            "{}: aggressive {:.2}% < achieved {:.2}%",
            r.name,
            r.potential_aggressive(),
            r.load_reduction()
        );
    }
}

#[test]
fn fp_benchmarks_speed_up_most() {
    let rs = results();
    let get = |n: &str| rs.iter().find(|r| r.name == n).unwrap();
    // the paper's shape: the f64 benchmarks (equake, art, ammp) gain more
    // than the integer ones (mcf, gzip) because fp loads cost 9 cycles
    let fp_min = ["equake_smvp", "art", "ammp"]
        .iter()
        .map(|n| get(n).speedup())
        .fold(f64::INFINITY, f64::min);
    let int_max = ["mcf", "gzip"]
        .iter()
        .map(|n| get(n).speedup())
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        fp_min > int_max,
        "fp benchmarks ({fp_min:.1}%) must beat int benchmarks ({int_max:.1}%)"
    );
}

#[test]
fn alat_counters_track_activity() {
    for r in results() {
        let c = r.profile.counters;
        if c.check_loads > 0 {
            assert!(
                c.alat_inserts > 0,
                "{}: checks without ALAT inserts",
                r.name
            );
        }
        // every failed check implies an invalidation or eviction happened
        if c.failed_checks > 0 {
            assert!(
                c.alat_store_invalidations + c.alat_evictions > 0,
                "{}: failures without invalidations",
                r.name
            );
        }
    }
}
