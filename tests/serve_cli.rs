//! End-to-end tests of `specc --serve`, `--serve-queue`, `--cache-dir` /
//! `SPECFRAME_CACHE_DIR`, and the `specc cache` maintenance subcommands —
//! all through the real binary, so cross-process key stability is what's
//! actually exercised.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn specc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_specc"))
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "specc_serve_{tag}_{}_{}",
            std::process::id(),
            std::thread::current()
                .name()
                .unwrap_or("t")
                .replace("::", "_")
        ));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).expect("create temp dir");
        TempDir(p)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }

    fn join(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Runs one `--serve` session over the given stdin script; returns stdout.
fn serve_session(cache: &std::path::Path, script: &str, extra: &[&str]) -> String {
    let mut child = specc()
        .args(["--serve", "--cache-dir"])
        .arg(cache)
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn specc --serve");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().expect("serve session");
    assert!(
        out.status.success(),
        "serve exited {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

#[test]
fn serve_cold_then_warm_across_processes_is_byte_identical() {
    let cache = TempDir::new("stdin");
    let outdir = TempDir::new("stdin_out");
    let cold_ir = outdir.join("cold.ir");
    let warm_ir = outdir.join("warm.ir");

    let cold = serve_session(
        cache.path(),
        &format!("mega 42:30 -o {}\nquit\n", cold_ir.display()),
        &[],
    );
    assert!(
        cold.contains("ok in=mega:42:30 funcs=30 hits=0 misses=30"),
        "{cold}"
    );

    // a NEW process: hits here prove the key has no process-local state
    let warm = serve_session(
        cache.path(),
        &format!("mega 42:30 -o {}\nstats\nquit\n", warm_ir.display()),
        &["--verbose"],
    );
    assert!(warm.contains("funcs=30 hits=30 misses=0 stale=0"), "{warm}");
    assert!(warm.contains("fn f0 hit\n"), "{warm}");
    assert!(warm.contains("ok in=stats entries=30"), "{warm}");

    let cold_bytes = std::fs::read(&cold_ir).unwrap();
    let warm_bytes = std::fs::read(&warm_ir).unwrap();
    assert!(!cold_bytes.is_empty());
    assert_eq!(cold_bytes, warm_bytes, "served outputs diverged");
}

#[test]
fn serve_reports_errors_without_dying() {
    let cache = TempDir::new("errs");
    let out = serve_session(
        cache.path(),
        "bogus\nmega notanumber\ncompile /definitely/missing.ir\nmega 5:4\nquit\n",
        &[],
    );
    assert!(out.contains("err in=bogus code=1"), "{out}");
    assert!(out.contains("err in=mega:notanumber code=1"), "{out}");
    assert!(
        out.contains("err in=compile:/definitely/missing.ir code=1"),
        "{out}"
    );
    // the session survived all three and still compiled
    assert!(out.contains("ok in=mega:5:4 funcs=4"), "{out}");
}

#[test]
fn serve_queue_drains_requests_to_resp_files() {
    let cache = TempDir::new("queue");
    let queue = TempDir::new("queue_dir");
    let out_ir = queue.join("m.ir");
    std::fs::write(
        queue.join("10-m.req"),
        format!("mega 9:6 -o {}\n", out_ir.display()),
    )
    .unwrap();
    std::fs::write(queue.join("20-s.req"), "stats\n").unwrap();

    let out = specc()
        .args(["--serve-queue"])
        .arg(queue.path())
        .args(["--cache-dir"])
        .arg(cache.path())
        .output()
        .expect("spawn specc --serve-queue");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let resp1 = std::fs::read_to_string(queue.join("10-m.resp")).unwrap();
    assert!(
        resp1.contains("ok in=mega:9:6 funcs=6 hits=0 misses=6"),
        "{resp1}"
    );
    // queue order: the stats request ran after the compile populated it
    let resp2 = std::fs::read_to_string(queue.join("20-s.resp")).unwrap();
    assert!(resp2.contains("ok in=stats entries=6"), "{resp2}");
    assert!(out_ir.exists());
    assert!(
        !queue.join("10-m.req").exists(),
        "request files must be consumed"
    );
    assert!(!queue.join("20-s.req").exists());
}

#[test]
fn cache_dir_env_var_enables_the_cache() {
    let cache = TempDir::new("env");
    for run in 0..2 {
        let out = specc()
            .args(["--mega", "8:5", "--stats", "-o"])
            .arg(cache.join(&format!("out{run}.ir")))
            .env("SPECFRAME_CACHE_DIR", cache.path())
            .output()
            .expect("spawn specc");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let err = String::from_utf8_lossy(&out.stderr);
        let want = if run == 0 {
            "cache: 0 hits, 5 misses"
        } else {
            "cache: 5 hits, 0 misses"
        };
        assert!(err.contains(want), "run {run}: {err}");
    }
    assert_eq!(
        std::fs::read(cache.join("out0.ir")).unwrap(),
        std::fs::read(cache.join("out1.ir")).unwrap()
    );
}

#[test]
fn cache_subcommands_stats_verify_clear() {
    let cache = TempDir::new("subcmd");
    // populate via a plain compile
    let out = specc()
        .args(["--mega", "4:8", "--cache-dir"])
        .arg(cache.path())
        .arg("-o")
        .arg(cache.join("ignored.ir"))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let stats = specc()
        .args(["cache", "stats", "--cache-dir"])
        .arg(cache.path())
        .output()
        .unwrap();
    assert!(stats.status.success());
    assert!(
        String::from_utf8_lossy(&stats.stdout).contains("8 entries"),
        "{stats:?}"
    );

    // healthy cache verifies clean
    let verify = specc()
        .args(["cache", "verify", "--cache-dir"])
        .arg(cache.path())
        .output()
        .unwrap();
    assert!(verify.status.success(), "{verify:?}");
    assert!(
        String::from_utf8_lossy(&verify.stdout).contains("8 ok, 0 bad"),
        "{verify:?}"
    );

    // sabotage one entry: verify must list it and exit 2
    let entry = walk_entries(cache.path())
        .into_iter()
        .next()
        .expect("an entry");
    let mut bytes = std::fs::read(&entry).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(&entry, bytes).unwrap();
    let verify = specc()
        .args(["cache", "verify", "--cache-dir"])
        .arg(cache.path())
        .output()
        .unwrap();
    assert_eq!(verify.status.code(), Some(2), "{verify:?}");
    let text = String::from_utf8_lossy(&verify.stdout);
    assert!(text.contains("7 ok, 1 bad"), "{text}");
    assert!(text.contains("bad  "), "{text}");

    let clear = specc()
        .args(["cache", "clear", "--cache-dir"])
        .arg(cache.path())
        .output()
        .unwrap();
    assert!(clear.status.success());
    assert!(
        String::from_utf8_lossy(&clear.stdout).contains("removed 8 entries"),
        "{clear:?}"
    );
    assert!(walk_entries(cache.path()).is_empty());

    // no cache dir at all is a usage error (exit 1)
    let none = specc()
        .args(["cache", "stats"])
        .env_remove("SPECFRAME_CACHE_DIR")
        .output()
        .unwrap();
    assert_eq!(none.status.code(), Some(1), "{none:?}");
}

#[test]
fn two_concurrent_serve_processes_share_one_cache_without_corruption() {
    let cache = TempDir::new("concurrent");
    let outdir = TempDir::new("concurrent_out");
    // both sessions compile the same two workloads: every store races with
    // the sibling process writing the same keys
    let spawn = |tag: &str| {
        let script = format!(
            "mega 42:30 -o {}\nmega 7:10 -o {}\nquit\n",
            outdir.join(&format!("{tag}1.ir")).display(),
            outdir.join(&format!("{tag}2.ir")).display()
        );
        let mut child = specc()
            .args(["--serve", "--cache-dir"])
            .arg(cache.path())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn specc --serve");
        child
            .stdin
            .as_mut()
            .unwrap()
            .write_all(script.as_bytes())
            .unwrap();
        child
    };
    let a = spawn("a");
    let b = spawn("b");
    for (tag, child) in [("a", a), ("b", b)] {
        let out = child.wait_with_output().expect("serve session");
        assert!(
            out.status.success(),
            "session {tag} exited {:?}: {}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        assert_eq!(text.matches("ok in=mega:").count(), 2, "{tag}: {text}");
    }

    // whoever lost each race, the outputs must agree byte-for-byte
    for n in ["1", "2"] {
        assert_eq!(
            std::fs::read(outdir.join(&format!("a{n}.ir"))).unwrap(),
            std::fs::read(outdir.join(&format!("b{n}.ir"))).unwrap(),
            "concurrent sessions diverged on workload {n}"
        );
    }
    // and the shared cache holds no torn or undecodable entries
    let verify = specc()
        .args(["cache", "verify", "--cache-dir"])
        .arg(cache.path())
        .output()
        .unwrap();
    assert!(verify.status.success(), "{verify:?}");
    assert!(
        String::from_utf8_lossy(&verify.stdout).contains("40 ok, 0 bad"),
        "{verify:?}"
    );
}

#[test]
fn cache_fault_policy_output_is_byte_identical_to_the_faultless_run() {
    let cache_clean = TempDir::new("fault_clean");
    let cache_faulty = TempDir::new("fault_faulty");
    let outdir = TempDir::new("fault_out");
    let compile = |cache: &std::path::Path, policy: Option<&str>, out: &std::path::Path| {
        let mut cmd = specc();
        cmd.args(["--mega", "8:5", "--cache-dir"]).arg(cache);
        if let Some(p) = policy {
            cmd.args(["--cache-fault-policy", p]);
        }
        cmd.arg("-o").arg(out);
        let r = cmd.output().expect("spawn specc");
        assert!(
            r.status.success(),
            "policy {policy:?} failed: {}",
            String::from_utf8_lossy(&r.stderr)
        );
    };
    compile(cache_clean.path(), None, &outdir.join("clean.ir"));
    // cold (stores torn, retried) then warm (loads faulted, retried)
    compile(
        cache_faulty.path(),
        Some("torn-write:2"),
        &outdir.join("cold.ir"),
    );
    compile(
        cache_faulty.path(),
        Some("eio-read:3:2"),
        &outdir.join("warm.ir"),
    );
    let clean = std::fs::read(outdir.join("clean.ir")).unwrap();
    assert!(!clean.is_empty());
    assert_eq!(clean, std::fs::read(outdir.join("cold.ir")).unwrap());
    assert_eq!(clean, std::fs::read(outdir.join("warm.ir")).unwrap());

    // a malformed policy is rejected before any work starts
    let bad = specc()
        .args(["--mega", "8:5", "--cache-fault-policy", "explode:1"])
        .output()
        .unwrap();
    assert_eq!(bad.status.code(), Some(1), "{bad:?}");
}

fn walk_entries(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut v = Vec::new();
    for shard in std::fs::read_dir(dir).unwrap() {
        let shard = shard.unwrap().path();
        if !shard.is_dir() {
            continue;
        }
        for f in std::fs::read_dir(&shard).unwrap() {
            let p = f.unwrap().path();
            if p.extension().is_some_and(|e| e == "spcc") {
                v.push(p);
            }
        }
    }
    v.sort();
    v
}
