//! Regression test: functions with unreachable blocks must not blow up
//! the dense-index SSAPRE kernel.
//!
//! Unreachable blocks are never visited by the HSSA rename walk, so their
//! χ/store versions keep the `u32::MAX` "unrenamed" sentinel. The kernel's
//! scan used to insert those versions into the memory-def table — harmless
//! when the table was a hash map, but the dense table grows to its largest
//! key, so one sentinel insert tried to allocate 2³² slots (found by the
//! fuzzdiff reducer, whose instruction-ddmin probes routinely decapitate
//! loops and leave the body unreachable). The scan now skips unreachable
//! blocks, mirroring the occurrence scan, and `DenseMap::insert` rejects
//! the sentinel outright.

use specframe::prelude::*;

/// A decapitated loop — `head` jumps straight to `exit`, leaving the body
/// (an indirect store through `p`, i.e. a χ over the tracked memory
/// variable, plus a global load) unreachable — exactly the shape the
/// reducer produced.
const DECAPITATED: &str = r#"
global g0: i64[8] = [3, 1, 4, 1, 5, 9, 2, 6]
global g1: i64[8]

func main(sel: i64, n: i64) -> i64 {
  var p: ptr
  var i: i64
  var c: i64
  var acc: i64
  var t: i64
entry:
  br sel, ua, ub
ua:
  p = @g0
  jmp head
ub:
  p = @g1
  jmp head
head:
  c = lt i, n
  t = load.i64 [@g0 + 6]
  acc = add t, t
  jmp exit
body:
  store.i64 [p + 6], acc
  i = add i, 1
  jmp head
exit:
  ret acc
}
"#;

#[test]
fn unreachable_store_does_not_explode_the_kernel() {
    let mut m = parse_module(DECAPITATED).expect("parse");
    for opts in [
        OptOptions {
            data: SpecSource::Heuristic,
            control: ControlSpec::Static,
            strength_reduction: true,
            lftr: true,
            store_sinking: true,
            target: Default::default(),
        },
        OptOptions {
            data: SpecSource::Aggressive,
            control: ControlSpec::Static,
            strength_reduction: false,
            lftr: false,
            store_sinking: false,
            target: Default::default(),
        },
        OptOptions::default(),
    ] {
        // Completion is the test: before the fix this allocated a
        // 2³²-slot table (and now would panic on the DenseMap sentinel
        // assert). Whether the compile succeeds or degrades gracefully is
        // the pipeline's business — it must just terminate sanely.
        let mut c = m.clone();
        let _ = try_optimize_with_hooks(
            &mut c,
            &opts,
            &PipelineConfig { jobs: 1 },
            &PipelineHooks::default(),
        );
    }
    // and the unoptimized module still runs
    prepare_module(&mut m);
    let (r, _) = run(&m, "main", &[Value::I(1), Value::I(6)], 10_000).expect("reference run");
    assert_eq!(r, Some(Value::I(4)));
}
