//! End-to-end tests of the `specc` compiler driver.

use std::io::Write;
use std::process::Command;

const KERNEL: &str = r#"
global a: i64[1] = [7]
global b: i64[1]

func kern(p: ptr, n: i64) -> i64 {
  var i: i64
  var c: i64
  var v: i64
  var acc: i64
entry:
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  v = load.i64 [@a]
  acc = add acc, v
  store.i64 [p], acc
  i = add i, 1
  jmp head
exit:
  ret acc
}

func main(sel: i64, n: i64) -> i64 {
  var r: i64
  var p: ptr
entry:
  br sel, ua, ub
ua:
  p = @a
  jmp go
ub:
  p = @b
  jmp go
go:
  r = call kern(p, n)
  ret r
}
"#;

fn write_kernel() -> tempfile_path::TempPath {
    tempfile_path::TempPath::new("specc_kernel", ".ir", KERNEL)
}

/// Minimal self-contained temp-file helper (no extra dependencies).
mod tempfile_path {
    pub struct TempPath(pub std::path::PathBuf);

    impl TempPath {
        pub fn new(stem: &str, ext: &str, content: &str) -> TempPath {
            let mut p = std::env::temp_dir();
            let unique = format!(
                "{stem}_{}_{}{ext}",
                std::process::id(),
                std::thread::current()
                    .name()
                    .unwrap_or("t")
                    .replace("::", "_")
            );
            p.push(unique);
            let mut f = std::fs::File::create(&p).expect("create temp file");
            use std::io::Write;
            f.write_all(content.as_bytes()).expect("write temp file");
            TempPath(p)
        }

        pub fn as_str(&self) -> &str {
            self.0.to_str().unwrap()
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }
}

fn specc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_specc"))
}

#[test]
fn compiles_and_simulates_speculatively() {
    let input = write_kernel();
    let out = specc()
        .args([
            input.as_str(),
            "--args",
            "0,100",
            "--spec",
            "profile",
            "--control",
            "static",
            "--sim",
        ])
        .output()
        .expect("spawn specc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("result               = Some(I(700))"), "{err}");
    assert!(err.contains("failed checks        = 0"), "{err}");
}

#[test]
fn emits_optimized_ir_with_checks() {
    let input = write_kernel();
    let out = specc()
        .args([
            input.as_str(),
            "--args",
            "0,50",
            "--spec",
            "profile",
            "--control",
            "static",
        ])
        .output()
        .expect("spawn specc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let ir = String::from_utf8_lossy(&out.stdout);
    assert!(ir.contains("ldc.i64") || ir.contains("chks.i64"), "{ir}");
    // the emitted IR must re-parse
    specframe::ir::parse_module(&ir).expect("emitted IR re-parses");
}

#[test]
fn emits_speculative_ssa_dump() {
    let input = write_kernel();
    let out = specc()
        .args([input.as_str(), "--args", "0,10", "--emit", "hssa"])
        .output()
        .expect("spawn specc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let dump = String::from_utf8_lossy(&out.stdout);
    assert!(dump.contains("hssa func kern"), "{dump}");
    assert!(dump.contains("chi"), "{dump}");
}

#[test]
fn run_detects_results() {
    let input = write_kernel();
    let out = specc()
        .args([
            input.as_str(),
            "--args",
            "1,10",
            "--spec",
            "heuristic",
            "--control",
            "static",
            "--run",
        ])
        .output()
        .expect("spawn specc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    // sel=1: p really aliases a, so acc doubles each iteration (7 * 2^9)
    assert!(err.contains("result = Some(I(3584))"), "{err}");
}

#[test]
fn jobs_and_time_passes() {
    let input = write_kernel();
    // jobs=1 and jobs=4 must emit byte-identical IR
    let run_with_jobs = |jobs: &str| {
        let out = specc()
            .args([
                input.as_str(),
                "--args",
                "0,50",
                "--spec",
                "heuristic",
                "--control",
                "static",
                "--jobs",
                jobs,
                "--time-passes",
            ])
            .output()
            .expect("spawn specc");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };
    let (ir1, err1) = run_with_jobs("1");
    let (ir4, err4) = run_with_jobs("4");
    assert_eq!(ir1, ir4, "--jobs must not change the emitted IR");
    for err in [&err1, &err4] {
        assert!(err.contains("=== pass timings (target: epic) ==="), "{err}");
        assert!(err.contains("ssapre"), "{err}");
        assert!(err.contains("lower(epic)"), "{err}");
        assert!(err.contains("dom computes"), "{err}");
    }
}

#[test]
fn jobs_env_override_accepted() {
    let input = write_kernel();
    let out = specc()
        .args([
            input.as_str(),
            "--args",
            "0,10",
            "--spec",
            "none",
            "--control",
            "off",
        ])
        .env("SPECFRAME_JOBS", "3")
        .output()
        .expect("spawn specc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("func kern"));
}

#[test]
fn help_documents_jobs_env() {
    let out = specc().arg("--help").output().expect("spawn specc");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--jobs"), "{err}");
    assert!(err.contains("--time-passes"), "{err}");
    assert!(err.contains("SPECFRAME_JOBS"), "{err}");
}

#[test]
fn bad_input_fails_cleanly() {
    let input = tempfile_path::TempPath::new("specc_bad", ".ir", "func oops {");
    let out = specc().arg(input.as_str()).output().expect("spawn specc");
    // parse errors are exit-code family 2
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("specc:"), "{err}");
}

#[test]
fn unknown_flag_reports_usage() {
    let out = specc().arg("--frobnicate").output().expect("spawn specc");
    // usage errors are exit-code family 1
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown option"));
}

#[test]
fn fault_policies_report_per_policy_counters() {
    let input = write_kernel();
    let out = specc()
        .args([
            input.as_str(),
            "--args",
            "0,100",
            "--spec",
            "profile",
            "--control",
            "static",
            "--sim",
            "--fault-policy",
            "always-miss",
            "--fault-policy",
            "random:3",
            "--fault-policy",
            "flash-clear",
        ])
        .output()
        .expect("spawn specc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    for policy in ["always-miss", "random:3", "flash-clear"] {
        assert!(
            err.contains(&format!("fault policy         = {policy}")),
            "missing {policy} block in {err}"
        );
    }
    // every policy produced the same (correct) result
    assert_eq!(
        err.matches("result               = Some(I(700))").count(),
        3
    );
    // an ALAT that never hits forces a recovery per check load
    assert!(err.contains("alat fault kills"), "{err}");
}

#[test]
fn bad_fault_policy_is_usage_error() {
    let input = write_kernel();
    let out = specc()
        .args([input.as_str(), "--sim", "--fault-policy", "bogus"])
        .output()
        .expect("spawn specc");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("fault policy"), "{err}");
}

#[test]
fn fault_policy_without_sim_is_rejected() {
    let input = write_kernel();
    let out = specc()
        .args([input.as_str(), "--fault-policy", "always-miss"])
        .output()
        .expect("spawn specc");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn injected_spec_failure_recovers_with_warning() {
    let input = write_kernel();
    let out = specc()
        .args([
            input.as_str(),
            "--args",
            "0,50",
            "--spec",
            "heuristic",
            "--control",
            "static",
            "--run",
            "--inject-spec-fail",
            "kern",
        ])
        .output()
        .expect("spawn specc");
    // recovery succeeded: the module still compiles and runs correctly
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("specc: warning:"), "{err}");
    assert!(err.contains("recompiled without speculation"), "{err}");
    assert!(err.contains("result = Some(I(350))"), "{err}");
}

#[test]
fn injected_fallback_failure_exits_4() {
    let input = write_kernel();
    let out = specc()
        .args([
            input.as_str(),
            "--args",
            "0,50",
            "--spec",
            "heuristic",
            "--control",
            "static",
            "--inject-spec-fail",
            "kern",
            "--inject-fallback-fail",
            "kern",
        ])
        .output()
        .expect("spawn specc");
    assert_eq!(
        out.status.code(),
        Some(4),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("non-speculative fallback also failed"),
        "{err}"
    );
}

#[test]
fn alias_profile_saves_reloads_and_degrades() {
    let input = write_kernel();
    let mut prof_path = std::env::temp_dir();
    prof_path.push(format!("specc_prof_{}.aprof", std::process::id()));
    let prof = prof_path.to_str().unwrap();

    // 1. train and save
    let out = specc()
        .args([
            input.as_str(),
            "--args",
            "0,50",
            "--spec",
            "profile",
            "--control",
            "static",
            "--save-alias-profile",
            prof,
        ])
        .output()
        .expect("spawn specc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let saved = std::fs::read_to_string(&prof_path).expect("profile written");
    assert!(saved.starts_with("specframe-alias-profile v1"), "{saved}");

    // 2. reload: same optimized IR as a fresh training run, no warnings
    let recompile = |extra: &[&str]| {
        let mut args = vec![
            input.as_str(),
            "--args",
            "0,50",
            "--spec",
            "profile",
            "--control",
            "static",
        ];
        args.extend_from_slice(extra);
        specc().args(&args).output().expect("spawn specc")
    };
    let fresh = recompile(&[]);
    let reloaded = recompile(&["--alias-profile", prof]);
    assert!(reloaded.status.success());
    assert!(!String::from_utf8_lossy(&reloaded.stderr).contains("warning"));
    assert_eq!(
        fresh.stdout, reloaded.stdout,
        "profile reload changed the IR"
    );

    // 3. corrupt the profile: compile degrades to heuristics with warning
    std::fs::write(&prof_path, "specframe-alias-profile v1\nsite 0 count").unwrap();
    let degraded = recompile(&["--alias-profile", prof]);
    assert!(
        degraded.status.success(),
        "{}",
        String::from_utf8_lossy(&degraded.stderr)
    );
    let err = String::from_utf8_lossy(&degraded.stderr);
    assert!(err.contains("specc: warning:"), "{err}");
    assert!(err.contains("falling back to heuristic"), "{err}");
    let _ = std::fs::remove_file(&prof_path);
}

#[test]
fn write_to_output_file() {
    let input = write_kernel();
    let mut outpath = std::env::temp_dir();
    outpath.push(format!("specc_out_{}.ir", std::process::id()));
    let out = specc()
        .args([
            input.as_str(),
            "--args",
            "0,10",
            "--spec",
            "none",
            "--control",
            "off",
            "-o",
            outpath.to_str().unwrap(),
        ])
        .output()
        .expect("spawn specc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let written = std::fs::read_to_string(&outpath).expect("output written");
    assert!(written.contains("func kern"));
    let _ = std::fs::remove_file(&outpath);
    // keep the borrow checker quiet about the Write import used in the helper
    let _ = std::io::sink().write(b"");
}

#[test]
fn target_flips_explain_spec_verdicts_and_lowering() {
    let input = write_kernel();
    let explain = |target: &str| {
        let out = specc()
            .args([
                input.as_str(),
                "--args",
                "0,10",
                "--spec",
                "heuristic",
                "--target",
                target,
                "--explain-spec",
                "-o",
                "/dev/null",
            ])
            .output()
            .expect("spawn specc");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let epic = explain("epic");
    assert!(epic.contains("target: epic"), "{epic}");
    assert!(epic.contains("i64 load 2c -> speculate"), "{epic}");
    let swr = explain("swr");
    assert!(swr.contains("target: swr"), "{swr}");
    assert!(swr.contains("i64 load 2c -> keep"), "{swr}");
    assert!(swr.contains("f64 load 9c -> speculate"), "{swr}");

    // and the lowering actually follows the verdict: the swr machine code
    // of the same kernel carries no ALAT instructions for the i64 load
    let out = specc()
        .args([
            input.as_str(),
            "--args",
            "0,10",
            "--spec",
            "heuristic",
            "--target",
            "swr",
            "--emit",
            "mach",
        ])
        .output()
        .expect("spawn specc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mach = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(!mach.contains("ld.a"), "{mach}");
    assert!(!mach.contains("ld.sa"), "{mach}");
    assert!(!mach.contains("ld.c"), "{mach}");
    assert!(!mach.contains("chk"), "{mach}");

    let out = specc()
        .args([
            input.as_str(),
            "--args",
            "0,10",
            "--spec",
            "heuristic",
            "--emit",
            "mach",
        ])
        .output()
        .expect("spawn specc");
    let mach = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(mach.contains("ld.sa"), "{mach}");
    assert!(mach.contains("ld.c"), "{mach}");
}

#[test]
fn unknown_target_is_a_usage_error() {
    let input = write_kernel();
    let out = specc()
        .args([input.as_str(), "--target", "vliw"])
        .output()
        .expect("spawn specc");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown --target"), "{err}");
}
