//! # specframe-codegen
//!
//! Code generation: lowering `specframe-ir` modules onto a
//! `specframe-machine` speculation target. This is the stage where the
//! paper's speculation annotations become real instructions; *how* is the
//! active [`SpecTarget`]'s decision:
//!
//! | IR | EPIC (`epic`) | software-checked (`swr`) |
//! |----|---------------|--------------------------|
//! | `load`            | `ld`   | `ld` |
//! | `load.a`          | `ld.a` (ALAT entry) | `ld.a` + recorded address/epoch shadows |
//! | `load.s`          | `ld.sa` (deferred faults + ALAT) | `ld.sa` + shadows |
//! | `ldc` (checkload) | `ld.c` (free on ALAT hit) | compare + `chk.cmp` + recovery branch |
//! | `chks`            | NaT check with inline reload | NaT check (unchanged — register-file property) |
//!
//! Each IR instruction lowers to a *sequence* of machine instructions
//! (one, on `epic`); branch labels inside a sequence are
//! sequence-relative and rebased at emission, so only the lowering hooks
//! themselves may generate intra-sequence branches.
//!
//! Registers stay virtual (no allocator); global addresses are resolved to
//! link-time constants using the same layout the reference interpreter
//! uses, so the two execution engines are address-compatible and can be
//! co-simulated in tests.

use specframe_ir::{CheckKind, Function, Inst, LoadSpec, Module, Operand, Terminator, Value};
use specframe_machine::isa::{ChkKind, LdKind, MFunc, MInst, MOperand, MProgram, Reg};
use specframe_machine::target::{SpecFrame, SpecTarget, TargetId};

/// Lowers a whole module to a machine program for the default (`epic`)
/// target.
pub fn lower_module(m: &Module) -> MProgram {
    lower_module_for(m, TargetId::Epic.spec())
}

/// Lowers a whole module to a machine program for `target`.
pub fn lower_module_for(m: &Module, target: &dyn SpecTarget) -> MProgram {
    let layout = m.global_layout();
    let globals_end = layout
        .last()
        .map(|&b| b + i64::from(m.globals.last().unwrap().words))
        .unwrap_or(Module::GLOBAL_BASE);

    let mut global_image = Vec::new();
    for (gi, g) in m.globals.iter().enumerate() {
        for (w, v) in g.init.iter().enumerate() {
            global_image.push((layout[gi] + w as i64, *v));
        }
        // typed zero fill so f64 cells read back as floats even when only
        // partially initialized
        for w in g.init.len()..g.words as usize {
            global_image.push((layout[gi] + w as i64, Value::zero(g.ty)));
        }
    }

    let funcs = m
        .funcs
        .iter()
        .map(|f| lower_function_machine_for(f, &layout, target))
        .collect();

    MProgram {
        funcs,
        global_image,
        globals_end,
    }
}

/// Lowers a whole module and then fences every statically-detected
/// speculative leak ([`specframe_machine::leaks`]): a speculation barrier
/// is inserted immediately before each sink an unchecked `ld.a`/`ld.sa`
/// value can reach, so the lowered program leak-audits clean. Returns the
/// program and the number of fences inserted. The fence is a machine-level
/// transform — the IR module is untouched, so cached artifacts and the
/// reference interpreter see identical code.
pub fn lower_module_fenced(m: &Module) -> (MProgram, u64) {
    lower_module_fenced_for(m, TargetId::Epic.spec())
}

/// Like [`lower_module_fenced`], but for an explicit target.
pub fn lower_module_fenced_for(m: &Module, target: &dyn SpecTarget) -> (MProgram, u64) {
    let mut p = lower_module_for(m, target);
    let fences = specframe_machine::leaks::fence_program(&mut p);
    (p, fences)
}

fn operand(o: Operand, layout: &[i64]) -> MOperand {
    match o {
        Operand::Var(v) => MOperand::R(Reg(v.0)),
        Operand::ConstI(c) => MOperand::I(c),
        Operand::ConstF(c) => MOperand::F(c),
        Operand::GlobalAddr(g) => MOperand::I(layout[g.index()]),
        Operand::SlotAddr(s) => MOperand::SlotAddr(s.0),
    }
}

/// Lowers one function against a precomputed global address layout
/// (`Module::global_layout`) for the default (`epic`) target. Public so
/// the driver's `--audit-spec` hook can machine-lower a single function
/// inside a per-function worker, without the (partially moved-out) module
/// in hand.
pub fn lower_function_machine(f: &Function, layout: &[i64]) -> MFunc {
    lower_function_machine_for(f, layout, TargetId::Epic.spec())
}

/// Like [`lower_function_machine`], but for an explicit target. Each IR
/// instruction lowers to one target-chosen instruction sequence; block
/// starts and branch labels are derived from the concatenated sequence
/// lengths, and sequence-relative branches emitted by lowering hooks are
/// rebased onto the flat stream.
pub fn lower_function_machine_for(f: &Function, layout: &[i64], target: &dyn SpecTarget) -> MFunc {
    // software speculation bookkeeping (epoch + shadow registers) is only
    // threaded through functions that actually speculate
    let speculates = f.blocks.iter().flat_map(|b| &b.insts).any(|i| match i {
        Inst::Load { spec, .. } => !matches!(spec, LoadSpec::Normal),
        Inst::CheckLoad { kind, .. } => matches!(kind, CheckKind::Alat),
        _ => false,
    });
    let mut fr = SpecFrame::new(
        f.vars.len() as u32,
        target.software_spec_state() && speculates,
    );
    let mut promoted: Vec<Reg> = Vec::new();

    // first pass: lower every instruction to its target sequence (this
    // also fixes the bookkeeping-register allocation order)
    let mut block_seqs: Vec<Vec<Vec<MInst>>> = Vec::with_capacity(f.blocks.len());
    for b in &f.blocks {
        let mut seqs = Vec::with_capacity(b.insts.len());
        for inst in &b.insts {
            let seq = match inst {
                Inst::Bin { dst, op, a, b } => vec![MInst::Alu {
                    d: Reg(dst.0),
                    op: *op,
                    a: operand(*a, layout),
                    b: operand(*b, layout),
                }],
                Inst::Un { dst, op, a } => vec![MInst::Un {
                    d: Reg(dst.0),
                    op: *op,
                    a: operand(*a, layout),
                }],
                Inst::Copy { dst, src } => vec![MInst::Mov {
                    d: Reg(dst.0),
                    s: operand(*src, layout),
                }],
                Inst::Load {
                    dst,
                    base,
                    offset,
                    ty,
                    spec,
                    ..
                } => {
                    let kind = match spec {
                        LoadSpec::Normal => LdKind::Normal,
                        LoadSpec::Advanced => LdKind::Advanced,
                        LoadSpec::Speculative => LdKind::SpecAdvanced,
                    };
                    if kind != LdKind::Normal && !promoted.contains(&Reg(dst.0)) {
                        promoted.push(Reg(dst.0));
                    }
                    target.lower_spec_load(
                        &mut fr,
                        Reg(dst.0),
                        operand(*base, layout),
                        *offset,
                        *ty,
                        kind,
                    )
                }
                Inst::CheckLoad {
                    dst,
                    base,
                    offset,
                    ty,
                    kind,
                    ..
                } => {
                    if !promoted.contains(&Reg(dst.0)) {
                        promoted.push(Reg(dst.0));
                    }
                    target.lower_check(
                        &mut fr,
                        Reg(dst.0),
                        operand(*base, layout),
                        *offset,
                        *ty,
                        match kind {
                            CheckKind::Alat => ChkKind::Alat,
                            CheckKind::Nat => ChkKind::Nat,
                        },
                    )
                }
                Inst::Store {
                    base,
                    offset,
                    val,
                    ty,
                    ..
                } => target.lower_store(
                    &mut fr,
                    operand(*base, layout),
                    *offset,
                    operand(*val, layout),
                    *ty,
                ),
                Inst::Call {
                    dst, callee, args, ..
                } => target.lower_call(
                    &mut fr,
                    dst.map(|d| Reg(d.0)),
                    callee.index(),
                    args.iter().map(|&a| operand(a, layout)).collect(),
                ),
                Inst::Alloc { dst, words, .. } => vec![MInst::Alloc {
                    d: Reg(dst.0),
                    words: operand(*words, layout),
                }],
            };
            seqs.push(seq);
        }
        block_seqs.push(seqs);
    }

    // block start offsets over the lowered sequence lengths
    let mut starts = Vec::with_capacity(f.blocks.len());
    let mut off = 0usize;
    for seqs in &block_seqs {
        starts.push(off);
        off += seqs.iter().map(Vec::len).sum::<usize>() + 1; // + terminator
    }

    // second pass: emit, rebasing sequence-relative branch labels (only
    // lowering hooks produce branches inside a sequence — IR instructions
    // are never terminators)
    let mut code = Vec::with_capacity(off);
    for (b, seqs) in f.blocks.iter().zip(block_seqs) {
        for seq in seqs {
            let base = code.len();
            for mut mi in seq {
                match &mut mi {
                    MInst::Jmp(t) => *t += base,
                    MInst::Br { then_, else_, .. } => {
                        *then_ += base;
                        *else_ += base;
                    }
                    _ => {}
                }
                code.push(mi);
            }
        }
        let term = match &b.term {
            Terminator::Jump(t) => MInst::Jmp(starts[t.index()]),
            Terminator::Br { cond, then_, else_ } => MInst::Br {
                cond: operand(*cond, layout),
                then_: starts[then_.index()],
                else_: starts[else_.index()],
            },
            Terminator::Ret(v) => MInst::Ret(v.map(|v| operand(v, layout))),
        };
        code.push(term);
    }

    MFunc {
        name: f.name.clone(),
        params: f.params,
        regs: fr.regs(),
        slot_words: f.slots.iter().map(|s| s.words).collect(),
        code,
        promoted_regs: promoted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specframe_core::{optimize, ControlSpec, OptOptions, SpecSource};
    use specframe_ir::parse_module;
    use specframe_machine::run_machine;
    use specframe_profile::{run, run_with, AliasProfiler};

    /// Interpreter and machine must agree (co-simulation).
    fn cosim(src: &str, entry: &str, args: &[Value]) -> specframe_machine::Counters {
        let m = parse_module(src).unwrap();
        let (want, istats) = run(&m, entry, args, 10_000_000).unwrap();
        let p = lower_module(&m);
        let (got, c) = run_machine(&p, entry, args, 10_000_000).unwrap();
        assert_eq!(got, want, "machine result diverged from interpreter");
        assert_eq!(
            c.loads_retired, istats.loads,
            "retired loads must match interpreter loads"
        );
        assert_eq!(c.stores, istats.stores);
        c
    }

    #[test]
    fn cosim_loop() {
        let c = cosim(
            r#"
global g: i64[1] = [5]

func f(n: i64) -> i64 {
  var i: i64
  var c: i64
  var v: i64
  var acc: i64
entry:
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  v = load.i64 [@g]
  acc = add acc, v
  i = add i, 1
  jmp head
exit:
  ret acc
}
"#,
            "f",
            &[Value::I(10)],
        );
        assert_eq!(c.loads_retired, 10);
    }

    #[test]
    fn cosim_heap_and_calls() {
        cosim(
            r#"
func fill(p: ptr, n: i64) {
  var i: i64
  var c: i64
  var q: ptr
entry:
  i = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  q = add p, i
  store.i64 [q], i
  i = add i, 1
  jmp head
exit:
  ret
}

func main(n: i64) -> i64 {
  var p: ptr
  var i: i64
  var c: i64
  var acc: i64
  var q: ptr
  var v: i64
entry:
  p = alloc n
  call fill(p, n)
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  q = add p, i
  v = load.i64 [q]
  acc = add acc, v
  i = add i, 1
  jmp head
exit:
  ret acc
}
"#,
            "main",
            &[Value::I(20)],
        );
    }

    #[test]
    fn cosim_floats_and_slots() {
        cosim(
            r#"
global t: f64[4] = [1.5, 2.5, 3.5, 4.5]

func f() -> f64 {
  var i: i64
  var c: i64
  var acc: f64
  var v: f64
  var q: ptr
  slot tmp: f64[1]
entry:
  i = 0
  acc = 0.0
  jmp head
head:
  c = lt i, 4
  br c, body, exit
body:
  q = add i, @t
  v = load.f64 [q]
  acc = fadd acc, v
  store.f64 [&tmp], acc
  i = add i, 1
  jmp head
exit:
  v = load.f64 [&tmp]
  ret v
}
"#,
            "f",
            &[],
        );
    }

    /// Fenced lowering is architecturally silent: same results, leak-clean.
    #[test]
    fn fenced_lowering_preserves_results() {
        let src = r#"
global a: i64[2] = [17, 5]

func f() -> i64 {
  var p: i64
  var v: i64
entry:
  p = load.a.i64 [@a]
  v = load.i64 [p]
  p = ldc.i64 [@a]
  ret v
}
"#;
        let m = parse_module(src).unwrap();
        let plain = lower_module(&m);
        assert!(
            !specframe_machine::leaks::leak_audit_program(&plain).is_empty(),
            "the windowed address use must be flagged"
        );
        let (fenced, fences) = lower_module_fenced(&m);
        assert!(fences > 0);
        assert!(specframe_machine::leaks::leak_audit_program(&fenced).is_empty());
        let (want, _) = run_machine(&plain, "f", &[], 10_000).unwrap();
        let (got, c) = run_machine(&fenced, "f", &[], 10_000).unwrap();
        assert_eq!(got, want, "fences must not change architectural results");
        assert_eq!(c.fences_retired, fences);
    }

    /// swr lowering: no ALAT instructions survive, software check
    /// sequences appear, and the architectural results match both the
    /// epic lowering and the reference interpreter — under every fault
    /// policy.
    #[test]
    fn swr_lowering_cosim_audits_and_fault_matrix() {
        use specframe_machine::{run_machine_on, run_machine_with_policy_on};
        let src = r#"
global a: i64[2] = [17, 5]

func f() -> i64 {
  var p: i64
  var v: i64
entry:
  p = load.a.i64 [@a]
  v = load.i64 [p]
  p = ldc.i64 [@a]
  ret v
}
"#;
        let m = parse_module(src).unwrap();
        let swr = TargetId::Swr.spec();
        let pe = lower_module(&m);
        let ps = lower_module_for(&m, swr);
        // the software sequence is visible in the rendering, the ALAT
        // check is gone
        let asm = specframe_machine::render_mprogram(&ps);
        assert!(
            asm.contains("chk.cmp"),
            "swr check sequence expected:\n{asm}"
        );
        assert!(!asm.contains("ld.c"), "no ALAT check load on swr:\n{asm}");
        // both audits hold on the swr-lowered code
        specframe_machine::audit_program(&ps).unwrap();
        let (want, _) = run_machine(&pe, "f", &[], 10_000).unwrap();
        let (got, c) = run_machine_on(&ps, swr, "f", &[], 10_000).unwrap();
        assert_eq!(got, want, "swr result diverged from epic");
        assert_eq!(c.check_loads, 1);
        assert_eq!(c.failed_checks, 0, "no intervening store: check hits");
        for name in specframe_machine::fault_matrix() {
            let pol = specframe_machine::parse_fault_policy(&name).unwrap();
            let (r, c) = run_machine_with_policy_on(&ps, swr, "f", &[], 10_000, pol).unwrap();
            assert_eq!(r, want, "policy {name} changed the swr result");
            assert!(c.failed_checks <= c.check_loads, "policy {name}");
        }
    }

    /// An aliasing store between the swr advanced load and its check must
    /// fail the epoch compare and take the recovery reload.
    #[test]
    fn swr_aliasing_store_takes_recovery_path() {
        use specframe_machine::run_machine_on;
        let src = r#"
global a: i64[1] = [42]

func f() -> i64 {
  var v: i64
entry:
  v = load.a.i64 [@a]
  store.i64 [@a], 99
  v = ldc.i64 [@a]
  ret v
}
"#;
        let m = parse_module(src).unwrap();
        let swr = TargetId::Swr.spec();
        let ps = lower_module_for(&m, swr);
        let (r, c) = run_machine_on(&ps, swr, "f", &[], 10_000).unwrap();
        assert_eq!(r, Some(Value::I(99)), "recovery must reload the store");
        assert_eq!(c.failed_checks, 1, "epoch bump must force the miss");
    }

    /// Leak fencing works on swr machine code: the windowed address use is
    /// flagged, fenced, and the fenced program re-audits clean with the
    /// same architectural result.
    #[test]
    fn swr_fenced_lowering_preserves_results() {
        use specframe_machine::run_machine_on;
        let src = r#"
global a: i64[2] = [17, 5]

func f() -> i64 {
  var p: i64
  var v: i64
entry:
  p = load.a.i64 [@a]
  v = load.i64 [p]
  p = ldc.i64 [@a]
  ret v
}
"#;
        let m = parse_module(src).unwrap();
        let swr = TargetId::Swr.spec();
        let plain = lower_module_for(&m, swr);
        assert!(
            !specframe_machine::leaks::leak_audit_program(&plain).is_empty(),
            "the windowed address use must be flagged on swr too"
        );
        let (fenced, fences) = lower_module_fenced_for(&m, swr);
        assert!(fences > 0);
        assert!(specframe_machine::leaks::leak_audit_program(&fenced).is_empty());
        let (want, _) = run_machine_on(&plain, swr, "f", &[], 10_000).unwrap();
        let (got, c) = run_machine_on(&fenced, swr, "f", &[], 10_000).unwrap();
        assert_eq!(got, want, "fences must not change architectural results");
        assert_eq!(c.fences_retired, fences);
    }

    /// The full paper pipeline on the machine: optimize speculatively, then
    /// measure the load reduction, the check ratio and a zero
    /// mis-speculation ratio when the profile holds.
    #[test]
    fn speculative_pipeline_on_machine() {
        let src = r#"
global a: i64[1] = [7]
global b: i64[1]

func kern(p: ptr, n: i64) -> i64 {
  var i: i64
  var c: i64
  var v: i64
  var acc: i64
entry:
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  v = load.i64 [@a]
  acc = add acc, v
  store.i64 [p], acc
  i = add i, 1
  jmp head
exit:
  ret acc
}

func main(sel: i64, n: i64) -> i64 {
  var r: i64
  var p: ptr
entry:
  br sel, ua, ub
ua:
  p = @a
  jmp go
ub:
  p = @b
  jmp go
go:
  r = call kern(p, n)
  ret r
}
"#;
        let m0 = parse_module(src).unwrap();
        let mut prepared = m0.clone();
        specframe_core::prepare_module(&mut prepared);
        let args = [Value::I(0), Value::I(100)];
        let (want, _) = run(&prepared, "main", &args, 10_000_000).unwrap();

        let mut ap = AliasProfiler::new();
        run_with(&prepared, "main", &args, 10_000_000, &mut ap).unwrap();
        let aprof = ap.finish();

        // baseline: control speculation only (ORC O3)
        let mut base = prepared.clone();
        optimize(
            &mut base,
            &OptOptions {
                control: ControlSpec::Static,
                ..Default::default()
            },
        );
        let pb = lower_module(&base);
        let (rb, cb) = run_machine(&pb, "main", &args, 10_000_000).unwrap();
        assert_eq!(rb, want);

        // speculative: data + control
        let mut spec = prepared.clone();
        optimize(
            &mut spec,
            &OptOptions {
                data: SpecSource::Profile(&aprof),
                control: ControlSpec::Static,
                strength_reduction: false,
                lftr: false,
                store_sinking: false,
                target: Default::default(),
            },
        );
        let ps = lower_module(&spec);
        let (rs, cs) = run_machine(&ps, "main", &args, 10_000_000).unwrap();
        assert_eq!(rs, want);

        assert!(
            cs.loads_retired < cb.loads_retired,
            "speculation must reduce retired loads: {} -> {}",
            cb.loads_retired,
            cs.loads_retired
        );
        assert!(cs.check_loads > 0, "checks must appear");
        assert_eq!(
            cs.failed_checks, 0,
            "profile holds at run time: no mis-speculation"
        );
        assert!(
            cs.cycles < cb.cycles,
            "fewer loads must mean fewer cycles: {} -> {}",
            cb.cycles,
            cs.cycles
        );

        // deploy on the aliasing input: correctness via failed checks
        let alias_args = [Value::I(1), Value::I(100)];
        let (want2, _) = run(&prepared, "main", &alias_args, 10_000_000).unwrap();
        let (rs2, cs2) = run_machine(&ps, "main", &alias_args, 10_000_000).unwrap();
        assert_eq!(rs2, want2, "mis-speculated run must stay correct");
        assert!(
            cs2.failed_checks > 0,
            "aliasing input must fail checks: {cs2:?}"
        );
        assert!(cs2.mis_speculation_ratio() > 0.5);
    }
}
