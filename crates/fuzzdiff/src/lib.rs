//! Differential misspeculation oracle.
//!
//! The safety argument of the whole framework is that a mis-speculated
//! value is always *detected and recovered* by the check instruction, so
//! the program result can never depend on what the ALAT happened to do.
//! This crate turns that argument into an executable oracle:
//!
//! for every case (the eight workload kernels plus seeded random loop
//! programs with may-aliased memory traffic), for every execution target
//! (`epic` with its hardware ALAT, `swr` with software recovery checks),
//! for every optimizer configuration, for every fault policy —
//!
//! ```text
//! result(optimized, machine, policy) == result(unoptimized, interpreter)
//! ```
//!
//! bit-identically, on the training input *and* on an adversarial input
//! where the profiled assumptions are false. On top of result equality it
//! asserts counter sanity (`failed_checks ≤ check_loads`; a policy that
//! kills entries cannot *reduce* recoveries below zero) — an eviction
//! schedule may change *performance* counters but never *results*.
//!
//! The `fuzzdiff` binary wraps this for CI with a seed and time budget.

use specframe::machine::policy::XorShift64;
use specframe::prelude::*;

/// One program under test.
#[derive(Debug, Clone)]
pub struct Case {
    /// Display name (`workload:gzip`, `random:17`).
    pub name: String,
    /// The prepared module (critical edges split).
    pub module: Module,
    /// Entry function.
    pub entry: String,
    /// Training-run arguments (profile collection).
    pub train_args: Vec<Value>,
    /// Reference-run argument vectors; every one must agree with the
    /// unoptimized interpreter. By convention the last one is adversarial
    /// (the profile lies) when the case has that notion.
    pub run_args: Vec<Vec<Value>>,
    /// Interpreter/simulator fuel budget.
    pub fuel: u64,
}

/// The eight paper workload kernels (plus stressors) as oracle cases.
pub fn workload_cases() -> Vec<Case> {
    all_workloads(Scale::Test)
        .into_iter()
        .map(|w| {
            let mut m = w.module;
            prepare_module(&mut m);
            let mut run_args = vec![w.ref_args.clone()];
            if w.train_args != w.ref_args {
                run_args.push(w.train_args.clone());
            }
            Case {
                name: format!("workload:{}", w.name),
                module: m,
                entry: w.entry.to_string(),
                train_args: w.train_args,
                run_args,
                fuel: w.fuel,
            }
        })
        .collect()
}

/// Builds the seeded random case: a loop over statement templates chosen
/// by an xorshift stream. The first argument selects the target of
/// pointer `p` (`g0` — truly aliased, or `g1` — disjoint), so training on
/// `sel=0` and running on `sel=1` makes every profiled no-alias
/// assumption false at once.
pub fn random_case(seed: u64) -> Case {
    random_case_sized(seed, 9)
}

/// [`random_case`] with the step-count ceiling exposed (`fuzzdiff
/// --steps`): bigger programs exercise deeper optimizer interactions and
/// give the reducer real work in the CI smoke.
pub fn random_case_sized(seed: u64, max_steps: u64) -> Case {
    let mut rng = XorShift64::new(seed);
    let nsteps = 1 + (rng.next_u64() % max_steps.max(1)) as usize;
    let mut decls = String::new();
    let mut body = String::new();
    for si in 0..nsteps {
        let t = format!("t{si}");
        let k = rng.next_u64() % 8;
        match rng.next_u64() % 10 {
            0 => {
                decls += &format!("  var {t}: i64\n");
                body += &format!("  {t} = load.i64 [@g0 + {k}]\n  acc = add acc, {t}\n");
            }
            1 => body += &format!("  store.i64 [@g0 + {k}], acc\n"),
            2 => {
                decls += &format!("  var {t}: i64\n");
                body += &format!("  {t} = load.i64 [p + {k}]\n  acc = add acc, {t}\n");
            }
            3 => body += &format!("  store.i64 [p + {k}], acc\n"),
            4 => {
                decls += &format!("  var {t}: f64\n  var {t}i: i64\n");
                body += &format!(
                    "  {t} = load.f64 [@f0 + {k}]\n  {t}i = f2i {t}\n  acc = add acc, {t}i\n"
                );
            }
            5 => {
                decls += &format!("  var {t}: f64\n");
                body += &format!("  {t} = i2f acc\n  store.f64 [@f0 + {k}], {t}\n");
            }
            6 => {
                let c = (rng.next_u64() % 255) as i64 - 127;
                body += &format!("  acc = add acc, {c}\n");
            }
            7 => {
                let c = 1 + rng.next_u64() % 5;
                decls += &format!("  var {t}: i64\n");
                body += &format!("  {t} = mul i, {c}\n  acc = add acc, {t}\n");
            }
            8 => {
                // diamond: Φ insertion, control speculation, φ lowering
                decls += &format!("  var {t}c: i64\n  var {t}v: i64\n");
                body += &format!(
                    "  {t}c = mod i, 2\n  br {t}c, d{si}t, d{si}e\n\
                     d{si}t:\n  {t}v = load.i64 [@g0 + {k}]\n  acc = add acc, {t}v\n  jmp d{si}j\n\
                     d{si}e:\n  store.i64 [p + {k}], acc\n  jmp d{si}j\n\
                     d{si}j:\n"
                );
            }
            _ => {
                decls += &format!("  var {t}: i64\n");
                body += &format!("  {t} = call helper(acc)\n  acc = add acc, {t}\n");
            }
        }
    }
    let src = format!(
        r#"
global g0: i64[8] = [3, 1, 4, 1, 5, 9, 2, 6]
global g1: i64[8]
global f0: f64[8] = [1.5, 2.5, 0.5, 3.0, 1.0, 2.0, 4.5, 0.25]

func helper(x: i64) -> i64 {{
  var v: i64
entry:
  v = load.i64 [@g0 + 2]
  v = add v, x
  ret v
}}

func main(sel: i64, n: i64) -> i64 {{
  var p: ptr
  var i: i64
  var c: i64
  var acc: i64
{decls}entry:
  acc = 0
  i = 0
  br sel, ua, ub
ua:
  p = @g0
  jmp head
ub:
  p = @g1
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
{body}  i = add i, 1
  jmp head
exit:
  ret acc
}}
"#
    );
    let mut m = parse_module(&src).unwrap_or_else(|e| panic!("generated program: {e}\n{src}"));
    prepare_module(&mut m);
    verify_module(&m).unwrap_or_else(|e| panic!("generated program: {e}\n{src}"));
    Case {
        name: format!("random:{seed}"),
        module: m,
        entry: "main".into(),
        train_args: vec![Value::I(0), Value::I(6)],
        run_args: vec![
            vec![Value::I(0), Value::I(6)], // profile holds
            vec![Value::I(1), Value::I(6)], // profile lies: checks must recover
        ],
        fuel: 1_000_000,
    }
}

/// Aggregate statistics of one oracle sweep.
#[derive(Debug, Default, Clone, Copy)]
pub struct DiffStats {
    /// Cases examined.
    pub cases: u64,
    /// (config, policy, args) machine simulations compared.
    pub sim_runs: u64,
    /// Total failed checks observed — nonzero proves the adversarial
    /// policies actually exercised the recovery path.
    pub failed_checks: u64,
    /// Speculative-leak sites the static auditor flagged across all
    /// optimized lowerings (pre-fence).
    pub leak_sites: u64,
    /// Speculation barriers the leak oracle's fencing pass inserted.
    pub fences_inserted: u64,
    /// Cached compiles the storage-fault oracle performed.
    pub cache_runs: u64,
    /// Transient cache-I/O retries those compiles drove.
    pub cache_retries: u64,
    /// Injected cache I/O errors observed across the fault matrix.
    pub cache_io_errors: u64,
    /// Cache circuit-breaker trips (at most one per cache session).
    pub cache_breaker_trips: u64,
}

/// The outcome of one oracle run over one case, separating *setup*
/// problems (the case itself would not run) from genuine *divergences*
/// (optimized behavior differs from the reference). The reducer keys on
/// this: a candidate whose reference run breaks fails for a different
/// reason than the original divergence and must be rejected.
#[derive(Debug)]
pub enum DiffOutcome {
    /// Every comparison matched.
    Agree,
    /// The case could not be set up (reference or training run failed).
    Setup(String),
    /// At least one comparison diverged; the report lists them all.
    Diverged(String),
}

/// Deletes the first check instruction (`ldc`/`chks`) found in `m`,
/// returning whether one was found. This is the deliberate sabotage
/// behind `fuzzdiff --break-checks`: with the check gone, a mis-speculated
/// value is consumed unrecovered, and the differential oracle must notice
/// — an end-to-end proof that the oracle (and the reducer riding on it)
/// actually has teeth.
pub fn drop_first_check(m: &mut Module) -> bool {
    for f in &mut m.funcs {
        for b in &mut f.blocks {
            if let Some(i) = b
                .insts
                .iter()
                .position(|i| matches!(i, specframe::ir::Inst::CheckLoad { .. }))
            {
                b.insts.remove(i);
                return true;
            }
        }
    }
    false
}

/// Runs the full differential oracle on one case.
///
/// # Errors
/// A human-readable report per divergence: result mismatch between the
/// optimized machine run and the unoptimized interpreter, an interpreter
/// divergence, a counter-sanity violation, or a compile failure.
pub fn diff_case(case: &Case, policies: &[String], stats: &mut DiffStats) -> Result<(), String> {
    match diff_case_outcome(case, policies, stats, false) {
        DiffOutcome::Agree => Ok(()),
        DiffOutcome::Setup(e) | DiffOutcome::Diverged(e) => Err(e),
    }
}

/// [`diff_case`] with the failure classes separated and optional check
/// sabotage (`break_checks` deletes one check from every optimized module
/// before comparing — configs that emitted no check are skipped).
pub fn diff_case_outcome(
    case: &Case,
    policies: &[String],
    stats: &mut DiffStats,
    break_checks: bool,
) -> DiffOutcome {
    stats.cases += 1;
    let m = &case.module;

    // ground truth: the unoptimized reference interpreter
    let mut want = Vec::new();
    for args in &case.run_args {
        match run(m, &case.entry, args, case.fuel) {
            Ok((r, _)) => want.push(r),
            Err(e) => {
                return DiffOutcome::Setup(format!("{}: reference run failed: {e}", case.name))
            }
        }
    }

    // training profile
    let mut ap = AliasProfiler::new();
    let mut ep = EdgeProfiler::new();
    {
        let mut obs = specframe::profile::observer::Compose(vec![&mut ap, &mut ep]);
        if let Err(e) = run_with(m, &case.entry, &case.train_args, case.fuel, &mut obs) {
            return DiffOutcome::Setup(format!("{}: training run failed: {e}", case.name));
        }
    }
    let aprof = ap.finish();
    let eprof = ep.finish();

    let mut failures = Vec::new();
    for target in TargetId::ALL {
        let configs: Vec<(&str, OptOptions)> = vec![
            (
                "none",
                OptOptions {
                    target,
                    ..OptOptions::default()
                },
            ),
            (
                "cspec",
                OptOptions {
                    data: SpecSource::None,
                    control: ControlSpec::Profile(&eprof),
                    strength_reduction: true,
                    lftr: false,
                    store_sinking: false,
                    target,
                },
            ),
            (
                "profile",
                OptOptions {
                    data: SpecSource::Profile(&aprof),
                    control: ControlSpec::Profile(&eprof),
                    strength_reduction: true,
                    lftr: false,
                    store_sinking: false,
                    target,
                },
            ),
            (
                "heuristic",
                OptOptions {
                    data: SpecSource::Heuristic,
                    control: ControlSpec::Static,
                    strength_reduction: true,
                    lftr: false,
                    store_sinking: true,
                    target,
                },
            ),
            (
                "sr-lftr",
                OptOptions {
                    data: SpecSource::Heuristic,
                    control: ControlSpec::Static,
                    strength_reduction: true,
                    lftr: true,
                    store_sinking: true,
                    target,
                },
            ),
            (
                "aggressive",
                OptOptions {
                    data: SpecSource::Aggressive,
                    control: ControlSpec::Static,
                    strength_reduction: false,
                    lftr: false,
                    store_sinking: false,
                    target,
                },
            ),
        ];

        for (cname, opts) in configs {
            let label = format!("{}/{cname}@{}", case.name, target.name());
            let mut om = m.clone();
            optimize(&mut om, &opts);
            if break_checks && !drop_first_check(&mut om) {
                continue; // nothing speculative to sabotage in this config
            }
            if let Err(e) = verify_module(&om) {
                failures.push(format!("{label}: verify failed: {e}"));
                continue;
            }
            // interpreter equivalence of the optimized module
            for (args, want) in case.run_args.iter().zip(&want) {
                match run(&om, &case.entry, args, case.fuel) {
                    Ok((r, _)) if r == *want => {}
                    Ok((r, _)) => failures.push(format!(
                        "{label}: interp({args:?}) = {r:?}, reference {want:?}"
                    )),
                    Err(e) => failures.push(format!("{label}: interp({args:?}) failed: {e}")),
                }
            }
            // machine equivalence under every fault policy (on epic the
            // policies act on the ALAT; on swr they map onto forced
            // recovery-branch misses — results must agree either way)
            let prog = lower_module_for(&om, target.spec());
            for policy in policies {
                for (args, want) in case.run_args.iter().zip(&want) {
                    let p = match parse_fault_policy(policy) {
                        Ok(p) => p,
                        Err(e) => return DiffOutcome::Setup(format!("bad policy `{policy}`: {e}")),
                    };
                    stats.sim_runs += 1;
                    match run_machine_with_policy_on(
                        &prog,
                        target.spec(),
                        &case.entry,
                        args,
                        case.fuel,
                        p,
                    ) {
                        Ok((r, c)) => {
                            if r != *want {
                                failures.push(format!(
                                    "{label}/{policy}: machine({args:?}) = {r:?}, \
                                     reference {want:?}"
                                ));
                            }
                            if c.failed_checks > c.check_loads {
                                failures.push(format!(
                                    "{label}/{policy}: counter sanity: \
                                     failed_checks {} > check_loads {}",
                                    c.failed_checks, c.check_loads
                                ));
                            }
                            stats.failed_checks += c.failed_checks;
                        }
                        Err(e) => failures
                            .push(format!("{label}/{policy}: machine({args:?}) failed: {e}")),
                    }
                }
            }
            // leak oracle: fence the same lowering, prove the static
            // re-audit is clean, then run taint-enabled (every global word
            // secret) under every fault policy — zero taint-to-sink events
            // may survive fencing and the architectural result must stay
            // bit-identical to the reference interpreter
            let mut fprog = prog.clone();
            let fences = specframe::machine::fence_program(&mut fprog);
            stats.leak_sites += specframe::machine::leak_audit_program(&prog).len() as u64;
            stats.fences_inserted += fences;
            let still = specframe::machine::leak_audit_program(&fprog);
            if !still.is_empty() {
                failures.push(format!(
                    "{label}: leak oracle: {} sites survive fencing; first: {}",
                    still.len(),
                    still[0]
                ));
            }
            let secrets: Vec<i64> = (Module::GLOBAL_BASE..fprog.globals_end).collect();
            for policy in policies {
                for (args, want) in case.run_args.iter().zip(&want) {
                    let p = match parse_fault_policy(policy) {
                        Ok(p) => p,
                        Err(e) => return DiffOutcome::Setup(format!("bad policy `{policy}`: {e}")),
                    };
                    stats.sim_runs += 1;
                    match specframe::machine::run_machine_taint_on(
                        &fprog,
                        target.spec(),
                        &case.entry,
                        args,
                        case.fuel,
                        p,
                        &secrets,
                    ) {
                        Ok(rep) => {
                            let c = &rep.counters;
                            if rep.result != *want {
                                failures.push(format!(
                                    "{label}/{policy}: fenced machine({args:?}) = {:?}, \
                                     reference {want:?}",
                                    rep.result
                                ));
                            }
                            if c.leak_addr_events + c.leak_branch_events > 0 {
                                let first = rep
                                    .events
                                    .first()
                                    .map(|e| {
                                        format!("first: {}@{} -> {} sink", e.func, e.at, e.sink)
                                    })
                                    .unwrap_or_default();
                                failures.push(format!(
                                    "{label}/{policy}: leak oracle: {} taint-to-sink \
                                     events survive fencing ({first})",
                                    c.leak_addr_events + c.leak_branch_events
                                ));
                            }
                            stats.failed_checks += c.failed_checks;
                        }
                        Err(e) => failures.push(format!(
                            "{label}/{policy}: fenced machine({args:?}) failed: {e}"
                        )),
                    }
                }
            }
        }
    }
    if failures.is_empty() {
        DiffOutcome::Agree
    } else {
        DiffOutcome::Diverged(failures.join("\n"))
    }
}

/// The storage-fault matrix the cache oracle sweeps: no faults, periodic
/// permanent ENOSPC, seeded transient read errors, and torn writes.
pub const STORE_FAULT_MATRIX: &[&str] = &["none", "enospc:2", "eio-read:7:2", "torn-write:2"];

/// The storage-fault oracle: compiles `case` through a compile cache whose
/// storage is wrapped in every [`STORE_FAULT_MATRIX`] fault injector, cold
/// and warm, and proves the module text never moves a byte from the
/// uncached baseline — faults may cost retries, trip the circuit breaker,
/// and turn hits back into misses, but they must never change the output.
/// Counter sanity rides along: probes account for every function, a retry
/// implies an observed I/O error, and the breaker trips at most once.
///
/// # Errors
/// A human-readable report of the first divergence or counter violation.
pub fn storage_fault_case(case: &Case, stats: &mut DiffStats) -> Result<(), String> {
    use specframe::core::cache::MemStore;
    use specframe::core::{parse_store_fault_policy, try_optimize_cached, FuncCache};
    use specframe::ir::display::print_module;

    let target = TargetId::ALL[0];
    let opts = OptOptions {
        data: SpecSource::Heuristic,
        control: ControlSpec::Static,
        strength_reduction: true,
        lftr: true,
        store_sinking: true,
        target,
    };
    let cfg = PipelineConfig { jobs: 1 };
    let hooks = PipelineHooks::default();

    let mut base = case.module.clone();
    try_optimize_cached(&mut base, &opts, &cfg, &hooks, None)
        .map_err(|e| format!("{}: uncached baseline failed: {e}", case.name))?;
    let want = print_module(&base);
    let funcs = case.module.funcs.len() as u64;

    for policy in STORE_FAULT_MATRIX {
        let pol = parse_store_fault_policy(policy)?;
        let cache = FuncCache::with_store(Box::new(MemStore::new())).with_fault_policy(pol);
        for phase in ["cold", "warm"] {
            let label = format!("{}/{policy}/{phase}", case.name);
            let mut cm = case.module.clone();
            let (report, _) = try_optimize_cached(&mut cm, &opts, &cfg, &hooks, Some(&cache))
                .map_err(|e| format!("{label}: cached compile failed: {e}"))?;
            stats.cache_runs += 1;
            if print_module(&cm) != want {
                return Err(format!(
                    "{label}: cached module text diverged from the uncached baseline"
                ));
            }
            let c = report.cache;
            if c.hits + c.misses + c.stale != funcs {
                return Err(format!(
                    "{label}: probe accounting: {} hits + {} misses + {} stale != {funcs} funcs",
                    c.hits, c.misses, c.stale
                ));
            }
            if c.retries > c.io_errors {
                return Err(format!(
                    "{label}: counter sanity: {} retries > {} io errors",
                    c.retries, c.io_errors
                ));
            }
            if c.breaker_trips > 1 {
                return Err(format!(
                    "{label}: counter sanity: breaker tripped {} times",
                    c.breaker_trips
                ));
            }
            if *policy == "none" {
                if c.io_errors != 0 {
                    return Err(format!(
                        "{label}: {} io errors under the no-fault policy",
                        c.io_errors
                    ));
                }
                if phase == "warm" && c.misses != 0 {
                    return Err(format!(
                        "{label}: {} misses on a warm fault-free cache",
                        c.misses
                    ));
                }
            }
        }
        let (retries, io_errors, trips) = cache.fault_counters();
        stats.cache_retries += retries;
        stats.cache_io_errors += io_errors;
        stats.cache_breaker_trips += trips;
    }
    Ok(())
}

/// Shrinks a diverging case to a minimal module with the ddmin-style
/// reducer and renders it as a `.spec`-ready repro. The predicate re-runs
/// the (optionally sabotaged) oracle on every candidate and accepts only
/// genuine divergences — a candidate whose reference run breaks, or that
/// stops diverging, is rejected, so the reduced program still fails for
/// the original reason.
pub fn reduce_failing_case(
    case: &Case,
    policies: &[String],
    break_checks: bool,
) -> (String, ReduceStats) {
    let mut pred = |cand: &Module| {
        let c2 = Case {
            module: cand.clone(),
            ..case.clone()
        };
        // a candidate that makes the compiler panic outright fails for a
        // *different* reason than the divergence being reduced — reject it
        specframe::core::error::with_quiet_panics(|| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut s = DiffStats::default();
                matches!(
                    diff_case_outcome(&c2, policies, &mut s, break_checks),
                    DiffOutcome::Diverged(_)
                )
            }))
            .unwrap_or(false)
        })
    };
    let (red, rs) = reduce_module(&case.module, &mut pred);
    (render_spec_repro(case, &red, &rs, break_checks), rs)
}

/// Formats `args` the way `specc --args` parses them.
fn fmt_args(args: &[Value]) -> String {
    args.iter()
        .map(|v| match v {
            Value::I(i) => i.to_string(),
            Value::F(f) => format!("{f:?}"),
            Value::Nat => "nat".to_string(),
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Renders a reduced module as a ready-to-save `.spec` file: a RUN line
/// reproducing the speculative compile-and-run, the reduction provenance,
/// and the program text.
fn render_spec_repro(case: &Case, red: &Module, rs: &ReduceStats, break_checks: bool) -> String {
    let adversarial = case.run_args.last().unwrap_or(&case.train_args);
    let mut out = format!(
        "; RUN: specc %s --entry {} --spec heuristic --control static \
         --train-args {} --args {} --run\n",
        case.entry,
        fmt_args(&case.train_args),
        fmt_args(adversarial),
    );
    out += &format!(
        "; reduce: {} probes, {} -> {} instructions ({:.0}% shrink) from {}\n",
        rs.probes,
        rs.initial_insts,
        rs.final_insts,
        rs.shrink_percent(),
        case.name,
    );
    if break_checks {
        out += "; NOTE: diverges only with the --break-checks sabotage \
                (one check deleted after optimize) — the unsabotaged \
                pipeline is expected to pass on this program.\n";
    }
    out.push('\n');
    out += &specframe::ir::display::print_module(red);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_fault_oracle_accepts_a_workload_and_moves_counters() {
        let case = workload_cases().into_iter().next().expect("a workload");
        let mut stats = DiffStats::default();
        storage_fault_case(&case, &mut stats).expect("fault matrix must not change output");
        // 4 policies x cold+warm
        assert_eq!(stats.cache_runs, 8);
        // the faulty policies must actually inject something
        assert!(stats.cache_io_errors > 0, "{stats:?}");
        assert!(stats.cache_retries <= stats.cache_io_errors, "{stats:?}");
    }

    #[test]
    fn storage_fault_oracle_handles_seeded_random_cases() {
        let case = random_case(3);
        let mut stats = DiffStats::default();
        storage_fault_case(&case, &mut stats).expect("fault matrix must not change output");
        assert_eq!(stats.cache_runs, 8);
    }

    #[test]
    fn random_cases_are_deterministic_per_seed() {
        let a = random_case(17);
        let b = random_case(17);
        assert_eq!(
            specframe::ir::display::print_module(&a.module),
            specframe::ir::display::print_module(&b.module)
        );
        // different seeds almost surely differ
        let c = random_case(18);
        assert_ne!(
            specframe::ir::display::print_module(&a.module),
            specframe::ir::display::print_module(&c.module)
        );
    }

    #[test]
    fn oracle_passes_on_random_cases_under_fault_matrix() {
        let policies = fault_matrix();
        let mut stats = DiffStats::default();
        for seed in 1..=4 {
            let case = random_case(seed);
            diff_case(&case, &policies, &mut stats).unwrap();
        }
        assert_eq!(stats.cases, 4);
        assert!(stats.sim_runs > 0);
        // always-miss over speculative configs must have exercised recovery
        assert!(stats.failed_checks > 0, "{stats:?}");
    }

    #[test]
    fn dropped_check_diverges_and_reduces() {
        let policies = vec!["always-miss".to_string()];
        let mut stats = DiffStats::default();
        // find a seed whose sabotaged compile actually diverges (the
        // first check of the module must be one that matters on the
        // adversarial input)
        let case = (1..=8)
            .map(random_case)
            .find(|c| {
                matches!(
                    diff_case_outcome(c, &policies, &mut DiffStats::default(), true),
                    DiffOutcome::Diverged(_)
                )
            })
            .expect("no seed in 1..=8 diverges under --break-checks");
        // the unsabotaged oracle still passes on the same case
        diff_case(&case, &policies, &mut stats).unwrap();
        let (spec, rs) = reduce_failing_case(&case, &policies, true);
        assert!(spec.contains("RUN: specc"), "{spec}");
        assert!(spec.contains("; reduce:"), "{spec}");
        assert!(rs.probes > 0);
        assert!(
            rs.final_insts < rs.initial_insts,
            "reducer made no progress: {rs:?}"
        );
        // the repro must still diverge for the original reason
        let mut red = parse_module(spec.split_once("\n\n").expect("module text").1).unwrap();
        prepare_module(&mut red);
        let rcase = Case {
            module: red,
            name: "reduced".into(),
            ..case.clone()
        };
        assert!(matches!(
            diff_case_outcome(&rcase, &policies, &mut DiffStats::default(), true),
            DiffOutcome::Diverged(_)
        ));
    }

    #[test]
    fn leak_oracle_fences_hand_written_leak_and_results_hold() {
        // the classic shape: an advanced load's value used as the next
        // load's address before its check — the static auditor must flag
        // it, the fence must close it, and the fenced program must agree
        // with the reference under the entire fault matrix
        let src = r#"
global t: i64[1] = [18]
global s: i64[4] = [7, 8, 9, 10]

func main() -> i64 {
  var p: i64
  var v: i64
entry:
  p = load.a.i64 [@t]
  v = load.i64 [p]
  p = ldc.i64 [@t]
  ret v
}
"#;
        let mut m = parse_module(src).unwrap();
        prepare_module(&mut m);
        let case = Case {
            name: "leaky".into(),
            module: m,
            entry: "main".into(),
            train_args: vec![],
            run_args: vec![vec![]],
            fuel: 100_000,
        };
        let policies = fault_matrix();
        let mut stats = DiffStats::default();
        diff_case(&case, &policies, &mut stats).unwrap();
        assert!(stats.leak_sites > 0, "{stats:?}");
        assert!(stats.fences_inserted > 0, "{stats:?}");
    }

    #[test]
    fn oracle_passes_on_one_workload() {
        let policies = vec!["always-miss".to_string(), "random:3".to_string()];
        let mut stats = DiffStats::default();
        let case = workload_cases()
            .into_iter()
            .find(|c| c.name == "workload:gzip")
            .expect("gzip workload");
        diff_case(&case, &policies, &mut stats).unwrap();
    }
}
