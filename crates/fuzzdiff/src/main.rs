//! `fuzzdiff` — CI driver for the differential misspeculation oracle.
//!
//! ```text
//! fuzzdiff [--seed N] [--random N] [--time-budget SECS] [--policy SPEC]..
//!          [--skip-workloads] [--break-checks] [--reduce-on-failure]
//! ```
//!
//! Runs the workload kernels and `N` seeded random programs through every
//! optimizer configuration × ALAT fault policy and compares each machine
//! run against the unoptimized reference interpreter. The seed makes a
//! failing run reproducible (`fuzzdiff --seed S --random 1` replays one
//! case); the time budget keeps CI bounded — cases are skipped once it is
//! exhausted, and the skip count is reported so a silently-short run is
//! visible.
//!
//! `--break-checks` deletes one check instruction from every optimized
//! module before comparing — a deliberate sabotage that MUST make the
//! oracle fail, proving it has teeth. `--reduce-on-failure` shrinks each
//! failing case with the ddmin reducer and prints a `.spec`-ready repro
//! to stdout.
//!
//! Exit code 0 when every comparison matched, 1 otherwise (2 for usage).

use specframe::prelude::*;
use specframe_fuzzdiff::{
    diff_case_outcome, random_case_sized, reduce_failing_case, storage_fault_case, workload_cases,
    DiffOutcome, DiffStats,
};
use std::time::{Duration, Instant};

struct Opts {
    seed: u64,
    random: u64,
    steps: u64,
    budget: Duration,
    policies: Vec<String>,
    workloads: bool,
    break_checks: bool,
    reduce_on_failure: bool,
}

fn parse_opts() -> Result<Opts, String> {
    let mut o = Opts {
        seed: 1,
        random: 16,
        steps: 9,
        budget: Duration::from_secs(300),
        policies: Vec::new(),
        workloads: true,
        break_checks: false,
        reduce_on_failure: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match a.as_str() {
            "--seed" => {
                o.seed = val("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--random" => {
                o.random = val("--random")?
                    .parse()
                    .map_err(|e| format!("bad --random: {e}"))?
            }
            "--time-budget" => {
                let secs: u64 = val("--time-budget")?
                    .parse()
                    .map_err(|e| format!("bad --time-budget: {e}"))?;
                o.budget = Duration::from_secs(secs);
            }
            "--steps" => {
                o.steps = val("--steps")?
                    .parse()
                    .map_err(|e| format!("bad --steps: {e}"))?
            }
            "--policy" => o.policies.push(val("--policy")?),
            "--skip-workloads" => o.workloads = false,
            "--break-checks" => o.break_checks = true,
            "--reduce-on-failure" => o.reduce_on_failure = true,
            "--help" | "-h" => {
                return Err("usage: fuzzdiff [--seed N] [--random N] [--steps N] \
                            [--time-budget SECS] [--policy SPEC].. \
                            [--skip-workloads] [--break-checks] \
                            [--reduce-on-failure]\n\
                            default policies: the full fault matrix \
                            (default, always-miss, forced-miss, random:1/2/3, \
                            flash-clear)"
                    .into())
            }
            other => return Err(format!("unknown option `{other}` (try --help)")),
        }
    }
    if o.policies.is_empty() {
        o.policies = fault_matrix();
    }
    // reject bad policy specs before burning budget
    for p in &o.policies {
        parse_fault_policy(p)?;
    }
    Ok(o)
}

fn main() -> std::process::ExitCode {
    let o = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("fuzzdiff: {e}");
            return std::process::ExitCode::from(2);
        }
    };
    let start = Instant::now();
    let mut stats = DiffStats::default();
    let mut failures = 0u64;
    let mut skipped = 0u64;

    let mut cases: Vec<Box<dyn FnOnce() -> specframe_fuzzdiff::Case>> = Vec::new();
    if o.workloads {
        for c in workload_cases() {
            cases.push(Box::new(move || c));
        }
    }
    for i in 0..o.random {
        let seed = o.seed.wrapping_add(i);
        let steps = o.steps;
        cases.push(Box::new(move || random_case_sized(seed, steps)));
    }

    for make in cases {
        if start.elapsed() > o.budget {
            skipped += 1;
            continue;
        }
        let case = make();
        let name = case.name.clone();
        match diff_case_outcome(&case, &o.policies, &mut stats, o.break_checks) {
            DiffOutcome::Agree => println!("ok   {name}"),
            DiffOutcome::Setup(report) => {
                failures += 1;
                println!("FAIL {name}");
                eprintln!("{report}");
            }
            DiffOutcome::Diverged(report) => {
                failures += 1;
                println!("FAIL {name}");
                eprintln!("{report}");
                if o.reduce_on_failure {
                    eprintln!("fuzzdiff: shrinking {name} to a minimal repro...");
                    let (spec, rs) = reduce_failing_case(&case, &o.policies, o.break_checks);
                    eprintln!(
                        "fuzzdiff: reduce: {} probes, {} -> {} instructions \
                         ({:.0}% shrink)",
                        rs.probes,
                        rs.initial_insts,
                        rs.final_insts,
                        rs.shrink_percent()
                    );
                    print!("{spec}");
                }
            }
        }
        // the storage-fault oracle rides along on every case: the compile
        // cache must survive the injected-fault matrix without moving the
        // module text a byte (sabotage mode targets the ALAT oracle only)
        if !o.break_checks {
            if let Err(report) = storage_fault_case(&case, &mut stats) {
                failures += 1;
                println!("FAIL {name} (storage-fault oracle)");
                eprintln!("{report}");
            }
        }
    }

    println!(
        "fuzzdiff: {} cases, {} sim runs, {} failed checks recovered, \
         {} leak sites fenced ({} fences), {} cached compiles \
         ({} retries / {} injected errors, {} breaker trips), \
         {} skipped (budget), {} failures in {:.1}s",
        stats.cases,
        stats.sim_runs,
        stats.failed_checks,
        stats.leak_sites,
        stats.fences_inserted,
        stats.cache_runs,
        stats.cache_retries,
        stats.cache_io_errors,
        stats.cache_breaker_trips,
        skipped,
        failures,
        start.elapsed().as_secs_f64()
    );
    if failures == 0 {
        std::process::ExitCode::SUCCESS
    } else {
        std::process::ExitCode::FAILURE
    }
}
