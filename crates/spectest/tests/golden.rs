//! Runs the whole golden corpus as part of `cargo test`.
//!
//! The `spectest` binary is the day-to-day entry point (better reporting,
//! `--filter`, `--dump`); this test ensures plain `cargo test` covers the
//! corpus too.

use spectest::runner::{discover, run_case, CaseOutcome};
use std::path::PathBuf;

#[test]
fn golden_corpus_passes() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden");
    let files = discover(&[dir]).expect("tests/golden must exist");
    assert!(
        files.len() >= 12,
        "golden corpus too small: {} cases",
        files.len()
    );
    let mut failed = Vec::new();
    for path in &files {
        if let CaseOutcome::Fail(msg) = run_case(path) {
            failed.push(format!("{}:\n{msg}", path.display()));
        }
    }
    assert!(
        failed.is_empty(),
        "{} golden case(s) failed:\n{}",
        failed.len(),
        failed.join("\n")
    );
}
