//! # spectest
//!
//! A FileCheck-lite golden-test harness for the speculative pipeline.
//!
//! A golden test is a single `.spec` file containing a textual-IR program
//! interleaved with `;`-prefixed directives:
//!
//! ```text
//! ; RUN: specc %s --spec heuristic --control static --dump-after=ssapre
//! ;
//! ; Pins speculative PRE insertion (paper §4, Appendix A).
//!
//! func f(a: i64, b: i64, sel: i64) -> i64 {
//!   ...
//! }
//!
//! ; CHECK: dump-after ssapre: func f
//! ; CHECK: nothave:
//! ; CHECK-NEXT: x2 = 0
//! ; CHECK: pre0{{.*}} = add a0, b0
//! ; CHECK-NOT: y1 = add
//! ```
//!
//! * `; RUN: specc %s …` says how to produce the output under test. The
//!   command is interpreted **in process** against the `specframe` library
//!   — no subprocess is spawned, so the suite is hermetic and offline.
//!   `%s` stands for the file's own IR content (every `;` line stripped;
//!   `#` comments are the IR's own and pass through). With `--dump-after`
//!   the output is the pass-dump stream; otherwise it is the optimized
//!   module. Multiple RUN lines concatenate their outputs in order.
//! * `; CHECK: pat` — scan forward for a line containing `pat`.
//! * `; CHECK-NEXT: pat` — the line immediately after the previous match.
//! * `; CHECK-NOT: pat` — must not appear before the next positive match
//!   (or end of output).
//! * `; CHECK-DAG: pat` — consecutive `CHECK-DAG`s match in any order.
//!
//! Patterns are literal after whitespace normalization (runs of blanks
//! compare equal), except `{{…}}`, which matches any — possibly empty —
//! run of characters within the line.
//!
//! The `spectest` binary discovers `tests/golden/*.spec`, runs every case
//! and reports failures with the searched output region; `ci.sh` runs it
//! as part of the tier-1 gate. To author a new test, write the IR and RUN
//! line, then `spectest --dump FILE` to see the exact output and pick the
//! lines worth pinning.

pub mod matcher;
pub mod runner;

pub use matcher::{run_checks, CheckKind, Directive, MatchFailure};
pub use runner::{discover, parse_spec, run_case, CaseOutcome, RunSpec, SpecCase};
