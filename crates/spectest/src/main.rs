//! `spectest` — run the golden-test suite.
//!
//! ```text
//! spectest [PATHS...] [options]
//!
//!   PATHS            .spec files and/or directories to scan for *.spec
//!                    (default: tests/golden)
//!   --filter SUBSTR  run only cases whose path contains SUBSTR
//!   --dump FILE      print FILE's RUN output instead of checking it
//!                    (the authoring aid: pick lines to pin from this)
//!   --verify-each    run every case with pass-boundary verification on
//!   --audit-spec     run every case with the speculation auditor on
//!                    (cases may opt out of an override with a
//!                    `; UNSUPPORTED: <override>` line and are counted
//!                    as skipped)
//!   --audit-leaks    check the leak-fencing contract on every case's
//!                    compiled module: flagged speculative-leak sites must
//!                    fence to a clean re-audit with unchanged results
//!   --cache-dir DIR  route every RUN through a persistent compile cache
//!                    (cached-path parity: output must not change)
//!   --target NAME    force every RUN onto execution target NAME
//!                    (epic|swr); target-pinned cases opt out with
//!                    `; UNSUPPORTED: target`
//!   -q, --quiet      only print failures and the summary
//! ```
//!
//! Exit status: 0 when every case passes, 1 on any failure, 2 on usage or
//! discovery errors.

use spectest::runner;
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    paths: Vec<PathBuf>,
    filter: Option<String>,
    dump: Option<PathBuf>,
    overrides: runner::RunOverrides,
    quiet: bool,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        paths: Vec::new(),
        filter: None,
        dump: None,
        overrides: runner::RunOverrides::default(),
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--filter" => cli.filter = Some(args.next().ok_or("--filter needs a value")?),
            "--dump" => cli.dump = Some(PathBuf::from(args.next().ok_or("--dump needs a value")?)),
            "--verify-each" => cli.overrides.verify_each = true,
            "--audit-spec" => cli.overrides.audit_spec = true,
            "--audit-leaks" => cli.overrides.audit_leaks = true,
            "--cache-dir" => {
                cli.overrides.cache_dir = Some(PathBuf::from(
                    args.next().ok_or("--cache-dir needs a value")?,
                ))
            }
            "--cache-fault-policy" => {
                cli.overrides.cache_fault_policy =
                    Some(args.next().ok_or("--cache-fault-policy needs a value")?)
            }
            "--target" => cli.overrides.target = Some(args.next().ok_or("--target needs a value")?),
            "-q" | "--quiet" => cli.quiet = true,
            "--help" | "-h" => {
                return Err(
                    "usage: spectest [PATHS...] [--filter SUBSTR] [--dump FILE] \
                            [--verify-each] [--audit-spec] [--audit-leaks] \
                            [--cache-dir DIR] [--cache-fault-policy SPEC] \
                            [--target NAME] [-q]"
                        .into(),
                )
            }
            other if !other.starts_with('-') => cli.paths.push(PathBuf::from(other)),
            other => return Err(format!("unknown option `{other}` (try --help)")),
        }
    }
    if cli.paths.is_empty() {
        cli.paths.push(PathBuf::from("tests/golden"));
    }
    Ok(cli)
}

fn real_main() -> Result<bool, String> {
    let cli = parse_cli()?;

    if let Some(file) = &cli.dump {
        let text = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        // a RUN line with no checks yet is fine here: --dump exists to
        // produce the text you will then write checks against
        let case = runner::parse_spec(&text).map_err(|e| format!("{}: {e}", file.display()))?;
        print!("{}", runner::case_output(&case)?);
        return Ok(true);
    }

    let mut files = runner::discover(&cli.paths)?;
    if let Some(f) = &cli.filter {
        files.retain(|p| p.to_string_lossy().contains(f.as_str()));
    }
    if files.is_empty() {
        return Err("no .spec files found".into());
    }

    let mut failures = 0usize;
    let mut skipped = 0usize;
    for path in &files {
        match runner::run_case_with(path, cli.overrides.clone()) {
            runner::CaseOutcome::Pass => {
                if !cli.quiet {
                    println!("PASS {}", path.display());
                }
            }
            runner::CaseOutcome::Skip(why) => {
                skipped += 1;
                if !cli.quiet {
                    println!("SKIP {} (UNSUPPORTED: {why})", path.display());
                }
            }
            runner::CaseOutcome::Fail(msg) => {
                failures += 1;
                println!("FAIL {}", path.display());
                for line in msg.lines() {
                    println!("     {line}");
                }
            }
        }
    }
    println!(
        "spectest: {} passed, {} failed, {} skipped ({} total)",
        files.len() - failures - skipped,
        failures,
        skipped,
        files.len()
    );
    Ok(failures == 0)
}

fn main() -> ExitCode {
    match real_main() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("spectest: {e}");
            ExitCode::from(2)
        }
    }
}
