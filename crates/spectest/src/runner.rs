//! `.spec` file parsing, in-process RUN execution and case discovery.

use crate::matcher::{run_checks, CheckKind, Directive};
use specframe::prelude::*;
use std::path::{Path, PathBuf};

/// One parsed RUN pipeline: a compile request plus the execution mode
/// riding on it (`--sim` with its fault policies).
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// The compile half of the RUN line.
    pub req: CompileRequest,
    /// Simulate on the EPIC machine and check the counter block instead
    /// of the optimized module text.
    pub sim: bool,
    /// ALAT fault policies for `--sim` (default: `default`).
    pub fault_policies: Vec<String>,
}

/// One parsed golden test.
#[derive(Debug)]
pub struct SpecCase {
    /// The RUN pipelines, in file order (at least one).
    pub runs: Vec<RunSpec>,
    /// The raw RUN command strings (for reporting).
    pub run_lines: Vec<String>,
    /// The check directives, in file order.
    pub directives: Vec<Directive>,
    /// The IR program: the file with every `;` line removed.
    pub input: String,
}

/// Parses the text of a `.spec` file.
///
/// Lines whose first non-blank character is `;` are harness lines: either
/// a directive (`RUN:`, `CHECK:`, `CHECK-NEXT:`, `CHECK-NOT:`,
/// `CHECK-DAG:` after the `;`) or a free-form comment. Everything else is
/// the IR program handed to the compiler (so `#` comments stay IR-side).
/// A `;` comment that *mentions* `CHECK` or `RUN:` but parses as neither
/// is rejected — it is almost certainly a typo that would silently turn a
/// directive into a comment.
pub fn parse_spec(text: &str) -> Result<SpecCase, String> {
    let mut runs = Vec::new();
    let mut run_lines = Vec::new();
    let mut directives = Vec::new();
    let mut input = String::new();

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let trimmed = line.trim_start();
        let Some(body) = trimmed.strip_prefix(';') else {
            input.push_str(line);
            input.push('\n');
            continue;
        };
        let body = body.trim_start();
        if let Some(cmd) = body.strip_prefix("RUN:") {
            let cmd = cmd.trim();
            runs.push(
                parse_run_command(cmd).map_err(|e| format!("line {lineno}: bad RUN line: {e}"))?,
            );
            run_lines.push(cmd.to_string());
            continue;
        }
        let kinds = [
            ("CHECK-NEXT:", CheckKind::Next),
            ("CHECK-NOT:", CheckKind::Not),
            ("CHECK-DAG:", CheckKind::Dag),
            ("CHECK:", CheckKind::Check),
        ];
        if let Some((pat, kind)) = kinds
            .iter()
            .find_map(|(p, k)| body.strip_prefix(p).map(|rest| (rest.trim(), *k)))
        {
            directives.push(Directive::new(kind, pat, lineno)?);
            continue;
        }
        if body.contains("CHECK") || body.contains("RUN:") {
            return Err(format!(
                "line {lineno}: `{}` looks like a directive but is not one of \
                 RUN: / CHECK: / CHECK-NEXT: / CHECK-NOT: / CHECK-DAG:",
                body.trim_end()
            ));
        }
        // plain harness comment: dropped
    }

    if runs.is_empty() {
        return Err("no `; RUN:` line".into());
    }
    if directives.first().map(|d| d.kind) == Some(CheckKind::Next) {
        return Err(format!(
            "line {}: CHECK-NEXT cannot be the first directive",
            directives[0].line
        ));
    }
    Ok(SpecCase {
        runs,
        run_lines,
        directives,
        input,
    })
}

/// Parses a value list of the `--args 0,100` form.
fn parse_values(s: &str) -> Result<Vec<Value>, String> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|t| {
            let t = t.trim();
            if t.contains('.') {
                t.parse::<f64>()
                    .map(Value::F)
                    .map_err(|e| format!("bad float `{t}`: {e}"))
            } else {
                t.parse::<i64>()
                    .map(Value::I)
                    .map_err(|e| format!("bad int `{t}`: {e}"))
            }
        })
        .collect()
}

/// Parses a `specc %s …` command into a [`RunSpec`].
///
/// The vocabulary is the subset of the real `specc` CLI that makes sense
/// in a hermetic run: `--entry`, `--args`, `--train-args`, `--spec`,
/// `--control`, `--no-sr`, `--store-sinking`, `--jobs`, `--fuel`,
/// `--dump-after`, `--stop-after`, `--sim`, `--fault-policy`,
/// `--verify-each`, `--audit-spec`, `--inject-spec-fail`,
/// `--inject-fallback-fail`, `--inject-corrupt`. Anything else (e.g.
/// `-o`) is rejected so a `.spec` file cannot silently diverge from what
/// the harness actually executes.
pub fn parse_run_command(cmd: &str) -> Result<RunSpec, String> {
    let mut toks = cmd.split_whitespace();
    if toks.next() != Some("specc") {
        return Err("RUN command must start with `specc`".into());
    }
    let mut rs = RunSpec {
        req: CompileRequest::default(),
        sim: false,
        fault_policies: Vec::new(),
    };
    let req = &mut rs.req;
    let mut saw_input = false;
    let next_val = |toks: &mut std::str::SplitWhitespace<'_>, flag: &str| {
        toks.next()
            .map(str::to_string)
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(t) = toks.next() {
        match t {
            "%s" => saw_input = true,
            "--entry" => req.entry = next_val(&mut toks, t)?,
            "--args" => req.args = parse_values(&next_val(&mut toks, t)?)?,
            "--train-args" => req.train_args = Some(parse_values(&next_val(&mut toks, t)?)?),
            "--spec" => req.spec = next_val(&mut toks, t)?,
            "--control" => req.control = next_val(&mut toks, t)?,
            "--no-sr" => req.strength_reduction = false,
            "--no-lftr" => req.lftr = false,
            "--store-sinking" => req.store_sinking = true,
            "--jobs" => {
                req.jobs = next_val(&mut toks, t)?
                    .parse()
                    .map_err(|e| format!("bad --jobs: {e}"))?
            }
            "--fuel" => {
                req.fuel = next_val(&mut toks, t)?
                    .parse()
                    .map_err(|e| format!("bad --fuel: {e}"))?
            }
            "--dump-after" => req.hooks.dump_after = PassSet::parse_list(&next_val(&mut toks, t)?)?,
            "--stop-after" => req.hooks.stop_after = Some(next_val(&mut toks, t)?.parse()?),
            "--sim" => rs.sim = true,
            "--fault-policy" => rs.fault_policies.push(next_val(&mut toks, t)?),
            "--inject-spec-fail" => req.hooks.inject_spec_fail = Some(next_val(&mut toks, t)?),
            "--inject-fallback-fail" => {
                req.hooks.inject_fallback_fail = Some(next_val(&mut toks, t)?)
            }
            "--inject-corrupt" => {
                req.hooks.inject_corrupt = Some(PipelineHooks::parse_inject_corrupt(&next_val(
                    &mut toks, t,
                )?)?)
            }
            "--verify-each" => req.hooks.verify_each = true,
            "--audit-spec" => req.hooks.audit_spec = true,
            other if other.starts_with("--dump-after=") => {
                req.hooks.dump_after = PassSet::parse_list(&other["--dump-after=".len()..])?
            }
            other if other.starts_with("--stop-after=") => {
                req.hooks.stop_after = Some(other["--stop-after=".len()..].parse()?)
            }
            other if other.starts_with("--fault-policy=") => rs
                .fault_policies
                .push(other["--fault-policy=".len()..].to_string()),
            other => return Err(format!("unsupported RUN token `{other}`")),
        }
    }
    if !saw_input {
        return Err("RUN command must reference the input as `%s`".into());
    }
    if !rs.fault_policies.is_empty() && !rs.sim {
        return Err("--fault-policy requires --sim".into());
    }
    if rs.sim && rs.fault_policies.is_empty() {
        rs.fault_policies.push("default".into());
    }
    Ok(rs)
}

/// Executes one RUN pipeline over the case's IR and returns the text the
/// checks run against: degradation warnings first (as `; warning:` lines,
/// so goldens can pin recovery diagnostics), then the rendered pass dumps
/// when `--dump-after` was given, the `--sim` counter block per fault
/// policy when simulating, and the optimized module otherwise.
pub fn execute_run(input: &str, rs: &RunSpec) -> Result<String, String> {
    let req = &rs.req;
    let out = compile(input, req).map_err(|e| e.to_string())?;
    let mut text = String::new();
    for w in &out.report.warnings {
        text.push_str(&format!("; warning: {w}\n"));
    }
    if !req.hooks.dump_after.is_empty() {
        text.push_str(&render_dumps(&out.dumps));
    } else if rs.sim {
        for policy in &rs.fault_policies {
            let (_, sim) = specframe::pipeline::simulate_text(
                &out.module,
                &req.entry,
                &req.args,
                req.fuel,
                policy,
            )
            .map_err(|e| e.to_string())?;
            text.push_str(&sim);
        }
    } else {
        text.push_str(&specframe::ir::display::print_module(&out.module));
    }
    Ok(text)
}

/// The verdict on one `.spec` file.
#[derive(Debug)]
pub enum CaseOutcome {
    /// Every directive matched.
    Pass,
    /// Parse, compile or match failure; the string is the full report.
    Fail(String),
}

/// Harness-wide hook overrides (`spectest --verify-each` /
/// `--audit-spec`): applied on top of every RUN line, so the entire
/// golden suite can be re-run with pass-boundary verification and the
/// speculation-safety auditor enabled — any golden whose output changes
/// under them exposes a pipeline invariant violation.
#[derive(Debug, Clone, Default)]
pub struct RunOverrides {
    /// Force [`PipelineHooks::verify_each`] on every RUN.
    pub verify_each: bool,
    /// Force [`PipelineHooks::audit_spec`] on every RUN.
    pub audit_spec: bool,
    /// Route every RUN through a persistent compile cache
    /// (`spectest --cache-dir`): the cached-path parity harness — the
    /// whole golden suite must produce identical output with caching on,
    /// cold or warm.
    pub cache_dir: Option<std::path::PathBuf>,
}

/// Runs one golden test file from disk.
pub fn run_case(path: &Path) -> CaseOutcome {
    run_case_with(path, RunOverrides::default())
}

/// [`run_case`] with harness-wide hook overrides.
pub fn run_case_with(path: &Path, ov: RunOverrides) -> CaseOutcome {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return CaseOutcome::Fail(format!("cannot read {}: {e}", path.display())),
    };
    let mut case = match parse_spec(&text) {
        Ok(c) => c,
        Err(e) => return CaseOutcome::Fail(e),
    };
    for rs in &mut case.runs {
        rs.req.hooks.verify_each |= ov.verify_each;
        rs.req.hooks.audit_spec |= ov.audit_spec;
        if rs.req.cache_dir.is_none() {
            rs.req.cache_dir = ov.cache_dir.clone();
        }
    }
    if case.directives.is_empty() {
        return CaseOutcome::Fail("no CHECK directives".into());
    }
    match case_output(&case) {
        Ok(output) => match run_checks(&output, &case.directives) {
            Ok(()) => CaseOutcome::Pass,
            Err(f) => CaseOutcome::Fail(f.to_string()),
        },
        Err(e) => CaseOutcome::Fail(e),
    }
}

/// The concatenated output of every RUN line of a parsed case.
pub fn case_output(case: &SpecCase) -> Result<String, String> {
    let mut output = String::new();
    for (req, cmd) in case.runs.iter().zip(&case.run_lines) {
        output.push_str(
            &execute_run(&case.input, req).map_err(|e| format!("RUN `specc {cmd}`: {e}"))?,
        );
    }
    Ok(output)
}

/// Expands files and directories into a sorted list of `.spec` files.
pub fn discover(paths: &[PathBuf]) -> Result<Vec<PathBuf>, String> {
    let mut found = Vec::new();
    for p in paths {
        if p.is_dir() {
            let entries =
                std::fs::read_dir(p).map_err(|e| format!("cannot list {}: {e}", p.display()))?;
            for entry in entries {
                let path = entry.map_err(|e| e.to_string())?.path();
                if path.extension().is_some_and(|e| e == "spec") {
                    found.push(path);
                }
            }
        } else if p.is_file() {
            found.push(p.clone());
        } else {
            return Err(format!("no such file or directory: {}", p.display()));
        }
    }
    found.sort();
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CASE: &str = "\
; RUN: specc %s --spec heuristic --control static --dump-after=ssapre
; Pins PRE insertion on the cold arm (paper SS4, Appendix A).
func f(a: i64, b: i64, sel: i64) -> i64 {
  var x: i64
  var y: i64
entry:
  br sel, have, nothave
have:
  x = add a, b
  jmp merge
nothave:
  x = 0
  jmp merge
merge:
  y = add a, b
  x = add x, y
  ret x
}
; CHECK: dump-after ssapre: func f
; CHECK: nothave:
; CHECK-NEXT: x2 = 0
; CHECK-NEXT: pre0{{.*}} = add a0, b0
";

    #[test]
    fn end_to_end_case_passes() {
        let case = parse_spec(CASE).unwrap();
        assert_eq!(case.runs.len(), 1);
        let out = case_output(&case).unwrap();
        assert!(run_checks(&out, &case.directives).is_ok(), "{out}");
    }

    #[test]
    fn directive_typos_are_rejected() {
        let bad = CASE.replace("; CHECK: nothave:", "; CHECK-NXT: nothave:");
        let e = parse_spec(&bad).unwrap_err();
        assert!(e.contains("looks like a directive"), "{e}");
    }

    #[test]
    fn run_line_rejects_unsupported_flags() {
        assert!(parse_run_command("specc %s -o out.ir").is_err());
        assert!(parse_run_command("cc %s").is_err());
        assert!(parse_run_command("specc --spec none").is_err()); // no %s
                                                                  // --fault-policy only makes sense under --sim
        assert!(parse_run_command("specc %s --fault-policy always-miss").is_err());
    }

    #[test]
    fn run_line_parses_sim_and_fault_policies() {
        let rs =
            parse_run_command("specc %s --sim --fault-policy always-miss --fault-policy random:3")
                .unwrap();
        assert!(rs.sim);
        assert_eq!(rs.fault_policies, ["always-miss", "random:3"]);
        // --sim alone defaults to the deterministic policy
        let rs = parse_run_command("specc %s --sim").unwrap();
        assert_eq!(rs.fault_policies, ["default"]);
        // injection hooks ride on the request
        let rs = parse_run_command("specc %s --inject-spec-fail f").unwrap();
        assert_eq!(rs.req.hooks.inject_spec_fail.as_deref(), Some("f"));
    }

    #[test]
    fn run_line_parses_full_vocabulary() {
        let req = parse_run_command(
            "specc %s --entry f --args 1,2 --train-args 3 --spec profile --control profile \
             --no-sr --store-sinking --jobs 4 --dump-after=hssa,lower --stop-after ssapre",
        )
        .unwrap()
        .req;
        assert_eq!(req.entry, "f");
        assert_eq!(req.args, vec![Value::I(1), Value::I(2)]);
        assert_eq!(req.train_args, Some(vec![Value::I(3)]));
        assert!(!req.strength_reduction && req.store_sinking);
        assert_eq!(req.jobs, 4);
        assert!(req.hooks.dump_after.contains(Pass::Hssa));
        assert!(req.hooks.dump_after.contains(Pass::Lower));
        assert_eq!(req.hooks.stop_after, Some(Pass::Ssapre));
    }

    #[test]
    fn missing_run_is_an_error_and_missing_checks_fail_at_run_time() {
        assert!(parse_spec("func f() {\nentry:\n  ret\n}\n").is_err());
        // no checks: parses (so `spectest --dump` works on it) but has none
        let case = parse_spec("; RUN: specc %s\nfunc f() {\nentry:\n  ret\n}\n").unwrap();
        assert!(case.directives.is_empty());
    }
}
