//! `.spec` file parsing, in-process RUN execution and case discovery.

use crate::matcher::{run_checks, CheckKind, Directive};
use specframe::prelude::*;
use std::path::{Path, PathBuf};

/// One parsed RUN pipeline: a compile request plus the execution mode
/// riding on it (`--sim` with its fault policies).
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// The compile half of the RUN line.
    pub req: CompileRequest,
    /// Simulate on the EPIC machine and check the counter block instead
    /// of the optimized module text.
    pub sim: bool,
    /// ALAT fault policies for `--sim` (default: `default`).
    pub fault_policies: Vec<String>,
    /// Secret locations for taint-mode simulation (`--taint-secret`).
    pub taint_secret: Vec<String>,
    /// Run the post-compile leak-fencing contract check (set by
    /// [`RunOverrides::audit_leaks`], not parseable from a RUN line).
    pub leak_contract: bool,
    /// Emit the rendered machine lowering of the optimized module
    /// (`--emit mach`) instead of its IR text, so goldens can pin
    /// per-target check sequences (`chk.a` vs `chk.cmp` + recovery).
    pub emit_mach: bool,
}

/// One parsed golden test.
#[derive(Debug)]
pub struct SpecCase {
    /// The RUN pipelines, in file order (at least one).
    pub runs: Vec<RunSpec>,
    /// The raw RUN command strings (for reporting).
    pub run_lines: Vec<String>,
    /// The check directives, in file order.
    pub directives: Vec<Directive>,
    /// Harness-wide overrides this case must be *skipped* under
    /// (`; UNSUPPORTED: audit-spec`): a case whose pinned behavior
    /// contradicts an override by design — e.g. a deliberately leaky
    /// kernel, which the speculation auditor necessarily rejects — opts
    /// out instead of failing the overridden suite run.
    pub unsupported: Vec<String>,
    /// The IR program: the file with every `;` line removed.
    pub input: String,
}

/// Override names a `; UNSUPPORTED:` line may name.
const OVERRIDE_NAMES: [&str; 5] = [
    "verify-each",
    "audit-spec",
    "audit-leaks",
    "cache",
    "target",
];

/// Parses the text of a `.spec` file.
///
/// Lines whose first non-blank character is `;` are harness lines: either
/// a directive (`RUN:`, `CHECK:`, `CHECK-NEXT:`, `CHECK-NOT:`,
/// `CHECK-DAG:`, `UNSUPPORTED:` after the `;`) or a free-form comment.
/// An `UNSUPPORTED:` line names harness-wide overrides (whitespace
/// separated, from [`OVERRIDE_NAMES`]) the case must be skipped under. Everything else is
/// the IR program handed to the compiler (so `#` comments stay IR-side).
/// A `;` comment that *mentions* `CHECK` or `RUN:` but parses as neither
/// is rejected — it is almost certainly a typo that would silently turn a
/// directive into a comment.
pub fn parse_spec(text: &str) -> Result<SpecCase, String> {
    let mut runs = Vec::new();
    let mut run_lines = Vec::new();
    let mut directives = Vec::new();
    let mut unsupported = Vec::new();
    let mut input = String::new();

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let trimmed = line.trim_start();
        let Some(body) = trimmed.strip_prefix(';') else {
            input.push_str(line);
            input.push('\n');
            continue;
        };
        let body = body.trim_start();
        if let Some(cmd) = body.strip_prefix("RUN:") {
            let cmd = cmd.trim();
            runs.push(
                parse_run_command(cmd).map_err(|e| format!("line {lineno}: bad RUN line: {e}"))?,
            );
            run_lines.push(cmd.to_string());
            continue;
        }
        if let Some(rest) = body.strip_prefix("UNSUPPORTED:") {
            for tok in rest.split_whitespace() {
                if !OVERRIDE_NAMES.contains(&tok) {
                    return Err(format!(
                        "line {lineno}: UNSUPPORTED names unknown override `{tok}` \
                         (known: {})",
                        OVERRIDE_NAMES.join(", ")
                    ));
                }
                unsupported.push(tok.to_string());
            }
            continue;
        }
        let kinds = [
            ("CHECK-NEXT:", CheckKind::Next),
            ("CHECK-NOT:", CheckKind::Not),
            ("CHECK-DAG:", CheckKind::Dag),
            ("CHECK:", CheckKind::Check),
        ];
        if let Some((pat, kind)) = kinds
            .iter()
            .find_map(|(p, k)| body.strip_prefix(p).map(|rest| (rest.trim(), *k)))
        {
            directives.push(Directive::new(kind, pat, lineno)?);
            continue;
        }
        if body.contains("CHECK") || body.contains("RUN:") {
            return Err(format!(
                "line {lineno}: `{}` looks like a directive but is not one of \
                 RUN: / CHECK: / CHECK-NEXT: / CHECK-NOT: / CHECK-DAG:",
                body.trim_end()
            ));
        }
        // plain harness comment: dropped
    }

    if runs.is_empty() {
        return Err("no `; RUN:` line".into());
    }
    if directives.first().map(|d| d.kind) == Some(CheckKind::Next) {
        return Err(format!(
            "line {}: CHECK-NEXT cannot be the first directive",
            directives[0].line
        ));
    }
    Ok(SpecCase {
        runs,
        run_lines,
        directives,
        unsupported,
        input,
    })
}

/// Parses a value list of the `--args 0,100` form.
fn parse_values(s: &str) -> Result<Vec<Value>, String> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|t| {
            let t = t.trim();
            if t.contains('.') {
                t.parse::<f64>()
                    .map(Value::F)
                    .map_err(|e| format!("bad float `{t}`: {e}"))
            } else {
                t.parse::<i64>()
                    .map(Value::I)
                    .map_err(|e| format!("bad int `{t}`: {e}"))
            }
        })
        .collect()
}

/// Parses a `specc %s …` command into a [`RunSpec`].
///
/// The vocabulary is the subset of the real `specc` CLI that makes sense
/// in a hermetic run: `--entry`, `--args`, `--train-args`, `--spec`,
/// `--control`, `--target`, `--no-sr`, `--store-sinking`, `--jobs`,
/// `--fuel`, `--dump-after`, `--stop-after`, `--sim`, `--fault-policy`,
/// `--emit mach`, `--verify-each`, `--audit-spec`, `--audit-leaks`,
/// `--fence-leaks`, `--taint-secret`, `--inject-spec-fail`,
/// `--inject-fallback-fail`, `--inject-corrupt`. Anything else (e.g.
/// `-o`) is rejected so a `.spec` file cannot silently diverge from what
/// the harness actually executes.
pub fn parse_run_command(cmd: &str) -> Result<RunSpec, String> {
    let mut toks = cmd.split_whitespace();
    if toks.next() != Some("specc") {
        return Err("RUN command must start with `specc`".into());
    }
    let mut rs = RunSpec {
        req: CompileRequest::default(),
        sim: false,
        fault_policies: Vec::new(),
        taint_secret: Vec::new(),
        leak_contract: false,
        emit_mach: false,
    };
    let req = &mut rs.req;
    let mut taint_secret: Vec<String> = Vec::new();
    let mut saw_input = false;
    let next_val = |toks: &mut std::str::SplitWhitespace<'_>, flag: &str| {
        toks.next()
            .map(str::to_string)
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(t) = toks.next() {
        match t {
            "%s" => saw_input = true,
            "--entry" => req.entry = next_val(&mut toks, t)?,
            "--args" => req.args = parse_values(&next_val(&mut toks, t)?)?,
            "--train-args" => req.train_args = Some(parse_values(&next_val(&mut toks, t)?)?),
            "--spec" => req.spec = next_val(&mut toks, t)?,
            "--control" => req.control = next_val(&mut toks, t)?,
            "--target" => req.target = next_val(&mut toks, t)?,
            "--emit" => match next_val(&mut toks, t)?.as_str() {
                "mach" => rs.emit_mach = true,
                "ir" => {}
                other => return Err(format!("unsupported --emit `{other}` in a RUN line")),
            },
            "--no-sr" => req.strength_reduction = false,
            "--no-lftr" => req.lftr = false,
            "--store-sinking" => req.store_sinking = true,
            "--jobs" => {
                req.jobs = next_val(&mut toks, t)?
                    .parse()
                    .map_err(|e| format!("bad --jobs: {e}"))?
            }
            "--fuel" => {
                req.fuel = next_val(&mut toks, t)?
                    .parse()
                    .map_err(|e| format!("bad --fuel: {e}"))?
            }
            "--dump-after" => req.hooks.dump_after = PassSet::parse_list(&next_val(&mut toks, t)?)?,
            "--stop-after" => req.hooks.stop_after = Some(next_val(&mut toks, t)?.parse()?),
            "--sim" => rs.sim = true,
            "--fault-policy" => rs.fault_policies.push(next_val(&mut toks, t)?),
            "--inject-spec-fail" => req.hooks.inject_spec_fail = Some(next_val(&mut toks, t)?),
            "--inject-fallback-fail" => {
                req.hooks.inject_fallback_fail = Some(next_val(&mut toks, t)?)
            }
            "--inject-corrupt" => {
                req.hooks.inject_corrupt = Some(PipelineHooks::parse_inject_corrupt(&next_val(
                    &mut toks, t,
                )?)?)
            }
            "--verify-each" => req.hooks.verify_each = true,
            "--audit-spec" => req.hooks.audit_spec = true,
            "--audit-leaks" => req.hooks.audit_leaks = true,
            "--fence-leaks" => req.hooks.fence_leaks = true,
            "--taint-secret" => {
                taint_secret.extend(next_val(&mut toks, t)?.split(',').map(str::to_string))
            }
            other if other.starts_with("--target=") => {
                req.target = other["--target=".len()..].to_string()
            }
            other if other.starts_with("--taint-secret=") => taint_secret.extend(
                other["--taint-secret=".len()..]
                    .split(',')
                    .map(str::to_string),
            ),
            other if other.starts_with("--dump-after=") => {
                req.hooks.dump_after = PassSet::parse_list(&other["--dump-after=".len()..])?
            }
            other if other.starts_with("--stop-after=") => {
                req.hooks.stop_after = Some(other["--stop-after=".len()..].parse()?)
            }
            other if other.starts_with("--fault-policy=") => rs
                .fault_policies
                .push(other["--fault-policy=".len()..].to_string()),
            other => return Err(format!("unsupported RUN token `{other}`")),
        }
    }
    rs.taint_secret = taint_secret;
    if !saw_input {
        return Err("RUN command must reference the input as `%s`".into());
    }
    if !rs.fault_policies.is_empty() && !rs.sim {
        return Err("--fault-policy requires --sim".into());
    }
    if !rs.taint_secret.is_empty() && !rs.sim {
        return Err("--taint-secret requires --sim".into());
    }
    if rs.sim && rs.fault_policies.is_empty() {
        rs.fault_policies.push("default".into());
    }
    Ok(rs)
}

/// Executes one RUN pipeline over the case's IR and returns the text the
/// checks run against: degradation warnings first (as `; warning:` lines,
/// so goldens can pin recovery diagnostics), then the rendered pass dumps
/// when `--dump-after` was given, the `--sim` counter block per fault
/// policy when simulating, and the optimized module otherwise.
pub fn execute_run(input: &str, rs: &RunSpec) -> Result<String, String> {
    let req = &rs.req;
    let target = specframe::machine::TargetId::parse(&req.target)
        .ok_or_else(|| format!("unknown --target `{}` (expected epic|swr)", req.target))?;
    let out = compile(input, req).map_err(|e| e.to_string())?;
    if rs.leak_contract {
        check_leak_contract(&out.module, target, &req.entry, &req.args, req.fuel)?;
    }
    let mut text = String::new();
    for w in &out.report.warnings {
        text.push_str(&format!("; warning: {w}\n"));
    }
    if !req.hooks.dump_after.is_empty() {
        text.push_str(&render_dumps(&out.dumps));
    } else if rs.emit_mach {
        let prog = specframe::codegen::lower_module_for(&out.module, target.spec());
        text.push_str(&specframe::machine::render_mprogram(&prog));
    } else if rs.sim {
        let sim_opts = specframe::pipeline::SimOptions {
            taint_secret: rs.taint_secret.clone(),
            fence_leaks: req.hooks.fence_leaks,
            target,
        };
        for policy in &rs.fault_policies {
            let (_, sim) = specframe::pipeline::simulate_text_with(
                &out.module,
                &req.entry,
                &req.args,
                req.fuel,
                policy,
                &sim_opts,
            )
            .map_err(|e| e.to_string())?;
            text.push_str(&sim);
        }
    } else {
        text.push_str(&specframe::ir::display::print_module(&out.module));
    }
    Ok(text)
}

/// The `spectest --audit-leaks` contract over one compiled module: every
/// speculative-leak site in its lowering must be closable by the fencing
/// transform (re-audit clean), and — when the entry function exists —
/// fencing must not change the architectural result. Checked at machine
/// level so pinned golden output is untouched.
fn check_leak_contract(
    m: &specframe::ir::Module,
    target: specframe::machine::TargetId,
    entry: &str,
    args: &[Value],
    fuel: u64,
) -> Result<(), String> {
    use specframe::machine::{leak_audit_program, run_machine_on};
    let plain = specframe::codegen::lower_module_for(m, target.spec());
    let sites = specframe::machine::leak_audit_program(&plain);
    if sites.is_empty() {
        return Ok(());
    }
    let (fenced, fences) = specframe::codegen::lower_module_fenced_for(m, target.spec());
    let still = leak_audit_program(&fenced);
    if !still.is_empty() {
        return Err(format!(
            "leak contract: {} of {} flagged sites survive fencing ({} fences inserted); first: {}",
            still.len(),
            sites.len(),
            fences,
            still[0]
        ));
    }
    if m.func_by_name(entry).is_some() {
        let want = run_machine_on(&plain, target.spec(), entry, args, fuel)
            .map_err(|e| format!("leak contract: unfenced run failed: {e}"))?
            .0;
        let got = run_machine_on(&fenced, target.spec(), entry, args, fuel)
            .map_err(|e| format!("leak contract: fenced run failed: {e}"))?
            .0;
        if got != want {
            return Err(format!(
                "leak contract: fencing changed the architectural result: {want:?} -> {got:?}"
            ));
        }
    }
    Ok(())
}

/// The verdict on one `.spec` file.
#[derive(Debug)]
pub enum CaseOutcome {
    /// Every directive matched.
    Pass,
    /// The case declared an active override `; UNSUPPORTED:`; the string
    /// names the override.
    Skip(String),
    /// Parse, compile or match failure; the string is the full report.
    Fail(String),
}

/// Harness-wide hook overrides (`spectest --verify-each` /
/// `--audit-spec`): applied on top of every RUN line, so the entire
/// golden suite can be re-run with pass-boundary verification and the
/// speculation-safety auditor enabled — any golden whose output changes
/// under them exposes a pipeline invariant violation.
#[derive(Debug, Clone, Default)]
pub struct RunOverrides {
    /// Force [`PipelineHooks::verify_each`] on every RUN.
    pub verify_each: bool,
    /// Force [`PipelineHooks::audit_spec`] on every RUN.
    pub audit_spec: bool,
    /// Run the speculative-leak fencing contract over every RUN's compiled
    /// module (`spectest --audit-leaks`): the output lowering is
    /// leak-audited, flagged sites are fenced, and the case fails if the
    /// re-audit is not clean or fencing changed the architectural result.
    /// A *post-compile* check on purpose — setting the pipeline's
    /// `audit_leaks`/`fence_leaks` hooks instead would add warning lines
    /// and degradations to pinned golden output wherever the optimizer
    /// legitimately speculates.
    pub audit_leaks: bool,
    /// Route every RUN through a persistent compile cache
    /// (`spectest --cache-dir`): the cached-path parity harness — the
    /// whole golden suite must produce identical output with caching on,
    /// cold or warm.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Inject storage faults into the compile cache
    /// (`spectest --cache-fault-policy`, requires `--cache-dir`): the
    /// fault-tolerance parity harness — retries and breaker trips may
    /// happen underneath, but the golden output must not move a byte.
    pub cache_fault_policy: Option<String>,
    /// Force every RUN onto this execution target (`spectest --target`):
    /// the whole golden suite is re-lowered and re-simulated for another
    /// backend. Cases that pin target-specific output (counter blocks,
    /// machine text, `--explain-spec` verdicts) declare
    /// `; UNSUPPORTED: target` and are counted as skipped.
    pub target: Option<String>,
}

/// Runs one golden test file from disk.
pub fn run_case(path: &Path) -> CaseOutcome {
    run_case_with(path, RunOverrides::default())
}

/// [`run_case`] with harness-wide hook overrides.
pub fn run_case_with(path: &Path, ov: RunOverrides) -> CaseOutcome {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return CaseOutcome::Fail(format!("cannot read {}: {e}", path.display())),
    };
    let mut case = match parse_spec(&text) {
        Ok(c) => c,
        Err(e) => return CaseOutcome::Fail(e),
    };
    let active = [
        ("verify-each", ov.verify_each),
        ("audit-spec", ov.audit_spec),
        ("audit-leaks", ov.audit_leaks),
        ("cache", ov.cache_dir.is_some()),
        ("target", ov.target.is_some()),
    ];
    for (name, on) in active {
        if on && case.unsupported.iter().any(|u| u == name) {
            return CaseOutcome::Skip(name.to_string());
        }
    }
    for rs in &mut case.runs {
        rs.req.hooks.verify_each |= ov.verify_each;
        rs.req.hooks.audit_spec |= ov.audit_spec;
        rs.leak_contract |= ov.audit_leaks;
        if rs.req.cache_dir.is_none() {
            rs.req.cache_dir = ov.cache_dir.clone();
        }
        if rs.req.cache_fault_policy.is_none() {
            rs.req.cache_fault_policy = ov.cache_fault_policy.clone();
        }
        if let Some(t) = &ov.target {
            rs.req.target = t.clone();
        }
    }
    if case.directives.is_empty() {
        return CaseOutcome::Fail("no CHECK directives".into());
    }
    match case_output(&case) {
        Ok(output) => match run_checks(&output, &case.directives) {
            Ok(()) => CaseOutcome::Pass,
            Err(f) => CaseOutcome::Fail(f.to_string()),
        },
        Err(e) => CaseOutcome::Fail(e),
    }
}

/// The concatenated output of every RUN line of a parsed case.
pub fn case_output(case: &SpecCase) -> Result<String, String> {
    let mut output = String::new();
    for (req, cmd) in case.runs.iter().zip(&case.run_lines) {
        output.push_str(
            &execute_run(&case.input, req).map_err(|e| format!("RUN `specc {cmd}`: {e}"))?,
        );
    }
    Ok(output)
}

/// Expands files and directories into a sorted list of `.spec` files.
pub fn discover(paths: &[PathBuf]) -> Result<Vec<PathBuf>, String> {
    let mut found = Vec::new();
    for p in paths {
        if p.is_dir() {
            let entries =
                std::fs::read_dir(p).map_err(|e| format!("cannot list {}: {e}", p.display()))?;
            for entry in entries {
                let path = entry.map_err(|e| e.to_string())?.path();
                if path.extension().is_some_and(|e| e == "spec") {
                    found.push(path);
                }
            }
        } else if p.is_file() {
            found.push(p.clone());
        } else {
            return Err(format!("no such file or directory: {}", p.display()));
        }
    }
    found.sort();
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CASE: &str = "\
; RUN: specc %s --spec heuristic --control static --dump-after=ssapre
; Pins PRE insertion on the cold arm (paper SS4, Appendix A).
func f(a: i64, b: i64, sel: i64) -> i64 {
  var x: i64
  var y: i64
entry:
  br sel, have, nothave
have:
  x = add a, b
  jmp merge
nothave:
  x = 0
  jmp merge
merge:
  y = add a, b
  x = add x, y
  ret x
}
; CHECK: dump-after ssapre: func f
; CHECK: nothave:
; CHECK-NEXT: x2 = 0
; CHECK-NEXT: pre0{{.*}} = add a0, b0
";

    #[test]
    fn end_to_end_case_passes() {
        let case = parse_spec(CASE).unwrap();
        assert_eq!(case.runs.len(), 1);
        let out = case_output(&case).unwrap();
        assert!(run_checks(&out, &case.directives).is_ok(), "{out}");
    }

    #[test]
    fn directive_typos_are_rejected() {
        let bad = CASE.replace("; CHECK: nothave:", "; CHECK-NXT: nothave:");
        let e = parse_spec(&bad).unwrap_err();
        assert!(e.contains("looks like a directive"), "{e}");
    }

    #[test]
    fn run_line_rejects_unsupported_flags() {
        assert!(parse_run_command("specc %s -o out.ir").is_err());
        assert!(parse_run_command("cc %s").is_err());
        assert!(parse_run_command("specc --spec none").is_err()); // no %s
                                                                  // --fault-policy only makes sense under --sim
        assert!(parse_run_command("specc %s --fault-policy always-miss").is_err());
    }

    #[test]
    fn run_line_parses_sim_and_fault_policies() {
        let rs =
            parse_run_command("specc %s --sim --fault-policy always-miss --fault-policy random:3")
                .unwrap();
        assert!(rs.sim);
        assert_eq!(rs.fault_policies, ["always-miss", "random:3"]);
        // --sim alone defaults to the deterministic policy
        let rs = parse_run_command("specc %s --sim").unwrap();
        assert_eq!(rs.fault_policies, ["default"]);
        // injection hooks ride on the request
        let rs = parse_run_command("specc %s --inject-spec-fail f").unwrap();
        assert_eq!(rs.req.hooks.inject_spec_fail.as_deref(), Some("f"));
    }

    #[test]
    fn run_line_parses_full_vocabulary() {
        let req = parse_run_command(
            "specc %s --entry f --args 1,2 --train-args 3 --spec profile --control profile \
             --target swr --no-sr --store-sinking --jobs 4 --dump-after=hssa,lower \
             --stop-after ssapre",
        )
        .unwrap()
        .req;
        assert_eq!(req.entry, "f");
        assert_eq!(req.target, "swr");
        assert_eq!(req.args, vec![Value::I(1), Value::I(2)]);
        assert_eq!(req.train_args, Some(vec![Value::I(3)]));
        assert!(!req.strength_reduction && req.store_sinking);
        assert_eq!(req.jobs, 4);
        assert!(req.hooks.dump_after.contains(Pass::Hssa));
        assert!(req.hooks.dump_after.contains(Pass::Lower));
        assert_eq!(req.hooks.stop_after, Some(Pass::Ssapre));
    }

    #[test]
    fn run_line_parses_target_and_emit_mach() {
        let rs = parse_run_command("specc %s --target=swr --emit mach").unwrap();
        assert_eq!(rs.req.target, "swr");
        assert!(rs.emit_mach);
        // `--emit ir` is the default output and parses as a no-op
        let rs = parse_run_command("specc %s --emit ir").unwrap();
        assert!(!rs.emit_mach);
        assert!(parse_run_command("specc %s --emit hssa").is_err());
        // a bogus target is rejected at execution time, not parse time
        let rs = parse_run_command("specc %s --target vliw").unwrap();
        let e = execute_run("func f() -> i64 {\nentry:\n  ret 0\n}\n", &rs).unwrap_err();
        assert!(e.contains("unknown --target"), "{e}");
    }

    #[test]
    fn target_override_forces_every_run_and_honors_unsupported() {
        let dir = std::env::temp_dir().join(format!("spectest-target-ov-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let case = dir.join("case.spec");
        std::fs::write(
            &case,
            "; RUN: specc %s\n; CHECK: func f\nfunc f() -> i64 {\nentry:\n  ret 0\n}\n",
        )
        .unwrap();
        let ov = RunOverrides {
            target: Some("swr".into()),
            ..RunOverrides::default()
        };
        assert!(matches!(
            run_case_with(&case, ov.clone()),
            CaseOutcome::Pass
        ));
        // an epic-pinned case opts out of the override
        let pinned = dir.join("pinned.spec");
        std::fs::write(
            &pinned,
            "; UNSUPPORTED: target\n; RUN: specc %s\n; CHECK: func f\n\
             func f() -> i64 {\nentry:\n  ret 0\n}\n",
        )
        .unwrap();
        assert!(matches!(run_case_with(&pinned, ov), CaseOutcome::Skip(s) if s == "target"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unsupported_skips_named_overrides_only() {
        let text = "; UNSUPPORTED: audit-spec\n; RUN: specc %s\n; CHECK: func f\nfunc f() -> i64 {\nentry:\n  ret 0\n}\n";
        let case = parse_spec(text).unwrap();
        assert_eq!(case.unsupported, ["audit-spec"]);
        // unknown override names are a parse error, not a silent comment
        let bad = text.replace("audit-spec", "audit-specs");
        assert!(parse_spec(&bad).unwrap_err().contains("unknown override"));
    }

    #[test]
    fn missing_run_is_an_error_and_missing_checks_fail_at_run_time() {
        assert!(parse_spec("func f() {\nentry:\n  ret\n}\n").is_err());
        // no checks: parses (so `spectest --dump` works on it) but has none
        let case = parse_spec("; RUN: specc %s\nfunc f() {\nentry:\n  ret\n}\n").unwrap();
        assert!(case.directives.is_empty());
    }
}
