//! The FileCheck-lite matching engine.
//!
//! Works on plain text, knows nothing about IR or RUN lines: directives
//! in, verdict out. Both the pattern and the subject line are normalized
//! before comparison — leading/trailing blanks dropped, interior runs of
//! blanks collapsed to one space — so golden tests do not break on
//! indentation changes. `{{…}}` in a pattern is a wildcard for any
//! (possibly empty) run of characters; everything else is literal.

use std::fmt;

/// The four directive flavors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckKind {
    /// `CHECK:` — match at or after the current position.
    Check,
    /// `CHECK-NEXT:` — match exactly the line after the previous match.
    Next,
    /// `CHECK-NOT:` — must not match before the next positive match.
    Not,
    /// `CHECK-DAG:` — consecutive group matches in any order.
    Dag,
}

impl CheckKind {
    /// The directive spelling (without the trailing colon).
    pub fn name(self) -> &'static str {
        match self {
            CheckKind::Check => "CHECK",
            CheckKind::Next => "CHECK-NEXT",
            CheckKind::Not => "CHECK-NOT",
            CheckKind::Dag => "CHECK-DAG",
        }
    }
}

/// One parsed check directive.
#[derive(Debug, Clone)]
pub struct Directive {
    /// Directive flavor.
    pub kind: CheckKind,
    /// The raw pattern text (unnormalized, as written).
    pub pattern: String,
    /// 1-based line in the `.spec` file, for error reporting.
    pub line: usize,
    /// Literal segments separated by `{{…}}` wildcards.
    segments: Vec<String>,
}

impl Directive {
    /// Parses the pattern, rejecting an unterminated `{{`.
    pub fn new(kind: CheckKind, pattern: &str, line: usize) -> Result<Directive, String> {
        let mut segments = Vec::new();
        let norm = normalize(pattern);
        let mut rest: &str = &norm;
        loop {
            match rest.find("{{") {
                None => {
                    segments.push(rest.to_string());
                    break;
                }
                Some(i) => {
                    segments.push(rest[..i].to_string());
                    let after = &rest[i + 2..];
                    match after.find("}}") {
                        None => {
                            return Err(format!(
                                "line {line}: unterminated `{{{{` in {} pattern `{pattern}`",
                                kind.name()
                            ))
                        }
                        Some(j) => rest = &after[j + 2..],
                    }
                }
            }
        }
        if segments.iter().all(|s| s.is_empty()) {
            return Err(format!(
                "line {line}: empty {} pattern matches everything",
                kind.name()
            ));
        }
        Ok(Directive {
            kind,
            pattern: pattern.to_string(),
            line,
            segments,
        })
    }

    /// Whether the (already normalized) line matches this pattern: the
    /// literal segments must appear in order, with anything in between.
    fn matches(&self, line: &str) -> bool {
        let mut pos = 0;
        for seg in &self.segments {
            if seg.is_empty() {
                continue;
            }
            match line[pos..].find(seg.as_str()) {
                Some(k) => pos += k + seg.len(),
                None => return false,
            }
        }
        true
    }
}

/// Collapses every run of blanks to one space and trims the ends.
pub fn normalize(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// A check failure: which directive, why, and the output region searched.
#[derive(Debug, Clone)]
pub struct MatchFailure {
    /// Spec-file line of the failing directive.
    pub line: usize,
    /// Flavor of the failing directive.
    pub kind: CheckKind,
    /// Its pattern, as written.
    pub pattern: String,
    /// What went wrong.
    pub reason: String,
    /// The searched region of the output, pre-rendered with line numbers.
    pub context: String,
}

impl fmt::Display for MatchFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} on line {}: `{}`\n  {}",
            self.kind.name(),
            self.line,
            self.pattern,
            self.reason
        )?;
        write!(f, "{}", self.context)
    }
}

/// Renders output lines `[from, to)` with 1-based line numbers, capped.
fn context(raw: &[&str], from: usize, to: usize) -> String {
    const MAX: usize = 16;
    let to = to.min(raw.len());
    let mut out = String::new();
    if from >= to {
        out.push_str("  (searched region is empty)\n");
        return out;
    }
    out.push_str(&format!("  searched output lines {}..{}:\n", from + 1, to));
    for (i, l) in raw[from..to].iter().enumerate().take(MAX) {
        out.push_str(&format!("  {:>4} | {}\n", from + i + 1, l));
    }
    if to - from > MAX {
        out.push_str(&format!("  ... ({} more lines)\n", to - from - MAX));
    }
    out
}

/// Runs a directive sequence against `output`. Returns the first failure.
pub fn run_checks(output: &str, directives: &[Directive]) -> Result<(), MatchFailure> {
    let raw: Vec<&str> = output.lines().collect();
    let lines: Vec<String> = raw.iter().map(|l| normalize(l)).collect();
    let n = lines.len();

    let fail = |d: &Directive, reason: String, from: usize, to: usize| MatchFailure {
        line: d.line,
        kind: d.kind,
        pattern: d.pattern.clone(),
        reason,
        context: context(&raw, from, to),
    };

    // `cursor` is the first output line still eligible; `last` the line of
    // the previous positive match (for CHECK-NEXT).
    let mut cursor = 0usize;
    let mut last: Option<usize> = None;
    let mut nots: Vec<&Directive> = Vec::new();

    // each buffered CHECK-NOT must miss every line of [from, to) that is
    // not consumed by a positive match
    let check_nots = |nots: &[&Directive], from: usize, to: usize, taken: &[usize]| {
        for d in nots {
            for (j, line) in lines.iter().enumerate().take(to.min(n)).skip(from) {
                if !taken.contains(&j) && d.matches(line) {
                    return Err(fail(
                        d,
                        format!("forbidden pattern matched output line {}", j + 1),
                        j,
                        j + 1,
                    ));
                }
            }
        }
        Ok(())
    };

    let mut i = 0;
    while i < directives.len() {
        let d = &directives[i];
        match d.kind {
            CheckKind::Not => {
                nots.push(d);
                i += 1;
            }
            CheckKind::Check => {
                let found = (cursor..n).find(|&j| d.matches(&lines[j]));
                let Some(j) = found else {
                    return Err(fail(d, "no matching line found".into(), cursor, n));
                };
                check_nots(&nots, cursor, j, &[])?;
                nots.clear();
                last = Some(j);
                cursor = j + 1;
                i += 1;
            }
            CheckKind::Next => {
                if !nots.is_empty() {
                    return Err(fail(
                        d,
                        "CHECK-NOT directly before CHECK-NEXT is not supported".into(),
                        cursor,
                        cursor,
                    ));
                }
                let Some(prev) = last else {
                    return Err(fail(
                        d,
                        "CHECK-NEXT needs a previous positive match".into(),
                        0,
                        0,
                    ));
                };
                let j = prev + 1;
                if j >= n {
                    return Err(fail(d, "output ended before the next line".into(), prev, n));
                }
                if !d.matches(&lines[j]) {
                    return Err(fail(
                        d,
                        format!("next line (output line {}) does not match", j + 1),
                        j,
                        j + 1,
                    ));
                }
                last = Some(j);
                cursor = j + 1;
                i += 1;
            }
            CheckKind::Dag => {
                let group_end = (i..directives.len())
                    .take_while(|&k| directives[k].kind == CheckKind::Dag)
                    .last()
                    .unwrap()
                    + 1;
                let start = cursor;
                let mut taken: Vec<usize> = Vec::new();
                for d in &directives[i..group_end] {
                    let found = (start..n).find(|&j| !taken.contains(&j) && d.matches(&lines[j]));
                    let Some(j) = found else {
                        return Err(fail(
                            d,
                            "no matching line found for CHECK-DAG group member".into(),
                            start,
                            n,
                        ));
                    };
                    taken.push(j);
                }
                let maxj = *taken.iter().max().unwrap();
                check_nots(&nots, start, maxj, &taken)?;
                nots.clear();
                last = Some(maxj);
                cursor = maxj + 1;
                i = group_end;
            }
        }
    }
    check_nots(&nots, cursor, n, &[])?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(kind: CheckKind, pat: &str, line: usize) -> Directive {
        Directive::new(kind, pat, line).unwrap()
    }

    #[test]
    fn plain_check_scans_forward_in_order() {
        let out = "alpha\nbeta\ngamma\n";
        let ds = [
            d(CheckKind::Check, "alpha", 1),
            d(CheckKind::Check, "gamma", 2),
        ];
        assert!(run_checks(out, &ds).is_ok());
        let ds = [
            d(CheckKind::Check, "gamma", 1),
            d(CheckKind::Check, "alpha", 2),
        ];
        let e = run_checks(out, &ds).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn whitespace_is_normalized_both_sides() {
        let ds = [d(CheckKind::Check, "x   =  add a,   b", 1)];
        assert!(run_checks("   x = add   a, b  \n", &ds).is_ok());
    }

    #[test]
    fn wildcards_match_any_run() {
        let ds = [d(CheckKind::Check, "pre{{.*}} = add a0, b0", 1)];
        assert!(run_checks("pre01 = add a0, b0", &ds).is_ok());
        assert!(run_checks("pre01 = add a0, c0", &ds).is_err());
        // wildcard may be empty
        let ds = [d(CheckKind::Check, "a{{x}}b", 1)];
        assert!(run_checks("ab", &ds).is_ok());
    }

    #[test]
    fn unterminated_wildcard_is_a_parse_error() {
        assert!(Directive::new(CheckKind::Check, "oops {{", 3).is_err());
        assert!(Directive::new(CheckKind::Check, "", 3).is_err());
    }

    #[test]
    fn check_next_requires_adjacency() {
        let out = "one\ntwo\nthree\n";
        let ds = [d(CheckKind::Check, "one", 1), d(CheckKind::Next, "two", 2)];
        assert!(run_checks(out, &ds).is_ok());
        let ds = [
            d(CheckKind::Check, "one", 1),
            d(CheckKind::Next, "three", 2),
        ];
        let e = run_checks(out, &ds).unwrap_err();
        assert!(e.reason.contains("does not match"), "{e}");
    }

    #[test]
    fn check_not_guards_region_between_matches() {
        let out = "alpha\nbad\nbeta\n";
        let ds = [
            d(CheckKind::Check, "alpha", 1),
            d(CheckKind::Not, "bad", 2),
            d(CheckKind::Check, "beta", 3),
        ];
        assert!(run_checks(out, &ds).is_err());
        let out = "alpha\nbeta\nbad\n";
        // `bad` is after the closing match: region check passes
        assert!(run_checks(out, &ds).is_ok());
    }

    #[test]
    fn trailing_check_not_covers_rest_of_output() {
        let out = "a\nbad\n";
        let ds = [d(CheckKind::Check, "a", 1), d(CheckKind::Not, "bad", 2)];
        assert!(run_checks(out, &ds).is_err());
    }

    #[test]
    fn check_dag_matches_any_order() {
        let out = "head\ny = 2\nx = 1\ntail\n";
        let ds = [
            d(CheckKind::Check, "head", 1),
            d(CheckKind::Dag, "x = 1", 2),
            d(CheckKind::Dag, "y = 2", 3),
            d(CheckKind::Check, "tail", 4),
        ];
        assert!(run_checks(out, &ds).is_ok());
        // one member missing → the group fails
        let ds = [d(CheckKind::Dag, "x = 1", 1), d(CheckKind::Dag, "z = 9", 2)];
        assert!(run_checks(out, &ds).is_err());
    }

    #[test]
    fn dag_members_consume_distinct_lines() {
        let out = "x = 1\n";
        let ds = [d(CheckKind::Dag, "x = 1", 1), d(CheckKind::Dag, "x = 1", 2)];
        assert!(run_checks(out, &ds).is_err());
    }

    #[test]
    fn failure_context_names_lines() {
        let out = "one\ntwo\n";
        let ds = [d(CheckKind::Check, "missing", 7)];
        let e = run_checks(out, &ds).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("line 7"), "{msg}");
        assert!(msg.contains("missing"), "{msg}");
        assert!(msg.contains("1 | one"), "{msg}");
    }
}
