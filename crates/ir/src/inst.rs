//! Operands, instructions and terminators.

use crate::ids::{AllocSiteId, BlockId, CallSiteId, FuncId, GlobalId, MemSiteId, SlotId, VarId};
use crate::types::Ty;
use core::fmt;

/// A scalar operand of an instruction.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Operand {
    /// A virtual register.
    Var(VarId),
    /// An integer (or pointer) immediate.
    ConstI(i64),
    /// A floating-point immediate.
    ConstF(f64),
    /// The word address of a global — the IR analogue of `&g`.
    GlobalAddr(GlobalId),
    /// The word address of a stack slot — the IR analogue of `&local`.
    SlotAddr(SlotId),
}

impl Operand {
    /// The register this operand reads, if any.
    #[inline]
    pub fn as_var(self) -> Option<VarId> {
        match self {
            Operand::Var(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the operand is a compile-time constant (immediates and
    /// link-time-constant addresses).
    #[inline]
    pub fn is_const(self) -> bool {
        !matches!(self, Operand::Var(_))
    }
}

impl From<VarId> for Operand {
    fn from(v: VarId) -> Self {
        Operand::Var(v)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::ConstI(v)
    }
}

impl From<f64> for Operand {
    fn from(v: f64) -> Self {
        Operand::ConstF(v)
    }
}

/// Binary operators. Comparison operators yield `0`/`1` as `i64`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    // integer / pointer arithmetic
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    // integer comparisons
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    // floating point arithmetic
    FAdd,
    FSub,
    FMul,
    FDiv,
    // floating point comparisons
    FEq,
    FNe,
    FLt,
    FLe,
    FGt,
    FGe,
}

impl BinOp {
    /// The result type of the operator.
    pub fn result_ty(self) -> Ty {
        use BinOp::*;
        match self {
            FAdd | FSub | FMul | FDiv => Ty::F64,
            _ => Ty::I64,
        }
    }

    /// Whether the operator reads floating-point operands.
    pub fn takes_float(self) -> bool {
        use BinOp::*;
        matches!(
            self,
            FAdd | FSub | FMul | FDiv | FEq | FNe | FLt | FLe | FGt | FGe
        )
    }

    /// Whether the operator commutes (used to canonicalize lexical
    /// expression keys in SSAPRE).
    pub fn is_commutative(self) -> bool {
        use BinOp::*;
        matches!(
            self,
            Add | Mul | And | Or | Xor | Eq | Ne | FAdd | FMul | FEq | FNe
        )
    }

    /// Textual mnemonic (also the parser keyword).
    pub fn mnemonic(self) -> &'static str {
        use BinOp::*;
        match self {
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Div => "div",
            Mod => "mod",
            And => "and",
            Or => "or",
            Xor => "xor",
            Shl => "shl",
            Shr => "shr",
            Eq => "eq",
            Ne => "ne",
            Lt => "lt",
            Le => "le",
            Gt => "gt",
            Ge => "ge",
            FAdd => "fadd",
            FSub => "fsub",
            FMul => "fmul",
            FDiv => "fdiv",
            FEq => "feq",
            FNe => "fne",
            FLt => "flt",
            FLe => "fle",
            FGt => "fgt",
            FGe => "fge",
        }
    }

    /// All operators, in mnemonic order (used by the parser and proptest).
    pub const ALL: [BinOp; 26] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Mod,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
        BinOp::FAdd,
        BinOp::FSub,
        BinOp::FMul,
        BinOp::FDiv,
        BinOp::FEq,
        BinOp::FNe,
        BinOp::FLt,
        BinOp::FLe,
        BinOp::FGt,
        BinOp::FGe,
    ];
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Integer negation.
    Neg,
    /// Bitwise complement.
    Not,
    /// Floating-point negation.
    FNeg,
    /// Integer to double conversion.
    I2F,
    /// Double to integer conversion (truncating).
    F2I,
}

impl UnOp {
    /// The result type of the operator.
    pub fn result_ty(self) -> Ty {
        match self {
            UnOp::FNeg | UnOp::I2F => Ty::F64,
            _ => Ty::I64,
        }
    }

    /// Textual mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::FNeg => "fneg",
            UnOp::I2F => "i2f",
            UnOp::F2I => "f2i",
        }
    }

    /// All operators.
    pub const ALL: [UnOp; 5] = [UnOp::Neg, UnOp::Not, UnOp::FNeg, UnOp::I2F, UnOp::F2I];
}

/// Speculation attribute on a [`Inst::Load`].
///
/// These correspond to the IA-64 load flavours the paper's CodeMotion step
/// emits (§4.4, Appendix B):
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum LoadSpec {
    /// Plain `ld`.
    #[default]
    Normal,
    /// `ld.a` — advanced load. Performs the load *and* allocates an ALAT
    /// entry keyed by the destination register, so a later [`Inst::CheckLoad`]
    /// with [`CheckKind::Alat`] on the same register can detect intervening
    /// aliasing stores.
    Advanced,
    /// `ld.s` — control-speculative load. Hoisted above a branch; a fault is
    /// deferred into a NaT token checked by [`CheckKind::Nat`].
    Speculative,
}

impl LoadSpec {
    /// Parser/printer suffix (`load`, `load.a`, `load.s`).
    pub fn suffix(self) -> &'static str {
        match self {
            LoadSpec::Normal => "",
            LoadSpec::Advanced => ".a",
            LoadSpec::Speculative => ".s",
        }
    }
}

/// What an [`Inst::CheckLoad`] checks.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CheckKind {
    /// `ld.c` — ALAT check load: if the ALAT entry installed by the `ld.a`
    /// into the same destination register is still valid, the instruction
    /// costs 0 cycles and the register keeps its value; otherwise the load
    /// re-executes (paying full load latency plus a recovery penalty).
    Alat,
    /// `chk.s`-with-inline-recovery — NaT check: if the register holds NaT
    /// (the earlier `ld.s` faulted or was invalidated), re-execute the load;
    /// otherwise free.
    Nat,
}

impl CheckKind {
    /// Parser/printer keyword.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CheckKind::Alat => "ldc",
            CheckKind::Nat => "chks",
        }
    }
}

/// A non-terminator instruction.
///
/// Memory addressing is always `base + offset` where `offset` is a constant
/// word count — the addressing mode of the EPIC target. `site` fields give
/// each memory reference, call and allocation a module-wide stable identity
/// for the alias profiler.
#[derive(Clone, PartialEq, Debug)]
pub enum Inst {
    /// `dst = op a, b`
    Bin {
        dst: VarId,
        op: BinOp,
        a: Operand,
        b: Operand,
    },
    /// `dst = op a`
    Un { dst: VarId, op: UnOp, a: Operand },
    /// `dst = src`
    Copy { dst: VarId, src: Operand },
    /// `dst = load.ty [base + offset]`
    Load {
        dst: VarId,
        base: Operand,
        offset: i64,
        ty: Ty,
        spec: LoadSpec,
        site: MemSiteId,
    },
    /// `store.ty [base + offset], val`
    Store {
        base: Operand,
        offset: i64,
        val: Operand,
        ty: Ty,
        site: MemSiteId,
    },
    /// `dst = ldc.ty [base + offset]` or `dst = chks.ty [base + offset]`.
    ///
    /// The data-speculation check the paper's CodeMotion step generates. Its
    /// *semantics* are always "dst holds the current value of the memory
    /// cell" — re-loading unconditionally is a correct implementation, which
    /// is exactly what the reference interpreter does. The machine simulator
    /// models the fast path (0 cycles when the speculation held).
    CheckLoad {
        dst: VarId,
        base: Operand,
        offset: i64,
        ty: Ty,
        kind: CheckKind,
        site: MemSiteId,
    },
    /// `dst = call f(args...)` / `call f(args...)`
    Call {
        dst: Option<VarId>,
        callee: FuncId,
        args: Vec<Operand>,
        site: CallSiteId,
    },
    /// `dst = alloc words` — heap allocation; the returned object is named
    /// after `site` in alias profiles (allocation-site heap naming, §3.2.1).
    Alloc {
        dst: VarId,
        words: Operand,
        site: AllocSiteId,
    },
}

impl Inst {
    /// The register defined by this instruction, if any.
    pub fn def(&self) -> Option<VarId> {
        match self {
            Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Copy { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::CheckLoad { dst, .. }
            | Inst::Alloc { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            Inst::Store { .. } => None,
        }
    }

    /// Collects every operand read by this instruction.
    pub fn uses(&self) -> Vec<Operand> {
        match self {
            Inst::Bin { a, b, .. } => vec![*a, *b],
            Inst::Un { a, .. } => vec![*a],
            Inst::Copy { src, .. } => vec![*src],
            Inst::Load { base, .. } | Inst::CheckLoad { base, .. } => vec![*base],
            Inst::Store { base, val, .. } => vec![*base, *val],
            Inst::Call { args, .. } => args.clone(),
            Inst::Alloc { words, .. } => vec![*words],
        }
    }

    /// Applies `f` to every operand in place.
    pub fn map_uses(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            Inst::Bin { a, b, .. } => {
                f(a);
                f(b);
            }
            Inst::Un { a, .. } => f(a),
            Inst::Copy { src, .. } => f(src),
            Inst::Load { base, .. } | Inst::CheckLoad { base, .. } => f(base),
            Inst::Store { base, val, .. } => {
                f(base);
                f(val);
            }
            Inst::Call { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Inst::Alloc { words, .. } => f(words),
        }
    }

    /// Whether this instruction touches memory (used by scheduling and by
    /// the verifier's site-uniqueness pass).
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. } | Inst::Store { .. } | Inst::CheckLoad { .. }
        )
    }
}

/// A block terminator.
#[derive(Clone, PartialEq, Debug)]
pub enum Terminator {
    /// `jmp target`
    Jump(BlockId),
    /// `br cond, then_, else_` — taken when `cond != 0`.
    Br {
        cond: Operand,
        then_: BlockId,
        else_: BlockId,
    },
    /// `ret` / `ret value`
    Ret(Option<Operand>),
}

impl Terminator {
    /// Successor blocks in order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(t) => vec![*t],
            Terminator::Br { then_, else_, .. } => vec![*then_, *else_],
            Terminator::Ret(_) => vec![],
        }
    }

    /// Applies `f` to every successor label in place (used by edge
    /// splitting and block cloning).
    pub fn map_successors(&mut self, mut f: impl FnMut(&mut BlockId)) {
        match self {
            Terminator::Jump(t) => f(t),
            Terminator::Br { then_, else_, .. } => {
                f(then_);
                f(else_);
            }
            Terminator::Ret(_) => {}
        }
    }

    /// Operands read by the terminator.
    pub fn uses(&self) -> Vec<Operand> {
        match self {
            Terminator::Br { cond, .. } => vec![*cond],
            Terminator::Ret(Some(v)) => vec![*v],
            _ => vec![],
        }
    }

    /// Applies `f` to every operand in place.
    pub fn map_uses(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            Terminator::Br { cond, .. } => f(cond),
            Terminator::Ret(Some(v)) => f(v),
            _ => {}
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_and_uses() {
        let i = Inst::Bin {
            dst: VarId(0),
            op: BinOp::Add,
            a: Operand::Var(VarId(1)),
            b: Operand::ConstI(3),
        };
        assert_eq!(i.def(), Some(VarId(0)));
        assert_eq!(i.uses().len(), 2);

        let s = Inst::Store {
            base: Operand::Var(VarId(2)),
            offset: 1,
            val: Operand::ConstF(2.5),
            ty: Ty::F64,
            site: MemSiteId(0),
        };
        assert_eq!(s.def(), None);
        assert!(s.is_memory());
    }

    #[test]
    fn map_uses_rewrites_operands() {
        let mut i = Inst::Bin {
            dst: VarId(0),
            op: BinOp::Add,
            a: Operand::Var(VarId(1)),
            b: Operand::Var(VarId(1)),
        };
        i.map_uses(|o| {
            if let Operand::Var(v) = o {
                *v = VarId(v.0 + 10);
            }
        });
        assert_eq!(
            i.uses(),
            vec![Operand::Var(VarId(11)), Operand::Var(VarId(11))]
        );
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::Br {
            cond: Operand::Var(VarId(0)),
            then_: BlockId(1),
            else_: BlockId(2),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(Terminator::Ret(None).successors(), vec![]);
    }

    #[test]
    fn commutativity_is_marked() {
        assert!(BinOp::Add.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
        assert!(BinOp::FMul.is_commutative());
        assert!(!BinOp::FDiv.is_commutative());
    }

    #[test]
    fn mnemonics_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in BinOp::ALL {
            assert!(seen.insert(op.mnemonic()), "dup mnemonic {}", op.mnemonic());
        }
        for op in UnOp::ALL {
            assert!(seen.insert(op.mnemonic()), "dup mnemonic {}", op.mnemonic());
        }
    }

    #[test]
    fn operand_conversions() {
        let o: Operand = VarId(5).into();
        assert_eq!(o.as_var(), Some(VarId(5)));
        let c: Operand = 7i64.into();
        assert!(c.is_const());
        let f: Operand = 1.5f64.into();
        assert!(f.is_const());
    }
}
