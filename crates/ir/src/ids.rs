//! Index newtypes for IR entities.
//!
//! All IR containers are flat `Vec`s indexed by these `u32` newtypes; the IR
//! never uses interior mutability or reference counting. The `*SiteId`
//! families are **module-wide stable identities** for profiling: the alias
//! profiler of the paper (§3.2.1) records, per static memory-reference site,
//! the set of abstract memory locations the site touched at run time, and the
//! speculative SSA construction later looks those sets up again. Sites must
//! therefore survive instruction motion, which vector positions do not —
//! hence explicit ids stamped at construction time.

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index for use with `Vec` storage.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a raw `Vec` index.
            ///
            /// # Panics
            /// Panics if `i` does not fit in `u32`.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                Self(u32::try_from(i).expect("id overflow"))
            }
        }

        impl core::fmt::Debug for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A virtual register local to one function.
    ///
    /// Registers are *never aliased*: the address of a register cannot be
    /// taken. A source variable whose address is taken must be given a stack
    /// slot ([`SlotId`]) instead, which makes it a "real variable" in the
    /// HSSA sense — subject to χ/μ aliasing.
    VarId, "v"
);
id_type!(
    /// A basic block within one function.
    BlockId, "b"
);
id_type!(
    /// A module-level global memory object.
    GlobalId, "g"
);
id_type!(
    /// A stack slot (addressable local memory) within one function.
    SlotId, "s"
);
id_type!(
    /// A function within a module.
    FuncId, "f"
);
id_type!(
    /// A module-wide stable identity for one static memory-reference site
    /// (a `load`, `store` or `checkload`). Alias profiles are keyed by this.
    MemSiteId, "m"
);
id_type!(
    /// A module-wide stable identity for one heap-allocation site. The
    /// paper's heap-object naming scheme (§3.2.1) names every heap object
    /// after the site that allocated it.
    AllocSiteId, "h"
);
id_type!(
    /// A module-wide stable identity for one call site, keying the profiled
    /// mod/ref LOC sets for the call.
    CallSiteId, "c"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        let v = VarId::from_index(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v, VarId(42));
    }

    #[test]
    fn display_prefixes() {
        assert_eq!(VarId(3).to_string(), "v3");
        assert_eq!(BlockId(0).to_string(), "b0");
        assert_eq!(GlobalId(1).to_string(), "g1");
        assert_eq!(SlotId(2).to_string(), "s2");
        assert_eq!(FuncId(9).to_string(), "f9");
        assert_eq!(MemSiteId(7).to_string(), "m7");
        assert_eq!(AllocSiteId(5).to_string(), "h5");
        assert_eq!(CallSiteId(4).to_string(), "c4");
    }

    #[test]
    fn ordering_follows_raw_index() {
        assert!(VarId(1) < VarId(2));
        assert!(BlockId(0) < BlockId(10));
    }
}
