//! Structural verifier.
//!
//! Checks the invariants every later pass relies on. Run after construction
//! and after every transformation in tests; optimizations that break any of
//! these would silently corrupt downstream analyses.
//!
//! Failures carry structured attribution — the function, the block index,
//! and (when populated by the driver's verify-each hook) the pipeline pass
//! that produced the rejected IR — rendered as `pass=<p> fn=<f> bb=<n>`.

use crate::function::{Function, Module};
use crate::ids::FuncId;
use crate::inst::{Inst, Operand, Terminator};
use crate::types::Ty;
use std::collections::HashSet;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the failure occurred, if function-local.
    pub func: Option<String>,
    /// Pipeline pass that produced the rejected IR, when known (populated
    /// by the driver's `--verify-each` hook, not by the verifier itself).
    pub pass: Option<String>,
    /// Block index the failure is anchored to, if block-local.
    pub block: Option<u32>,
    /// Human-readable description.
    pub msg: String,
}

impl VerifyError {
    /// A bare failure with no attribution.
    pub fn new(msg: impl Into<String>) -> VerifyError {
        VerifyError {
            func: None,
            pass: None,
            block: None,
            msg: msg.into(),
        }
    }

    /// Attributes the failure to a function.
    #[must_use]
    pub fn in_func(mut self, name: impl Into<String>) -> VerifyError {
        self.func = Some(name.into());
        self
    }

    /// Attributes the failure to the pipeline pass that produced the IR.
    #[must_use]
    pub fn in_pass(mut self, pass: impl Into<String>) -> VerifyError {
        self.pass = Some(pass.into());
        self
    }

    /// Anchors the failure to a block index.
    #[must_use]
    pub fn at_block(mut self, block: u32) -> VerifyError {
        self.block = Some(block);
        self
    }

    /// The `pass=<p> fn=<f> bb=<n>` attribution suffix (empty when no
    /// attribution beyond the message exists).
    pub fn location(&self) -> String {
        let mut parts = Vec::new();
        if let Some(p) = &self.pass {
            parts.push(format!("pass={p}"));
        }
        if let Some(f) = &self.func {
            parts.push(format!("fn={f}"));
        }
        if let Some(b) = self.block {
            parts.push(format!("bb={b}"));
        }
        parts.join(" ")
    }
}

impl core::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.pass.is_some() || self.block.is_some() {
            return write!(f, "verify error: {} [{}]", self.msg, self.location());
        }
        match &self.func {
            Some(name) => write!(f, "verify error in `{name}`: {}", self.msg),
            None => write!(f, "verify error: {}", self.msg),
        }
    }
}

impl std::error::Error for VerifyError {}

/// The callee-side facts a `call` instruction is checked against. Lets
/// [`verify_function_in`] run on a single function without the whole
/// [`Module`] in hand (the driver's per-worker verify-each hook).
#[derive(Debug, Clone, Copy)]
pub struct CalleeSig<'a> {
    /// Callee name (for diagnostics).
    pub name: &'a str,
    /// Declared parameter count.
    pub params: u32,
    /// Whether the callee returns a value.
    pub has_ret: bool,
}

/// Verifies a whole module.
///
/// Checked invariants:
/// * name uniqueness (globals, functions; vars/slots/blocks per function);
/// * every id (var, slot, global, block, func) is in range;
/// * every block's terminator targets exist; the entry block exists;
/// * call arity matches callee parameter count; call `dst` presence matches
///   the callee's return type;
/// * memory/call/alloc site ids are unique module-wide and below the
///   module's site counters;
/// * operand types are consistent (float operators get float-typed vars,
///   branch conditions are `i64`, stores match the declared cell type).
///
/// # Errors
/// Returns the first violated invariant.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    let mut names = HashSet::new();
    for g in &m.globals {
        if !names.insert(&g.name) {
            return Err(VerifyError::new(format!(
                "duplicate global name `{}`",
                g.name
            )));
        }
        if g.init.len() > g.words as usize {
            return Err(VerifyError::new(format!(
                "global `{}` initializer exceeds size",
                g.name
            )));
        }
    }
    let mut fnames = HashSet::new();
    for f in &m.funcs {
        if !fnames.insert(&f.name) {
            return Err(VerifyError::new(format!(
                "duplicate function name `{}`",
                f.name
            )));
        }
    }

    let mut mem_sites = HashSet::new();
    let mut call_sites = HashSet::new();
    let mut alloc_sites = HashSet::new();

    let callee = |i: usize| -> Option<CalleeSig<'_>> {
        m.funcs.get(i).map(|cf| CalleeSig {
            name: &cf.name,
            params: cf.params,
            has_ret: cf.ret_ty.is_some(),
        })
    };
    for (i, f) in m.funcs.iter().enumerate() {
        let _ = FuncId::from_index(i);
        verify_function_in(m.globals.len(), &callee, f)?;
        for b in &f.blocks {
            for inst in &b.insts {
                match inst {
                    Inst::Load { site, .. }
                    | Inst::Store { site, .. }
                    | Inst::CheckLoad { site, .. } => {
                        if site.0 >= m.next_mem_site {
                            return Err(VerifyError::new(format!(
                                "mem site {site} beyond module counter"
                            ))
                            .in_func(&f.name));
                        }
                        if !mem_sites.insert(*site) {
                            return Err(VerifyError::new(format!("duplicate mem site {site}"))
                                .in_func(&f.name));
                        }
                    }
                    Inst::Call { site, .. }
                        if (site.0 >= m.next_call_site || !call_sites.insert(*site)) =>
                    {
                        return Err(
                            VerifyError::new(format!("bad call site {site}")).in_func(&f.name)
                        );
                    }
                    Inst::Alloc { site, .. }
                        if (site.0 >= m.next_alloc_site || !alloc_sites.insert(*site)) =>
                    {
                        return Err(
                            VerifyError::new(format!("bad alloc site {site}")).in_func(&f.name)
                        );
                    }
                    _ => {}
                }
            }
        }
    }
    Ok(())
}

/// Verifies one function against its surrounding context: the module's
/// global count and a callee-signature lookup. This is the per-function
/// half of [`verify_module`], public so the driver's verify-each hook can
/// run it inside parallel workers without the (partially moved-out)
/// module. Site-id uniqueness is inherently module-wide and stays in
/// [`verify_module`].
///
/// # Errors
/// Returns the first violated invariant, attributed to the function and
/// (for per-block checks) the block index.
pub fn verify_function_in<'m>(
    n_globals: usize,
    callee: &dyn Fn(usize) -> Option<CalleeSig<'m>>,
    f: &Function,
) -> Result<(), VerifyError> {
    let fail = |msg: String| VerifyError::new(msg).in_func(&f.name);
    if f.blocks.is_empty() {
        return Err(fail("function has no blocks".into()));
    }
    if (f.params as usize) > f.vars.len() {
        return Err(fail("more params than vars".into()));
    }

    let mut vnames = HashSet::new();
    for v in &f.vars {
        if !vnames.insert(&v.name) {
            return Err(fail(format!("duplicate var name `{}`", v.name)));
        }
    }
    let mut snames = HashSet::new();
    for s in &f.slots {
        if !snames.insert(&s.name) {
            return Err(fail(format!("duplicate slot name `{}`", s.name)));
        }
    }
    let mut bnames = HashSet::new();
    for b in &f.blocks {
        if !bnames.insert(&b.name) {
            return Err(fail(format!("duplicate block name `{}`", b.name)));
        }
    }

    for (bi, b) in f.blocks.iter().enumerate() {
        verify_block(n_globals, callee, f, b).map_err(|msg| fail(msg).at_block(bi as u32))?;
    }
    Ok(())
}

/// The per-block invariants of [`verify_function_in`], with string errors
/// so the caller can attach block attribution in one place.
fn verify_block<'m>(
    n_globals: usize,
    callee: &dyn Fn(usize) -> Option<CalleeSig<'m>>,
    f: &Function,
    b: &crate::function::Block,
) -> Result<(), String> {
    let check_opnd = |o: Operand| -> Result<(), String> {
        match o {
            Operand::Var(v) if v.index() >= f.vars.len() => {
                return Err(format!("var {v} out of range"));
            }
            Operand::GlobalAddr(g) if g.index() >= n_globals => {
                return Err(format!("global {g} out of range"));
            }
            Operand::SlotAddr(s) if s.index() >= f.slots.len() => {
                return Err(format!("slot {s} out of range"));
            }
            _ => {}
        }
        Ok(())
    };

    let var_ty = |o: Operand| -> Option<Ty> {
        match o {
            Operand::Var(v) => Some(f.vars[v.index()].ty),
            Operand::ConstI(_) => Some(Ty::I64),
            Operand::ConstF(_) => Some(Ty::F64),
            Operand::GlobalAddr(_) | Operand::SlotAddr(_) => Some(Ty::Ptr),
        }
    };
    let num_compat = |t: Ty, want_float: bool| -> bool {
        if want_float {
            t == Ty::F64
        } else {
            t != Ty::F64
        }
    };

    for inst in &b.insts {
        for u in inst.uses() {
            check_opnd(u)?;
        }
        if let Some(d) = inst.def() {
            if d.index() >= f.vars.len() {
                return Err(format!("def var {d} out of range"));
            }
        }
        match inst {
            Inst::Bin { op, a, b: bb, dst } => {
                let wf = op.takes_float();
                for o in [*a, *bb] {
                    if let Some(t) = var_ty(o) {
                        if !num_compat(t, wf) {
                            return Err(format!(
                                "operand type {t} incompatible with `{}`",
                                op.mnemonic()
                            ));
                        }
                    }
                }
                if f.vars[dst.index()].ty != op.result_ty()
                    && !(op.result_ty() == Ty::I64 && f.vars[dst.index()].ty == Ty::Ptr)
                {
                    return Err(format!(
                        "dst of `{}` has type {}, expected {}",
                        op.mnemonic(),
                        f.vars[dst.index()].ty,
                        op.result_ty()
                    ));
                }
            }
            Inst::Load { dst, ty, base, .. } | Inst::CheckLoad { dst, ty, base, .. } => {
                if let Some(bt) = var_ty(*base) {
                    if bt == Ty::F64 {
                        return Err("load base must be integral".into());
                    }
                }
                let dt = f.vars[dst.index()].ty;
                let compat = match ty {
                    Ty::F64 => dt == Ty::F64,
                    _ => dt != Ty::F64,
                };
                if !compat {
                    return Err(format!("load of {ty} into {dt} register"));
                }
            }
            Inst::Store { base, val, ty, .. } => {
                if let Some(bt) = var_ty(*base) {
                    if bt == Ty::F64 {
                        return Err("store base must be integral".into());
                    }
                }
                if let Some(vt) = var_ty(*val) {
                    let compat = match ty {
                        Ty::F64 => vt == Ty::F64,
                        _ => vt != Ty::F64,
                    };
                    if !compat {
                        return Err(format!("store of {vt} value as {ty}"));
                    }
                }
            }
            Inst::Call {
                dst,
                callee: target,
                args,
                ..
            } => {
                let Some(sig) = callee(target.index()) else {
                    return Err(format!("callee {target} out of range"));
                };
                if args.len() != sig.params as usize {
                    return Err(format!(
                        "call to `{}` passes {} args, expects {}",
                        sig.name,
                        args.len(),
                        sig.params
                    ));
                }
                if dst.is_some() && !sig.has_ret {
                    return Err(format!("call to void `{}` has a destination", sig.name));
                }
            }
            _ => {}
        }
    }
    match &b.term {
        Terminator::Jump(t) => {
            if t.index() >= f.blocks.len() {
                return Err(format!("jump target {t} out of range"));
            }
        }
        Terminator::Br { cond, then_, else_ } => {
            check_opnd(*cond)?;
            if let Some(t) = var_ty(*cond) {
                if t == Ty::F64 {
                    return Err("branch condition must be integral".into());
                }
            }
            for t in [then_, else_] {
                if t.index() >= f.blocks.len() {
                    return Err(format!("branch target {t} out of range"));
                }
            }
        }
        Terminator::Ret(v) => {
            if let Some(v) = v {
                check_opnd(*v)?;
                if f.ret_ty.is_none() {
                    return Err("void function returns a value".into());
                }
            } else if f.ret_ty.is_some() {
                return Err("non-void function returns nothing".into());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::ids::{BlockId, MemSiteId, VarId};
    use crate::inst::BinOp;

    #[test]
    fn accepts_well_formed() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_func("ok", &[("x", Ty::I64)], Some(Ty::I64));
        {
            let mut fb = mb.define(f);
            let x = fb.param(0);
            let y = fb.bin(BinOp::Add, x.into(), 1.into());
            fb.ret(Some(y.into()));
        }
        verify_module(&mb.finish()).unwrap();
    }

    #[test]
    fn rejects_bad_branch_target() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_func("bad", &[], None);
        {
            let mut fb = mb.define(f);
            fb.jmp(BlockId(7));
        }
        let e = verify_module(&mb.finish()).unwrap_err();
        assert!(e.msg.contains("jump target"));
        assert_eq!(e.func.as_deref(), Some("bad"));
        assert_eq!(e.block, Some(0));
    }

    #[test]
    fn rejects_type_mismatch() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_func("bad", &[("x", Ty::F64)], None);
        {
            let mut fb = mb.define(f);
            let x = fb.param(0);
            fb.bin(BinOp::Add, x.into(), 1.into()); // int add on f64
            fb.ret(None);
        }
        let e = verify_module(&mb.finish()).unwrap_err();
        assert!(e.msg.contains("incompatible"));
    }

    #[test]
    fn rejects_duplicate_mem_site() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_func("bad", &[("p", Ty::Ptr)], None);
        {
            let mut fb = mb.define(f);
            let p = fb.param(0);
            fb.load(p.into(), 0, Ty::I64);
            fb.load(p.into(), 1, Ty::I64);
            fb.ret(None);
        }
        let mut m = mb.finish();
        // forge a duplicate site
        if let Inst::Load { site, .. } = &mut m.funcs[0].blocks[0].insts[1] {
            *site = MemSiteId(0);
        }
        let e = verify_module(&m).unwrap_err();
        assert!(e.msg.contains("duplicate mem site"));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let mut mb = ModuleBuilder::new();
        let callee = mb.declare_func("two", &[("a", Ty::I64), ("b", Ty::I64)], None);
        let f = mb.declare_func("bad", &[], None);
        {
            let mut fb = mb.define(f);
            fb.call(callee, &[1.into()]);
            fb.ret(None);
        }
        let e = verify_module(&mb.finish()).unwrap_err();
        assert!(e.msg.contains("args"));
    }

    #[test]
    fn rejects_out_of_range_var() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_func("bad", &[], None);
        {
            let mut fb = mb.define(f);
            fb.ret(None);
        }
        let mut m = mb.finish();
        m.funcs[0].blocks[0].insts.push(Inst::Copy {
            dst: VarId(9),
            src: Operand::ConstI(0),
        });
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn rejects_void_return_mismatch() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_func("bad", &[], Some(Ty::I64));
        {
            let mut fb = mb.define(f);
            fb.ret(None);
        }
        let e = verify_module(&mb.finish()).unwrap_err();
        assert!(e.msg.contains("returns nothing"));
    }

    #[test]
    fn display_appends_pass_attribution() {
        let plain = VerifyError::new("boom").in_func("f");
        assert_eq!(plain.to_string(), "verify error in `f`: boom");
        let rich = VerifyError::new("boom")
            .in_func("f")
            .in_pass("strength")
            .at_block(3);
        assert_eq!(rich.location(), "pass=strength fn=f bb=3");
        assert_eq!(
            rich.to_string(),
            "verify error: boom [pass=strength fn=f bb=3]"
        );
    }
}
