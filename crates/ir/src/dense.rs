//! Dense, index-keyed containers for optimizer hot loops.
//!
//! The SSAPRE kernel and the HSSA passes key almost everything by small
//! dense integers — block index, SSA version, occurrence index, Φ index,
//! redundancy class. Hashing those through a `HashMap` costs a hash + probe
//! per access and scatters the data; these containers replace that with a
//! direct `Vec` index. Two shapes cover every use:
//!
//! * [`DenseMap`] — a partial map `u32 → V` over `Vec<Option<V>>`, for
//!   keys that are dense but sparsely populated (memory-version def
//!   tables, block → Φ-index);
//! * [`InlineVec`] — a small-vector that keeps up to `N` `Copy` elements
//!   inline and spills to the heap only past that, for the per-statement
//!   χ/μ operator lists and per-occurrence operand-version lists whose
//!   typical length is 0–2 (SoA-style: the common case costs no
//!   allocation at all).
//!
//! Both are deliberately minimal — exactly the API the optimizer uses,
//! nothing speculative.

/// A partial map from a dense `u32` key space to `V`.
///
/// Reads of unset keys return `None` like a `HashMap`; writes grow the
/// backing store on demand, so callers may size it up-front
/// ([`DenseMap::with_len`]) or not at all.
#[derive(Clone, Debug)]
pub struct DenseMap<V> {
    slots: Vec<Option<V>>,
}

impl<V> Default for DenseMap<V> {
    fn default() -> Self {
        DenseMap { slots: Vec::new() }
    }
}

impl<V> DenseMap<V> {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty map with `n` pre-allocated slots.
    pub fn with_len(n: usize) -> Self {
        let mut slots = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        DenseMap { slots }
    }

    /// Inserts `v` at `k`, growing as needed; returns the previous value.
    ///
    /// `u32::MAX` is rejected: it is the pervasive "unrenamed" sentinel,
    /// and growing the table to it would allocate 2³² slots.
    pub fn insert(&mut self, k: u32, v: V) -> Option<V> {
        assert_ne!(k, u32::MAX, "DenseMap key is the unrenamed sentinel");
        let i = k as usize;
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        self.slots[i].replace(v)
    }

    /// The value at `k`, if set.
    #[inline]
    pub fn get(&self, k: u32) -> Option<&V> {
        self.slots.get(k as usize).and_then(|s| s.as_ref())
    }

    /// Whether `k` is set.
    #[inline]
    pub fn contains_key(&self, k: u32) -> bool {
        matches!(self.slots.get(k as usize), Some(Some(_)))
    }

    /// Mutable access to the value at `k`, if set.
    pub fn get_mut(&mut self, k: u32) -> Option<&mut V> {
        self.slots.get_mut(k as usize).and_then(|s| s.as_mut())
    }

    /// Drops every entry, keeping the allocation.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
    }
}

/// A small-vector of `Copy` elements: up to `N` inline, spilling to a heap
/// `Vec` only beyond that.
#[derive(Clone)]
pub struct InlineVec<T: Copy, const N: usize> {
    len: usize,
    inline: [Option<T>; N],
    spill: Vec<T>,
}

impl<T: Copy, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        InlineVec {
            len: 0,
            inline: [None; N],
            spill: Vec::new(),
        }
    }
}

impl<T: Copy, const N: usize> InlineVec<T, N> {
    /// An empty vector (no allocation).
    pub fn new() -> Self {
        Self::default()
    }

    /// A vector holding `n` copies of `v` (the `vec![v; n]` idiom).
    pub fn filled(v: T, n: usize) -> Self {
        let mut out = Self::new();
        for _ in 0..n {
            out.push(v);
        }
        out
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends an element.
    #[inline]
    pub fn push(&mut self, v: T) {
        if self.len < N {
            self.inline[self.len] = Some(v);
        } else {
            self.spill.push(v);
        }
        self.len += 1;
    }

    /// The element at `i`, if in bounds.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&T> {
        if i >= self.len {
            None
        } else if i < N {
            self.inline[i].as_ref()
        } else {
            self.spill.get(i - N)
        }
    }

    /// Mutable access to the element at `i`, if in bounds.
    #[inline]
    pub fn get_mut(&mut self, i: usize) -> Option<&mut T> {
        if i >= self.len {
            None
        } else if i < N {
            self.inline[i].as_mut()
        } else {
            self.spill.get_mut(i - N)
        }
    }

    /// The first element, if any.
    pub fn first(&self) -> Option<&T> {
        self.get(0)
    }

    /// Iterates over the elements in order.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        (0..self.len).map(move |i| self.get(i).expect("index in bounds"))
    }

    /// Iterates mutably over the elements in order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> + '_ {
        let n = self.len.min(N);
        self.inline[..n]
            .iter_mut()
            .map(|s| s.as_mut().expect("inline slot set"))
            .chain(self.spill.iter_mut())
    }

    /// Removes every element, keeping the spill allocation.
    pub fn clear(&mut self) {
        self.len = 0;
        self.inline = [None; N];
        self.spill.clear();
    }
}

impl<T: Copy, const N: usize> std::ops::Index<usize> for InlineVec<T, N> {
    type Output = T;

    #[inline]
    fn index(&self, i: usize) -> &T {
        self.get(i).expect("InlineVec index out of bounds")
    }
}

impl<T: Copy, const N: usize> std::ops::IndexMut<usize> for InlineVec<T, N> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut T {
        self.get_mut(i).expect("InlineVec index out of bounds")
    }
}

impl<T: Copy, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = Self::new();
        for v in iter {
            out.push(v);
        }
        out
    }
}

impl<'a, T: Copy, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = Box<dyn Iterator<Item = &'a T> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl<'a, T: Copy, const N: usize> IntoIterator for &'a mut InlineVec<T, N> {
    type Item = &'a mut T;
    type IntoIter = Box<dyn Iterator<Item = &'a mut T> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter_mut())
    }
}

impl<T: Copy + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T: Copy + Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: Copy + std::fmt::Debug, const N: usize> std::fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_map_basics() {
        let mut m: DenseMap<&'static str> = DenseMap::with_len(4);
        assert_eq!(m.get(0), None);
        assert_eq!(m.insert(2, "two"), None);
        assert_eq!(m.insert(2, "TWO"), Some("two"));
        assert_eq!(m.get(2), Some(&"TWO"));
        assert!(m.contains_key(2));
        // auto-grow past the pre-sized length
        m.insert(100, "hundred");
        assert_eq!(m.get(100), Some(&"hundred"));
        assert_eq!(m.get(99), None);
        m.clear();
        assert_eq!(m.get(2), None);
    }

    #[test]
    fn inline_vec_stays_inline_then_spills() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        assert!(v.is_empty());
        v.push(10);
        v.push(20);
        v.push(30); // spills
        assert_eq!(v.len(), 3);
        assert_eq!(v[0], 10);
        assert_eq!(v[2], 30);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![10, 20, 30]);
        assert_eq!(v.first(), Some(&10));
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.get(0), None);
    }

    #[test]
    fn inline_vec_eq_and_collect() {
        let a: InlineVec<u32, 2> = [1, 2, 3].into_iter().collect();
        let b: InlineVec<u32, 2> = [1, 2, 3].into_iter().collect();
        let c: InlineVec<u32, 2> = [1, 2].into_iter().collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(InlineVec::<u32, 2>::filled(7, 3)[2], 7);
    }
}
