//! Programmatic IR construction.
//!
//! The builders are how the synthetic workloads in `specframe-workloads`
//! are written. [`ModuleBuilder`] owns the module and hands out fresh site
//! ids; [`FuncBuilder`] provides a cursor-style API over one function.
//!
//! ```
//! use specframe_ir::{BinOp, ModuleBuilder, Operand, Ty};
//!
//! let mut mb = ModuleBuilder::new();
//! let g = mb.global("counter", 1, Ty::I64);
//! let f = mb.declare_func("bump", &[("n", Ty::I64)], Some(Ty::I64));
//! {
//!     let mut fb = mb.define(f);
//!     let n = fb.param(0);
//!     let old = fb.load(Operand::GlobalAddr(g), 0, Ty::I64);
//!     let new = fb.bin(BinOp::Add, old.into(), n.into());
//!     fb.store(Operand::GlobalAddr(g), 0, new.into(), Ty::I64);
//!     fb.ret(Some(new.into()));
//! }
//! let module = mb.finish();
//! assert_eq!(module.funcs[0].name, "bump");
//! ```

use crate::function::{Block, Function, Global, Module, SlotDecl, VarDecl};
use crate::ids::{BlockId, FuncId, GlobalId, SlotId, VarId};
use crate::inst::{BinOp, CheckKind, Inst, LoadSpec, Operand, Terminator, UnOp};
use crate::types::{Ty, Value};

/// Builds a [`Module`], issuing globally unique site ids.
#[derive(Debug, Default)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Creates an empty module builder.
    pub fn new() -> ModuleBuilder {
        ModuleBuilder::default()
    }

    /// Adds a zero-initialized global of `words` cells.
    pub fn global(&mut self, name: impl Into<String>, words: u32, ty: Ty) -> GlobalId {
        let id = GlobalId::from_index(self.module.globals.len());
        self.module.globals.push(Global {
            name: name.into(),
            words,
            ty,
            init: Vec::new(),
        });
        id
    }

    /// Adds a global with an explicit initializer.
    pub fn global_init(&mut self, name: impl Into<String>, ty: Ty, init: Vec<Value>) -> GlobalId {
        let words = u32::try_from(init.len()).expect("global too large");
        let id = GlobalId::from_index(self.module.globals.len());
        self.module.globals.push(Global {
            name: name.into(),
            words,
            ty,
            init,
        });
        id
    }

    /// Declares a function (so calls to it can be emitted before its body
    /// exists) and returns its id. The body starts as a single `ret`.
    pub fn declare_func(
        &mut self,
        name: impl Into<String>,
        params: &[(&str, Ty)],
        ret_ty: Option<Ty>,
    ) -> FuncId {
        let id = FuncId::from_index(self.module.funcs.len());
        let vars = params
            .iter()
            .map(|(n, t)| VarDecl {
                name: (*n).to_string(),
                ty: *t,
            })
            .collect();
        self.module.funcs.push(Function {
            name: name.into(),
            params: params.len() as u32,
            ret_ty,
            vars,
            slots: Vec::new(),
            blocks: vec![Block::new("entry")],
        });
        id
    }

    /// Opens a cursor over a previously declared function. Any existing body
    /// is discarded (the entry block is reset).
    pub fn define(&mut self, func: FuncId) -> FuncBuilder<'_> {
        let f = &mut self.module.funcs[func.index()];
        f.blocks = vec![Block::new("entry")];
        f.vars.truncate(f.params as usize);
        f.slots.clear();
        FuncBuilder {
            mb: self,
            func,
            cur: BlockId(0),
            sealed: false,
            temps: 0,
        }
    }

    /// Finishes construction and returns the module.
    pub fn finish(self) -> Module {
        self.module
    }

    /// Read-only view of the module under construction.
    pub fn module(&self) -> &Module {
        &self.module
    }
}

/// Cursor-style builder over one function.
///
/// The cursor points at the *current block*; emission methods append to it.
/// A block is terminated by [`FuncBuilder::jmp`], [`FuncBuilder::br`] or
/// [`FuncBuilder::ret`], after which the cursor must be moved with
/// [`FuncBuilder::switch_to`].
#[derive(Debug)]
pub struct FuncBuilder<'m> {
    mb: &'m mut ModuleBuilder,
    func: FuncId,
    cur: BlockId,
    sealed: bool,
    temps: u32,
}

impl FuncBuilder<'_> {
    fn f(&mut self) -> &mut Function {
        &mut self.mb.module.funcs[self.func.index()]
    }

    /// The id of the function being built.
    pub fn func_id(&self) -> FuncId {
        self.func
    }

    /// The `i`-th parameter's register.
    pub fn param(&self, i: u32) -> VarId {
        let f = &self.mb.module.funcs[self.func.index()];
        assert!(i < f.params, "param index out of range");
        VarId(i)
    }

    /// Declares a named register.
    pub fn var(&mut self, name: impl Into<String>, ty: Ty) -> VarId {
        self.f().new_var(name, ty)
    }

    /// Declares an anonymous temporary register.
    pub fn temp(&mut self, ty: Ty) -> VarId {
        let n = self.temps;
        self.temps += 1;
        self.f().new_var(format!("t{n}"), ty)
    }

    /// Declares a stack slot of `words` cells.
    pub fn slot(&mut self, name: impl Into<String>, words: u32, ty: Ty) -> SlotId {
        let f = self.f();
        let id = SlotId::from_index(f.slots.len());
        f.slots.push(SlotDecl {
            name: name.into(),
            words,
            ty,
        });
        id
    }

    /// Creates a new (unterminated) block; does not move the cursor.
    pub fn block(&mut self, name: impl Into<String>) -> BlockId {
        self.f().new_block(name)
    }

    /// Moves the cursor to `b`.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
        self.sealed = false;
    }

    /// The block the cursor currently points at.
    pub fn current(&self) -> BlockId {
        self.cur
    }

    fn push(&mut self, inst: Inst) {
        assert!(!self.sealed, "emitting into a terminated block");
        let cur = self.cur;
        self.f().block_mut(cur).insts.push(inst);
    }

    /// Emits `dst = op a, b` into a fresh temp and returns it.
    pub fn bin(&mut self, op: BinOp, a: Operand, b: Operand) -> VarId {
        let dst = self.temp(op.result_ty());
        self.push(Inst::Bin { dst, op, a, b });
        dst
    }

    /// Emits `dst = op a, b` into an existing register.
    pub fn bin_to(&mut self, dst: VarId, op: BinOp, a: Operand, b: Operand) {
        self.push(Inst::Bin { dst, op, a, b });
    }

    /// Emits `dst = op a` into a fresh temp and returns it.
    pub fn un(&mut self, op: UnOp, a: Operand) -> VarId {
        let dst = self.temp(op.result_ty());
        self.push(Inst::Un { dst, op, a });
        dst
    }

    /// Emits `dst = src`.
    pub fn copy_to(&mut self, dst: VarId, src: Operand) {
        self.push(Inst::Copy { dst, src });
    }

    /// Emits a load into a fresh temp and returns it.
    pub fn load(&mut self, base: Operand, offset: i64, ty: Ty) -> VarId {
        let dst = self.temp(ty);
        self.load_to(dst, base, offset, ty);
        dst
    }

    /// Emits a load into an existing register.
    pub fn load_to(&mut self, dst: VarId, base: Operand, offset: i64, ty: Ty) {
        let site = self.mb.module.fresh_mem_site();
        self.push(Inst::Load {
            dst,
            base,
            offset,
            ty,
            spec: LoadSpec::Normal,
            site,
        });
    }

    /// Emits a store.
    pub fn store(&mut self, base: Operand, offset: i64, val: Operand, ty: Ty) {
        let site = self.mb.module.fresh_mem_site();
        self.push(Inst::Store {
            base,
            offset,
            val,
            ty,
            site,
        });
    }

    /// Emits a check load (used by tests that hand-build speculative code;
    /// the optimizer normally emits these).
    pub fn check_load_to(
        &mut self,
        dst: VarId,
        base: Operand,
        offset: i64,
        ty: Ty,
        kind: CheckKind,
    ) {
        let site = self.mb.module.fresh_mem_site();
        self.push(Inst::CheckLoad {
            dst,
            base,
            offset,
            ty,
            kind,
            site,
        });
    }

    /// Emits a call, returning the destination temp if `callee` returns a
    /// value.
    pub fn call(&mut self, callee: FuncId, args: &[Operand]) -> Option<VarId> {
        let ret_ty = self.mb.module.funcs[callee.index()].ret_ty;
        let dst = ret_ty.map(|t| self.temp(t));
        let site = self.mb.module.fresh_call_site();
        self.push(Inst::Call {
            dst,
            callee,
            args: args.to_vec(),
            site,
        });
        dst
    }

    /// Emits a heap allocation of `words` cells, returning the pointer temp.
    pub fn alloc(&mut self, words: Operand) -> VarId {
        let dst = self.temp(Ty::Ptr);
        let site = self.mb.module.fresh_alloc_site();
        self.push(Inst::Alloc { dst, words, site });
        dst
    }

    fn terminate(&mut self, t: Terminator) {
        assert!(!self.sealed, "block already terminated");
        let cur = self.cur;
        self.f().block_mut(cur).term = t;
        self.sealed = true;
    }

    /// Terminates the current block with `jmp target`.
    pub fn jmp(&mut self, target: BlockId) {
        self.terminate(Terminator::Jump(target));
    }

    /// Terminates the current block with a conditional branch.
    pub fn br(&mut self, cond: Operand, then_: BlockId, else_: BlockId) {
        self.terminate(Terminator::Br { cond, then_, else_ });
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, val: Option<Operand>) {
        self.terminate(Terminator::Ret(val));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_loop() {
        let mut mb = ModuleBuilder::new();
        let g = mb.global("sum", 1, Ty::I64);
        let f = mb.declare_func("count", &[("n", Ty::I64)], Some(Ty::I64));
        {
            let mut fb = mb.define(f);
            let n = fb.param(0);
            let i = fb.var("i", Ty::I64);
            fb.copy_to(i, Operand::ConstI(0));
            let head = fb.block("head");
            let body = fb.block("body");
            let exit = fb.block("exit");
            fb.jmp(head);
            fb.switch_to(head);
            let c = fb.bin(BinOp::Lt, i.into(), n.into());
            fb.br(c.into(), body, exit);
            fb.switch_to(body);
            let s = fb.load(Operand::GlobalAddr(g), 0, Ty::I64);
            let s2 = fb.bin(BinOp::Add, s.into(), 1.into());
            fb.store(Operand::GlobalAddr(g), 0, s2.into(), Ty::I64);
            fb.bin_to(i, BinOp::Add, i.into(), 1.into());
            fb.jmp(head);
            fb.switch_to(exit);
            let r = fb.load(Operand::GlobalAddr(g), 0, Ty::I64);
            fb.ret(Some(r.into()));
        }
        let m = mb.finish();
        assert_eq!(m.funcs.len(), 1);
        assert_eq!(m.funcs[0].blocks.len(), 4);
        // 3 loads/stores got distinct sites
        assert_eq!(m.next_mem_site, 3);
        crate::verify::verify_module(&m).unwrap();
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_terminate_panics() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_func("t", &[], None);
        let mut fb = mb.define(f);
        fb.ret(None);
        fb.ret(None);
    }

    #[test]
    #[should_panic(expected = "terminated block")]
    fn emit_after_terminator_panics() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_func("t", &[], None);
        let mut fb = mb.define(f);
        fb.ret(None);
        fb.bin(BinOp::Add, 1.into(), 2.into());
    }

    #[test]
    fn call_gets_ret_temp() {
        let mut mb = ModuleBuilder::new();
        let callee = mb.declare_func("id", &[("x", Ty::I64)], Some(Ty::I64));
        {
            let mut fb = mb.define(callee);
            let x = fb.param(0);
            fb.ret(Some(x.into()));
        }
        let caller = mb.declare_func("main", &[], Some(Ty::I64));
        {
            let mut fb = mb.define(caller);
            let r = fb.call(callee, &[5.into()]).unwrap();
            fb.ret(Some(r.into()));
        }
        let m = mb.finish();
        assert_eq!(m.next_call_site, 1);
        crate::verify::verify_module(&m).unwrap();
    }
}
