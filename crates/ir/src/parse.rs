//! Textual IR parser.
//!
//! The grammar mirrors the printer in [`crate::display`]:
//!
//! ```text
//! module   := (global | func)*
//! global   := "global" NAME ":" ty "[" INT "]" ("=" "[" value,* "]")?
//! func     := "func" NAME "(" (NAME ":" ty),* ")" ("->" ty)? "{" decl* block+ "}"
//! decl     := "var" NAME ":" ty | "slot" NAME ":" ty "[" INT "]"
//! block    := NAME ":" stmt*
//! stmt     := NAME "=" rhs | "store" "." ty addr "," operand
//!           | "call" NAME "(" operand,* ")"
//!           | "jmp" NAME | "br" operand "," NAME "," NAME | "ret" operand?
//! rhs      := binop operand "," operand | unop operand
//!           | ("load"|"load.a"|"load.s"|"ldc"|"chks") "." ty addr
//!           | "call" NAME "(" operand,* ")" | "alloc" operand | operand
//! addr     := "[" operand (("+"|"-") INT)? "]"
//! operand  := NAME | "@" NAME | "&" NAME | INT | FLOAT
//! ```
//!
//! Comments run from `#` to end of line. Site ids are assigned fresh in
//! textual order.

use crate::function::{Function, Global, Module, SlotDecl, VarDecl};
use crate::ids::{BlockId, FuncId, VarId};
use crate::inst::{BinOp, CheckKind, Inst, LoadSpec, Operand, Terminator, UnOp};
use crate::types::{Ty, Value};
use std::collections::HashMap;

/// A parse failure, with a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending token.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "parse error on line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Punct(char),
    Arrow,
}

#[derive(Debug, Clone)]
struct SpannedTok {
    tok: Tok,
    line: u32,
}

fn lex(src: &str) -> Result<Vec<SpannedTok>, ParseError> {
    let mut toks = Vec::new();
    let mut line = 1u32;
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'>' => {
                toks.push(SpannedTok {
                    tok: Tok::Arrow,
                    line,
                });
                i += 2;
            }
            '(' | ')' | '{' | '}' | '[' | ']' | ',' | ':' | '@' | '&' | '=' | '+' | '-' => {
                toks.push(SpannedTok {
                    tok: Tok::Punct(c),
                    line,
                });
                i += 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_ascii_digit() {
                        i += 1;
                    } else if d == '.'
                        && i + 1 < bytes.len()
                        && (bytes[i + 1] as char).is_ascii_digit()
                    {
                        is_float = true;
                        i += 1;
                    } else if (d == 'e' || d == 'E')
                        && i + 1 < bytes.len()
                        && ((bytes[i + 1] as char).is_ascii_digit()
                            || bytes[i + 1] == b'-'
                            || bytes[i + 1] == b'+')
                    {
                        is_float = true;
                        i += 2;
                    } else {
                        break;
                    }
                }
                let text = &src[start..i];
                let tok = if is_float {
                    Tok::Float(text.parse().map_err(|_| ParseError {
                        line,
                        msg: format!("bad float literal `{text}`"),
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| ParseError {
                        line,
                        msg: format!("bad int literal `{text}`"),
                    })?)
                };
                toks.push(SpannedTok { tok, line });
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '.' => {
                let start = i;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_ascii_alphanumeric() || d == '_' || d == '.' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                toks.push(SpannedTok {
                    tok: Tok::Ident(src[start..i].to_string()),
                    line,
                });
            }
            other => {
                return Err(ParseError {
                    line,
                    msg: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |t| t.line)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            msg: msg.into(),
        }
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Punct(p)) if p == c => Ok(()),
            other => Err(self.err(format!("expected `{c}`, found {other:?}"))),
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Punct(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn ty(&mut self) -> Result<Ty, ParseError> {
        let s = self.ident()?;
        match s.as_str() {
            "i64" => Ok(Ty::I64),
            "f64" => Ok(Ty::F64),
            "ptr" => Ok(Ty::Ptr),
            _ => Err(self.err(format!("unknown type `{s}`"))),
        }
    }

    fn int(&mut self) -> Result<i64, ParseError> {
        let neg = self.eat_punct('-');
        match self.next() {
            Some(Tok::Int(v)) => Ok(if neg { -v } else { v }),
            other => Err(self.err(format!("expected integer, found {other:?}"))),
        }
    }
}

struct FuncCtx {
    vars: HashMap<String, VarId>,
    slots: HashMap<String, crate::ids::SlotId>,
    blocks: HashMap<String, BlockId>,
}

/// Parses a whole module from its textual form.
///
/// # Errors
/// Returns a [`ParseError`] with the offending line on malformed input or
/// unresolved names.
pub fn parse_module(src: &str) -> Result<Module, ParseError> {
    let toks = lex(src)?;
    let mut module = Module::new();

    // Pass 1: collect global declarations and function signatures so that
    // forward references (calls, @globals) resolve.
    {
        let mut p = Parser {
            toks: toks.clone(),
            pos: 0,
        };
        while let Some(t) = p.peek() {
            match t {
                Tok::Ident(k) if k == "global" => {
                    p.next();
                    let name = p.ident()?;
                    p.expect_punct(':')?;
                    let ty = p.ty()?;
                    p.expect_punct('[')?;
                    let words = p.int()?;
                    if words < 0 {
                        return Err(p.err("negative global size"));
                    }
                    p.expect_punct(']')?;
                    let mut init = Vec::new();
                    if p.eat_punct('=') {
                        p.expect_punct('[')?;
                        if !p.eat_punct(']') {
                            loop {
                                let neg = p.eat_punct('-');
                                let v = match p.next() {
                                    Some(Tok::Int(v)) => {
                                        if ty == Ty::F64 {
                                            Value::F(if neg { -(v as f64) } else { v as f64 })
                                        } else {
                                            Value::I(if neg { -v } else { v })
                                        }
                                    }
                                    Some(Tok::Float(v)) => Value::F(if neg { -v } else { v }),
                                    other => {
                                        return Err(
                                            p.err(format!("expected value, found {other:?}"))
                                        )
                                    }
                                };
                                init.push(v);
                                if !p.eat_punct(',') {
                                    break;
                                }
                            }
                            p.expect_punct(']')?;
                        }
                    }
                    if init.len() > words as usize {
                        return Err(p.err("initializer longer than global"));
                    }
                    if module.global_by_name(&name).is_some() {
                        return Err(p.err(format!("duplicate global `{name}`")));
                    }
                    module.globals.push(Global {
                        name,
                        words: words as u32,
                        ty,
                        init,
                    });
                }
                Tok::Ident(k) if k == "func" => {
                    p.next();
                    let name = p.ident()?;
                    p.expect_punct('(')?;
                    let mut params = Vec::new();
                    if !p.eat_punct(')') {
                        loop {
                            let pn = p.ident()?;
                            p.expect_punct(':')?;
                            let pt = p.ty()?;
                            params.push((pn, pt));
                            if !p.eat_punct(',') {
                                break;
                            }
                        }
                        p.expect_punct(')')?;
                    }
                    let ret_ty = if p.peek() == Some(&Tok::Arrow) {
                        p.next();
                        Some(p.ty()?)
                    } else {
                        None
                    };
                    p.expect_punct('{')?;
                    let mut depth = 1;
                    while depth > 0 {
                        match p.next() {
                            Some(Tok::Punct('{')) => depth += 1,
                            Some(Tok::Punct('}')) => depth -= 1,
                            Some(_) => {}
                            None => return Err(p.err("unterminated function body")),
                        }
                    }
                    if module.func_by_name(&name).is_some() {
                        return Err(p.err(format!("duplicate function `{name}`")));
                    }
                    let vars = params
                        .iter()
                        .map(|(n, t)| VarDecl {
                            name: n.clone(),
                            ty: *t,
                        })
                        .collect();
                    module.funcs.push(Function {
                        name,
                        params: params.len() as u32,
                        ret_ty,
                        vars,
                        slots: Vec::new(),
                        blocks: Vec::new(),
                    });
                }
                _ => return Err(p.err("expected `global` or `func` at top level")),
            }
        }
    }

    // Pass 2: parse function bodies.
    let mut p = Parser { toks, pos: 0 };
    let mut fidx = 0usize;
    while let Some(t) = p.peek() {
        match t.clone() {
            Tok::Ident(k) if k == "global" => {
                skip_global_decl(&mut p)?;
            }
            Tok::Ident(k) if k == "func" => {
                parse_func_body(&mut p, &mut module, FuncId::from_index(fidx))?;
                fidx += 1;
            }
            _ => return Err(p.err("expected `global` or `func` at top level")),
        }
    }

    Ok(module)
}

/// Skips one `global` declaration (pass 2 re-walk; pass 1 already parsed it).
fn skip_global_decl(p: &mut Parser) -> Result<(), ParseError> {
    p.next(); // `global`
    p.ident()?;
    p.expect_punct(':')?;
    p.ty()?;
    p.expect_punct('[')?;
    p.int()?;
    p.expect_punct(']')?;
    if p.eat_punct('=') {
        p.expect_punct('[')?;
        while !p.eat_punct(']') {
            if p.next().is_none() {
                return Err(p.err("unterminated global initializer"));
            }
        }
    }
    Ok(())
}

fn parse_func_body(p: &mut Parser, module: &mut Module, fid: FuncId) -> Result<(), ParseError> {
    // re-parse the header quickly
    let kw = p.ident()?;
    debug_assert_eq!(kw, "func");
    let _name = p.ident()?;
    p.expect_punct('(')?;
    if !p.eat_punct(')') {
        loop {
            p.ident()?;
            p.expect_punct(':')?;
            p.ty()?;
            if !p.eat_punct(',') {
                break;
            }
        }
        p.expect_punct(')')?;
    }
    if p.peek() == Some(&Tok::Arrow) {
        p.next();
        p.ty()?;
    }
    p.expect_punct('{')?;

    let mut ctx = FuncCtx {
        vars: HashMap::new(),
        slots: HashMap::new(),
        blocks: HashMap::new(),
    };
    for (i, d) in module.funcs[fid.index()].vars.iter().enumerate() {
        ctx.vars.insert(d.name.clone(), VarId::from_index(i));
    }

    // declarations
    loop {
        match p.peek() {
            Some(Tok::Ident(k)) if k == "var" => {
                p.next();
                let name = p.ident()?;
                p.expect_punct(':')?;
                let ty = p.ty()?;
                if ctx.vars.contains_key(&name) {
                    return Err(p.err(format!("duplicate var `{name}`")));
                }
                let id = module.funcs[fid.index()].new_var(name.clone(), ty);
                ctx.vars.insert(name, id);
            }
            Some(Tok::Ident(k)) if k == "slot" => {
                p.next();
                let name = p.ident()?;
                p.expect_punct(':')?;
                let ty = p.ty()?;
                p.expect_punct('[')?;
                let words = p.int()?;
                p.expect_punct(']')?;
                if ctx.slots.contains_key(&name) {
                    return Err(p.err(format!("duplicate slot `{name}`")));
                }
                let f = &mut module.funcs[fid.index()];
                let id = crate::ids::SlotId::from_index(f.slots.len());
                f.slots.push(SlotDecl {
                    name: name.clone(),
                    words: words as u32,
                    ty,
                });
                ctx.slots.insert(name, id);
            }
            _ => break,
        }
    }

    // blocks; branch targets resolved afterwards via names
    let mut pending_terms: Vec<(BlockId, PendingTerm)> = Vec::new();
    let mut cur: Option<BlockId> = None;
    let mut cur_terminated = false;

    loop {
        match p.peek().cloned() {
            Some(Tok::Punct('}')) => {
                p.next();
                break;
            }
            Some(Tok::Ident(name))
                if p.toks.get(p.pos + 1).map(|t| &t.tok) == Some(&Tok::Punct(':')) =>
            {
                // new block label
                if let Some(_b) = cur {
                    if !cur_terminated {
                        return Err(p.err("block falls through without terminator"));
                    }
                }
                p.next();
                p.next();
                if ctx.blocks.contains_key(&name) {
                    return Err(p.err(format!("duplicate block `{name}`")));
                }
                let b = module.funcs[fid.index()].new_block(name.clone());
                ctx.blocks.insert(name, b);
                cur = Some(b);
                cur_terminated = false;
            }
            Some(_) => {
                let b = cur.ok_or_else(|| p.err("statement before first block label"))?;
                if cur_terminated {
                    return Err(p.err("statement after block terminator"));
                }
                if let Some(pending) = parse_stmt(p, module, fid, &mut ctx, b)? {
                    pending_terms.push((b, pending));
                    cur_terminated = true;
                }
            }
            None => return Err(p.err("unterminated function body")),
        }
    }
    if let Some(_b) = cur {
        if !cur_terminated {
            return Err(p.err("last block lacks a terminator"));
        }
    }
    if module.funcs[fid.index()].blocks.is_empty() {
        return Err(p.err("function has no blocks"));
    }

    // resolve branch targets
    for (b, pending) in pending_terms {
        let term = pending.resolve(&ctx, p)?;
        module.funcs[fid.index()].block_mut(b).term = term;
    }
    Ok(())
}

enum PendingTerm {
    Jump(String),
    Br(Operand, String, String),
    Ret(Option<Operand>),
}

impl PendingTerm {
    fn resolve(self, ctx: &FuncCtx, p: &Parser) -> Result<Terminator, ParseError> {
        let look = |n: &str| {
            ctx.blocks
                .get(n)
                .copied()
                .ok_or_else(|| p.err(format!("unknown block `{n}`")))
        };
        Ok(match self {
            PendingTerm::Jump(t) => Terminator::Jump(look(&t)?),
            PendingTerm::Br(c, t, e) => Terminator::Br {
                cond: c,
                then_: look(&t)?,
                else_: look(&e)?,
            },
            PendingTerm::Ret(v) => Terminator::Ret(v),
        })
    }
}

fn parse_operand(p: &mut Parser, module: &Module, ctx: &FuncCtx) -> Result<Operand, ParseError> {
    match p.next() {
        Some(Tok::Ident(n)) => ctx
            .vars
            .get(&n)
            .copied()
            .map(Operand::Var)
            .ok_or_else(|| p.err(format!("unknown var `{n}`"))),
        Some(Tok::Int(v)) => Ok(Operand::ConstI(v)),
        Some(Tok::Float(v)) => Ok(Operand::ConstF(v)),
        Some(Tok::Punct('-')) => match p.next() {
            Some(Tok::Int(v)) => Ok(Operand::ConstI(-v)),
            Some(Tok::Float(v)) => Ok(Operand::ConstF(-v)),
            other => Err(p.err(format!("expected literal after `-`, found {other:?}"))),
        },
        Some(Tok::Punct('@')) => {
            let n = p.ident()?;
            module
                .global_by_name(&n)
                .map(Operand::GlobalAddr)
                .ok_or_else(|| p.err(format!("unknown global `{n}`")))
        }
        Some(Tok::Punct('&')) => {
            let n = p.ident()?;
            ctx.slots
                .get(&n)
                .copied()
                .map(Operand::SlotAddr)
                .ok_or_else(|| p.err(format!("unknown slot `{n}`")))
        }
        other => Err(p.err(format!("expected operand, found {other:?}"))),
    }
}

fn parse_addr(
    p: &mut Parser,
    module: &Module,
    ctx: &FuncCtx,
) -> Result<(Operand, i64), ParseError> {
    p.expect_punct('[')?;
    let base = parse_operand(p, module, ctx)?;
    let mut off = 0i64;
    if p.eat_punct('+') {
        off = p.int()?;
    } else if p.eat_punct('-') {
        off = -p.int()?;
    }
    p.expect_punct(']')?;
    Ok((base, off))
}

fn binop_by_name(s: &str) -> Option<BinOp> {
    BinOp::ALL.iter().copied().find(|o| o.mnemonic() == s)
}

fn unop_by_name(s: &str) -> Option<UnOp> {
    UnOp::ALL.iter().copied().find(|o| o.mnemonic() == s)
}

/// Parses one statement into block `b`; returns `Some` if it terminated the
/// block.
fn parse_stmt(
    p: &mut Parser,
    module: &mut Module,
    fid: FuncId,
    ctx: &mut FuncCtx,
    b: BlockId,
) -> Result<Option<PendingTerm>, ParseError> {
    let first = p.ident()?;
    match first.as_str() {
        "jmp" => {
            let t = p.ident()?;
            return Ok(Some(PendingTerm::Jump(t)));
        }
        "br" => {
            let c = parse_operand(p, module, ctx)?;
            p.expect_punct(',')?;
            let t = p.ident()?;
            p.expect_punct(',')?;
            let e = p.ident()?;
            return Ok(Some(PendingTerm::Br(c, t, e)));
        }
        "ret" => {
            // `ret` may or may not carry a value; a value continues on the
            // same conceptual line, so peek for something operand-like that
            // is not a label/keyword start.
            let v = match p.peek() {
                Some(Tok::Int(_)) | Some(Tok::Float(_)) => Some(parse_operand(p, module, ctx)?),
                Some(Tok::Punct('-')) | Some(Tok::Punct('@')) | Some(Tok::Punct('&')) => {
                    Some(parse_operand(p, module, ctx)?)
                }
                Some(Tok::Ident(n)) if ctx.vars.contains_key(n.as_str()) => {
                    // could also be a following label `n:` — disambiguate
                    if p.toks.get(p.pos + 1).map(|t| &t.tok) == Some(&Tok::Punct(':')) {
                        None
                    } else {
                        Some(parse_operand(p, module, ctx)?)
                    }
                }
                _ => None,
            };
            return Ok(Some(PendingTerm::Ret(v)));
        }
        "store" => {
            return Err(p.err("`store` needs a type suffix, e.g. `store.i64`"));
        }
        _ => {}
    }

    if let Some(rest) = first.strip_prefix("store.") {
        let ty = ty_by_name(rest).ok_or_else(|| p.err(format!("bad store type `{rest}`")))?;
        let (base, offset) = parse_addr(p, module, ctx)?;
        p.expect_punct(',')?;
        let val = parse_operand(p, module, ctx)?;
        let site = module.fresh_mem_site();
        module.funcs[fid.index()]
            .block_mut(b)
            .insts
            .push(Inst::Store {
                base,
                offset,
                val,
                ty,
                site,
            });
        return Ok(None);
    }

    if first == "call" {
        let (callee, args) = parse_call_tail(p, module, ctx)?;
        let site = module.fresh_call_site();
        module.funcs[fid.index()]
            .block_mut(b)
            .insts
            .push(Inst::Call {
                dst: None,
                callee,
                args,
                site,
            });
        return Ok(None);
    }

    // otherwise: `dst = rhs`
    let dst = ctx
        .vars
        .get(&first)
        .copied()
        .ok_or_else(|| p.err(format!("unknown var `{first}`")))?;
    p.expect_punct('=')?;

    let rhs_start = p.peek().cloned();
    let inst = match rhs_start {
        Some(Tok::Ident(k)) => {
            let k2 = k.clone();
            if let Some(rest) = k2.strip_prefix("load.a.") {
                p.next();
                let ty = ty_by_name(rest).ok_or_else(|| p.err("bad load type"))?;
                let (base, offset) = parse_addr(p, module, ctx)?;
                let site = module.fresh_mem_site();
                Inst::Load {
                    dst,
                    base,
                    offset,
                    ty,
                    spec: LoadSpec::Advanced,
                    site,
                }
            } else if let Some(rest) = k2.strip_prefix("load.s.") {
                p.next();
                let ty = ty_by_name(rest).ok_or_else(|| p.err("bad load type"))?;
                let (base, offset) = parse_addr(p, module, ctx)?;
                let site = module.fresh_mem_site();
                Inst::Load {
                    dst,
                    base,
                    offset,
                    ty,
                    spec: LoadSpec::Speculative,
                    site,
                }
            } else if let Some(rest) = k2.strip_prefix("load.") {
                p.next();
                let ty = ty_by_name(rest).ok_or_else(|| p.err("bad load type"))?;
                let (base, offset) = parse_addr(p, module, ctx)?;
                let site = module.fresh_mem_site();
                Inst::Load {
                    dst,
                    base,
                    offset,
                    ty,
                    spec: LoadSpec::Normal,
                    site,
                }
            } else if let Some(rest) = k2.strip_prefix("ldc.") {
                p.next();
                let ty = ty_by_name(rest).ok_or_else(|| p.err("bad check type"))?;
                let (base, offset) = parse_addr(p, module, ctx)?;
                let site = module.fresh_mem_site();
                Inst::CheckLoad {
                    dst,
                    base,
                    offset,
                    ty,
                    kind: CheckKind::Alat,
                    site,
                }
            } else if let Some(rest) = k2.strip_prefix("chks.") {
                p.next();
                let ty = ty_by_name(rest).ok_or_else(|| p.err("bad check type"))?;
                let (base, offset) = parse_addr(p, module, ctx)?;
                let site = module.fresh_mem_site();
                Inst::CheckLoad {
                    dst,
                    base,
                    offset,
                    ty,
                    kind: CheckKind::Nat,
                    site,
                }
            } else if k2 == "call" {
                p.next();
                let (callee, args) = parse_call_tail(p, module, ctx)?;
                let site = module.fresh_call_site();
                Inst::Call {
                    dst: Some(dst),
                    callee,
                    args,
                    site,
                }
            } else if k2 == "alloc" {
                p.next();
                let words = parse_operand(p, module, ctx)?;
                let site = module.fresh_alloc_site();
                Inst::Alloc { dst, words, site }
            } else if let Some(op) = binop_by_name(&k2) {
                p.next();
                let a = parse_operand(p, module, ctx)?;
                p.expect_punct(',')?;
                let bb = parse_operand(p, module, ctx)?;
                Inst::Bin { dst, op, a, b: bb }
            } else if let Some(op) = unop_by_name(&k2) {
                p.next();
                let a = parse_operand(p, module, ctx)?;
                Inst::Un { dst, op, a }
            } else {
                // copy from a var
                let src = parse_operand(p, module, ctx)?;
                Inst::Copy { dst, src }
            }
        }
        _ => {
            let src = parse_operand(p, module, ctx)?;
            Inst::Copy { dst, src }
        }
    };
    module.funcs[fid.index()].block_mut(b).insts.push(inst);
    Ok(None)
}

fn parse_call_tail(
    p: &mut Parser,
    module: &Module,
    ctx: &FuncCtx,
) -> Result<(FuncId, Vec<Operand>), ParseError> {
    let name = p.ident()?;
    let callee = module
        .func_by_name(&name)
        .ok_or_else(|| p.err(format!("unknown function `{name}`")))?;
    p.expect_punct('(')?;
    let mut args = Vec::new();
    if !p.eat_punct(')') {
        loop {
            args.push(parse_operand(p, module, ctx)?);
            if !p.eat_punct(',') {
                break;
            }
        }
        p.expect_punct(')')?;
    }
    Ok((callee, args))
}

fn ty_by_name(s: &str) -> Option<Ty> {
    match s {
        "i64" => Some(Ty::I64),
        "f64" => Some(Ty::F64),
        "ptr" => Some(Ty::Ptr),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::display::print_module;

    const LOOPY: &str = r#"
global sum: i64[1]
global tab: f64[4] = [1.0, 2.5, -3.0, 0.0]

func count(n: i64) -> i64 {
  var i: i64
  var c: i64
  var s: i64
  var s2: i64
  var r: i64
entry:
  i = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  s = load.i64 [@sum]
  s2 = add s, 1
  store.i64 [@sum], s2
  i = add i, 1
  jmp head
exit:
  r = load.i64 [@sum]
  ret r
}
"#;

    #[test]
    fn parses_loop() {
        let m = parse_module(LOOPY).unwrap();
        assert_eq!(m.globals.len(), 2);
        assert_eq!(m.globals[1].init.len(), 4);
        assert_eq!(m.funcs.len(), 1);
        assert_eq!(m.funcs[0].blocks.len(), 4);
        crate::verify::verify_module(&m).unwrap();
    }

    #[test]
    fn print_parse_print_fixpoint() {
        let m = parse_module(LOOPY).unwrap();
        let s1 = print_module(&m);
        let m2 = parse_module(&s1).unwrap();
        let s2 = print_module(&m2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn parses_speculative_forms() {
        let src = r#"
func f(p: ptr) -> i64 {
  var a: i64
  var b: i64
entry:
  a = load.a.i64 [p + 2]
  store.i64 [p], 5
  b = ldc.i64 [p + 2]
  ret b
}
"#;
        let m = parse_module(src).unwrap();
        let f = &m.funcs[0];
        assert!(matches!(
            f.blocks[0].insts[0],
            Inst::Load {
                spec: LoadSpec::Advanced,
                offset: 2,
                ..
            }
        ));
        assert!(matches!(
            f.blocks[0].insts[2],
            Inst::CheckLoad {
                kind: CheckKind::Alat,
                ..
            }
        ));
        let s1 = print_module(&m);
        let m2 = parse_module(&s1).unwrap();
        assert_eq!(s1, print_module(&m2));
    }

    #[test]
    fn forward_calls_resolve() {
        let src = r#"
func main() -> i64 {
  var r: i64
entry:
  r = call helper(3)
  ret r
}

func helper(x: i64) -> i64 {
entry:
  ret x
}
"#;
        let m = parse_module(src).unwrap();
        assert_eq!(m.funcs.len(), 2);
        crate::verify::verify_module(&m).unwrap();
    }

    #[test]
    fn errors_carry_lines() {
        let e = parse_module("func f() {\nentry:\n  x = bogus y\n}").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn unknown_block_target_is_error() {
        let e = parse_module("func f() {\nentry:\n  jmp nowhere\n}").unwrap_err();
        assert!(e.msg.contains("unknown block"));
    }

    #[test]
    fn fallthrough_is_error() {
        let src = "func f() {\nentry:\n  jmp b\nb:\nc:\n  ret\n}";
        // block b has no terminator before label c
        let e = parse_module(src).unwrap_err();
        assert!(e.msg.contains("terminator"), "{e}");
    }

    #[test]
    fn slots_parse_and_print() {
        let src = r#"
func f() -> i64 {
  var x: i64
  slot buf: i64[8]
entry:
  store.i64 [&buf + 3], 9
  x = load.i64 [&buf + 3]
  ret x
}
"#;
        let m = parse_module(src).unwrap();
        let s1 = print_module(&m);
        assert!(s1.contains("slot buf: i64[8]"));
        assert!(s1.contains("[&buf + 3]"));
        let m2 = parse_module(&s1).unwrap();
        assert_eq!(s1, print_module(&m2));
    }
}
