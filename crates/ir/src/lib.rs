//! # specframe-ir
//!
//! The mid-level intermediate representation used by the `specframe`
//! speculative-compiler framework, a reproduction of *"A Compiler Framework
//! for Speculative Analysis and Optimizations"* (PLDI 2003).
//!
//! The IR plays the role that WHIRL played inside ORC in the paper: a typed,
//! C-like, three-address program representation in which **all memory
//! traffic is explicit**. Scalars live in an unbounded set of virtual
//! registers ([`VarId`]); memory consists of globals ([`GlobalId`]), stack
//! slots ([`SlotId`]) and heap objects created by [`Inst::Alloc`]. A memory
//! access is *direct* when its base address is a [`Operand::GlobalAddr`] or
//! [`Operand::SlotAddr`] (the paper's "real variable" references such as
//! `a`), and *indirect* when the base is a register (the paper's `*p`).
//!
//! The distinction matters because the entire paper is about what a compiler
//! may assume about the interaction between direct and indirect references:
//! non-speculative analyses must honour every may-alias, while the
//! speculative SSA form of §3 lets optimizations ignore *unlikely* aliases
//! and recover through hardware checks (`ld.a`/`ld.c`/`chk.a` — see
//! [`LoadSpec`] and [`Inst::CheckLoad`]).
//!
//! ## Layout conventions
//!
//! Memory is word-addressed: every address names an 8-byte cell holding an
//! `i64` or `f64`. Pointers are plain `i64` word addresses. Offsets in
//! addressing modes (`[p + 3]`) are in words.
//!
//! ## Module map
//!
//! * [`types`] — value types and runtime values
//! * [`ids`] — index newtypes for every IR entity
//! * [`inst`] — operands, instructions, terminators, speculation flags
//! * [`function`] — blocks, functions, globals, modules
//! * [`builder`] — programmatic construction API
//! * [`display`] — pretty printer (round-trips through the parser)
//! * [`parse`] — textual parser
//! * [`verify`] — structural verifier

pub mod builder;
pub mod dense;
pub mod display;
pub mod function;
pub mod fx;
pub mod ids;
pub mod inst;
pub mod parse;
pub mod types;
pub mod verify;

pub use builder::{FuncBuilder, ModuleBuilder};
pub use dense::{DenseMap, InlineVec};
pub use function::{layout_globals, Block, FuncSlot, Function, Global, Module, SlotDecl, VarDecl};
pub use fx::{FxHashMap, FxHashSet, FxHasher};
pub use ids::{AllocSiteId, BlockId, CallSiteId, FuncId, GlobalId, MemSiteId, SlotId, VarId};
pub use inst::{BinOp, CheckKind, Inst, LoadSpec, Operand, Terminator, UnOp};
pub use parse::{parse_module, ParseError};
pub use types::{Ty, Value};
pub use verify::{verify_function_in, verify_module, CalleeSig, VerifyError};
