//! Value types and runtime values.

use core::fmt;

/// The type of a register, memory cell, load or store.
///
/// The IR is deliberately small: every value is 8 bytes wide and is either an
/// integer, a double, or a pointer (a word address, represented as an `i64`
/// at run time). Types serve two purposes from the paper's evaluation:
///
/// 1. **Type-based alias analysis** (§5: "compiled at the O3 optimization
///    level with type-based alias analysis"): an `f64` access never aliases
///    an `i64` access. `Ptr` and `I64` are mutually aliasing (C-style
///    integer/pointer punning is allowed).
/// 2. **Latency selection** in the machine model: an integer load has a
///    minimal latency of 2 cycles (L1 hit) while a floating-point load has a
///    minimal latency of 9 cycles (L2 hit) on Itanium, which is why the
///    floating-point-heavy benchmarks gain the most from speculative
///    register promotion.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Ty {
    /// 64-bit signed integer.
    I64,
    /// 64-bit IEEE-754 double.
    F64,
    /// Word address (interchangeable with `I64` at run time, distinct for
    /// readability and for alias-class seeding).
    Ptr,
}

impl Ty {
    /// Whether a load/store of `self` may alias one of `other` under
    /// type-based alias analysis.
    #[inline]
    pub fn tbaa_may_alias(self, other: Ty) -> bool {
        use Ty::*;
        match (self, other) {
            (F64, F64) => true,
            (F64, _) | (_, F64) => false,
            _ => true, // I64/Ptr freely alias each other
        }
    }

    /// Whether values of this type are floating point.
    #[inline]
    pub fn is_float(self) -> bool {
        matches!(self, Ty::F64)
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::I64 => write!(f, "i64"),
            Ty::F64 => write!(f, "f64"),
            Ty::Ptr => write!(f, "ptr"),
        }
    }
}

/// A runtime value: one 8-byte memory cell or register content.
///
/// The interpreter and the machine simulator share this representation.
/// `Nat` is the IA-64 "Not a Thing" token: the deferred-exception marker a
/// control-speculative load (`ld.s`) produces when it would have faulted;
/// `chk.s` detects it and branches to recovery (Figure 1 of the paper).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// Integer or pointer payload.
    I(i64),
    /// Floating-point payload.
    F(f64),
    /// IA-64 NaT: deferred exception from a speculative load.
    Nat,
}

impl Value {
    /// Zero of the given type.
    #[inline]
    pub fn zero(ty: Ty) -> Value {
        match ty {
            Ty::F64 => Value::F(0.0),
            _ => Value::I(0),
        }
    }

    /// Extracts an integer, treating `F` via truncation.
    ///
    /// # Panics
    /// Panics on `Nat` — consuming a NaT outside `chk.s` is a program error
    /// the interpreter surfaces eagerly.
    #[inline]
    pub fn as_i64(self) -> i64 {
        match self {
            Value::I(v) => v,
            Value::F(v) => v as i64,
            Value::Nat => panic!("NaT consumed by non-check instruction"),
        }
    }

    /// Extracts a float, converting from `I` if necessary.
    ///
    /// # Panics
    /// Panics on `Nat`.
    #[inline]
    pub fn as_f64(self) -> f64 {
        match self {
            Value::I(v) => v as f64,
            Value::F(v) => v,
            Value::Nat => panic!("NaT consumed by non-check instruction"),
        }
    }

    /// Whether this is the NaT token.
    #[inline]
    pub fn is_nat(self) -> bool {
        matches!(self, Value::Nat)
    }

    /// Bitwise equality used by the ALAT/value-equality checks: `NaN == NaN`
    /// holds (we compare bit patterns, like hardware does).
    #[inline]
    pub fn bits_eq(self, other: Value) -> bool {
        match (self, other) {
            (Value::I(a), Value::I(b)) => a == b,
            (Value::F(a), Value::F(b)) => a.to_bits() == b.to_bits(),
            (Value::Nat, Value::Nat) => true,
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I(v) => write!(f, "{v}"),
            Value::F(v) => write!(f, "{v:?}"),
            Value::Nat => write!(f, "NaT"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tbaa_separates_float_from_int() {
        assert!(!Ty::F64.tbaa_may_alias(Ty::I64));
        assert!(!Ty::I64.tbaa_may_alias(Ty::F64));
        assert!(Ty::F64.tbaa_may_alias(Ty::F64));
        assert!(Ty::I64.tbaa_may_alias(Ty::Ptr));
        assert!(Ty::Ptr.tbaa_may_alias(Ty::I64));
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::I(7).as_f64(), 7.0);
        assert_eq!(Value::F(3.9).as_i64(), 3);
        assert_eq!(Value::zero(Ty::F64), Value::F(0.0));
        assert_eq!(Value::zero(Ty::Ptr), Value::I(0));
    }

    #[test]
    fn bits_eq_handles_nan() {
        let nan = Value::F(f64::NAN);
        assert!(nan.bits_eq(nan));
        assert!(!Value::I(0).bits_eq(Value::F(0.0)));
        assert!(Value::Nat.bits_eq(Value::Nat));
    }

    #[test]
    #[should_panic(expected = "NaT consumed")]
    fn nat_panics_on_use() {
        let _ = Value::Nat.as_i64();
    }
}
