//! Blocks, functions, globals and modules.

use crate::ids::{AllocSiteId, BlockId, CallSiteId, FuncId, GlobalId, MemSiteId, SlotId, VarId};
use crate::inst::{Inst, Terminator};
use crate::types::{Ty, Value};

/// A basic block: straight-line instructions plus one terminator.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// Human-readable label (unique within the function).
    pub name: String,
    /// Straight-line body.
    pub insts: Vec<Inst>,
    /// Control transfer out of the block.
    pub term: Terminator,
}

impl Block {
    /// An empty block ending in `ret` (placeholder until sealed).
    pub fn new(name: impl Into<String>) -> Block {
        Block {
            name: name.into(),
            insts: Vec::new(),
            term: Terminator::Ret(None),
        }
    }
}

/// A register declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct VarDecl {
    /// Human-readable name (unique within the function).
    pub name: String,
    /// Register type.
    pub ty: Ty,
}

/// A stack slot declaration: addressable local memory.
///
/// Slots are the IR encoding of address-taken locals and local
/// arrays/structs — the "real variables" that participate in χ/μ aliasing.
#[derive(Clone, Debug, PartialEq)]
pub struct SlotDecl {
    /// Human-readable name (unique within the function).
    pub name: String,
    /// Size in 8-byte words.
    pub words: u32,
    /// Element type, for TBAA.
    pub ty: Ty,
}

/// A function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    /// Function name (unique within the module).
    pub name: String,
    /// The first `params` entries of `vars` are the parameters, in order.
    pub params: u32,
    /// Return type, if the function returns a value.
    pub ret_ty: Option<Ty>,
    /// All registers, parameters first.
    pub vars: Vec<VarDecl>,
    /// All stack slots.
    pub slots: Vec<SlotDecl>,
    /// All basic blocks; `blocks[0]` is the entry.
    pub blocks: Vec<Block>,
}

impl Function {
    /// The entry block id.
    #[inline]
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Iterates over block ids in layout order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Immutable block access.
    #[inline]
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    /// Mutable block access.
    #[inline]
    pub fn block_mut(&mut self, b: BlockId) -> &mut Block {
        &mut self.blocks[b.index()]
    }

    /// Parameter ids, in order.
    pub fn param_ids(&self) -> impl Iterator<Item = VarId> {
        (0..self.params).map(VarId)
    }

    /// The declared type of a register.
    #[inline]
    pub fn var_ty(&self, v: VarId) -> Ty {
        self.vars[v.index()].ty
    }

    /// Appends a fresh register and returns its id.
    pub fn new_var(&mut self, name: impl Into<String>, ty: Ty) -> VarId {
        let id = VarId::from_index(self.vars.len());
        self.vars.push(VarDecl {
            name: name.into(),
            ty,
        });
        id
    }

    /// Appends a fresh (empty, `ret`-terminated) block and returns its id.
    pub fn new_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId::from_index(self.blocks.len());
        self.blocks.push(Block::new(name));
        id
    }

    /// Predecessor lists for every block, in one pass.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in self.block_ids() {
            for s in self.block(b).term.successors() {
                preds[s.index()].push(b);
            }
        }
        preds
    }

    /// Total instruction count (for size reporting).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

/// A module-level global memory object.
#[derive(Clone, Debug)]
pub struct Global {
    /// Global name (unique within the module).
    pub name: String,
    /// Size in 8-byte words.
    pub words: u32,
    /// Element type, for TBAA.
    pub ty: Ty,
    /// Optional initializer; missing cells are zero of `ty`.
    pub init: Vec<Value>,
}

/// A whole program: globals plus functions, with module-wide site counters.
///
/// The site counters make every memory reference, call and allocation in the
/// module uniquely identifiable, which is what lets alias profiles collected
/// by `specframe-profile` be consumed later by `specframe-hssa` even after
/// optimizations shuffle instructions around.
#[derive(Clone, Debug, Default)]
pub struct Module {
    /// All globals.
    pub globals: Vec<Global>,
    /// All functions.
    pub funcs: Vec<Function>,
    /// Next unissued memory-site id.
    pub next_mem_site: u32,
    /// Next unissued allocation-site id.
    pub next_alloc_site: u32,
    /// Next unissued call-site id.
    pub next_call_site: u32,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Module {
        Module::default()
    }

    /// Looks a function up by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(FuncId::from_index)
    }

    /// Looks a global up by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(GlobalId::from_index)
    }

    /// Immutable function access.
    #[inline]
    pub fn func(&self, f: FuncId) -> &Function {
        &self.funcs[f.index()]
    }

    /// Mutable function access.
    #[inline]
    pub fn func_mut(&mut self, f: FuncId) -> &mut Function {
        &mut self.funcs[f.index()]
    }

    /// Issues a fresh memory-reference site id.
    pub fn fresh_mem_site(&mut self) -> MemSiteId {
        let id = MemSiteId(self.next_mem_site);
        self.next_mem_site += 1;
        id
    }

    /// Issues a fresh allocation site id.
    pub fn fresh_alloc_site(&mut self) -> AllocSiteId {
        let id = AllocSiteId(self.next_alloc_site);
        self.next_alloc_site += 1;
        id
    }

    /// Issues a fresh call site id.
    pub fn fresh_call_site(&mut self) -> CallSiteId {
        let id = CallSiteId(self.next_call_site);
        self.next_call_site += 1;
        id
    }

    /// Total instruction count across all functions.
    pub fn inst_count(&self) -> usize {
        self.funcs.iter().map(Function::inst_count).sum()
    }

    /// Static layout of global memory: returns, for each global, its base
    /// word address, laying globals out contiguously from address
    /// [`Module::GLOBAL_BASE`]. Both the interpreter and the machine
    /// simulator use this layout, so profiled LOCs agree between them.
    pub fn global_layout(&self) -> Vec<i64> {
        layout_globals(&self.globals)
    }

    /// First word address used for globals. Address 0 is kept invalid so
    /// null-pointer dereferences are catchable.
    pub const GLOBAL_BASE: i64 = 16;
}

/// [`Module::global_layout`] over a bare global list, for callers that
/// hold only the globals (the driver's per-function workers).
pub fn layout_globals(globals: &[Global]) -> Vec<i64> {
    let mut addr = Module::GLOBAL_BASE;
    let mut out = Vec::with_capacity(globals.len());
    for g in globals {
        out.push(addr);
        addr += i64::from(g.words);
    }
    out
}

/// Identifies one slot within one function — needed module-wide because
/// [`SlotId`] alone is function-local.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FuncSlot {
    /// Owning function.
    pub func: FuncId,
    /// Slot within that function.
    pub slot: SlotId,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Operand, Terminator};

    #[test]
    fn predecessors_computed() {
        let mut f = Function {
            name: "t".into(),
            params: 0,
            ret_ty: None,
            vars: vec![],
            slots: vec![],
            blocks: vec![],
        };
        let b0 = f.new_block("entry");
        let b1 = f.new_block("a");
        let b2 = f.new_block("b");
        f.block_mut(b0).term = Terminator::Br {
            cond: Operand::ConstI(1),
            then_: b1,
            else_: b2,
        };
        f.block_mut(b1).term = Terminator::Jump(b2);
        let preds = f.predecessors();
        assert_eq!(preds[b0.index()], vec![]);
        assert_eq!(preds[b1.index()], vec![b0]);
        assert_eq!(preds[b2.index()], vec![b0, b1]);
    }

    #[test]
    fn global_layout_is_contiguous_from_base() {
        let mut m = Module::new();
        m.globals.push(Global {
            name: "a".into(),
            words: 4,
            ty: Ty::I64,
            init: vec![],
        });
        m.globals.push(Global {
            name: "b".into(),
            words: 2,
            ty: Ty::F64,
            init: vec![],
        });
        assert_eq!(
            m.global_layout(),
            vec![Module::GLOBAL_BASE, Module::GLOBAL_BASE + 4]
        );
    }

    #[test]
    fn site_counters_are_monotone() {
        let mut m = Module::new();
        assert_eq!(m.fresh_mem_site(), MemSiteId(0));
        assert_eq!(m.fresh_mem_site(), MemSiteId(1));
        assert_eq!(m.fresh_alloc_site(), AllocSiteId(0));
        assert_eq!(m.fresh_call_site(), CallSiteId(0));
    }

    #[test]
    fn lookup_by_name() {
        let mut m = Module::new();
        m.globals.push(Global {
            name: "g".into(),
            words: 1,
            ty: Ty::I64,
            init: vec![],
        });
        assert_eq!(m.global_by_name("g"), Some(GlobalId(0)));
        assert_eq!(m.global_by_name("nope"), None);
        assert_eq!(m.func_by_name("nope"), None);
    }
}
