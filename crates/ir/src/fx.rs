//! A deterministic, non-cryptographic hasher for compiler-internal maps.
//!
//! `std`'s default `RandomState` (SipHash-1-3 with a per-process random
//! key) is the right default against untrusted input, but every map in
//! this workspace is keyed by compiler-internal ids — dense integers and
//! small structs an adversary never controls. For those, the multiply-
//! rotate scheme used by Firefox (and rustc) is several times faster per
//! lookup. The build environment is offline, so the `rustc-hash` crate is
//! reimplemented here in its entirety — it is ~20 lines.
//!
//! Determinism note: hash-iteration order still must never leak into
//! output (the driver's byte-identical `--jobs` contract). That rule
//! predates this hasher — `RandomState` made any such leak fail loudly in
//! tests, and every emission site sorts explicitly — so swapping the
//! hasher changes per-lookup cost, not observable behavior.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Firefox/rustc multiply-rotate hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0x1234_5678_9abc_def0);
        b.write_u64(0x1234_5678_9abc_def0);
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0);
    }

    #[test]
    fn maps_behave_like_std() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i * 7), i);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, i * 7)), Some(&i));
        }
        assert_eq!(m.len(), 1000);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(42));
        assert!(!s.insert(42));
    }
}
