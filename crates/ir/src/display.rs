//! Pretty printer.
//!
//! Output round-trips through [`crate::parse::parse_module`] up to site-id
//! renumbering: `print(parse(print(m))) == print(m)`.

use crate::function::{Function, Global, Module};
use crate::inst::{Inst, Operand, Terminator};
use crate::types::Value;
use core::fmt::Write;

/// Renders a whole module in the textual IR syntax.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    for g in &m.globals {
        write!(out, "global {}: {}[{}]", g.name, g.ty, g.words).unwrap();
        if !g.init.is_empty() {
            out.push_str(" = [");
            for (i, v) in g.init.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_value(&mut out, *v);
            }
            out.push(']');
        }
        out.push('\n');
    }
    if !m.globals.is_empty() {
        out.push('\n');
    }
    let names = func_name_table(m);
    for f in &m.funcs {
        print_function_in(&mut out, &m.globals, &names, f);
        out.push('\n');
    }
    out
}

/// The function-name table (indexed by `FuncId`) that
/// [`print_function_in`] resolves call targets against. Cloned out of the
/// module once so printing can proceed on a bare [`Function`] — e.g. in a
/// parallel pipeline worker that owns no module.
pub fn func_name_table(m: &Module) -> Vec<String> {
    m.funcs.iter().map(|f| f.name.clone()).collect()
}

fn print_value(out: &mut String, v: Value) {
    match v {
        Value::I(x) => write!(out, "{x}").unwrap(),
        Value::F(x) => {
            if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                write!(out, "{x:.1}").unwrap()
            } else {
                write!(out, "{x}").unwrap()
            }
        }
        Value::Nat => out.push_str("NaT"),
    }
}

/// Renders one function.
pub fn print_function(out: &mut String, m: &Module, f: &Function) {
    print_function_in(out, &m.globals, &func_name_table(m), f);
}

/// [`print_function`] over the pieces of module state a parallel worker
/// actually owns: the global table and the [`func_name_table`]. Byte-for-
/// byte identical to printing through the module.
pub fn print_function_in(
    out: &mut String,
    globals: &[Global],
    func_names: &[String],
    f: &Function,
) {
    write!(out, "func {}(", f.name).unwrap();
    for i in 0..f.params {
        if i > 0 {
            out.push_str(", ");
        }
        let d = &f.vars[i as usize];
        write!(out, "{}: {}", d.name, d.ty).unwrap();
    }
    out.push(')');
    if let Some(t) = f.ret_ty {
        write!(out, " -> {t}").unwrap();
    }
    out.push_str(" {\n");
    for d in f.vars.iter().skip(f.params as usize) {
        writeln!(out, "  var {}: {}", d.name, d.ty).unwrap();
    }
    for s in &f.slots {
        writeln!(out, "  slot {}: {}[{}]", s.name, s.ty, s.words).unwrap();
    }
    for b in &f.blocks {
        writeln!(out, "{}:", b.name).unwrap();
        for inst in &b.insts {
            out.push_str("  ");
            print_inst(out, globals, func_names, f, inst);
            out.push('\n');
        }
        out.push_str("  ");
        print_term(out, f, &b.term);
        out.push('\n');
    }
    out.push_str("}\n");
}

fn opnd(globals: &[Global], f: &Function, o: Operand) -> String {
    match o {
        Operand::Var(v) => f.vars[v.index()].name.clone(),
        Operand::ConstI(c) => format!("{c}"),
        Operand::ConstF(c) => {
            if c.fract() == 0.0 && c.is_finite() && c.abs() < 1e15 {
                format!("{c:.1}")
            } else {
                format!("{c}")
            }
        }
        Operand::GlobalAddr(g) => format!("@{}", globals[g.index()].name),
        Operand::SlotAddr(s) => format!("&{}", f.slots[s.index()].name),
    }
}

fn addr(globals: &[Global], f: &Function, base: Operand, offset: i64) -> String {
    let b = opnd(globals, f, base);
    if offset == 0 {
        format!("[{b}]")
    } else if offset > 0 {
        format!("[{b} + {offset}]")
    } else {
        format!("[{b} - {}]", -offset)
    }
}

fn print_inst(
    out: &mut String,
    globals: &[Global],
    func_names: &[String],
    f: &Function,
    inst: &Inst,
) {
    let vname = |v: crate::ids::VarId| f.vars[v.index()].name.clone();
    match inst {
        Inst::Bin { dst, op, a, b } => write!(
            out,
            "{} = {} {}, {}",
            vname(*dst),
            op,
            opnd(globals, f, *a),
            opnd(globals, f, *b)
        )
        .unwrap(),
        Inst::Un { dst, op, a } => {
            write!(out, "{} = {} {}", vname(*dst), op, opnd(globals, f, *a)).unwrap()
        }
        Inst::Copy { dst, src } => {
            write!(out, "{} = {}", vname(*dst), opnd(globals, f, *src)).unwrap()
        }
        Inst::Load {
            dst,
            base,
            offset,
            ty,
            spec,
            ..
        } => write!(
            out,
            "{} = load{}.{} {}",
            vname(*dst),
            spec.suffix(),
            ty,
            addr(globals, f, *base, *offset)
        )
        .unwrap(),
        Inst::Store {
            base,
            offset,
            val,
            ty,
            ..
        } => write!(
            out,
            "store.{} {}, {}",
            ty,
            addr(globals, f, *base, *offset),
            opnd(globals, f, *val)
        )
        .unwrap(),
        Inst::CheckLoad {
            dst,
            base,
            offset,
            ty,
            kind,
            ..
        } => write!(
            out,
            "{} = {}.{} {}",
            vname(*dst),
            kind.mnemonic(),
            ty,
            addr(globals, f, *base, *offset)
        )
        .unwrap(),
        Inst::Call {
            dst, callee, args, ..
        } => {
            if let Some(d) = dst {
                write!(out, "{} = ", vname(*d)).unwrap();
            }
            write!(out, "call {}(", func_names[callee.index()]).unwrap();
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&opnd(globals, f, *a));
            }
            out.push(')');
        }
        Inst::Alloc { dst, words, .. } => {
            write!(out, "{} = alloc {}", vname(*dst), opnd(globals, f, *words)).unwrap()
        }
    }
}

fn print_term(out: &mut String, f: &Function, t: &Terminator) {
    match t {
        Terminator::Jump(b) => write!(out, "jmp {}", f.blocks[b.index()].name).unwrap(),
        Terminator::Br { cond, then_, else_ } => {
            let c = match cond {
                Operand::Var(v) => f.vars[v.index()].name.clone(),
                Operand::ConstI(c) => format!("{c}"),
                _ => unreachable!("br condition must be var or int const"),
            };
            write!(
                out,
                "br {}, {}, {}",
                c,
                f.blocks[then_.index()].name,
                f.blocks[else_.index()].name
            )
            .unwrap()
        }
        Terminator::Ret(None) => out.push_str("ret"),
        Terminator::Ret(Some(v)) => {
            let s = match v {
                Operand::Var(x) => f.vars[x.index()].name.clone(),
                Operand::ConstI(c) => format!("{c}"),
                Operand::ConstF(c) => format!("{c:?}"),
                _ => unreachable!("ret value must be var or const"),
            };
            write!(out, "ret {s}").unwrap()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::BinOp;
    use crate::types::Ty;

    #[test]
    fn prints_simple_function() {
        let mut mb = ModuleBuilder::new();
        let g = mb.global("g", 2, Ty::F64);
        let f = mb.declare_func("f", &[("x", Ty::I64)], Some(Ty::F64));
        {
            let mut fb = mb.define(f);
            let v = fb.load(Operand::GlobalAddr(g), 1, Ty::F64);
            let w = fb.bin(BinOp::FAdd, v.into(), 1.5.into());
            fb.ret(Some(w.into()));
        }
        let m = mb.finish();
        let s = print_module(&m);
        assert!(s.contains("global g: f64[2]"));
        assert!(s.contains("func f(x: i64) -> f64 {"));
        assert!(s.contains("t0 = load.f64 [@g + 1]"));
        assert!(s.contains("t1 = fadd t0, 1.5"));
        assert!(s.contains("ret t1"));
    }

    use crate::inst::Operand;

    #[test]
    fn negative_offset_prints_minus() {
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_func("f", &[("p", Ty::Ptr)], None);
        {
            let mut fb = mb.define(f);
            let p = fb.param(0);
            fb.load(Operand::Var(p), -2, Ty::I64);
            fb.ret(None);
        }
        let s = print_module(&mb.finish());
        assert!(s.contains("[p - 2]"), "{s}");
    }
}
