//! Property test: the printer and parser are inverse up to site
//! renumbering — `print(parse(print(m))) == print(m)` for randomly built
//! modules covering every instruction form.

use proptest::prelude::*;
use specframe_ir::{
    display::print_module, parse_module, verify_module, BinOp, CheckKind, ModuleBuilder, Operand,
    Ty, UnOp,
};

#[derive(Debug, Clone, Copy)]
enum Op {
    Bin(usize),
    Un(usize),
    CopyConstI(i64),
    CopyConstF(u32),
    LoadG(u8),
    LoadSlot(u8),
    StoreG(u8),
    CheckAlat(u8),
    CheckNat(u8),
    Alloc(u8),
    CallSelfless,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..BinOp::ALL.len()).prop_map(Op::Bin),
        (0usize..UnOp::ALL.len()).prop_map(Op::Un),
        any::<i64>().prop_map(Op::CopyConstI),
        any::<u32>().prop_map(Op::CopyConstF),
        (0u8..4).prop_map(Op::LoadG),
        (0u8..4).prop_map(Op::LoadSlot),
        (0u8..4).prop_map(Op::StoreG),
        (0u8..4).prop_map(Op::CheckAlat),
        (0u8..4).prop_map(Op::CheckNat),
        (1u8..8).prop_map(Op::Alloc),
        Just(Op::CallSelfless),
    ]
}

fn build(ops: &[Op]) -> specframe_ir::Module {
    let mut mb = ModuleBuilder::new();
    let g = mb.global("g", 8, Ty::I64);
    let gf = mb.global_init(
        "gf",
        Ty::F64,
        vec![specframe_ir::Value::F(1.5), specframe_ir::Value::F(-2.0)],
    );
    let helper = mb.declare_func("helper", &[("x", Ty::I64)], Some(Ty::I64));
    {
        let mut fb = mb.define(helper);
        let x = fb.param(0);
        fb.ret(Some(x.into()));
    }
    let f = mb.declare_func("main", &[("n", Ty::I64)], Some(Ty::I64));
    {
        let mut fb = mb.define(f);
        let n = fb.param(0);
        let slot = fb.slot("buf", 8, Ty::I64);
        let iacc = fb.var("iacc", Ty::I64);
        let facc = fb.var("facc", Ty::F64);
        fb.copy_to(iacc, Operand::ConstI(1));
        fb.copy_to(facc, Operand::ConstF(0.5));
        for op in ops {
            match *op {
                Op::Bin(i) => {
                    let o = BinOp::ALL[i];
                    let (a, b): (Operand, Operand) = if o.takes_float() {
                        (facc.into(), Operand::ConstF(2.5))
                    } else {
                        (iacc.into(), Operand::ConstI(3))
                    };
                    let d = fb.bin(o, a, b);
                    if o.result_ty() == Ty::F64 {
                        fb.copy_to(facc, d.into());
                    } else {
                        fb.copy_to(iacc, d.into());
                    }
                }
                Op::Un(i) => {
                    let o = UnOp::ALL[i];
                    let a: Operand = if matches!(o, UnOp::FNeg | UnOp::F2I) {
                        facc.into()
                    } else {
                        iacc.into()
                    };
                    let d = fb.un(o, a);
                    if o.result_ty() == Ty::F64 {
                        fb.copy_to(facc, d.into());
                    } else {
                        fb.copy_to(iacc, d.into());
                    }
                }
                Op::CopyConstI(c) => fb.copy_to(iacc, Operand::ConstI(c)),
                Op::CopyConstF(c) => fb.copy_to(facc, Operand::ConstF(f64::from(c) * 0.5)),
                Op::LoadG(k) => {
                    let d = fb.load(Operand::GlobalAddr(g), i64::from(k), Ty::I64);
                    fb.copy_to(iacc, d.into());
                }
                Op::LoadSlot(k) => {
                    let d = fb.load(Operand::SlotAddr(slot), i64::from(k), Ty::I64);
                    fb.copy_to(iacc, d.into());
                }
                Op::StoreG(k) => {
                    fb.store(Operand::GlobalAddr(g), i64::from(k), iacc.into(), Ty::I64)
                }
                Op::CheckAlat(k) => {
                    let d = fb.var(
                        format!("ca{}", fb.current().0 * 100 + k as u32 + 900),
                        Ty::I64,
                    );
                    fb.check_load_to(
                        d,
                        Operand::GlobalAddr(g),
                        i64::from(k),
                        Ty::I64,
                        CheckKind::Alat,
                    );
                }
                Op::CheckNat(k) => {
                    let d = fb.var(
                        format!("cn{}", fb.current().0 * 100 + k as u32 + 100),
                        Ty::I64,
                    );
                    fb.check_load_to(
                        d,
                        Operand::SlotAddr(slot),
                        i64::from(k),
                        Ty::I64,
                        CheckKind::Nat,
                    );
                }
                Op::Alloc(w) => {
                    let d = fb.alloc(Operand::ConstI(i64::from(w)));
                    let _ = d;
                }
                Op::CallSelfless => {
                    let r = fb.call(helper, &[n.into()]).unwrap();
                    fb.copy_to(iacc, r.into());
                }
            }
        }
        // exercise the float global too
        let fv = fb.load(Operand::GlobalAddr(gf), 1, Ty::F64);
        fb.copy_to(facc, fv.into());
        fb.ret(Some(iacc.into()));
    }
    mb.finish()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn print_parse_print_is_identity(ops in proptest::collection::vec(op_strategy(), 0..24)) {
        // variable names with duplicate check-var names can collide when the
        // same op repeats in one block; dedupe by filtering such failures out
        let m = build(&ops);
        if verify_module(&m).is_err() {
            // duplicate names from repeated check ops: skip, not a parser bug
            return Ok(());
        }
        let s1 = print_module(&m);
        let m2 = parse_module(&s1)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{s1}"));
        verify_module(&m2).unwrap();
        let s2 = print_module(&m2);
        prop_assert_eq!(s1, s2);
    }
}

/// The same fixed point over every real workload kernel: the hand-written
/// programs exercise syntax corners (float globals, slots, calls, pointer
/// arithmetic) the generator above may under-sample.
#[test]
fn workload_kernels_roundtrip_to_fixed_point() {
    use specframe_workloads::{all_workloads, Scale};
    for w in all_workloads(Scale::Test) {
        let s1 = print_module(&w.module);
        let m2 = parse_module(&s1).unwrap_or_else(|e| panic!("{}: re-parse failed: {e}", w.name));
        verify_module(&m2).unwrap_or_else(|e| panic!("{}: verify failed: {e}", w.name));
        let s2 = print_module(&m2);
        assert_eq!(
            s1, s2,
            "{}: print->parse->print is not a fixed point",
            w.name
        );
        // and once more: the second print must already be stable
        let m3 = parse_module(&s2).unwrap();
        assert_eq!(
            s2,
            print_module(&m3),
            "{}: second roundtrip drifted",
            w.name
        );
    }
}
