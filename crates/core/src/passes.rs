//! The pass-manager seam: named pipeline stages, per-stage snapshot
//! requests, and early stopping.
//!
//! The per-function pipeline of [`crate::driver`] runs a fixed sequence of
//! stages. Each stage has a stable public name so tools can address it:
//!
//! | name        | stage                                                  |
//! |-------------|--------------------------------------------------------|
//! | `refine`    | flow-sensitive pointer refinement (Figure 4, last box) |
//! | `hssa`      | speculative SSA construction with χ/μ flags (§3)       |
//! | `ssapre`    | speculative SSAPRE: Φ-Insertion, Rename, CodeMotion (§4) |
//! | `strength`  | strength reduction                                     |
//! | `lftr`      | linear-function test replacement over SR temporaries   |
//! | `storeprom` | store promotion (loop-invariant store sinking)         |
//! | `lower`     | out-of-SSA lowering back to executable IR              |
//!
//! A [`PipelineHooks`] value says which stages to snapshot
//! (`--dump-after`) and where to stop (`--stop-after`). Snapshots are
//! taken per function inside the parallel workers and joined in function
//! index order, so the rendered output is byte-identical for every job
//! count — this is what the `spectest` golden suite matches against.

use std::fmt;
use std::str::FromStr;

/// A named stage of the per-function pipeline, in execution order.
///
/// `Ord` follows pipeline order, so `a <= b` means "`a` runs no later
/// than `b`".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pass {
    /// Flow-sensitive pointer refinement on the input IR.
    Refine,
    /// Speculative SSA construction (χ/μ lists + speculation flags).
    Hssa,
    /// The speculative SSAPRE worklist (PRE + register promotion).
    Ssapre,
    /// Strength reduction.
    Strength,
    /// Linear-function test replacement over the SR temporaries.
    Lftr,
    /// Store promotion (sinking loop-invariant direct stores).
    Storeprom,
    /// Out-of-SSA lowering.
    Lower,
}

impl Pass {
    /// Every pass, in pipeline order.
    pub const ALL: [Pass; 7] = [
        Pass::Refine,
        Pass::Hssa,
        Pass::Ssapre,
        Pass::Strength,
        Pass::Lftr,
        Pass::Storeprom,
        Pass::Lower,
    ];

    /// The stable public name (the `--dump-after` spelling).
    pub fn name(self) -> &'static str {
        match self {
            Pass::Refine => "refine",
            Pass::Hssa => "hssa",
            Pass::Ssapre => "ssapre",
            Pass::Strength => "strength",
            Pass::Lftr => "lftr",
            Pass::Storeprom => "storeprom",
            Pass::Lower => "lower",
        }
    }
}

// the PassSet bitmask below holds one bit per variant
const _: () = assert!(Pass::ALL.len() <= 16, "PassSet(u16) is full — widen it");

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Pass {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Pass::ALL
            .into_iter()
            .find(|p| p.name() == s)
            .ok_or_else(|| {
                format!(
                    "unknown pass `{s}` (expected one of: {})",
                    Pass::ALL.map(|p| p.name()).join(", ")
                )
            })
    }
}

/// A small set of [`Pass`]es (bitmask over the stages).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassSet(u16);

impl PassSet {
    /// The empty set.
    pub const EMPTY: PassSet = PassSet(0);

    /// Every pass.
    pub fn all() -> PassSet {
        Pass::ALL.into_iter().collect()
    }

    /// Adds `p`.
    pub fn insert(&mut self, p: Pass) {
        self.0 |= 1u16 << p as u16;
    }

    /// Membership test.
    pub fn contains(self, p: Pass) -> bool {
        self.0 & (1u16 << p as u16) != 0
    }

    /// True when no pass is selected.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Members in pipeline order.
    pub fn iter(self) -> impl Iterator<Item = Pass> {
        Pass::ALL.into_iter().filter(move |&p| self.contains(p))
    }

    /// Parses a comma-separated pass list (the `--dump-after` argument).
    pub fn parse_list(s: &str) -> Result<PassSet, String> {
        let mut set = PassSet::EMPTY;
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            set.insert(part.parse()?);
        }
        Ok(set)
    }
}

impl FromIterator<Pass> for PassSet {
    fn from_iter<I: IntoIterator<Item = Pass>>(iter: I) -> Self {
        let mut s = PassSet::EMPTY;
        for p in iter {
            s.insert(p);
        }
        s
    }
}

/// Snapshot/stop requests threaded through
/// [`crate::driver::optimize_with_hooks`], plus the fault-injection knobs
/// the robustness tests use to exercise the non-speculative fallback
/// deterministically.
#[derive(Debug, Clone, Default)]
pub struct PipelineHooks {
    /// Stages to snapshot (textual dump after the stage runs).
    pub dump_after: PassSet,
    /// Run the pipeline only through this stage; later *optimization*
    /// stages are skipped. Lowering back to executable IR always happens,
    /// so the resulting module stays runnable and verifiable.
    pub stop_after: Option<Pass>,
    /// Panic the *speculative* compilation of the named function
    /// (`--inject-spec-fail`), forcing the driver onto its non-speculative
    /// fallback path. Test-only; `None` in production.
    pub inject_spec_fail: Option<String>,
    /// Panic the *non-speculative fallback* of the named function too
    /// (`--inject-fallback-fail`), exhausting recovery. Test-only.
    pub inject_fallback_fail: Option<String>,
    /// Run the structural verifier (IR level after `refine`/`lower`, the
    /// HSSA checker after every HSSA-level stage) at every pass boundary
    /// (`--verify-each`), attributing any failure to the offending pass
    /// and function.
    pub verify_each: bool,
    /// Run the post-lowering speculation-safety auditor on each function's
    /// machine code (`--audit-spec`): every `ld.a`/`ld.sa` must be
    /// validated by a matching check on every path to a use.
    pub audit_spec: bool,
    /// Corrupt the named function's HSSA right after the named pass runs
    /// (`--inject-corrupt FUNC:PASS`), exercising the verify-each +
    /// per-pass-rollback recovery path deterministically. Test-only.
    pub inject_corrupt: Option<(String, Pass)>,
    /// Run the post-lowering speculative-leak auditor on each function's
    /// machine code (`--audit-leaks`): no `ld.a`/`ld.sa` value may reach
    /// an address computation or branch condition before its check. A
    /// flagged function fails compilation (degradation ladder applies).
    pub audit_leaks: bool,
    /// Like `audit_leaks`, but repair instead of reject: insert a
    /// speculation barrier before each flagged sink so the machine-level
    /// re-audit is clean (`--fence-leaks`). Implies the audit.
    pub fence_leaks: bool,
    /// Cooperative deadline token (`--deadline-ms`), polled at pass
    /// boundaries and between functions. Deliberately excluded from the
    /// cache-key fingerprint: a deadline changes when a compile stops,
    /// never what it produces.
    pub cancel: crate::cancel::CancelToken,
}

impl PipelineHooks {
    /// Whether stage `p` runs under this configuration.
    pub fn runs(&self, p: Pass) -> bool {
        self.stop_after.is_none_or(|s| p <= s)
    }

    /// Parses the `--inject-corrupt` argument: `FUNC:PASS`.
    ///
    /// # Errors
    /// Rejects a missing separator or an unknown pass name.
    pub fn parse_inject_corrupt(s: &str) -> Result<(String, Pass), String> {
        let Some((func, pass)) = s.rsplit_once(':') else {
            return Err(format!("expected FUNC:PASS, got `{s}`"));
        };
        if func.is_empty() {
            return Err(format!("expected FUNC:PASS, got `{s}`"));
        }
        Ok((func.to_string(), pass.parse()?))
    }
}

/// One per-function snapshot taken after a stage ran.
#[derive(Debug, Clone, PartialEq)]
pub struct PassDump {
    /// The stage the snapshot was taken after.
    pub pass: Pass,
    /// Name of the function the snapshot is of.
    pub func: String,
    /// The textual form: IR syntax for `refine`/`lower`, the paper-style
    /// speculative SSA dump for the HSSA-level stages.
    pub text: String,
}

/// Renders a dump collection in the stable `specc --dump-after` format:
/// one `; === dump-after <pass>: func <name> ===` header per snapshot,
/// functions in module order, stages in pipeline order within a function.
pub fn render_dumps(dumps: &[PassDump]) -> String {
    let mut out = String::new();
    for d in dumps {
        out.push_str(&format!(
            "; === dump-after {}: func {} ===\n",
            d.pass, d.func
        ));
        out.push_str(&d.text);
        if !d.text.ends_with('\n') {
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_names_roundtrip() {
        for p in Pass::ALL {
            assert_eq!(p.name().parse::<Pass>().unwrap(), p);
        }
        assert!("nope".parse::<Pass>().is_err());
    }

    #[test]
    fn pass_order_matches_pipeline() {
        assert!(Pass::Refine < Pass::Hssa);
        assert!(Pass::Hssa < Pass::Ssapre);
        assert!(Pass::Ssapre < Pass::Strength);
        assert!(Pass::Strength < Pass::Lftr);
        assert!(Pass::Lftr < Pass::Storeprom);
        assert!(Pass::Storeprom < Pass::Lower);
    }

    /// The pass registry must stay in sync across its three spellings:
    /// `Pass::name`, `PassSet::parse_list`, and the dump-hook headers
    /// rendered by [`render_dumps`].
    #[test]
    fn pass_registry_names_stay_in_sync() {
        let expected = [
            "refine",
            "hssa",
            "ssapre",
            "strength",
            "lftr",
            "storeprom",
            "lower",
        ];
        assert_eq!(Pass::ALL.map(|p| p.name()), expected);
        // parse_list accepts every registered name, individually and joined
        for name in expected {
            let s = PassSet::parse_list(name).unwrap();
            assert_eq!(s.iter().count(), 1, "{name}");
        }
        let all = PassSet::parse_list(&expected.join(",")).unwrap();
        assert_eq!(all, PassSet::all());
        // dump headers use the same spelling
        for p in Pass::ALL {
            let rendered = render_dumps(&[PassDump {
                pass: p,
                func: "f".into(),
                text: String::new(),
            }]);
            assert!(
                rendered.starts_with(&format!("; === dump-after {}: func f ===", p.name())),
                "{rendered}"
            );
        }
    }

    #[test]
    fn parse_list_accepts_commas_and_rejects_junk() {
        let s = PassSet::parse_list("hssa,ssapre").unwrap();
        assert!(s.contains(Pass::Hssa) && s.contains(Pass::Ssapre));
        assert!(!s.contains(Pass::Refine));
        assert_eq!(s.iter().count(), 2);
        assert!(PassSet::parse_list("hssa,bogus").is_err());
    }

    #[test]
    fn inject_corrupt_parses_func_colon_pass() {
        let (f, p) = PipelineHooks::parse_inject_corrupt("kern:strength").unwrap();
        assert_eq!(f, "kern");
        assert_eq!(p, Pass::Strength);
        assert!(PipelineHooks::parse_inject_corrupt("kern").is_err());
        assert!(PipelineHooks::parse_inject_corrupt(":ssapre").is_err());
        assert!(PipelineHooks::parse_inject_corrupt("kern:bogus").is_err());
    }

    #[test]
    fn hooks_stop_after_gates_later_passes() {
        let h = PipelineHooks {
            stop_after: Some(Pass::Ssapre),
            ..Default::default()
        };
        assert!(h.runs(Pass::Refine) && h.runs(Pass::Hssa) && h.runs(Pass::Ssapre));
        assert!(!h.runs(Pass::Strength) && !h.runs(Pass::Lower));
        assert!(PipelineHooks::default().runs(Pass::Lower));
    }
}
