//! # specframe-core
//!
//! **Speculative SSAPRE** — the paper's §4: the six-step SSAPRE framework
//! (Kennedy et al., TOPLAS '99) extended with
//!
//! * **data speculation**: speculative weak updates (unflagged χ operators
//!   in the speculative SSA form) are ignored during Φ-Insertion and
//!   Rename, exposing *speculative redundancy*; CodeMotion then emits
//!   advanced loads (`ld.a`) and check loads (`ld.c`) so the hardware ALAT
//!   re-validates every speculated value (Appendices A and B);
//! * **control speculation**: computations may be inserted at non-down-safe
//!   merge points when the edge profile says the speculated path is hot
//!   (Lo et al., PLDI '98) — inserted loads become `ld.s` and their reloads
//!   NaT-check loads.
//!
//! Clients implemented on top of the engine:
//!
//! * expression PRE ([`ssapre`] over arithmetic candidates);
//! * **speculative register promotion** ([`ssapre`] over direct and
//!   indirect load candidates — the optimization evaluated in §5);
//! * strength reduction and linear-function test replacement
//!   ([`strength`]).
//!
//! The top-level entry point is [`driver::optimize`], which runs the whole
//! pipeline (critical-edge split → speculative SSA → SSAPRE worklist →
//! strength reduction → out-of-SSA) over a module and reports
//! [`stats::OptStats`].

pub mod cache;
pub mod cancel;
pub mod crashpoint;
pub mod driver;
pub mod error;
pub mod expr;
pub mod lftr;
pub mod passes;
pub mod prekernel;
pub mod reduce;
pub mod ssapre;
pub mod stats;
pub mod storeprom;
pub mod strength;

pub use cache::{
    parse_store_fault_policy, CacheHealth, CacheKey, CacheOutcome, CacheStats, FaultStore,
    FuncCache, KeyContext, Storage, StoreFaultPolicy,
};
pub use cancel::{CancelToken, Watchdog};
pub use driver::{
    optimize, optimize_with, optimize_with_hooks, prepare_module, target_spec_costs,
    try_optimize_cached, try_optimize_with_hooks, ControlSpec, OptOptions, OptReport,
    PipelineConfig, SpecSource,
};
pub use error::{CompileDiag, CompileError};
pub use expr::ExprKey;
pub use lftr::lftr_hssa;
pub use passes::{render_dumps, Pass, PassDump, PassSet, PipelineHooks};
pub use prekernel::{apply_edits, reducible_loops, LoopShape, MotionEdit, SpecClient};
pub use reduce::{reduce_module, ReduceStats};
pub use ssapre::{ssapre_function, SpecPolicy};
pub use stats::{peak_rss_kb, OptStats, PassTimings};
pub use storeprom::sink_stores_hssa;
pub use strength::{strength_reduce_function, SrTemp};
