//! Named crashpoints for chaos testing.
//!
//! `SPECFRAME_CRASH_AT=<point>[:<n>]` makes the process abort the `n`th
//! time it reaches the named point (default 1). The chaos harness
//! (`tests/chaos.rs`) uses this to kill the real `specc` binary inside
//! every crash window of the cache/queue protocols and then prove that a
//! restart converges. With the variable unset, [`hit`] is a single
//! relaxed atomic load — cheap enough to leave in release builds, which
//! is the point: the harness must crash the *production* code paths.
//!
//! Registered points, in protocol order:
//!
//! | point                  | window it exposes                             |
//! |------------------------|-----------------------------------------------|
//! | `cache-pre-rename`     | cache entry temp file written, not yet renamed |
//! | `cache-post-rename`    | entry committed, caller's bookkeeping not run  |
//! | `queue-pre-resp-rename`| `.resp.tmp` written, not yet renamed           |
//! | `queue-pre-remove-req` | `.resp` committed, `.req` not yet removed      |

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Every registered crashpoint name, for harness enumeration and for
/// validating `SPECFRAME_CRASH_AT` up front.
pub const POINTS: &[&str] = &[
    "cache-pre-rename",
    "cache-post-rename",
    "queue-pre-resp-rename",
    "queue-pre-remove-req",
];

/// The environment variable read by [`hit`].
pub const ENV_VAR: &str = "SPECFRAME_CRASH_AT";

static CONFIG: OnceLock<Option<(String, u64)>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);

fn config() -> &'static Option<(String, u64)> {
    CONFIG.get_or_init(|| {
        let spec = std::env::var(ENV_VAR).ok()?;
        let (point, n) = match spec.split_once(':') {
            Some((p, n)) => (p, n.parse::<u64>().ok().filter(|n| *n >= 1)?),
            None => (spec.as_str(), 1),
        };
        if !POINTS.contains(&point) {
            eprintln!("specframe: unknown crashpoint `{point}` in {ENV_VAR} (known: {POINTS:?})");
            return None;
        }
        Some((point.to_string(), n))
    })
}

/// Marks one arrival at the named crashpoint; aborts the process if this
/// is the configured hit. Inert (one atomic load after first call) when
/// `SPECFRAME_CRASH_AT` is unset.
pub fn hit(point: &str) {
    let Some((armed, n)) = config() else { return };
    if armed != point {
        return;
    }
    if HITS.fetch_add(1, Ordering::SeqCst) + 1 == *n {
        eprintln!("specframe: crashpoint {point}:{n} reached, aborting");
        std::process::abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // config() caches the env var process-wide, so this test only checks
    // the unarmed fast path; the armed/abort path is exercised for real
    // by tests/chaos.rs against the specc binary.
    #[test]
    fn unarmed_hits_are_inert() {
        for p in POINTS {
            hit(p);
            hit(p);
        }
        hit("not-a-point");
    }
}
