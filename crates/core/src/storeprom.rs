//! Store promotion: sinking loop-invariant direct stores.
//!
//! The paper builds its register promotion on Lo et al. (PLDI '98), which
//! promotes *loads and stores*; §5 evaluates the load side (speculative
//! promotion via `ld.c`). This module implements the store side for the
//! store-only pattern — the accumulator-spill idiom:
//!
//! ```text
//! loop {                          r = load g      // preheader
//!   ...                           loop {
//!   store g, acc          ==>       ...
//! }                                 r = acc       // register move
//!                                 }
//!                                 store g, r      // every loop exit
//! ```
//!
//! Restrictions (all checked, keeping the transformation *non-speculative*
//! — there is no "check store" instruction on IA-64, so a mis-speculated
//! store sink would be unrecoverable):
//!
//! * the location is a direct `global/slot + const` cell;
//! * the loop contains **no** loads of the location and **no** statement
//!   with any χ or μ over it other than the candidate stores themselves
//!   (no aliasing indirect access, no call that may read or write it);
//! * the loop has a single latch and a unique preheader (as in
//!   [`crate::strength`]).
//!
//! The carried value lives in a *collapsed* register (every definition is
//! "the current value of the cell"), so no φ plumbing is needed and the
//! preheader's initializing load covers the zero-trip case: if the loop
//! body never runs, the exit stores write back the original value.

use crate::stats::OptStats;
use specframe_analysis::FuncAnalyses;
use specframe_hssa::{HOperand, HStmt, HStmtKind, HVarId, HVarKind, HssaFunc, MemBase};
use specframe_ir::{BlockId, LoadSpec, Ty};
use std::collections::HashSet;

/// Runs store sinking over every loop of `hf`, using the function's cached
/// CFG analyses. Returns the number of in-loop stores removed.
pub fn sink_stores_hssa(hf: &mut HssaFunc, stats: &mut OptStats, fa: &FuncAnalyses) -> usize {
    let li = &fa.loops;
    let mut sunk_total = 0;

    for l in li.loops.clone() {
        if l.latches.len() != 1 {
            continue;
        }
        let header = l.header;
        let preds = hf.preds[header.index()].clone();
        let latch_idx = match preds.iter().position(|&p| p == l.latches[0]) {
            Some(i) => i,
            None => continue,
        };
        let entries: Vec<usize> = (0..preds.len()).filter(|&i| i != latch_idx).collect();
        if entries.len() != 1 {
            continue;
        }
        let preheader = preds[entries[0]];
        if hf.blocks[preheader.index()]
            .term
            .as_ref()
            .map(|t| t.successors().len())
            != Some(1)
        {
            continue;
        }
        let body: HashSet<BlockId> = l.body.iter().copied().collect();

        // candidate memory variables: direct-store targets inside the loop
        let mut cands: Vec<HVarId> = Vec::new();
        for &b in &l.body {
            for stmt in &hf.blocks[b.index()].stmts {
                if let HStmtKind::Store {
                    dvar_def: Some((id, _)),
                    ..
                } = &stmt.kind
                {
                    if !cands.contains(id) {
                        cands.push(*id);
                    }
                }
            }
        }

        'cand: for mv in cands {
            // reject any in-loop read or aliasing touch of mv
            let mut stores: Vec<(BlockId, usize)> = Vec::new();
            let mut shape: Option<(HOperand, i64, Ty)> = None;
            for &b in &l.body {
                for (si, stmt) in hf.blocks[b.index()].stmts.iter().enumerate() {
                    match &stmt.kind {
                        HStmtKind::Store {
                            dvar_def: Some((id, _)),
                            base,
                            offset,
                            ty,
                            ..
                        } if *id == mv => {
                            if stmt.chi.iter().any(|c| c.var != mv) {
                                // the store also chi's a vvar: an indirect
                                // reference of the same class exists
                                // somewhere; stay conservative only if that
                                // reference is inside the loop (checked
                                // below via mu/chi scan on other stmts) —
                                // a chi on a vvar from this store itself is
                                // fine because nothing in the loop reads it
                            }
                            shape = Some((*base, *offset, *ty));
                            stores.push((b, si));
                        }
                        HStmtKind::Load {
                            dvar: Some((id, _)),
                            ..
                        }
                        | HStmtKind::CheckLoad {
                            dvar: Some((id, _)),
                            ..
                        } if *id == mv => {
                            continue 'cand; // in-loop read of the cell
                        }
                        _ => {
                            // any other statement touching mv via chi or mu
                            // (aliasing indirect access or call)
                            if stmt.chi.iter().any(|c| c.var == mv)
                                || stmt.mu.iter().any(|m| m.var == mv)
                            {
                                continue 'cand;
                            }
                        }
                    }
                }
            }
            let Some((base, offset, ty)) = shape else {
                continue;
            };
            if stores.is_empty() {
                continue;
            }
            // indirect loads of the same class inside the loop read through
            // the virtual variable; if any in-loop statement mu's a vvar
            // that this location's class feeds, the scan above already saw a
            // chi from our stores on that vvar paired with the mu — be
            // conservative: require our stores to chi nothing but mv
            for &(b, si) in &stores {
                if hf.blocks[b.index()].stmts[si]
                    .chi
                    .iter()
                    .any(|c| c.var != mv)
                {
                    // some vvar may observe this cell; only safe if no
                    // in-loop mu on that vvar — already rejected above for
                    // mv, but vvar reads alias the cell too
                    let vvars: Vec<HVarId> = hf.blocks[b.index()].stmts[si]
                        .chi
                        .iter()
                        .map(|c| c.var)
                        .filter(|v| *v != mv)
                        .collect();
                    for &bb in &l.body {
                        for stmt in &hf.blocks[bb.index()].stmts {
                            if stmt.mu.iter().any(|m| vvars.contains(&m.var)) {
                                continue 'cand;
                            }
                        }
                    }
                }
            }

            // exit edges: in-loop blocks with a successor outside the body
            let mut exit_points: Vec<BlockId> = Vec::new();
            for &b in &l.body {
                let succs = hf.blocks[b.index()]
                    .term
                    .as_ref()
                    .map(|t| t.successors())
                    .unwrap_or_default();
                for s in succs {
                    if !body.contains(&s) {
                        // after critical-edge splitting either the exit
                        // target has only in-loop predecessors, or it is a
                        // dedicated (single-pred) split block
                        if hf.preds[s.index()].iter().any(|p| !body.contains(p)) {
                            continue 'cand; // unsplit critical exit: skip
                        }
                        if !exit_points.contains(&s) {
                            exit_points.push(s);
                        }
                    }
                }
            }
            if exit_points.is_empty() {
                continue; // infinite loop: nothing to sink to
            }

            // ---- transform ----
            let name = format!("stp{}", stats.temps);
            let r = hf.add_temp(name, ty);
            stats.temps += 1;
            hf.collapsed_vars.push(r);

            // preheader: r = load cell (covers the zero-trip case)
            let rv0 = hf.fresh_ver_of_reg(r);
            hf.blocks[preheader.index()]
                .stmts
                .push(HStmt::new(HStmtKind::Load {
                    dst: (r, rv0),
                    base,
                    offset,
                    ty,
                    spec: LoadSpec::Normal,
                    site: specframe_hssa::FRESH_SITE,
                    dvar: Some((mv, 0)),
                }));

            // in-loop stores become register moves
            for &(b, si) in &stores {
                let val = match &hf.blocks[b.index()].stmts[si].kind {
                    HStmtKind::Store { val, .. } => *val,
                    _ => unreachable!(),
                };
                let rv = hf.fresh_ver_of_reg(r);
                hf.blocks[b.index()].stmts[si] = HStmt::new(HStmtKind::Copy {
                    dst: (r, rv),
                    src: val,
                });
                sunk_total += 1;
                stats.stores_sunk += 1;
            }

            // exit blocks: store the carried value back
            for &e in &exit_points {
                let mver = hf.fresh_ver(mv);
                let st = HStmt::new(HStmtKind::Store {
                    base,
                    offset,
                    val: HOperand::Reg(r, 0),
                    ty,
                    site: specframe_hssa::FRESH_SITE,
                    dvar_def: Some((mv, mver)),
                });
                hf.blocks[e.index()].stmts.insert(0, st);
            }
        }
    }
    sunk_total
}

/// Whether `kind` names a direct global/slot cell (used by tests).
pub fn is_direct_cell(kind: HVarKind) -> bool {
    matches!(
        kind,
        HVarKind::Mem(specframe_hssa::MemVar {
            base: MemBase::Global(_) | MemBase::Slot(_),
            ..
        })
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::OptStats;
    use specframe_alias::AliasAnalysis;
    use specframe_hssa::{build_hssa, lower_hssa, SpecMode};
    use specframe_ir::{parse_module, Value};
    use specframe_profile::run;

    fn sink(src: &str) -> (specframe_ir::Module, OptStats) {
        let mut m = parse_module(src).unwrap();
        crate::driver::prepare_module(&mut m);
        let aa = AliasAnalysis::analyze(&m);
        let mut stats = OptStats::default();
        for fi in 0..m.funcs.len() {
            let fid = specframe_ir::FuncId::from_index(fi);
            let mut hf = build_hssa(&m, fid, &aa, SpecMode::NoSpeculation);
            let fa = FuncAnalyses::compute(m.func(fid));
            sink_stores_hssa(&mut hf, &mut stats, &fa);
            specframe_hssa::verify_hssa(&hf).unwrap();
            lower_hssa(&mut m, &hf);
        }
        specframe_ir::verify_module(&m).unwrap();
        (m, stats)
    }

    const ACCUM: &str = r#"
global g: i64[1] = [100]

func f(n: i64) -> i64 {
  var i: i64
  var c: i64
  var acc: i64
entry:
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  acc = add acc, i
  store.i64 [@g], acc
  i = add i, 1
  jmp head
exit:
  ret acc
}
"#;

    #[test]
    fn sinks_accumulator_store() {
        let m0 = parse_module(ACCUM).unwrap();
        let (want, s0) = run(&m0, "f", &[Value::I(10)], 100_000).unwrap();
        let (m, stats) = sink(ACCUM);
        assert_eq!(stats.stores_sunk, 1, "{stats:?}");
        let (got, s1) = run(&m, "f", &[Value::I(10)], 100_000).unwrap();
        assert_eq!(got, want);
        assert!(
            s1.stores < s0.stores,
            "stores must drop: {} -> {}",
            s0.stores,
            s1.stores
        );
        // memory end state must match: g holds the last accumulator value
        let mut it0 = specframe_profile::Interpreter::new(&m0, 100_000);
        it0.call(
            m0.func_by_name("f").unwrap(),
            &[Value::I(10)],
            &mut specframe_profile::NullObserver,
        )
        .unwrap();
        let mut it1 = specframe_profile::Interpreter::new(&m, 100_000);
        it1.call(
            m.func_by_name("f").unwrap(),
            &[Value::I(10)],
            &mut specframe_profile::NullObserver,
        )
        .unwrap();
        let addr = specframe_ir::Module::GLOBAL_BASE;
        assert_eq!(it0.peek(addr), it1.peek(addr), "final memory must match");
    }

    #[test]
    fn zero_trip_loop_preserves_memory() {
        let m0 = parse_module(ACCUM).unwrap();
        let (m, _) = sink(ACCUM);
        // n = 0: the loop never runs; g must keep its initial 100
        run(&m0, "f", &[Value::I(0)], 100_000).unwrap();
        let mut it = specframe_profile::Interpreter::new(&m, 100_000);
        it.call(
            m.func_by_name("f").unwrap(),
            &[Value::I(0)],
            &mut specframe_profile::NullObserver,
        )
        .unwrap();
        assert_eq!(
            it.peek(specframe_ir::Module::GLOBAL_BASE),
            Value::I(100),
            "zero-trip loop must not clobber g"
        );
    }

    #[test]
    fn in_loop_read_blocks_sinking() {
        let src = r#"
global g: i64[1]

func f(n: i64) -> i64 {
  var i: i64
  var c: i64
  var v: i64
entry:
  i = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  v = load.i64 [@g]
  v = add v, 1
  store.i64 [@g], v
  i = add i, 1
  jmp head
exit:
  v = load.i64 [@g]
  ret v
}
"#;
        let (_, stats) = sink(src);
        assert_eq!(stats.stores_sunk, 0, "read-modify-write must not sink");
    }

    #[test]
    fn aliasing_indirect_load_blocks_sinking() {
        let src = r#"
global g: i64[1]

func f(p: ptr, n: i64) -> i64 {
  var i: i64
  var c: i64
  var v: i64
  var acc: i64
entry:
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  store.i64 [@g], i
  v = load.i64 [p]
  acc = add acc, v
  i = add i, 1
  jmp head
exit:
  ret acc
}

func main(n: i64) -> i64 {
  var r: i64
entry:
  r = call f(@g, n)
  ret r
}
"#;
        let (_, stats) = sink(src);
        assert_eq!(
            stats.stores_sunk, 0,
            "a may-aliasing in-loop read must block sinking"
        );
    }

    #[test]
    fn call_in_loop_blocks_sinking() {
        let src = r#"
global g: i64[1]

func peek() -> i64 {
  var v: i64
entry:
  v = load.i64 [@g]
  ret v
}

func f(n: i64) -> i64 {
  var i: i64
  var c: i64
  var acc: i64
  var v: i64
entry:
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  store.i64 [@g], i
  v = call peek()
  acc = add acc, v
  i = add i, 1
  jmp head
exit:
  ret acc
}
"#;
        let (_, stats) = sink(src);
        assert_eq!(stats.stores_sunk, 0, "a call reading g must block sinking");
    }

    #[test]
    fn conditional_store_still_sinks_safely() {
        let src = r#"
global g: i64[1] = [7]

func f(n: i64) -> i64 {
  var i: i64
  var c: i64
  var cc: i64
  var acc: i64
entry:
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  acc = add acc, i
  cc = mod i, 2
  br cc, odd, even
odd:
  store.i64 [@g], acc
  jmp latch
even:
  jmp latch
latch:
  i = add i, 1
  jmp head
exit:
  ret acc
}
"#;
        let m0 = parse_module(src).unwrap();
        let (want, _) = run(&m0, "f", &[Value::I(9)], 100_000).unwrap();
        let (m, stats) = sink(src);
        assert_eq!(stats.stores_sunk, 1);
        let (got, _) = run(&m, "f", &[Value::I(9)], 100_000).unwrap();
        assert_eq!(got, want);
        // final memory: last odd i was 7 -> acc after i=7 is 0+..+7=28
        let mut it = specframe_profile::Interpreter::new(&m, 100_000);
        it.call(
            m.func_by_name("f").unwrap(),
            &[Value::I(9)],
            &mut specframe_profile::NullObserver,
        )
        .unwrap();
        let mut it0 = specframe_profile::Interpreter::new(&m0, 100_000);
        it0.call(
            m0.func_by_name("f").unwrap(),
            &[Value::I(9)],
            &mut specframe_profile::NullObserver,
        )
        .unwrap();
        assert_eq!(
            it.peek(specframe_ir::Module::GLOBAL_BASE),
            it0.peek(specframe_ir::Module::GLOBAL_BASE)
        );
    }
}
