//! Store promotion: sinking loop-invariant direct stores.
//!
//! The paper builds its register promotion on Lo et al. (PLDI '98), which
//! promotes *loads and stores*; §5 evaluates the load side (speculative
//! promotion via `ld.c`). This module implements the store side for the
//! store-only pattern — the accumulator-spill idiom:
//!
//! ```text
//! loop {                          r = load g      // preheader
//!   ...                           loop {
//!   store g, acc          ==>       ...
//! }                                 r = acc       // register move
//!                                 }
//!                                 store g, r      // every loop exit
//! ```
//!
//! Restrictions (all checked, keeping the transformation *non-speculative*
//! — there is no "check store" instruction on IA-64, so a mis-speculated
//! store sink would be unrecoverable):
//!
//! * the location is a direct `global/slot + const` cell;
//! * the loop contains **no** loads of the location and **no** statement
//!   with any χ or μ over it other than the candidate stores themselves
//!   (no aliasing indirect access, no call that may read or write it);
//! * the loop has a single latch and a unique preheader (as in
//!   [`crate::strength`]).
//!
//! The carried value lives in a *collapsed* register (every definition is
//! "the current value of the cell"), so no φ plumbing is needed and the
//! preheader's initializing load covers the zero-trip case: if the loop
//! body never runs, the exit stores write back the original value.
//!
//! This pass is a loop-shaped client of [`crate::prekernel`]: loop
//! recognition comes from [`reducible_loops`], the candidate contract
//! (occurrence harvesting / kill query / emission of the initializing
//! load) is the kernel's [`SpecClient`] trait, and every rewrite is
//! expressed as [`MotionEdit`]s applied through [`apply_edits`].

use crate::expr::OccVersions;
use crate::prekernel::{apply_edits, reducible_loops, MotionEdit, SpecClient};
use crate::stats::OptStats;
use specframe_analysis::FuncAnalyses;
use specframe_hssa::{HOperand, HStmt, HStmtKind, HVarId, HVarKind, HssaFunc, MemBase};
use specframe_ir::FxHashSet;
use specframe_ir::{BlockId, InlineVec, LoadSpec, Ty, VarId};

/// The store-promotion candidate: one direct global/slot cell `mv`,
/// stored to inside the loop. Occurrences are the candidate stores; any
/// other in-loop touch of the cell (a read, an aliasing χ or μ) kills the
/// promotion — there is no "check store" on IA-64, so a mis-speculated
/// store sink would be unrecoverable and the kill query is exact, not
/// oracle-refined.
struct StoreClient {
    mv: HVarId,
    base: HOperand,
    offset: i64,
    ty: Ty,
}

impl SpecClient for StoreClient {
    fn describe(&self) -> String {
        format!("store-promote {:?}", self.mv)
    }

    fn occurrence(&self, stmt: &HStmt) -> Option<OccVersions> {
        match &stmt.kind {
            HStmtKind::Store {
                dvar_def: Some((id, ver)),
                ..
            } if *id == self.mv => Some(OccVersions {
                regs: InlineVec::new(),
                mem: Some(*ver),
            }),
            _ => None,
        }
    }

    fn kills(&self, stmt: &HStmt) -> bool {
        if self.occurrence(stmt).is_some() {
            // a candidate store chi-ing a vvar is handled by the caller's
            // cross-class scan; the store itself does not kill
            return false;
        }
        match &stmt.kind {
            HStmtKind::Load {
                dvar: Some((id, _)),
                ..
            }
            | HStmtKind::CheckLoad {
                dvar: Some((id, _)),
                ..
            } if *id == self.mv => true, // in-loop read of the cell
            _ => {
                // any other statement touching mv via chi or mu
                // (aliasing indirect access or call)
                stmt.chi.iter().any(|c| c.var == self.mv)
                    || stmt.mu.iter().any(|m| m.var == self.mv)
            }
        }
    }

    fn tracked_regs(&self) -> &[VarId] {
        &[]
    }

    fn tracked_mem(&self) -> Option<HVarId> {
        Some(self.mv)
    }

    fn is_load(&self) -> bool {
        false
    }

    fn control_speculatable(&self) -> bool {
        false
    }

    fn temp_ty(&self) -> Ty {
        self.ty
    }

    fn temp_name(&self, n: u64) -> String {
        format!("stp{n}")
    }

    /// The preheader's initializing load of the cell (covers zero-trip).
    fn materialize(
        &self,
        _hf: &HssaFunc,
        t: (VarId, u32),
        vers: &OccVersions,
        spec: LoadSpec,
    ) -> HStmt {
        HStmt::new(HStmtKind::Load {
            dst: t,
            base: self.base,
            offset: self.offset,
            ty: self.ty,
            spec,
            site: specframe_hssa::FRESH_SITE,
            dvar: Some((self.mv, vers.mem.unwrap_or(0))),
        })
    }
}

/// Runs store sinking over every loop of `hf`, using the function's cached
/// CFG analyses. Returns the number of in-loop stores removed.
pub fn sink_stores_hssa(hf: &mut HssaFunc, stats: &mut OptStats, fa: &FuncAnalyses) -> usize {
    let mut sunk_total = 0;

    for shape in reducible_loops(hf, fa) {
        let preheader = shape.preheader;
        let body: FxHashSet<BlockId> = shape.body.iter().copied().collect();

        // candidate memory variables: direct-store targets inside the loop
        let mut cands: Vec<HVarId> = Vec::new();
        for &b in &shape.body {
            for stmt in &hf.blocks[b.index()].stmts {
                if let HStmtKind::Store {
                    dvar_def: Some((id, _)),
                    ..
                } = &stmt.kind
                {
                    if !cands.contains(id) {
                        cands.push(*id);
                    }
                }
            }
        }

        'cand: for mv in cands {
            // occurrence harvest + kill scan: reject any in-loop read or
            // aliasing touch of mv
            let mut stores: Vec<(BlockId, usize)> = Vec::new();
            let mut client: Option<StoreClient> = None;
            for &b in &shape.body {
                for (si, stmt) in hf.blocks[b.index()].stmts.iter().enumerate() {
                    if let HStmtKind::Store {
                        dvar_def: Some((id, _)),
                        base,
                        offset,
                        ty,
                        ..
                    } = &stmt.kind
                    {
                        if *id == mv {
                            client = Some(StoreClient {
                                mv,
                                base: *base,
                                offset: *offset,
                                ty: *ty,
                            });
                            stores.push((b, si));
                            continue;
                        }
                    }
                    let probe = StoreClient {
                        mv,
                        base: HOperand::ConstI(0),
                        offset: 0,
                        ty: Ty::I64,
                    };
                    if probe.kills(stmt) {
                        continue 'cand;
                    }
                }
            }
            let Some(client) = client else {
                continue;
            };
            if stores.is_empty() {
                continue;
            }
            // indirect loads of the same class inside the loop read through
            // the virtual variable; if any in-loop statement mu's a vvar
            // that this location's class feeds, the scan above already saw a
            // chi from our stores on that vvar paired with the mu — be
            // conservative: require our stores to chi nothing but mv
            for &(b, si) in &stores {
                if hf.blocks[b.index()].stmts[si]
                    .chi
                    .iter()
                    .any(|c| c.var != mv)
                {
                    // some vvar may observe this cell; only safe if no
                    // in-loop mu on that vvar — already rejected above for
                    // mv, but vvar reads alias the cell too
                    let vvars: Vec<HVarId> = hf.blocks[b.index()].stmts[si]
                        .chi
                        .iter()
                        .map(|c| c.var)
                        .filter(|v| *v != mv)
                        .collect();
                    for &bb in &shape.body {
                        for stmt in &hf.blocks[bb.index()].stmts {
                            if stmt.mu.iter().any(|m| vvars.contains(&m.var)) {
                                continue 'cand;
                            }
                        }
                    }
                }
            }

            // exit edges: in-loop blocks with a successor outside the body
            let mut exit_points: Vec<BlockId> = Vec::new();
            for &b in &shape.body {
                let succs = hf.blocks[b.index()]
                    .term
                    .as_ref()
                    .map(|t| t.successors())
                    .unwrap_or_default();
                for s in succs {
                    if !body.contains(&s) {
                        // after critical-edge splitting either the exit
                        // target has only in-loop predecessors, or it is a
                        // dedicated (single-pred) split block
                        if hf.preds[s.index()].iter().any(|p| !body.contains(p)) {
                            continue 'cand; // unsplit critical exit: skip
                        }
                        if !exit_points.contains(&s) {
                            exit_points.push(s);
                        }
                    }
                }
            }
            if exit_points.is_empty() {
                continue; // infinite loop: nothing to sink to
            }

            // ---- transform: emitted as motion edits on the kernel seam.
            // Version allocation stays eager (rv0 → per-store rv → per-exit
            // mver, in scan order) so the printed SSA form is unchanged;
            // application is deferred to one `apply_edits` per candidate —
            // per candidate, not per loop, because the next candidate's
            // legality scan must read the mutated statements.
            let r = hf.add_temp(client.temp_name(stats.temps), client.temp_ty());
            stats.temps += 1;
            hf.collapsed_vars.push(r);
            let mut edits: Vec<MotionEdit> = Vec::new();

            // preheader: r = load cell (covers the zero-trip case)
            let rv0 = hf.fresh_ver_of_reg(r);
            edits.push(MotionEdit::Append {
                block: preheader,
                what: client.materialize(
                    hf,
                    (r, rv0),
                    &OccVersions {
                        regs: InlineVec::new(),
                        mem: Some(0),
                    },
                    LoadSpec::Normal,
                ),
            });

            // in-loop stores become register moves
            for &(b, si) in &stores {
                let val = match &hf.blocks[b.index()].stmts[si].kind {
                    HStmtKind::Store { val, .. } => *val,
                    _ => unreachable!(),
                };
                let rv = hf.fresh_ver_of_reg(r);
                edits.push(MotionEdit::Replace {
                    block: b,
                    stmt: si,
                    with: HStmt::new(HStmtKind::Copy {
                        dst: (r, rv),
                        src: val,
                    }),
                });
                sunk_total += 1;
                stats.stores_sunk += 1;
            }

            // exit blocks: store the carried value back
            for &e in &exit_points {
                let mver = hf.fresh_ver(mv);
                edits.push(MotionEdit::InsertFront {
                    block: e,
                    what: HStmt::new(HStmtKind::Store {
                        base: client.base,
                        offset: client.offset,
                        val: HOperand::Reg(r, 0),
                        ty: client.ty,
                        site: specframe_hssa::FRESH_SITE,
                        dvar_def: Some((mv, mver)),
                    }),
                });
            }
            apply_edits(hf, edits);
        }
    }
    sunk_total
}

/// Whether `kind` names a direct global/slot cell (used by tests).
pub fn is_direct_cell(kind: HVarKind) -> bool {
    matches!(
        kind,
        HVarKind::Mem(specframe_hssa::MemVar {
            base: MemBase::Global(_) | MemBase::Slot(_),
            ..
        })
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::OptStats;
    use specframe_alias::AliasAnalysis;
    use specframe_hssa::{build_hssa, lower_hssa, SpecMode};
    use specframe_ir::{parse_module, Value};
    use specframe_profile::run;

    fn sink(src: &str) -> (specframe_ir::Module, OptStats) {
        let mut m = parse_module(src).unwrap();
        crate::driver::prepare_module(&mut m);
        let aa = AliasAnalysis::analyze(&m);
        let mut stats = OptStats::default();
        for fi in 0..m.funcs.len() {
            let fid = specframe_ir::FuncId::from_index(fi);
            let mut hf = build_hssa(&m, fid, &aa, SpecMode::NoSpeculation);
            let fa = FuncAnalyses::compute(m.func(fid));
            sink_stores_hssa(&mut hf, &mut stats, &fa);
            specframe_hssa::verify_hssa(&hf).unwrap();
            lower_hssa(&mut m, &hf);
        }
        specframe_ir::verify_module(&m).unwrap();
        (m, stats)
    }

    const ACCUM: &str = r#"
global g: i64[1] = [100]

func f(n: i64) -> i64 {
  var i: i64
  var c: i64
  var acc: i64
entry:
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  acc = add acc, i
  store.i64 [@g], acc
  i = add i, 1
  jmp head
exit:
  ret acc
}
"#;

    #[test]
    fn sinks_accumulator_store() {
        let m0 = parse_module(ACCUM).unwrap();
        let (want, s0) = run(&m0, "f", &[Value::I(10)], 100_000).unwrap();
        let (m, stats) = sink(ACCUM);
        assert_eq!(stats.stores_sunk, 1, "{stats:?}");
        let (got, s1) = run(&m, "f", &[Value::I(10)], 100_000).unwrap();
        assert_eq!(got, want);
        assert!(
            s1.stores < s0.stores,
            "stores must drop: {} -> {}",
            s0.stores,
            s1.stores
        );
        // memory end state must match: g holds the last accumulator value
        let mut it0 = specframe_profile::Interpreter::new(&m0, 100_000);
        it0.call(
            m0.func_by_name("f").unwrap(),
            &[Value::I(10)],
            &mut specframe_profile::NullObserver,
        )
        .unwrap();
        let mut it1 = specframe_profile::Interpreter::new(&m, 100_000);
        it1.call(
            m.func_by_name("f").unwrap(),
            &[Value::I(10)],
            &mut specframe_profile::NullObserver,
        )
        .unwrap();
        let addr = specframe_ir::Module::GLOBAL_BASE;
        assert_eq!(it0.peek(addr), it1.peek(addr), "final memory must match");
    }

    #[test]
    fn zero_trip_loop_preserves_memory() {
        let m0 = parse_module(ACCUM).unwrap();
        let (m, _) = sink(ACCUM);
        // n = 0: the loop never runs; g must keep its initial 100
        run(&m0, "f", &[Value::I(0)], 100_000).unwrap();
        let mut it = specframe_profile::Interpreter::new(&m, 100_000);
        it.call(
            m.func_by_name("f").unwrap(),
            &[Value::I(0)],
            &mut specframe_profile::NullObserver,
        )
        .unwrap();
        assert_eq!(
            it.peek(specframe_ir::Module::GLOBAL_BASE),
            Value::I(100),
            "zero-trip loop must not clobber g"
        );
    }

    #[test]
    fn in_loop_read_blocks_sinking() {
        let src = r#"
global g: i64[1]

func f(n: i64) -> i64 {
  var i: i64
  var c: i64
  var v: i64
entry:
  i = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  v = load.i64 [@g]
  v = add v, 1
  store.i64 [@g], v
  i = add i, 1
  jmp head
exit:
  v = load.i64 [@g]
  ret v
}
"#;
        let (_, stats) = sink(src);
        assert_eq!(stats.stores_sunk, 0, "read-modify-write must not sink");
    }

    #[test]
    fn aliasing_indirect_load_blocks_sinking() {
        let src = r#"
global g: i64[1]

func f(p: ptr, n: i64) -> i64 {
  var i: i64
  var c: i64
  var v: i64
  var acc: i64
entry:
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  store.i64 [@g], i
  v = load.i64 [p]
  acc = add acc, v
  i = add i, 1
  jmp head
exit:
  ret acc
}

func main(n: i64) -> i64 {
  var r: i64
entry:
  r = call f(@g, n)
  ret r
}
"#;
        let (_, stats) = sink(src);
        assert_eq!(
            stats.stores_sunk, 0,
            "a may-aliasing in-loop read must block sinking"
        );
    }

    #[test]
    fn call_in_loop_blocks_sinking() {
        let src = r#"
global g: i64[1]

func peek() -> i64 {
  var v: i64
entry:
  v = load.i64 [@g]
  ret v
}

func f(n: i64) -> i64 {
  var i: i64
  var c: i64
  var acc: i64
  var v: i64
entry:
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  store.i64 [@g], i
  v = call peek()
  acc = add acc, v
  i = add i, 1
  jmp head
exit:
  ret acc
}
"#;
        let (_, stats) = sink(src);
        assert_eq!(stats.stores_sunk, 0, "a call reading g must block sinking");
    }

    #[test]
    fn conditional_store_still_sinks_safely() {
        let src = r#"
global g: i64[1] = [7]

func f(n: i64) -> i64 {
  var i: i64
  var c: i64
  var cc: i64
  var acc: i64
entry:
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  acc = add acc, i
  cc = mod i, 2
  br cc, odd, even
odd:
  store.i64 [@g], acc
  jmp latch
even:
  jmp latch
latch:
  i = add i, 1
  jmp head
exit:
  ret acc
}
"#;
        let m0 = parse_module(src).unwrap();
        let (want, _) = run(&m0, "f", &[Value::I(9)], 100_000).unwrap();
        let (m, stats) = sink(src);
        assert_eq!(stats.stores_sunk, 1);
        let (got, _) = run(&m, "f", &[Value::I(9)], 100_000).unwrap();
        assert_eq!(got, want);
        // final memory: last odd i was 7 -> acc after i=7 is 0+..+7=28
        let mut it = specframe_profile::Interpreter::new(&m, 100_000);
        it.call(
            m.func_by_name("f").unwrap(),
            &[Value::I(9)],
            &mut specframe_profile::NullObserver,
        )
        .unwrap();
        let mut it0 = specframe_profile::Interpreter::new(&m0, 100_000);
        it0.call(
            m0.func_by_name("f").unwrap(),
            &[Value::I(9)],
            &mut specframe_profile::NullObserver,
        )
        .unwrap();
        assert_eq!(
            it.peek(specframe_ir::Module::GLOBAL_BASE),
            it0.peek(specframe_ir::Module::GLOBAL_BASE)
        );
    }
}
