//! Loop recognition shared by the loop-shaped kernel clients.
//!
//! Store promotion, strength reduction and LFTR all operate on the same
//! restricted loop shape: a single latch and a unique entry predecessor
//! that has a single successor (so it can host insertions). This module
//! holds the one copy of that preamble; the clients previously each
//! carried their own.

use specframe_analysis::FuncAnalyses;
use specframe_hssa::HssaFunc;
use specframe_ir::BlockId;

/// One loop in the shape the loop clients can transform.
#[derive(Debug, Clone)]
pub struct LoopShape {
    /// Loop header block.
    pub header: BlockId,
    /// The single latch.
    pub latch: BlockId,
    /// The unique entry predecessor (single-successor, insertable).
    pub preheader: BlockId,
    /// φ argument index of the preheader edge at the header.
    pub pre_idx: usize,
    /// φ argument index of the latch edge at the header.
    pub latch_idx: usize,
    /// Blocks of the loop body (header included), in loop-info order.
    pub body: Vec<BlockId>,
}

/// Recognizes every loop of `hf` that has the transformable shape, in
/// loop-info order. Loops with multiple latches, multiple entries, or a
/// non-insertable preheader are skipped — exactly the preamble the loop
/// clients previously applied one by one.
pub fn reducible_loops(hf: &HssaFunc, fa: &FuncAnalyses) -> Vec<LoopShape> {
    let mut shapes = Vec::new();
    for l in fa.loops.loops.clone() {
        if l.latches.len() != 1 {
            continue;
        }
        let header = l.header;
        let latch = l.latches[0];
        let preds = hf.preds[header.index()].clone();
        let Some(latch_idx) = preds.iter().position(|&p| p == latch) else {
            continue;
        };
        // unique entry predecessor with a single successor (insertable)
        let entries: Vec<usize> = (0..preds.len()).filter(|&i| i != latch_idx).collect();
        if entries.len() != 1 {
            continue;
        }
        let pre_idx = entries[0];
        let preheader = preds[pre_idx];
        if hf.blocks[preheader.index()]
            .term
            .as_ref()
            .map(|t| t.successors().len())
            != Some(1)
        {
            continue;
        }
        shapes.push(LoopShape {
            header,
            latch,
            preheader,
            pre_idx,
            latch_idx,
            body: l.body.clone(),
        });
    }
    shapes
}
