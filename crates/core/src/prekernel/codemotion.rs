//! Step 6: CodeMotion.
//!
//! Turns Finalize's decisions into a list of [`MotionEdit`]s and applies
//! them with [`apply_edits`]: saves become `t = E; x = t`, reloads become
//! `x = t`, *speculative* reloads become check loads (`ld.c`, Appendix
//! B), control-speculative insertions become `ld.s` with NaT-check
//! reloads, and every load feeding a check is flagged as an advanced
//! load (`ld.a`).
//!
//! The [`MotionEdit`] vocabulary and [`apply_edits`] are shared by every
//! kernel client: store promotion and strength reduction express their
//! loop-shaped rewrites in the same terms instead of splicing statement
//! lists by hand.

use super::finalize::FinalizeOut;
use super::{Kernel, OpndDef, Role, SpecClient};
use crate::stats::OptStats;
use specframe_hssa::{HOperand, HStmt, HStmtKind, HVarKind, HssaFunc, Phi as HPhi};
use specframe_ir::{BlockId, CheckKind, LoadSpec, Ty, VarId};

/// One program rewrite, in kernel vocabulary. Statement indices refer to
/// the block's statement list *at application time*: emit per-block edits
/// in descending statement order (as the kernel does) so earlier indices
/// stay stable, and front/back insertions wherever convenient.
#[derive(Debug)]
pub enum MotionEdit {
    /// Replace the statement at `stmt` with `with`.
    Replace {
        block: BlockId,
        stmt: usize,
        with: HStmt,
    },
    /// Insert `what` immediately after the statement at `stmt`.
    InsertAfter {
        block: BlockId,
        stmt: usize,
        what: HStmt,
    },
    /// Insert `what` at the front of the block.
    InsertFront { block: BlockId, what: HStmt },
    /// Append `what` at the end of the block (before the terminator).
    Append { block: BlockId, what: HStmt },
    /// Attach a φ to the block.
    AddPhi { block: BlockId, phi: HPhi },
}

/// Applies the edits in order.
pub fn apply_edits(hf: &mut HssaFunc, edits: Vec<MotionEdit>) {
    for e in edits {
        match e {
            MotionEdit::Replace { block, stmt, with } => {
                hf.blocks[block.index()].stmts[stmt] = with;
            }
            MotionEdit::InsertAfter { block, stmt, what } => {
                hf.blocks[block.index()].stmts.insert(stmt + 1, what);
            }
            MotionEdit::InsertFront { block, what } => {
                hf.blocks[block.index()].stmts.insert(0, what);
            }
            MotionEdit::Append { block, what } => {
                hf.blocks[block.index()].stmts.push(what);
            }
            MotionEdit::AddPhi { block, phi } => {
                hf.blocks[block.index()].phis.push(phi);
            }
        }
    }
}

impl<C: SpecClient> Kernel<'_, C> {
    pub(crate) fn codemotion(
        &self,
        hf: &mut HssaFunc,
        t: VarId,
        fin: FinalizeOut,
        stats: &mut OptStats,
    ) {
        let occs = &self.occs;
        let phis = &self.phis;
        let is_load_expr = self.client.is_load();
        let nclasses = self.next_class as usize;

        // advanced-load marking (Appendix B): a class with any checking
        // reload gets its defining loads flagged ld.a — class and Φ sets
        // are dense bit vectors keyed by the rename-allocated indices
        let mut checked_classes = vec![false; nclasses];
        for o in occs.iter() {
            if let Role::Reload { check: true, .. } = o.role {
                checked_classes[o.class as usize] = true;
            }
        }
        // any Phi reachable from a checked class spreads the marking to
        // defs (conservative: mark every saving def of a checked class and
        // every insertion feeding a Phi of a checked class)
        let mut changed = true;
        let mut checked_phis = vec![false; phis.len()];
        while changed {
            changed = false;
            for (i, p) in phis.iter().enumerate() {
                if checked_classes[p.class as usize] && !checked_phis[i] {
                    checked_phis[i] = true;
                    changed = true;
                }
            }
            for p in phis.iter() {
                for o in &p.opnds {
                    if let OpndDef::Phi(j) = o.def {
                        if checked_classes[p.class as usize]
                            && !checked_classes[phis[j].class as usize]
                        {
                            checked_classes[phis[j].class as usize] = true;
                            changed = true;
                        }
                    }
                }
            }
            // defs linked as operands of checked phis
            for (i, p) in phis.iter().enumerate() {
                if !checked_phis[i] {
                    continue;
                }
                for o in &p.opnds {
                    if let OpndDef::Real(oi) = o.def {
                        if !checked_classes[occs[oi].class as usize] {
                            checked_classes[occs[oi].class as usize] = true;
                            changed = true;
                        }
                    }
                }
            }
        }

        // control-speculation: classes fed by a cspec Phi need NaT-check
        // reloads
        let mut any_cspec = false;
        let mut nat_classes = vec![false; nclasses];
        for p in phis.iter() {
            if p.cspec && p.will_be_avail {
                any_cspec = true;
                nat_classes[p.class as usize] = true;
            }
        }
        // propagate downstream through phi operands
        let mut changed = true;
        while changed {
            changed = false;
            for p in phis.iter() {
                if p.opnds.iter().any(|o| match o.def {
                    OpndDef::Phi(j) => nat_classes[phis[j].class as usize],
                    _ => false,
                }) && !nat_classes[p.class as usize]
                {
                    nat_classes[p.class as usize] = true;
                    changed = true;
                }
            }
        }

        // ---- emit the motion edits ---------------------------------------
        // occs are sorted by (block index, statement index), so the
        // emission order the printed SSA form pins — block-index order,
        // descending statement order within a block (t-version allocation
        // happens while emitting) — falls out of walking each block's
        // contiguous occurrence run in reverse. No map, no sort.
        let mut motion: Vec<MotionEdit> = Vec::new();
        let mut run_start = 0usize;
        while run_start < occs.len() {
            let b = occs[run_start].block;
            let mut run_end = run_start;
            while run_end < occs.len() && occs[run_end].block == b {
                run_end += 1;
            }
            for occ in (run_start..run_end).rev() {
                let o = &occs[occ];
                let stmt = o.stmt;
                match o.role {
                    Role::Compute { save: true } => {
                        let old = hf.blocks[b.index()].stmts[stmt].clone();
                        let dst = old.def_reg().expect("occurrence defines a register");
                        let mut def_stmt = old.clone();
                        // defining statement now writes t
                        set_dst(&mut def_stmt.kind, (t, o.t_ver));
                        if is_load_expr
                            && (checked_classes[o.class as usize] || nat_classes[o.class as usize])
                        {
                            if let HStmtKind::Load { spec, .. } = &mut def_stmt.kind {
                                if *spec == LoadSpec::Normal {
                                    *spec = LoadSpec::Advanced;
                                    stats.advanced_loads += 1;
                                }
                            }
                        }
                        let copy = HStmt::new(HStmtKind::Copy {
                            dst,
                            src: HOperand::Reg(t, o.t_ver),
                        });
                        motion.push(MotionEdit::Replace {
                            block: b,
                            stmt,
                            with: def_stmt,
                        });
                        motion.push(MotionEdit::InsertAfter {
                            block: b,
                            stmt,
                            what: copy,
                        });
                        stats.saves += 1;
                    }
                    Role::Reload { from, check } => {
                        let old = hf.blocks[b.index()].stmts[stmt].clone();
                        let dst = old.def_reg().expect("occurrence defines a register");
                        let needs_nat = nat_classes[o.class as usize];
                        if is_load_expr && (check || needs_nat) {
                            // check load revalidates t, then the original
                            // destination copies from it (Appendix B / Fig. 8)
                            let tv2 = hf.fresh_ver_of_reg(t);
                            let (base, offset, lty, site_kind) = load_shape(&old.kind);
                            let kind = if check {
                                CheckKind::Alat
                            } else {
                                CheckKind::Nat
                            };
                            let chk = HStmt::new(HStmtKind::CheckLoad {
                                dst: (t, tv2),
                                base,
                                offset,
                                ty: lty,
                                kind,
                                site: site_kind,
                                dvar: None,
                            });
                            let copy = HStmt::new(HStmtKind::Copy {
                                dst,
                                src: HOperand::Reg(t, tv2),
                            });
                            motion.push(MotionEdit::Replace {
                                block: b,
                                stmt,
                                with: chk,
                            });
                            motion.push(MotionEdit::InsertAfter {
                                block: b,
                                stmt,
                                what: copy,
                            });
                            stats.checks += 1;
                            if check {
                                stats.data_spec_reloads += 1;
                            }
                        } else {
                            let copy = HStmt::new(HStmtKind::Copy {
                                dst,
                                src: HOperand::Reg(t, from),
                            });
                            motion.push(MotionEdit::Replace {
                                block: b,
                                stmt,
                                with: copy,
                            });
                        }
                        stats.reloads += 1;
                        if is_load_expr {
                            stats.loads_removed += 1;
                        }
                    }
                    Role::Compute { save: false } => {}
                }
            }
            run_start = run_end;
        }

        // insertions at predecessor ends
        for (pi, op_idx) in fin.insertions {
            let p = &phis[pi];
            let pred = hf.preds[p.block.index()][op_idx];
            let opnd = &p.opnds[op_idx];
            let spec_load = p.cspec && is_load_expr;
            let stmt = self.client.materialize(
                hf,
                (t, opnd.t_ver),
                &opnd.vers_at_pred,
                if spec_load {
                    LoadSpec::Speculative
                } else if checked_classes[p.class as usize] || nat_classes[p.class as usize] {
                    LoadSpec::Advanced
                } else {
                    LoadSpec::Normal
                },
            );
            motion.push(MotionEdit::Append {
                block: pred,
                what: stmt,
            });
            stats.insertions += 1;
            if spec_load {
                stats.control_spec_loads += 1;
            }
        }

        // phis for t
        let t_hvar = hf.catalog.get(HVarKind::Reg(t)).expect("temp interned");
        for p in phis.iter() {
            if !p.will_be_avail {
                continue;
            }
            let args: Vec<u32> = p
                .opnds
                .iter()
                .map(|o| {
                    if o.t_ver != u32::MAX {
                        o.t_ver
                    } else {
                        0 // unreachable value path; collapsed var makes this benign
                    }
                })
                .collect();
            motion.push(MotionEdit::AddPhi {
                block: p.block,
                phi: HPhi {
                    var: t_hvar,
                    dest: p.t_ver,
                    args,
                },
            });
        }

        apply_edits(hf, motion);

        stats.transformed += 1;
        if occs.iter().any(|o| o.spec) {
            stats.data_speculated_exprs += 1;
        }
        if any_cspec {
            stats.control_speculated_exprs += 1;
        }
    }
}

fn set_dst(kind: &mut HStmtKind, new: (VarId, u32)) {
    match kind {
        HStmtKind::Bin { dst, .. }
        | HStmtKind::Un { dst, .. }
        | HStmtKind::Copy { dst, .. }
        | HStmtKind::Load { dst, .. }
        | HStmtKind::CheckLoad { dst, .. }
        | HStmtKind::Alloc { dst, .. } => *dst = new,
        HStmtKind::Call { dst: Some(d), .. } => *d = new,
        _ => panic!("set_dst on store"),
    }
}

/// Extracts the address shape of a load statement for check generation.
fn load_shape(kind: &HStmtKind) -> (HOperand, i64, Ty, specframe_ir::MemSiteId) {
    match kind {
        HStmtKind::Load {
            base, offset, ty, ..
        } => (*base, *offset, *ty, specframe_hssa::stmt::FRESH_SITE),
        HStmtKind::CheckLoad {
            base, offset, ty, ..
        } => (*base, *offset, *ty, specframe_hssa::stmt::FRESH_SITE),
        other => panic!("load_shape on non-load {other:?}"),
    }
}
