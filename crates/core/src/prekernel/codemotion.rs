//! Step 6: CodeMotion.
//!
//! Turns Finalize's decisions into a list of [`MotionEdit`]s and applies
//! them with [`apply_edits`]: saves become `t = E; x = t`, reloads become
//! `x = t`, *speculative* reloads become check loads (`ld.c`, Appendix
//! B), control-speculative insertions become `ld.s` with NaT-check
//! reloads, and every load feeding a check is flagged as an advanced
//! load (`ld.a`).
//!
//! The [`MotionEdit`] vocabulary and [`apply_edits`] are shared by every
//! kernel client: store promotion and strength reduction express their
//! loop-shaped rewrites in the same terms instead of splicing statement
//! lists by hand.

use super::finalize::FinalizeOut;
use super::{Kernel, OpndDef, Role, SpecClient};
use crate::stats::OptStats;
use specframe_hssa::{HOperand, HStmt, HStmtKind, HVarKind, HssaFunc, Phi as HPhi};
use specframe_ir::{BlockId, CheckKind, LoadSpec, Ty, VarId};
use std::collections::{HashMap, HashSet};

/// One program rewrite, in kernel vocabulary. Statement indices refer to
/// the block's statement list *at application time*: emit per-block edits
/// in descending statement order (as the kernel does) so earlier indices
/// stay stable, and front/back insertions wherever convenient.
#[derive(Debug)]
pub enum MotionEdit {
    /// Replace the statement at `stmt` with `with`.
    Replace {
        block: BlockId,
        stmt: usize,
        with: HStmt,
    },
    /// Insert `what` immediately after the statement at `stmt`.
    InsertAfter {
        block: BlockId,
        stmt: usize,
        what: HStmt,
    },
    /// Insert `what` at the front of the block.
    InsertFront { block: BlockId, what: HStmt },
    /// Append `what` at the end of the block (before the terminator).
    Append { block: BlockId, what: HStmt },
    /// Attach a φ to the block.
    AddPhi { block: BlockId, phi: HPhi },
}

/// Applies the edits in order.
pub fn apply_edits(hf: &mut HssaFunc, edits: Vec<MotionEdit>) {
    for e in edits {
        match e {
            MotionEdit::Replace { block, stmt, with } => {
                hf.blocks[block.index()].stmts[stmt] = with;
            }
            MotionEdit::InsertAfter { block, stmt, what } => {
                hf.blocks[block.index()].stmts.insert(stmt + 1, what);
            }
            MotionEdit::InsertFront { block, what } => {
                hf.blocks[block.index()].stmts.insert(0, what);
            }
            MotionEdit::Append { block, what } => {
                hf.blocks[block.index()].stmts.push(what);
            }
            MotionEdit::AddPhi { block, phi } => {
                hf.blocks[block.index()].phis.push(phi);
            }
        }
    }
}

enum Edit {
    Save { stmt: usize, occ: usize },
    Reload { stmt: usize, occ: usize },
}

impl<C: SpecClient> Kernel<'_, C> {
    pub(crate) fn codemotion(
        &self,
        hf: &mut HssaFunc,
        t: VarId,
        fin: FinalizeOut,
        stats: &mut OptStats,
    ) {
        let occs = &self.occs;
        let phis = &self.phis;
        let is_load_expr = self.client.is_load();

        // advanced-load marking (Appendix B): a class with any checking
        // reload gets its defining loads flagged ld.a
        let mut checked_classes: HashSet<u32> = HashSet::new();
        for o in occs.iter() {
            if let Role::Reload { check: true, .. } = o.role {
                checked_classes.insert(o.class);
            }
        }
        // any Phi reachable from a checked class spreads the marking to
        // defs (conservative: mark every saving def of a checked class and
        // every insertion feeding a Phi of a checked class)
        let mut changed = true;
        let mut checked_phis: HashSet<usize> = HashSet::new();
        while changed {
            changed = false;
            for (i, p) in phis.iter().enumerate() {
                if checked_classes.contains(&p.class) && checked_phis.insert(i) {
                    changed = true;
                }
            }
            for p in phis.iter() {
                for o in &p.opnds {
                    if let OpndDef::Phi(j) = o.def {
                        if checked_classes.contains(&p.class)
                            && checked_classes.insert(phis[j].class)
                        {
                            changed = true;
                        }
                    }
                }
            }
            // defs linked as operands of checked phis
            for (i, p) in phis.iter().enumerate() {
                if !checked_phis.contains(&i) {
                    continue;
                }
                for o in &p.opnds {
                    if let OpndDef::Real(oi) = o.def {
                        if checked_classes.insert(occs[oi].class) {
                            changed = true;
                        }
                    }
                }
            }
        }

        // control-speculation: classes fed by a cspec Phi need NaT-check
        // reloads
        let cspec_phis: HashSet<usize> = phis
            .iter()
            .enumerate()
            .filter(|(_, p)| p.cspec && p.will_be_avail)
            .map(|(i, _)| i)
            .collect();
        let mut nat_classes: HashSet<u32> = HashSet::new();
        for &i in &cspec_phis {
            nat_classes.insert(phis[i].class);
        }
        // propagate downstream through phi operands
        let mut changed = true;
        while changed {
            changed = false;
            for p in phis.iter() {
                if p.opnds.iter().any(|o| match o.def {
                    OpndDef::Phi(j) => nat_classes.contains(&phis[j].class),
                    _ => false,
                }) && nat_classes.insert(p.class)
                {
                    changed = true;
                }
            }
        }

        // ---- emit the motion edits ---------------------------------------
        let mut motion: Vec<MotionEdit> = Vec::new();
        let mut per_block: HashMap<BlockId, Vec<Edit>> = HashMap::new();
        for (oi, o) in occs.iter().enumerate() {
            match o.role {
                Role::Compute { save: true } => {
                    per_block.entry(o.block).or_default().push(Edit::Save {
                        stmt: o.stmt,
                        occ: oi,
                    })
                }
                Role::Reload { .. } => per_block.entry(o.block).or_default().push(Edit::Reload {
                    stmt: o.stmt,
                    occ: oi,
                }),
                _ => {}
            }
        }

        // emit in block-index order, per block in descending statement
        // order: t-version allocation happens while emitting, so the
        // iteration order here is part of the printed SSA form
        let mut per_block: Vec<(BlockId, Vec<Edit>)> = per_block.into_iter().collect();
        per_block.sort_by_key(|(b, _)| b.index());
        for (b, mut edits) in per_block {
            edits.sort_by_key(|e| match e {
                Edit::Save { stmt, .. } | Edit::Reload { stmt, .. } => *stmt,
            });
            for e in edits.into_iter().rev() {
                match e {
                    Edit::Save { stmt, occ } => {
                        let o = &occs[occ];
                        let old = hf.blocks[b.index()].stmts[stmt].clone();
                        let dst = old.def_reg().expect("occurrence defines a register");
                        let mut def_stmt = old.clone();
                        // defining statement now writes t
                        set_dst(&mut def_stmt.kind, (t, o.t_ver));
                        if is_load_expr
                            && (checked_classes.contains(&o.class)
                                || nat_classes.contains(&o.class))
                        {
                            if let HStmtKind::Load { spec, .. } = &mut def_stmt.kind {
                                if *spec == LoadSpec::Normal {
                                    *spec = LoadSpec::Advanced;
                                    stats.advanced_loads += 1;
                                }
                            }
                        }
                        let copy = HStmt::new(HStmtKind::Copy {
                            dst,
                            src: HOperand::Reg(t, o.t_ver),
                        });
                        motion.push(MotionEdit::Replace {
                            block: b,
                            stmt,
                            with: def_stmt,
                        });
                        motion.push(MotionEdit::InsertAfter {
                            block: b,
                            stmt,
                            what: copy,
                        });
                        stats.saves += 1;
                    }
                    Edit::Reload { stmt, occ } => {
                        let o = &occs[occ];
                        let Role::Reload { from, check } = o.role else {
                            unreachable!()
                        };
                        let old = hf.blocks[b.index()].stmts[stmt].clone();
                        let dst = old.def_reg().expect("occurrence defines a register");
                        let needs_nat = nat_classes.contains(&o.class);
                        if is_load_expr && (check || needs_nat) {
                            // check load revalidates t, then the original
                            // destination copies from it (Appendix B / Fig. 8)
                            let tv2 = hf.fresh_ver_of_reg(t);
                            let (base, offset, lty, site_kind) = load_shape(&old.kind);
                            let kind = if check {
                                CheckKind::Alat
                            } else {
                                CheckKind::Nat
                            };
                            let chk = HStmt::new(HStmtKind::CheckLoad {
                                dst: (t, tv2),
                                base,
                                offset,
                                ty: lty,
                                kind,
                                site: site_kind,
                                dvar: None,
                            });
                            let copy = HStmt::new(HStmtKind::Copy {
                                dst,
                                src: HOperand::Reg(t, tv2),
                            });
                            motion.push(MotionEdit::Replace {
                                block: b,
                                stmt,
                                with: chk,
                            });
                            motion.push(MotionEdit::InsertAfter {
                                block: b,
                                stmt,
                                what: copy,
                            });
                            stats.checks += 1;
                            if check {
                                stats.data_spec_reloads += 1;
                            }
                        } else {
                            let copy = HStmt::new(HStmtKind::Copy {
                                dst,
                                src: HOperand::Reg(t, from),
                            });
                            motion.push(MotionEdit::Replace {
                                block: b,
                                stmt,
                                with: copy,
                            });
                        }
                        stats.reloads += 1;
                        if is_load_expr {
                            stats.loads_removed += 1;
                        }
                    }
                }
            }
        }

        // insertions at predecessor ends
        for (pi, op_idx) in fin.insertions {
            let p = &phis[pi];
            let pred = hf.preds[p.block.index()][op_idx];
            let opnd = &p.opnds[op_idx];
            let spec_load = p.cspec && is_load_expr;
            let stmt = self.client.materialize(
                hf,
                (t, opnd.t_ver),
                &opnd.vers_at_pred,
                if spec_load {
                    LoadSpec::Speculative
                } else if checked_classes.contains(&p.class) || nat_classes.contains(&p.class) {
                    LoadSpec::Advanced
                } else {
                    LoadSpec::Normal
                },
            );
            motion.push(MotionEdit::Append {
                block: pred,
                what: stmt,
            });
            stats.insertions += 1;
            if spec_load {
                stats.control_spec_loads += 1;
            }
        }

        // phis for t
        let t_hvar = hf.catalog.get(HVarKind::Reg(t)).expect("temp interned");
        for p in phis.iter() {
            if !p.will_be_avail {
                continue;
            }
            let args: Vec<u32> = p
                .opnds
                .iter()
                .map(|o| {
                    if o.t_ver != u32::MAX {
                        o.t_ver
                    } else {
                        0 // unreachable value path; collapsed var makes this benign
                    }
                })
                .collect();
            motion.push(MotionEdit::AddPhi {
                block: p.block,
                phi: HPhi {
                    var: t_hvar,
                    dest: p.t_ver,
                    args,
                },
            });
        }

        apply_edits(hf, motion);

        stats.transformed += 1;
        if occs.iter().any(|o| o.spec) {
            stats.data_speculated_exprs += 1;
        }
        if !cspec_phis.is_empty() {
            stats.control_speculated_exprs += 1;
        }
    }
}

fn set_dst(kind: &mut HStmtKind, new: (VarId, u32)) {
    match kind {
        HStmtKind::Bin { dst, .. }
        | HStmtKind::Un { dst, .. }
        | HStmtKind::Copy { dst, .. }
        | HStmtKind::Load { dst, .. }
        | HStmtKind::CheckLoad { dst, .. }
        | HStmtKind::Alloc { dst, .. } => *dst = new,
        HStmtKind::Call { dst: Some(d), .. } => *d = new,
        _ => panic!("set_dst on store"),
    }
}

/// Extracts the address shape of a load statement for check generation.
fn load_shape(kind: &HStmtKind) -> (HOperand, i64, Ty, specframe_ir::MemSiteId) {
    match kind {
        HStmtKind::Load {
            base, offset, ty, ..
        } => (*base, *offset, *ty, specframe_hssa::stmt::FRESH_SITE),
        HStmtKind::CheckLoad {
            base, offset, ty, ..
        } => (*base, *offset, *ty, specframe_hssa::stmt::FRESH_SITE),
        other => panic!("load_shape on non-load {other:?}"),
    }
}
