//! Step 3: DownSafety (block-lexical backward anticipation).
//!
//! A Φ is down-safe when the candidate is anticipated at its block. With
//! data speculation active, weak updates (χs the oracle calls unlikely) do
//! not kill — that is the client's [`SpecClient::kills`] answering
//! through the likeliness oracle. Control speculation then treats a
//! profitable non-down-safe Φ as down-safe when the edge profile says the
//! speculated path is cold relative to the block (Lo et al., PLDI '98).

use super::{Kernel, OpndDef, SpecClient};
use specframe_hssa::HssaFunc;
use specframe_ir::Function;

#[derive(Clone, Copy, PartialEq)]
enum Ev {
    Use,
    Kill,
    Transparent,
}

impl<C: SpecClient> Kernel<'_, C> {
    pub(crate) fn downsafety(&mut self, f_base: &Function, hf: &HssaFunc) {
        let nblocks = hf.blocks.len();
        let mut first_event = vec![Ev::Transparent; nblocks];
        for b in hf.block_ids() {
            // the block's first occurrence (if any) is occ_rng[b].0 — occs
            // are sorted by statement index within the block
            let (lo, hi) = self.occ_rng[b.index()];
            let first_occ = if lo < hi {
                self.occs[lo as usize].stmt
            } else {
                usize::MAX
            };
            for (si, stmt) in hf.blocks[b.index()].stmts.iter().enumerate() {
                if si == first_occ {
                    first_event[b.index()] = Ev::Use;
                    break;
                }
                if self.client.kills(stmt) {
                    first_event[b.index()] = Ev::Kill;
                    break;
                }
            }
        }
        let mut ant_in = vec![true; nblocks];
        let mut changed = true;
        while changed {
            changed = false;
            for &b in self.dt.rpo().iter().rev() {
                let succs = hf.blocks[b.index()]
                    .term
                    .as_ref()
                    .map(|t| t.successors())
                    .unwrap_or_default();
                let out = if succs.is_empty() {
                    false
                } else {
                    succs.iter().all(|s| ant_in[s.index()])
                };
                let inb = match first_event[b.index()] {
                    Ev::Use => true,
                    Ev::Kill => false,
                    Ev::Transparent => out,
                };
                if inb != ant_in[b.index()] {
                    ant_in[b.index()] = inb;
                    changed = true;
                }
            }
        }
        for p in self.phis.iter_mut() {
            p.down_safe = ant_in[p.block.index()];
        }
        // control speculation: profitable non-down-safe Phis become
        // "down-safe"
        if let Some((ep, fid)) = self.policy.control {
            if self.client.control_speculatable() {
                let freqs = ep.block_freqs(fid, f_base);
                for p in self.phis.iter_mut() {
                    if p.down_safe {
                        continue;
                    }
                    let bfreq = freqs[p.block.index()];
                    if bfreq == 0 {
                        continue;
                    }
                    let preds = &hf.preds[p.block.index()];
                    let ok = p.opnds.iter().enumerate().all(|(i, o)| {
                        o.def != OpndDef::Bottom
                            || ep.edge_count(fid, preds[i], p.block) * 2 < bfreq
                    });
                    // at least one operand must carry a value for
                    // speculation to be able to pay off
                    let any_def = p.opnds.iter().any(|o| o.def != OpndDef::Bottom);
                    if ok && any_def {
                        p.cspec = true;
                    }
                }
            }
        }
    }
}
