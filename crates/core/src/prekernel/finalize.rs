//! Step 5: Finalize.
//!
//! An availability walk in dominator preorder decides, for every real
//! occurrence, whether it computes the candidate (possibly saving into
//! the kernel temporary `t`) or reloads from `t`, and for every
//! will-be-available Φ operand whether an insertion is required at the
//! predecessor end. All t-versions are allocated here, in walk order —
//! that ordering is part of the printed SSA form the golden tests pin.

use super::{Kernel, OpndDef, Role, SpecClient, NO_PHI};
use specframe_hssa::HssaFunc;
use specframe_ir::{BlockId, VarId};

/// Finalize's verdict, consumed by CodeMotion. Saves are recorded
/// directly in the occurrences' roles.
pub(crate) struct FinalizeOut {
    /// (phi index, operand index) pairs needing an insertion.
    pub(crate) insertions: Vec<(usize, usize)>,
    /// Whether anything materialized at all (some reload, save or
    /// insertion); when false the kernel bails out without touching `hf`.
    pub(crate) changed: bool,
}

#[derive(Clone, Copy)]
enum Avail {
    FromPhi { phi: usize, t_ver: u32 },
    FromReal { occ: usize, t_ver: u32 },
}

enum Walk {
    Visit(BlockId),
    Pop(Vec<u32>),
}

impl<C: SpecClient> Kernel<'_, C> {
    pub(crate) fn finalize(&mut self, hf: &mut HssaFunc, t: VarId) -> FinalizeOut {
        let Kernel {
            dt,
            occs,
            occ_rng,
            phis,
            phi_at,
            next_class,
            ..
        } = self;
        // per-class availability stacks, indexed by the dense class ids
        // rename allocated
        let mut avail: Vec<Vec<Avail>> = vec![Vec::new(); *next_class as usize];
        // collected edits
        let mut saved = vec![false; occs.len()]; // occ indices that must save
        let mut insertions: Vec<(usize, usize)> = Vec::new(); // (phi, opnd)
        let mut walk = vec![Walk::Visit(dt.rpo()[0])];
        while let Some(w) = walk.pop() {
            match w {
                Walk::Pop(classes) => {
                    for c in classes {
                        avail[c as usize].pop();
                    }
                }
                Walk::Visit(b) => {
                    let mut pushed: Vec<u32> = Vec::new();
                    if phi_at[b.index()] != NO_PHI {
                        let pi = phi_at[b.index()] as usize;
                        if phis[pi].will_be_avail {
                            let tv = hf.fresh_ver_of_reg(t);
                            phis[pi].t_ver = tv;
                            avail[phis[pi].class as usize]
                                .push(Avail::FromPhi { phi: pi, t_ver: tv });
                            pushed.push(phis[pi].class);
                        }
                    }
                    // the block's occurrences, already in statement order
                    let (occ_lo, occ_hi) = occ_rng[b.index()];
                    for oi in occ_lo as usize..occ_hi as usize {
                        let class = occs[oi].class;
                        let top = avail[class as usize].last().copied();
                        match top {
                            Some(Avail::FromPhi { phi, t_ver }) => {
                                let check = occs[oi].spec || phis[phi].tainted;
                                occs[oi].role = Role::Reload { from: t_ver, check };
                            }
                            Some(Avail::FromReal { occ, t_ver }) => {
                                let check = occs[oi].spec || occs[occ].spec;
                                occs[oi].role = Role::Reload { from: t_ver, check };
                                saved[occ] = true;
                            }
                            None => {
                                let tv = hf.fresh_ver_of_reg(t);
                                occs[oi].t_ver = tv;
                                occs[oi].role = Role::Compute { save: false };
                                avail[class as usize].push(Avail::FromReal { occ: oi, t_ver: tv });
                                pushed.push(class);
                            }
                        }
                    }
                    // successors' Phi operands: insertions & t-version routing
                    let succs = hf.blocks[b.index()]
                        .term
                        .as_ref()
                        .map(|tm| tm.successors())
                        .unwrap_or_default();
                    for s in succs {
                        let pi = phi_at[s.index()];
                        if pi == NO_PHI {
                            continue;
                        }
                        let pi = pi as usize;
                        if !phis[pi].will_be_avail {
                            continue;
                        }
                        let Some(op_idx) = hf.pred_index(s, b) else {
                            continue;
                        };
                        let need_insert = match phis[pi].opnds[op_idx].def {
                            OpndDef::Bottom => true,
                            OpndDef::Phi(j) => {
                                !phis[j].will_be_avail && !phis[pi].opnds[op_idx].has_real_use
                            }
                            OpndDef::Real(_) => false,
                        };
                        if need_insert {
                            let tv = hf.fresh_ver_of_reg(t);
                            phis[pi].opnds[op_idx].t_ver = tv;
                            phis[pi].opnds[op_idx].inserted = true;
                            insertions.push((pi, op_idx));
                        } else {
                            // route the available t version along the edge
                            let tv = match phis[pi].opnds[op_idx].def {
                                OpndDef::Real(oi) => {
                                    saved[oi] = true;
                                    match occs[oi].role {
                                        Role::Compute { .. } => occs[oi].t_ver,
                                        Role::Reload { from, .. } => from,
                                    }
                                }
                                OpndDef::Phi(j) => phis[j].t_ver,
                                OpndDef::Bottom => unreachable!(),
                            };
                            phis[pi].opnds[op_idx].t_ver = tv;
                        }
                    }
                    walk.push(Walk::Pop(pushed));
                    for &c in dt.children(b).iter().rev() {
                        walk.push(Walk::Visit(c));
                    }
                }
            }
        }
        for (oi, &s) in saved.iter().enumerate() {
            if s {
                if let Role::Compute { .. } = occs[oi].role {
                    occs[oi].role = Role::Compute { save: true };
                }
            }
        }

        // nothing materialized? (all computes unsaved and no reloads)
        let changed = occs.iter().any(|o| match o.role {
            Role::Reload { .. } => true,
            Role::Compute { save } => save,
        }) || !insertions.is_empty();

        FinalizeOut {
            insertions,
            changed,
        }
    }
}
