//! Post-kernel cleanup: copy propagation, block-local forwarding of
//! collapsed-temporary copies, dead-φ pruning and dead-copy elimination.
//! Every kernel client runs [`cleanup_hssa`] after its rewrites so a
//! reload costs its check and nothing more.

use specframe_hssa::{HOperand, HStmtKind, HVarKind, HssaFunc};
use specframe_ir::VarId;
use specframe_ir::{FxHashMap, FxHashSet};

/// Post-SSAPRE cleanup: copy propagation, block-local forwarding of
/// collapsed-temporary copies, dead-φ pruning and dead-copy elimination,
/// iterated to a fixpoint. Without the φ pruning, non-pruned SSA would
/// lower into a φ-copy per live-range per loop iteration and drown the
/// cycle savings the promotion just bought.
pub fn cleanup_hssa(hf: &mut HssaFunc) {
    for _ in 0..4 {
        copy_propagate(hf);
        propagate_collapsed_local(hf);
        let a = eliminate_dead_phis(hf);
        let b = eliminate_dead_copies(hf);
        if a == 0 && b == 0 {
            break;
        }
    }
}

/// Removes φs over *register* variables whose result version is never
/// used by any statement, terminator, or live φ. Memory/virtual-variable
/// φs are ghosts (no lowering cost) and are kept. Returns the number of
/// φs removed.
pub fn eliminate_dead_phis(hf: &mut HssaFunc) -> usize {
    // seed: versions used by non-phi consumers
    let mut needed: FxHashSet<(VarId, u32)> = FxHashSet::default();
    for b in hf.block_ids() {
        let blk = &hf.blocks[b.index()];
        for stmt in &blk.stmts {
            for u in stmt.reg_uses() {
                needed.insert(u);
            }
        }
        match &blk.term {
            Some(specframe_hssa::HTerm::Br {
                cond: HOperand::Reg(v, ver),
                ..
            }) => {
                needed.insert((*v, *ver));
            }
            Some(specframe_hssa::HTerm::Ret(Some(HOperand::Reg(v, ver)))) => {
                needed.insert((*v, *ver));
            }
            _ => {}
        }
    }
    // propagate: a phi is live iff its dest is needed; live phis need their
    // arguments — dead phis keep nothing alive (this is what prunes the
    // circular self-sustaining phi webs of non-pruned SSA)
    let mut changed = true;
    while changed {
        changed = false;
        for b in hf.block_ids() {
            for phi in &hf.blocks[b.index()].phis {
                if let HVarKind::Reg(v) = hf.catalog.kind(phi.var) {
                    if needed.contains(&(v, phi.dest)) {
                        for &a in &phi.args {
                            changed |= needed.insert((v, a));
                        }
                    }
                }
            }
        }
    }
    let mut removed = 0usize;
    for b in hf.block_ids() {
        let catalog = hf.catalog.clone();
        let blk = &mut hf.blocks[b.index()];
        let before = blk.phis.len();
        blk.phis.retain(|phi| match catalog.kind(phi.var) {
            HVarKind::Reg(v) => needed.contains(&(v, phi.dest)),
            _ => true,
        });
        removed += before - blk.phis.len();
    }
    removed
}

/// Block-local propagation of copies *from* collapsed registers.
///
/// A copy `x = t` where `t` is a collapsed promotion temporary cannot be
/// propagated globally (another check may refresh `t` in between), but it
/// *is* safe to forward within the same block up to the next definition of
/// `t` — which removes the one-cycle copy from almost every reload (the
/// value is consumed right where it was reloaded).
pub fn propagate_collapsed_local(hf: &mut HssaFunc) {
    let collapsed: FxHashSet<VarId> = hf.collapsed_vars.iter().copied().collect();
    if collapsed.is_empty() {
        return;
    }
    for b in 0..hf.blocks.len() {
        let mut local: FxHashMap<(VarId, u32), (VarId, u32)> = FxHashMap::default();
        let blk = &mut hf.blocks[b];
        for stmt in &mut blk.stmts {
            let rewrite = |o: &mut HOperand, local: &FxHashMap<(VarId, u32), (VarId, u32)>| {
                if let HOperand::Reg(v, ver) = o {
                    if let Some(&(tv, tver)) = local.get(&(*v, *ver)) {
                        *o = HOperand::Reg(tv, tver);
                    }
                }
            };
            match &mut stmt.kind {
                HStmtKind::Bin { a, b, .. } => {
                    rewrite(a, &local);
                    rewrite(b, &local);
                }
                HStmtKind::Un { a, .. } => rewrite(a, &local),
                HStmtKind::Copy { src, .. } => rewrite(src, &local),
                HStmtKind::Load { base, .. } | HStmtKind::CheckLoad { base, .. } => {
                    rewrite(base, &local)
                }
                HStmtKind::Store { base, val, .. } => {
                    rewrite(base, &local);
                    rewrite(val, &local);
                }
                HStmtKind::Call { args, .. } => {
                    for a in args {
                        rewrite(a, &local);
                    }
                }
                HStmtKind::Alloc { words, .. } => rewrite(words, &local),
            }
            // a new definition of a collapsed register invalidates forwards
            if let Some((dv, _)) = stmt.def_reg() {
                if collapsed.contains(&dv) {
                    local.retain(|_, &mut (s, _)| s != dv);
                }
            }
            if let HStmtKind::Copy {
                dst,
                src: HOperand::Reg(sv, sver),
            } = &stmt.kind
            {
                if collapsed.contains(sv) && !collapsed.contains(&dst.0) {
                    local.insert(*dst, (*sv, *sver));
                }
            }
        }
        if let Some(term) = &mut blk.term {
            match term {
                specframe_hssa::HTerm::Br { cond, .. } => {
                    if let HOperand::Reg(v, ver) = cond {
                        if let Some(&(tv, tver)) = local.get(&(*v, *ver)) {
                            *cond = HOperand::Reg(tv, tver);
                        }
                    }
                }
                specframe_hssa::HTerm::Ret(Some(HOperand::Reg(v, ver))) => {
                    if let Some(&(tv, tver)) = local.get(&(*v, *ver)) {
                        *term = specframe_hssa::HTerm::Ret(Some(HOperand::Reg(tv, tver)));
                    }
                }
                _ => {}
            }
        }
    }
}

/// Removes `x = y` statements whose destination version is never used
/// (by any statement operand, terminator, or φ argument). Iterates to a
/// fixpoint since copies can feed only other dead copies.
pub fn eliminate_dead_copies(hf: &mut HssaFunc) -> usize {
    let mut total = 0usize;
    loop {
        let mut used: FxHashSet<(VarId, u32)> = FxHashSet::default();
        for b in hf.block_ids() {
            let blk = &hf.blocks[b.index()];
            for phi in &blk.phis {
                if let HVarKind::Reg(v) = hf.catalog.kind(phi.var) {
                    for &a in &phi.args {
                        used.insert((v, a));
                    }
                }
            }
            for stmt in &blk.stmts {
                for u in stmt.reg_uses() {
                    used.insert(u);
                }
            }
            match &blk.term {
                Some(specframe_hssa::HTerm::Br {
                    cond: HOperand::Reg(v, ver),
                    ..
                }) => {
                    used.insert((*v, *ver));
                }
                Some(specframe_hssa::HTerm::Ret(Some(HOperand::Reg(v, ver)))) => {
                    used.insert((*v, *ver));
                }
                _ => {}
            }
        }
        let mut removed = 0usize;
        for b in hf.block_ids() {
            let blk = &mut hf.blocks[b.index()];
            let before = blk.stmts.len();
            blk.stmts.retain(|stmt| match &stmt.kind {
                HStmtKind::Copy { dst, .. } => used.contains(dst),
                _ => true,
            });
            removed += before - blk.stmts.len();
        }
        total += removed;
        if removed == 0 {
            return total;
        }
    }
}

/// SSA copy propagation: rewrites every use of a register version defined
/// by `x = y` to use `y` directly. Versions of *collapsed* registers (the
/// load-promotion temporaries) are never propagated: their versions all
/// alias one machine register whose content changes at every check, so a
/// snapshot copy must stay a copy.
pub fn copy_propagate(hf: &mut HssaFunc) {
    let collapsed: FxHashSet<VarId> = hf.collapsed_vars.iter().copied().collect();
    let mut map: FxHashMap<(VarId, u32), HOperand> = FxHashMap::default();
    for b in hf.block_ids() {
        for stmt in &hf.blocks[b.index()].stmts {
            if let HStmtKind::Copy { dst, src } = &stmt.kind {
                let ok = match src {
                    HOperand::Reg(v, _) => !collapsed.contains(v),
                    _ => true,
                };
                if ok && !collapsed.contains(&dst.0) {
                    map.insert(*dst, *src);
                }
            }
        }
    }
    let resolve = |mut o: HOperand| -> HOperand {
        for _ in 0..64 {
            match o {
                HOperand::Reg(v, ver) => match map.get(&(v, ver)) {
                    Some(&next) => o = next,
                    None => break,
                },
                _ => break,
            }
        }
        o
    };
    for b in 0..hf.blocks.len() {
        for stmt in &mut hf.blocks[b].stmts {
            match &mut stmt.kind {
                HStmtKind::Bin { a, b, .. } => {
                    *a = resolve(*a);
                    *b = resolve(*b);
                }
                HStmtKind::Un { a, .. } => *a = resolve(*a),
                HStmtKind::Copy { src, .. } => *src = resolve(*src),
                HStmtKind::Load { base, .. } | HStmtKind::CheckLoad { base, .. } => {
                    *base = resolve(*base)
                }
                HStmtKind::Store { base, val, .. } => {
                    *base = resolve(*base);
                    *val = resolve(*val);
                }
                HStmtKind::Call { args, .. } => {
                    for a in args {
                        *a = resolve(*a);
                    }
                }
                HStmtKind::Alloc { words, .. } => *words = resolve(*words),
            }
        }
        if let Some(term) = &mut hf.blocks[b].term {
            match term {
                specframe_hssa::HTerm::Br { cond, .. } => *cond = resolve(*cond),
                specframe_hssa::HTerm::Ret(Some(v)) => *v = resolve(*v),
                _ => {}
            }
        }
    }
}
