//! Step 4: WillBeAvailable.
//!
//! `can_be_avail` / `later` propagation over the Φ graph, exactly as in
//! SSAPRE (Kennedy et al., TOPLAS '99), plus the speculative taint pass:
//! a Φ is *tainted* when some incoming value is only speculatively equal,
//! which Finalize turns into checking reloads downstream.

use super::{Kernel, OpndDef, SpecClient};

impl<C: SpecClient> Kernel<'_, C> {
    pub(crate) fn willbeavail(&mut self) {
        let phis = &mut self.phis;
        // can_be_avail
        let mut queue: Vec<usize> = Vec::new();
        for (i, p) in phis.iter_mut().enumerate() {
            if !(p.down_safe || p.cspec) && p.opnds.iter().any(|o| o.def == OpndDef::Bottom) {
                p.can_be_avail = false;
                queue.push(i);
            }
        }
        while let Some(dead) = queue.pop() {
            for (i, p) in phis.iter_mut().enumerate() {
                if !p.can_be_avail {
                    continue;
                }
                let affected = p
                    .opnds
                    .iter()
                    .any(|o| o.def == OpndDef::Phi(dead) && !o.has_real_use);
                if affected && !(p.down_safe || p.cspec) {
                    p.can_be_avail = false;
                    queue.push(i);
                }
            }
        }
        // later
        for p in phis.iter_mut() {
            p.later = p.can_be_avail;
        }
        let mut queue: Vec<usize> = Vec::new();
        for (i, p) in phis.iter_mut().enumerate() {
            if p.later {
                let has_real = p
                    .opnds
                    .iter()
                    .any(|o| o.has_real_use || matches!(o.def, OpndDef::Real(_)));
                if has_real {
                    p.later = false;
                    queue.push(i);
                }
            }
        }
        while let Some(early) = queue.pop() {
            for (i, p) in phis.iter_mut().enumerate() {
                if p.later && p.opnds.iter().any(|o| o.def == OpndDef::Phi(early)) {
                    p.later = false;
                    queue.push(i);
                }
            }
        }
        for p in phis.iter_mut() {
            p.will_be_avail = p.can_be_avail && !p.later;
        }

        // taint: speculative values flowing into Phis
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..phis.len() {
                if phis[i].tainted {
                    continue;
                }
                let t = phis[i].opnds.iter().any(|o| {
                    o.spec
                        || match o.def {
                            OpndDef::Phi(j) => phis[j].tainted,
                            _ => false,
                        }
                });
                if t {
                    phis[i].tainted = true;
                    changed = true;
                }
            }
        }
    }
}
