//! Step 2: Rename.
//!
//! A preorder dominator-tree walk maintains an expression stack alongside
//! one version stack per operand variable and assigns h-versions (classes)
//! to the real occurrences and Φ operands. The speculative extension
//! (paper Figure 7): when the memory versions of two occurrences differ
//! *only through speculative weak updates* — checked by the weak-chain
//! walker over the candidate's χ def chain — they receive the same class
//! with a speculation flag.

use super::{weak_reaches, Kernel, OpndDef, SpecClient, NO_PHI};
use crate::expr::OccVersions;
use specframe_hssa::{HStmtKind, HVarKind, HssaFunc};
use specframe_ir::BlockId;

#[derive(Clone, Debug)]
enum Top {
    Real(usize),
    Phi(usize),
}

struct Entry {
    class: u32,
    top: Top,
    vers: OccVersions,
}

enum Walk {
    Visit(BlockId),
    Pop {
        exprs: usize,
        regs: Vec<usize>,
        mems: usize,
    },
}

impl<C: SpecClient> Kernel<'_, C> {
    pub(crate) fn rename(&mut self, hf: &HssaFunc) {
        let Kernel {
            client,
            policy,
            dt,
            mem_var,
            occs,
            occ_rng,
            mem_defs,
            phis,
            phi_at,
            ..
        } = self;
        let client = *client;
        let tracked_regs = client.tracked_regs();
        let mem_var = *mem_var;
        let base_collapsed = client.base_collapsed();
        let data = policy.data();

        let mut next_class = 0u32;
        let mut expr_stack: Vec<Entry> = Vec::new();
        // variable version stacks: regs by position in tracked_regs, mem last
        let mut reg_stacks: Vec<Vec<u32>> = tracked_regs.iter().map(|_| vec![0]).collect();
        let mut mem_stack: Vec<u32> = vec![0];

        let mut walk = vec![Walk::Visit(dt.rpo()[0])];
        while let Some(w) = walk.pop() {
            match w {
                Walk::Pop { exprs, regs, mems } => {
                    for _ in 0..exprs {
                        expr_stack.pop();
                    }
                    for (i, n) in regs.iter().enumerate() {
                        for _ in 0..*n {
                            reg_stacks[i].pop();
                        }
                    }
                    for _ in 0..mems {
                        mem_stack.pop();
                    }
                }
                Walk::Visit(b) => {
                    let mut pushed_exprs = 0usize;
                    let mut pushed_regs = vec![0usize; tracked_regs.len()];
                    let mut pushed_mem = 0usize;

                    // (a) variable phis at block entry
                    for phi in &hf.blocks[b.index()].phis {
                        match hf.catalog.kind(phi.var) {
                            HVarKind::Reg(v) => {
                                if let Some(pos) = tracked_regs.iter().position(|&r| r == v) {
                                    reg_stacks[pos].push(phi.dest);
                                    pushed_regs[pos] += 1;
                                }
                            }
                            _ => {
                                if Some(phi.var) == mem_var {
                                    mem_stack.push(phi.dest);
                                    pushed_mem += 1;
                                }
                            }
                        }
                    }

                    // (b) expression Phi
                    if phi_at[b.index()] != NO_PHI {
                        let pi = phi_at[b.index()] as usize;
                        let vers = OccVersions {
                            regs: reg_stacks.iter().map(|s| *s.last().unwrap()).collect(),
                            mem: mem_var.map(|_| *mem_stack.last().unwrap()),
                        };
                        let class = next_class;
                        next_class += 1;
                        phis[pi].class = class;
                        expr_stack.push(Entry {
                            class,
                            top: Top::Phi(pi),
                            vers,
                        });
                        pushed_exprs += 1;
                    }

                    // (c) statements — the block's occurrences are the
                    // contiguous slice occ_rng[b], in statement order, so a
                    // cursor replaces the per-statement map lookup
                    let (occ_lo, occ_hi) = occ_rng[b.index()];
                    let mut occ_cur = occ_lo as usize;
                    let nstmts = hf.blocks[b.index()].stmts.len();
                    for si in 0..nstmts {
                        if occ_cur < occ_hi as usize && occs[occ_cur].stmt == si {
                            let oi = occ_cur;
                            occ_cur += 1;
                            let vers = occs[oi].vers.clone();
                            let mut assigned = false;
                            if let Some(top) = expr_stack.last() {
                                let regs_exact = top.vers.regs == vers.regs;
                                let regs_eq = regs_exact || (base_collapsed && data);
                                let reg_spec = regs_eq && !regs_exact;
                                if regs_eq && top.vers.mem == vers.mem {
                                    occs[oi].class = top.class;
                                    occs[oi].spec = reg_spec;
                                    assigned = true;
                                } else if regs_eq && data {
                                    if let (Some(cur), Some(at)) = (vers.mem, top.vers.mem) {
                                        if let Some(true) =
                                            weak_reaches(hf, mem_defs, client, cur, at)
                                        {
                                            occs[oi].class = top.class;
                                            occs[oi].spec = true;
                                            assigned = true;
                                        }
                                    }
                                }
                            }
                            if !assigned {
                                occs[oi].class = next_class;
                                next_class += 1;
                            }
                            let class = occs[oi].class;
                            expr_stack.push(Entry {
                                class,
                                top: Top::Real(oi),
                                vers,
                            });
                            pushed_exprs += 1;
                        }
                        // variable defs
                        let stmt = &hf.blocks[b.index()].stmts[si];
                        if let Some((v, ver)) = stmt.def_reg() {
                            if let Some(pos) = tracked_regs.iter().position(|&r| r == v) {
                                reg_stacks[pos].push(ver);
                                pushed_regs[pos] += 1;
                            }
                        }
                        if let Some(mv) = mem_var {
                            if let HStmtKind::Store {
                                dvar_def: Some((id, ver)),
                                ..
                            } = &stmt.kind
                            {
                                if *id == mv {
                                    mem_stack.push(*ver);
                                    pushed_mem += 1;
                                }
                            }
                            if let Some(chi) = stmt.chi_of(mv) {
                                mem_stack.push(chi.new_ver);
                                pushed_mem += 1;
                            }
                        }
                    }

                    // (e) expression-Phi operands in successors
                    let succs = hf.blocks[b.index()]
                        .term
                        .as_ref()
                        .map(|t| t.successors())
                        .unwrap_or_default();
                    for s in succs {
                        let pi = phi_at[s.index()];
                        if pi == NO_PHI {
                            continue;
                        }
                        let pi = pi as usize;
                        let Some(op_idx) = hf.pred_index(s, b) else {
                            continue;
                        };
                        let cur = OccVersions {
                            regs: reg_stacks.iter().map(|st| *st.last().unwrap()).collect(),
                            mem: mem_var.map(|_| *mem_stack.last().unwrap()),
                        };
                        // decide the operand binding before taking the
                        // mutable borrow (weak_reaches reads kernel state)
                        let mut bind: Option<(OpndDef, bool, bool)> = None;
                        if let Some(top) = expr_stack.last() {
                            let regs_exact = top.vers.regs == cur.regs;
                            let regs_eq = regs_exact || (base_collapsed && data);
                            let reg_spec = regs_eq && !regs_exact;
                            let mem_match = if top.vers.mem == cur.mem {
                                Some(reg_spec)
                            } else if regs_eq && data {
                                match (cur.mem, top.vers.mem) {
                                    (Some(c), Some(a)) => weak_reaches(hf, mem_defs, client, c, a),
                                    _ => None,
                                }
                            } else {
                                None
                            };
                            if regs_eq {
                                if let Some(spec) = mem_match {
                                    let def = match top.top {
                                        Top::Real(i) => OpndDef::Real(i),
                                        Top::Phi(i) => OpndDef::Phi(i),
                                    };
                                    bind = Some((def, matches!(top.top, Top::Real(_)), spec));
                                }
                            }
                        }
                        let opnd = &mut phis[pi].opnds[op_idx];
                        opnd.vers_at_pred = cur;
                        if let Some((def, has_real_use, spec)) = bind {
                            opnd.def = def;
                            opnd.has_real_use = has_real_use;
                            opnd.spec = spec;
                        }
                    }

                    walk.push(Walk::Pop {
                        exprs: pushed_exprs,
                        regs: pushed_regs,
                        mems: pushed_mem,
                    });
                    for &c in dt.children(b).iter().rev() {
                        walk.push(Walk::Visit(c));
                    }
                }
            }
        }
        self.next_class = next_class;
    }
}
