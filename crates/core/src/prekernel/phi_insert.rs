//! Step 1: Φ-Insertion.
//!
//! Φs for the hypothetical temporary are placed at the iterated dominance
//! frontier of every real occurrence, plus at every φ of a variable of the
//! candidate (the paper's Appendix A enhancement: walking def chains
//! through speculative weak updates can only ever reach variable φs, so
//! taking all of them is a sound superset).

use super::{Kernel, OpndDef, PhiE, PhiOpnd, SpecClient};
use crate::expr::OccVersions;
use specframe_analysis::iterated_df;
use specframe_hssa::{HVarId, HVarKind, HssaFunc};
use specframe_ir::BlockId;
use std::collections::{HashMap, HashSet};

impl<C: SpecClient> Kernel<'_, C> {
    pub(crate) fn phi_insertion(&mut self, hf: &HssaFunc) {
        let tracked_regs = self.client.tracked_regs();
        let mem_var = self.mem_var;
        let occ_blocks: HashSet<BlockId> = self.occs.iter().map(|o| o.block).collect();
        let mut phi_blocks: HashSet<BlockId> = iterated_df(self.df, occ_blocks.iter().copied())
            .into_iter()
            .collect();
        let reg_hvars: Vec<HVarId> = tracked_regs
            .iter()
            .filter_map(|&r| hf.catalog.get(HVarKind::Reg(r)))
            .collect();
        for b in hf.block_ids() {
            if !self.dt.is_reachable(b) {
                continue;
            }
            for phi in &hf.blocks[b.index()].phis {
                if reg_hvars.contains(&phi.var) || mem_var == Some(phi.var) {
                    phi_blocks.insert(b);
                }
            }
        }
        let mut phis: Vec<PhiE> = phi_blocks
            .iter()
            .filter(|b| self.dt.is_reachable(**b))
            .map(|&b| PhiE {
                block: b,
                class: u32::MAX,
                opnds: hf.preds[b.index()]
                    .iter()
                    .map(|_| PhiOpnd {
                        def: OpndDef::Bottom,
                        has_real_use: false,
                        spec: false,
                        vers_at_pred: OccVersions {
                            regs: vec![0; tracked_regs.len()],
                            mem: mem_var.map(|_| 0),
                        },
                        t_ver: u32::MAX,
                        inserted: false,
                    })
                    .collect(),
                down_safe: false,
                cspec: false,
                can_be_avail: true,
                later: true,
                will_be_avail: false,
                tainted: false,
                t_ver: u32::MAX,
            })
            .collect();
        phis.sort_by_key(|p| p.block);
        let phi_at: HashMap<BlockId, usize> =
            phis.iter().enumerate().map(|(i, p)| (p.block, i)).collect();
        self.phis = phis;
        self.phi_at = phi_at;
    }
}
