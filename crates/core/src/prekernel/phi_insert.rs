//! Step 1: Φ-Insertion.
//!
//! Φs for the hypothetical temporary are placed at the iterated dominance
//! frontier of every real occurrence, plus at every φ of a variable of the
//! candidate (the paper's Appendix A enhancement: walking def chains
//! through speculative weak updates can only ever reach variable φs, so
//! taking all of them is a sound superset).

use super::{Kernel, OpndDef, PhiE, PhiOpnd, SpecClient, NO_PHI};
use crate::expr::OccVersions;
use specframe_analysis::iterated_df;
use specframe_hssa::{HVarId, HVarKind, HssaFunc};
use specframe_ir::InlineVec;

impl<C: SpecClient> Kernel<'_, C> {
    pub(crate) fn phi_insertion(&mut self, hf: &HssaFunc) {
        let tracked_regs = self.client.tracked_regs();
        let mem_var = self.mem_var;
        let nblocks = hf.blocks.len();
        // occs are sorted by block, so consecutive dedup yields the seeds
        let mut occ_blocks = Vec::with_capacity(self.occs.len());
        for o in &self.occs {
            if occ_blocks.last() != Some(&o.block) {
                occ_blocks.push(o.block);
            }
        }
        let mut phi_block = vec![false; nblocks];
        for b in iterated_df(self.df, occ_blocks) {
            phi_block[b.index()] = true;
        }
        let reg_hvars: Vec<HVarId> = tracked_regs
            .iter()
            .filter_map(|&r| hf.catalog.get(HVarKind::Reg(r)))
            .collect();
        for b in hf.block_ids() {
            if !self.dt.is_reachable(b) {
                continue;
            }
            for phi in &hf.blocks[b.index()].phis {
                if reg_hvars.contains(&phi.var) || mem_var == Some(phi.var) {
                    phi_block[b.index()] = true;
                }
            }
        }
        // materialize in block-index order (the old sort order, for free)
        let mut phis: Vec<PhiE> = Vec::new();
        let mut phi_at = vec![NO_PHI; nblocks];
        for b in hf.block_ids() {
            if !phi_block[b.index()] || !self.dt.is_reachable(b) {
                continue;
            }
            phi_at[b.index()] = phis.len() as u32;
            phis.push(PhiE {
                block: b,
                class: u32::MAX,
                opnds: hf.preds[b.index()]
                    .iter()
                    .map(|_| PhiOpnd {
                        def: OpndDef::Bottom,
                        has_real_use: false,
                        spec: false,
                        vers_at_pred: OccVersions {
                            regs: InlineVec::filled(0, tracked_regs.len()),
                            mem: mem_var.map(|_| 0),
                        },
                        t_ver: u32::MAX,
                        inserted: false,
                    })
                    .collect(),
                down_safe: false,
                cspec: false,
                can_be_avail: true,
                later: true,
                will_be_avail: false,
                tainted: false,
                t_ver: u32::MAX,
            });
        }
        self.phis = phis;
        self.phi_at = phi_at;
    }
}
