//! The client-parameterized six-step speculative SSAPRE kernel.
//!
//! This module tree is the paper's §4 framework factored out of its
//! clients. One [`run_kernel`] call performs the six SSAPRE steps for a
//! single candidate described by a [`SpecClient`] over a function in
//! speculative SSA form — each step lives in the module named after it:
//!
//! 1. [`phi_insert`] — **Φ-Insertion**: Φs for the hypothetical temporary
//!    `h` are placed at the iterated dominance frontier of every real
//!    occurrence and at every φ of a variable of the candidate. Because
//!    the operand-variable φ set includes φs reached *through speculative
//!    weak updates*, this is the superset the paper's Appendix A computes
//!    by walking unflagged χs (an expression killed only by weak updates
//!    is *speculatively anticipated*, Figure 6).
//! 2. [`rename`] — a preorder dominator-tree walk assigns h-versions. The
//!    paper's extension: when operand versions differ *only through
//!    speculative weak updates*, the occurrence receives the same
//!    h-version and a speculation flag (Figure 7).
//! 3. [`downsafety`] — block-lexical backward anticipation; with data
//!    speculation, weak updates do not kill. Control speculation treats a
//!    profitable non-down-safe Φ as down-safe (edge-profile gated).
//! 4. [`willbeavail`] — `can_be_avail` / `later` propagation over the Φ
//!    graph, exactly as in SSAPRE.
//! 5. [`finalize`] — availability walk deciding saves, reloads and
//!    insertions, and allocating the t-versions they carry.
//! 6. [`codemotion`] — turns those decisions into [`MotionEdit`]s and
//!    applies them: saves become `t = E; x = t`, reloads become `x = t`,
//!    *speculative* reloads become check loads (`ld.c`, Appendix B),
//!    control-speculative insertions become `ld.s` with NaT-check
//!    reloads, and every load feeding a check is flagged `ld.a`.
//!
//! The kernel is shared by four clients: expression PRE and speculative
//! register promotion (both hosted in [`crate::ssapre`], running all six
//! steps), store promotion ([`crate::storeprom`]) and strength reduction
//! ([`crate::strength`]), which reuse the kernel's loop recognition
//! ([`loops`]) and motion-edit application ([`codemotion::apply_edits`])
//! for their loop-shaped candidates, plus linear-function test
//! replacement ([`crate::lftr`]), which consumes the rename/version state
//! strength reduction records for its temporaries.
//!
//! A client answers three questions and nothing more: *which statements
//! are occurrences of the candidate* ([`SpecClient::occurrence`]), *does
//! this statement kill it under the active speculation policy* — the
//! speculative-weak-update query routed through the driver's single
//! [`Likeliness`] oracle ([`SpecClient::kills`]) — and *how is an
//! inserted computation emitted* ([`SpecClient::materialize`]).

pub mod cleanup;
pub mod codemotion;
pub mod downsafety;
pub mod finalize;
pub mod loops;
pub mod phi_insert;
pub mod rename;
pub mod willbeavail;

pub use cleanup::{
    cleanup_hssa, copy_propagate, eliminate_dead_copies, eliminate_dead_phis,
    propagate_collapsed_local,
};
pub use codemotion::{apply_edits, MotionEdit};
pub use loops::{reducible_loops, LoopShape};

use crate::expr::OccVersions;
use crate::stats::OptStats;
use specframe_analysis::{DomFrontiers, DomTree, EdgeProfile};
use specframe_hssa::{HStmt, HStmtKind, HVarId, HssaFunc, Likeliness};
use specframe_ir::{BlockId, DenseMap, FuncId, Function, LoadSpec, Ty, VarId};

/// Speculation policy given to the kernel: the driver-owned likeliness
/// oracle (data speculation) plus the control-speculation edge profile.
#[derive(Clone, Copy, Debug)]
pub struct SpecPolicy<'a> {
    /// Likeliness oracle answering every χ weak-update question.
    pub oracle: Likeliness<'a>,
    /// Control speculation: edge profile + owning function.
    pub control: Option<(&'a EdgeProfile, FuncId)>,
}

impl SpecPolicy<'_> {
    /// Policy with all speculation off (the O3 baseline).
    pub fn none() -> SpecPolicy<'static> {
        SpecPolicy {
            oracle: Likeliness::new(specframe_hssa::SpecMode::NoSpeculation),
            control: None,
        }
    }

    /// Data speculation enabled (weak updates skippable).
    pub fn data(&self) -> bool {
        self.oracle.speculative()
    }
}

/// The kernel's contract with a candidate. Everything lexical about the
/// candidate (its shape, its operand variables, its kill set under the
/// speculation policy) lives behind this trait; the six steps themselves
/// are candidate-agnostic.
pub trait SpecClient {
    /// Debug rendering of the candidate (used by `SPECFRAME_DEBUG_SSAPRE`).
    fn describe(&self) -> String;
    /// Candidate-occurrence harvesting: does `stmt` compute the candidate?
    /// Returns the operand versions it consumes.
    fn occurrence(&self, stmt: &HStmt) -> Option<OccVersions>;
    /// The speculative-weak-update query: does `stmt` kill the candidate
    /// under the active policy? Implementations route χ decisions through
    /// the driver's [`Likeliness`] oracle.
    fn kills(&self, stmt: &HStmt) -> bool;
    /// Register operand variables, in lexical position order (deduped).
    fn tracked_regs(&self) -> &[VarId];
    /// Memory/virtual variable the candidate depends on, if any.
    fn tracked_mem(&self) -> Option<HVarId>;
    /// Whether the candidate's base register is itself a collapsed
    /// promotion temporary (Appendix B's cascaded `chk.a` case): its
    /// redefinitions are injuring, not killing.
    fn base_collapsed(&self) -> bool {
        false
    }
    /// Whether occurrences are loads (the temporary then collapses onto
    /// one machine register so the ALAT can key it).
    fn is_load(&self) -> bool;
    /// Whether the candidate may be control-speculated (inserted on
    /// non-down-safe paths).
    fn control_speculatable(&self) -> bool;
    /// Result type of the kernel temporary.
    fn temp_ty(&self) -> Ty;
    /// Name of the kernel temporary (`n` is the global temp counter).
    fn temp_name(&self, n: u64) -> String;
    /// Motion-edit emission: build the inserted computation writing `t`,
    /// using the operand versions recorded at the predecessor end.
    fn materialize(
        &self,
        hf: &HssaFunc,
        t: (VarId, u32),
        vers: &OccVersions,
        spec: LoadSpec,
    ) -> HStmt;
}

// ---------------------------------------------------------------------------
// occurrence bookkeeping (shared by all six steps)
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
pub(crate) struct RealOcc {
    pub(crate) block: BlockId,
    pub(crate) stmt: usize,
    pub(crate) vers: OccVersions,
    pub(crate) class: u32,
    /// Matched its class only through speculative weak updates.
    pub(crate) spec: bool,
    /// Filled by Finalize.
    pub(crate) role: Role,
    /// t-version, when this occurrence is a class def (save).
    pub(crate) t_ver: u32,
}

#[derive(Clone, Copy, PartialEq, Debug)]
pub(crate) enum Role {
    /// Computes the candidate itself (maybe saving into t).
    Compute { save: bool },
    /// Reloads from t.
    Reload { from: u32, check: bool },
}

#[derive(Clone, Copy, PartialEq, Debug)]
pub(crate) enum OpndDef {
    Bottom,
    Real(usize),
    Phi(usize),
}

#[derive(Clone, Debug)]
pub(crate) struct PhiOpnd {
    pub(crate) def: OpndDef,
    pub(crate) has_real_use: bool,
    pub(crate) spec: bool,
    /// Variable versions at the end of the predecessor (for insertion).
    pub(crate) vers_at_pred: OccVersions,
    /// t-version carried along this edge (filled by Finalize).
    pub(crate) t_ver: u32,
    /// Insertion performed on this edge.
    pub(crate) inserted: bool,
}

#[derive(Clone, Debug)]
pub(crate) struct PhiE {
    pub(crate) block: BlockId,
    pub(crate) class: u32,
    pub(crate) opnds: Vec<PhiOpnd>,
    pub(crate) down_safe: bool,
    /// Made "down-safe" by control speculation.
    pub(crate) cspec: bool,
    pub(crate) can_be_avail: bool,
    pub(crate) later: bool,
    pub(crate) will_be_avail: bool,
    /// Some incoming value is only speculatively equal.
    pub(crate) tainted: bool,
    pub(crate) t_ver: u32,
}

/// Where a memory-variable version was defined (for weak-chain walking).
#[derive(Clone, Copy, Debug)]
pub(crate) enum MemDef {
    Entry,
    Phi(#[allow(dead_code)] BlockId),
    /// Strong direct def (store to the variable itself).
    Strong,
    /// χ at (block, stmt); `old` is the version merged in.
    Chi {
        block: BlockId,
        stmt: usize,
        old: u32,
    },
}

// ---------------------------------------------------------------------------
// kernel state
// ---------------------------------------------------------------------------

/// Sentinel for "no Φ in this block" in the dense [`Kernel::phi_at`] map.
pub(crate) const NO_PHI: u32 = u32::MAX;

/// State threaded through the six steps for one candidate.
///
/// Everything is index-keyed: occurrences live in one `Vec` sorted by
/// (block layout index, statement index) — a block's occurrences are the
/// contiguous slice named by `occ_rng` — and the per-block/per-version
/// side tables are dense vectors rather than hash maps, so the rename /
/// downsafety / finalize walks never hash.
pub(crate) struct Kernel<'k, C: SpecClient> {
    pub(crate) client: &'k C,
    pub(crate) policy: &'k SpecPolicy<'k>,
    pub(crate) dt: &'k DomTree,
    pub(crate) df: &'k DomFrontiers,
    pub(crate) mem_var: Option<HVarId>,
    pub(crate) occs: Vec<RealOcc>,
    /// Per block (by index): `occs[lo..hi]` are its occurrences in
    /// statement order.
    pub(crate) occ_rng: Vec<(u32, u32)>,
    /// Memory-variable def table, keyed by SSA version.
    pub(crate) mem_defs: DenseMap<MemDef>,
    pub(crate) phis: Vec<PhiE>,
    /// Per block (by index): index into `phis`, or [`NO_PHI`].
    pub(crate) phi_at: Vec<u32>,
    /// Number of redundancy classes allocated by rename.
    pub(crate) next_class: u32,
}

impl<'k, C: SpecClient> Kernel<'k, C> {
    /// Scans the function for real occurrences of the candidate and builds
    /// the memory-variable def table the weak-chain walker uses.
    pub(crate) fn scan(
        hf: &HssaFunc,
        client: &'k C,
        dt: &'k DomTree,
        df: &'k DomFrontiers,
        policy: &'k SpecPolicy<'k>,
    ) -> Self {
        let mem_var = client.tracked_mem();
        let mut occs: Vec<RealOcc> = Vec::new();
        let mut occ_rng: Vec<(u32, u32)> = vec![(0, 0); hf.blocks.len()];
        for b in hf.block_ids() {
            if !dt.is_reachable(b) {
                continue;
            }
            let lo = occs.len() as u32;
            for (si, stmt) in hf.blocks[b.index()].stmts.iter().enumerate() {
                if let Some(vers) = client.occurrence(stmt) {
                    occs.push(RealOcc {
                        block: b,
                        stmt: si,
                        vers,
                        class: u32::MAX,
                        spec: false,
                        role: Role::Compute { save: false },
                        t_ver: u32::MAX,
                    });
                }
            }
            occ_rng[b.index()] = (lo, occs.len() as u32);
        }

        // memory-variable def table: (version) -> MemDef
        let mut mem_defs: DenseMap<MemDef> = match mem_var {
            Some(mv) => DenseMap::with_len(hf.next_ver[mv.index()] as usize),
            None => DenseMap::new(),
        };
        if let Some(mv) = mem_var {
            mem_defs.insert(0, MemDef::Entry);
            for b in hf.block_ids() {
                // Unreachable blocks were never visited by HSSA rename, so
                // their χ/store versions are still the u32::MAX sentinel —
                // inserting that key would grow the dense table to 2³²
                // slots. No reachable chain can reference them (versions
                // are assigned on the dominator walk), so skip, exactly as
                // the occurrence scan above does.
                if !dt.is_reachable(b) {
                    continue;
                }
                for phi in &hf.blocks[b.index()].phis {
                    if phi.var == mv {
                        mem_defs.insert(phi.dest, MemDef::Phi(b));
                    }
                }
                for (si, stmt) in hf.blocks[b.index()].stmts.iter().enumerate() {
                    if let HStmtKind::Store {
                        dvar_def: Some((id, ver)),
                        ..
                    } = &stmt.kind
                    {
                        if *id == mv {
                            mem_defs.insert(*ver, MemDef::Strong);
                        }
                    }
                    if let Some(chi) = stmt.chi_of(mv) {
                        mem_defs.insert(
                            chi.new_ver,
                            MemDef::Chi {
                                block: b,
                                stmt: si,
                                old: chi.old_ver,
                            },
                        );
                    }
                }
            }
        }

        Kernel {
            client,
            policy,
            dt,
            df,
            mem_var,
            occs,
            occ_rng,
            mem_defs,
            phis: Vec::new(),
            phi_at: vec![NO_PHI; hf.blocks.len()],
            next_class: 0,
        }
    }
}

/// Weak-chain query: can memory version `from` reach `to` through
/// skippable (unlikely, per the oracle) χs only? `Some(true)` = reaches
/// with >0 weak steps; `Some(false)` = equal; `None` = blocked.
pub(crate) fn weak_reaches<C: SpecClient>(
    hf: &HssaFunc,
    mem_defs: &DenseMap<MemDef>,
    client: &C,
    mut from: u32,
    to: u32,
) -> Option<bool> {
    if from == to {
        return Some(false);
    }
    let mut steps = 0;
    while steps < 4096 {
        match mem_defs.get(from) {
            Some(MemDef::Chi { block, stmt, old }) => {
                let s = &hf.blocks[block.index()].stmts[*stmt];
                if client.kills(s) {
                    return None;
                }
                from = *old;
                if from == to {
                    return Some(true);
                }
            }
            _ => return None,
        }
        steps += 1;
    }
    None
}

/// Runs the six steps for one candidate. Returns `true` if the program
/// changed.
pub fn run_kernel<C: SpecClient>(
    f_base: &Function,
    hf: &mut HssaFunc,
    client: &C,
    dt: &DomTree,
    df: &DomFrontiers,
    policy: &SpecPolicy<'_>,
    stats: &mut OptStats,
) -> bool {
    let debug = std::env::var_os("SPECFRAME_DEBUG_SSAPRE").is_some();

    // ---- scan: real occurrences + def tables -----------------------------
    let mut k = Kernel::scan(hf, client, dt, df, policy);
    if k.occs.is_empty() {
        return false;
    }

    // ---- steps 1-4 --------------------------------------------------------
    k.phi_insertion(hf);
    k.rename(hf);
    k.downsafety(f_base, hf);
    k.willbeavail();

    // quick profitability scan: is there anything to do at all? Occurrence
    // positions are unique, so a class is redundant iff it has two members;
    // one counting pass over the dense class ids replaces the O(n²) probe.
    let mut class_seen = vec![false; k.next_class as usize];
    let mut any_redundancy = false;
    for o in &k.occs {
        let c = o.class as usize;
        if class_seen[c] {
            any_redundancy = true;
            break;
        }
        class_seen[c] = true;
    }
    let mut wba_class = vec![false; k.next_class as usize];
    for p in &k.phis {
        if p.will_be_avail {
            wba_class[p.class as usize] = true;
        }
    }
    let any_wba_phi_use = k.occs.iter().any(|o| wba_class[o.class as usize]);
    if debug {
        eprintln!("[ssapre] key={} occs={:?}", client.describe(), k.occs);
        for p in &k.phis {
            eprintln!(
                "[ssapre]   phi@{:?} class={} ds={} cspec={} cba={} later={} wba={} opnds={:?}",
                p.block,
                p.class,
                p.down_safe,
                p.cspec,
                p.can_be_avail,
                p.later,
                p.will_be_avail,
                p.opnds
            );
        }
        eprintln!("[ssapre]   any_red={any_redundancy} any_wba={any_wba_phi_use}");
    }
    if !any_redundancy && !any_wba_phi_use {
        return false;
    }

    // ---- steps 5+6 --------------------------------------------------------
    // the kernel temporary (collapsed at lowering for load clients: the
    // ALAT keys ld.a/ld.c by it, and failed checks refresh it for later
    // reloads; arithmetic temporaries stay in proper SSA)
    let t = hf.add_temp(client.temp_name(stats.temps), client.temp_ty());
    stats.temps += 1;
    if client.is_load() {
        hf.collapsed_vars.push(t);
    }

    let fin = k.finalize(hf, t);
    if !fin.changed {
        // nothing materialized (all computes unsaved and no reloads); the
        // allocated temp is left behind, harmless but unused
        return false;
    }

    k.codemotion(hf, t, fin, stats);
    true
}
