//! Strength reduction and linear-function test replacement.
//!
//! The paper lists both as members of the SSAPRE optimization set (§4.1,
//! after Kennedy et al., CC '98) and notes that *"the speculative weak
//! update concept … corresponds to the injuring definition and the
//! generation of speculative check instructions corresponds to the repair
//! code"* in that work. This client shares the engine's machinery: it
//! introduces a collapsed PRE-style temporary `s ≡ i*c` per induction
//! expression, keeps it up to date with *repair* additions at each
//! injuring definition (`i = i + k` → `s = s + k*c`), and replaces the
//! multiplications with copies. Each reduced factor is recorded as an
//! [`SrTemp`] so the separate [`crate::lftr`] client can later rewrite
//! the loop-exit test `i < N` into `s < N*c` (linear-function test
//! replacement) — LFTR needs the rename/version state (`v_phi`/`v_step`)
//! this pass establishes.
//!
//! Like store promotion, this pass is a loop-shaped client of
//! [`crate::prekernel`]: loops come from [`reducible_loops`], candidate
//! harvesting and temporary emission go through [`SpecClient`], and all
//! rewrites are [`MotionEdit`]s applied via [`apply_edits`].

use crate::expr::OccVersions;
use crate::prekernel::{apply_edits, reducible_loops, MotionEdit, SpecClient};
use crate::stats::OptStats;
use specframe_analysis::FuncAnalyses;
use specframe_hssa::{HOperand, HStmt, HStmtKind, HVarId, HVarKind, HssaFunc, Phi as HPhi};
use specframe_ir::{BinOp, BlockId, LoadSpec, Ty, VarId};

/// One reduced induction expression `s ≡ i*c`, recorded for LFTR. The
/// versions are the rename state LFTR needs to pick the right `s` version
/// for each version of `i` appearing in a loop-exit test.
#[derive(Debug, Clone)]
pub struct SrTemp {
    /// The basic induction variable `i`.
    pub iv_var: VarId,
    /// `i`'s version defined by the header φ.
    pub iv_phi_dest: u32,
    /// `i`'s version produced by the increment.
    pub iv_latch_ver: u32,
    /// The reduction temporary `s`.
    pub s: VarId,
    /// `s`'s header-φ version (pairs with `iv_phi_dest`).
    pub v_phi: u32,
    /// `s`'s post-repair version (pairs with `iv_latch_ver`).
    pub v_step: u32,
    /// The constant factor `c`.
    pub c: i64,
    /// Blocks of the owning loop.
    pub body: Vec<BlockId>,
}

/// One recognized basic induction variable.
#[derive(Debug, Clone, Copy)]
struct BasicIv {
    /// The register.
    var: VarId,
    /// Version defined by the header φ.
    phi_dest: u32,
    /// Version flowing in from the preheader.
    pre_ver: u32,
    /// Version produced by the increment (flows around the back edge).
    latch_ver: u32,
    /// Increment constant `k`.
    k: i64,
    /// Location of the increment statement.
    inc_at: (BlockId, usize),
    /// φ argument index of the preheader / latch.
    pre_idx: usize,
    latch_idx: usize,
}

/// The strength-reduction candidate: multiplications of one basic IV by
/// a constant factor. `c = None` harvests factor-agnostically; a fixed
/// factor drives emission. The increment is an *injuring* definition in
/// the paper's sense — it never kills, it gets repair code — so the kill
/// query is constantly false.
struct StrengthClient {
    iv: BasicIv,
    c: Option<i64>,
}

impl StrengthClient {
    /// Extracts `(version of i, factor)` if `stmt` is `_ = mul i, c`
    /// (either operand order) with a usable nonzero factor.
    fn mul_of_iv(&self, stmt: &HStmt) -> Option<(u32, i64)> {
        let HStmtKind::Bin {
            op: BinOp::Mul,
            a,
            b,
            ..
        } = &stmt.kind
        else {
            return None;
        };
        let (ver, c) = match (a, b) {
            (HOperand::Reg(v, ver), HOperand::ConstI(c)) if *v == self.iv.var => (*ver, *c),
            (HOperand::ConstI(c), HOperand::Reg(v, ver)) if *v == self.iv.var => (*ver, *c),
            _ => return None,
        };
        if c == 0 || self.c.is_some_and(|want| want != c) {
            return None;
        }
        Some((ver, c))
    }
}

impl SpecClient for StrengthClient {
    fn describe(&self) -> String {
        format!("strength-reduce {:?} * {:?}", self.iv.var, self.c)
    }

    fn occurrence(&self, stmt: &HStmt) -> Option<OccVersions> {
        self.mul_of_iv(stmt).map(|(ver, _)| OccVersions {
            regs: [ver].into_iter().collect(),
            mem: None,
        })
    }

    fn kills(&self, _stmt: &HStmt) -> bool {
        false
    }

    fn tracked_regs(&self) -> &[VarId] {
        std::slice::from_ref(&self.iv.var)
    }

    fn tracked_mem(&self) -> Option<HVarId> {
        None
    }

    fn is_load(&self) -> bool {
        false
    }

    fn control_speculatable(&self) -> bool {
        false
    }

    fn temp_ty(&self) -> Ty {
        Ty::I64
    }

    fn temp_name(&self, n: u64) -> String {
        format!("sr{n}")
    }

    /// The preheader initialization `s = i.pre * c`.
    fn materialize(
        &self,
        _hf: &HssaFunc,
        t: (VarId, u32),
        vers: &OccVersions,
        _spec: LoadSpec,
    ) -> HStmt {
        HStmt::new(HStmtKind::Bin {
            dst: t,
            op: BinOp::Mul,
            a: HOperand::Reg(self.iv.var, vers.regs[0]),
            b: HOperand::ConstI(self.c.expect("factor fixed at emission")),
        })
    }
}

/// Runs strength reduction over every loop of `hf`, using the function's
/// cached CFG analyses. Each reduced factor is appended to `sr_out` for
/// the LFTR pass. Returns the number of multiplications rewritten.
pub fn strength_reduce_hssa(
    hf: &mut HssaFunc,
    stats: &mut OptStats,
    fa: &FuncAnalyses,
    sr_out: &mut Vec<SrTemp>,
) -> usize {
    let mut rewritten_total = 0;

    for shape in reducible_loops(hf, fa) {
        let header = shape.header;
        let preheader = shape.preheader;
        let pre_idx = shape.pre_idx;
        let latch_idx = shape.latch_idx;

        // recognize basic induction variables from header φs
        let mut ivs: Vec<BasicIv> = Vec::new();
        for phi in hf.blocks[header.index()].phis.clone() {
            let HVarKind::Reg(var) = hf.catalog.kind(phi.var) else {
                continue;
            };
            let pre_ver = phi.args[pre_idx];
            let latch_ver = phi.args[latch_idx];
            // find `var.latch_ver = add var.phi_dest, k` in the loop body
            let mut found = None;
            'search: for &b in &shape.body {
                for (si, stmt) in hf.blocks[b.index()].stmts.iter().enumerate() {
                    if let HStmtKind::Bin { dst, op, a, b: bb } = &stmt.kind {
                        if *dst != (var, latch_ver) {
                            continue;
                        }
                        let k = match (op, a, bb) {
                            (BinOp::Add, HOperand::Reg(v, ver), HOperand::ConstI(k))
                                if *v == var && *ver == phi.dest =>
                            {
                                Some(*k)
                            }
                            (BinOp::Add, HOperand::ConstI(k), HOperand::Reg(v, ver))
                                if *v == var && *ver == phi.dest =>
                            {
                                Some(*k)
                            }
                            (BinOp::Sub, HOperand::Reg(v, ver), HOperand::ConstI(k))
                                if *v == var && *ver == phi.dest =>
                            {
                                Some(-*k)
                            }
                            _ => None,
                        };
                        if let Some(k) = k {
                            found = Some(BasicIv {
                                var,
                                phi_dest: phi.dest,
                                pre_ver,
                                latch_ver,
                                k,
                                inc_at: (b, si),
                                pre_idx,
                                latch_idx,
                            });
                            break 'search;
                        }
                    }
                }
            }
            if let Some(iv) = found {
                ivs.push(iv);
            }
        }

        for iv in ivs {
            rewritten_total += reduce_one_iv(hf, &shape.body, header, preheader, iv, stats, sr_out);
        }
    }
    rewritten_total
}

fn reduce_one_iv(
    hf: &mut HssaFunc,
    body: &[BlockId],
    header: BlockId,
    preheader: BlockId,
    iv: BasicIv,
    stats: &mut OptStats,
    sr_out: &mut Vec<SrTemp>,
) -> usize {
    // harvest candidate multiplications through the client's occurrence
    // query, factor-agnostically; grouped by constant factor below
    // (block, stmt, dest, which version of i, factor)
    let probe = StrengthClient { iv, c: None };
    type MulCand = (BlockId, usize, (VarId, u32), u32, i64);
    let mut cands: Vec<MulCand> = Vec::new();
    for &b in body {
        for (si, stmt) in hf.blocks[b.index()].stmts.iter().enumerate() {
            let Some((ver, c)) = probe.mul_of_iv(stmt) else {
                continue;
            };
            let HStmtKind::Bin { dst, .. } = &stmt.kind else {
                unreachable!()
            };
            let usable = ver == iv.phi_dest
                || (ver == iv.latch_ver
                    && (b, si) > (iv.inc_at.0, iv.inc_at.1)
                    && b == iv.inc_at.0);
            if usable {
                cands.push((b, si, *dst, ver, c));
            }
        }
    }
    if cands.is_empty() {
        return 0;
    }

    let mut factors: Vec<i64> = cands.iter().map(|c| c.4).collect();
    factors.sort_unstable();
    factors.dedup();

    let mut rewritten = 0;
    for c in factors {
        let client = StrengthClient { iv, c: Some(c) };
        // s tracks i * c
        // SR temporaries are proper SSA (their header φ is constructed
        // explicitly), so they need no collapsing and their copies fully
        // propagate away
        let s = hf.add_temp(client.temp_name(stats.temps), client.temp_ty());
        stats.temps += 1;
        let mut edits: Vec<MotionEdit> = Vec::new();

        // preheader: s = i.pre * c
        let v_init = hf.fresh_ver_of_reg(s);
        edits.push(MotionEdit::Append {
            block: preheader,
            what: client.materialize(
                hf,
                (s, v_init),
                &OccVersions {
                    regs: [iv.pre_ver].into_iter().collect(),
                    mem: None,
                },
                LoadSpec::Normal,
            ),
        });

        // header φ: s.h = φ(s.init, s.step)
        let v_phi = hf.fresh_ver_of_reg(s);
        let v_step = hf.fresh_ver_of_reg(s);
        let s_hvar = hf.catalog.get(HVarKind::Reg(s)).expect("temp interned");
        let npreds = hf.preds[header.index()].len();
        let mut args = vec![v_init; npreds];
        args[iv.pre_idx] = v_init;
        args[iv.latch_idx] = v_step;
        edits.push(MotionEdit::AddPhi {
            block: header,
            phi: HPhi {
                var: s_hvar,
                dest: v_phi,
                args,
            },
        });

        // repair after the injuring definition: s.step = s.h + k*c
        let (ib, isi) = iv.inc_at;
        edits.push(MotionEdit::InsertAfter {
            block: ib,
            stmt: isi,
            what: HStmt::new(HStmtKind::Bin {
                dst: (s, v_step),
                op: BinOp::Add,
                a: HOperand::Reg(s, v_phi),
                b: HOperand::ConstI(iv.k.wrapping_mul(c)),
            }),
        });

        // rewrite candidates of this factor; edits apply in order, so the
        // Replace indices are post-insertion (within the increment block
        // they shift by one past the repair)
        for &(b, si, dst, ver, cc) in &cands {
            if cc != c {
                continue;
            }
            let si_adj = if b == ib && si > isi { si + 1 } else { si };
            let src_ver = if ver == iv.phi_dest { v_phi } else { v_step };
            edits.push(MotionEdit::Replace {
                block: b,
                stmt: si_adj,
                with: HStmt::new(HStmtKind::Copy {
                    dst,
                    src: HOperand::Reg(s, src_ver),
                }),
            });
            rewritten += 1;
            stats.strength_reduced += 1;
        }
        // apply per factor, not per loop: the next factor's repair
        // insertion and candidate indices read the mutated statement list
        apply_edits(hf, edits);

        sr_out.push(SrTemp {
            iv_var: iv.var,
            iv_phi_dest: iv.phi_dest,
            iv_latch_ver: iv.latch_ver,
            s,
            v_phi,
            v_step,
            c,
            body: body.to_vec(),
        });
    }
    rewritten
}

/// Convenience wrapper running strength reduction (followed by LFTR over
/// the recorded temporaries) on a whole module outside the main driver
/// (used by ablation benches).
pub fn strength_reduce_function(
    m: &mut specframe_ir::Module,
    fid: specframe_ir::FuncId,
    stats: &mut OptStats,
) -> usize {
    let aa = specframe_alias::AliasAnalysis::analyze(m);
    let fa = FuncAnalyses::compute(m.func(fid));
    let mut hf = specframe_hssa::build_hssa_in(
        &m.globals,
        m.func(fid),
        fid,
        &aa,
        specframe_hssa::SpecMode::NoSpeculation,
        &fa,
    );
    let mut sr_temps = Vec::new();
    let n = strength_reduce_hssa(&mut hf, stats, &fa, &mut sr_temps);
    crate::lftr::lftr_hssa(&mut hf, &sr_temps, stats);
    specframe_hssa::lower_hssa(m, &hf);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use specframe_ir::{parse_module, Value};
    use specframe_profile::run;

    const MUL_LOOP: &str = r#"
global out: i64[64]

func f(n: i64) -> i64 {
  var i: i64
  var c: i64
  var x: i64
  var q: ptr
entry:
  i = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  x = mul i, 8
  q = add x, @out
  store.i64 [q], x
  i = add i, 1
  jmp head
exit:
  x = mul i, 8
  ret x
}
"#;

    #[test]
    fn reduces_multiplication_in_loop() {
        let m0 = parse_module(MUL_LOOP).unwrap();
        // verify semantics against the unoptimized run (note: array is 64
        // words; n*8 must stay in range -> n <= 8)
        let (expect, _) = run(&m0, "f", &[Value::I(8)], 1_000_000).unwrap();
        let mut m = m0.clone();
        let mut stats = OptStats::default();
        crate::driver::prepare_module(&mut m);
        let n = strength_reduce_function(&mut m, specframe_ir::FuncId(0), &mut stats);
        assert!(n >= 1, "one mul in the loop must be reduced");
        assert!(stats.strength_reduced >= 1);
        assert!(stats.lftr_applied == 0, "test is not on i so no lftr here");
        specframe_ir::verify_module(&m).unwrap();
        let (got, _) = run(&m, "f", &[Value::I(8)], 1_000_000).unwrap();
        assert_eq!(got, expect);
        // the loop body must no longer contain the multiplication
        let f = &m.funcs[0];
        let body_muls = f.blocks[2]
            .insts
            .iter()
            .filter(|i| matches!(i, specframe_ir::Inst::Bin { op: BinOp::Mul, .. }))
            .count();
        assert_eq!(body_muls, 0, "mul i,8 must be strength-reduced away");
    }

    const LFTR_LOOP: &str = r#"
func f(n: i64) -> i64 {
  var i: i64
  var c: i64
  var x: i64
  var acc: i64
entry:
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, 100
  br c, body, exit
body:
  x = mul i, 4
  acc = add acc, x
  i = add i, 1
  jmp head
exit:
  ret acc
}
"#;

    #[test]
    fn lftr_rewrites_loop_test() {
        let m0 = parse_module(LFTR_LOOP).unwrap();
        let (expect, _) = run(&m0, "f", &[Value::I(0)], 1_000_000).unwrap();
        let mut m = m0.clone();
        let mut stats = OptStats::default();
        crate::driver::prepare_module(&mut m);
        strength_reduce_function(&mut m, specframe_ir::FuncId(0), &mut stats);
        assert!(stats.strength_reduced >= 1, "{stats:?}");
        assert!(stats.lftr_applied >= 1, "{stats:?}");
        specframe_ir::verify_module(&m).unwrap();
        let (got, _) = run(&m, "f", &[Value::I(0)], 1_000_000).unwrap();
        assert_eq!(got, expect);
        // the comparison now tests the reduced variable against 400
        let printed = specframe_ir::display::print_module(&m);
        assert!(printed.contains("400"), "{printed}");
    }

    #[test]
    fn non_constant_step_is_left_alone() {
        let src = r#"
func f(n: i64, step: i64) -> i64 {
  var i: i64
  var c: i64
  var x: i64
  var acc: i64
entry:
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  x = mul i, 4
  acc = add acc, x
  i = add i, step
  jmp head
exit:
  ret acc
}
"#;
        let m0 = parse_module(src).unwrap();
        let mut m = m0.clone();
        let mut stats = OptStats::default();
        crate::driver::prepare_module(&mut m);
        let n = strength_reduce_function(&mut m, specframe_ir::FuncId(0), &mut stats);
        assert_eq!(n, 0, "variable step must not be reduced");
        let (a, _) = run(&m0, "f", &[Value::I(5), Value::I(2)], 1_000_000).unwrap();
        let (b, _) = run(&m, "f", &[Value::I(5), Value::I(2)], 1_000_000).unwrap();
        assert_eq!(a, b);
    }
}
