//! Strength reduction and linear-function test replacement.
//!
//! The paper lists both as members of the SSAPRE optimization set (§4.1,
//! after Kennedy et al., CC '98) and notes that *"the speculative weak
//! update concept … corresponds to the injuring definition and the
//! generation of speculative check instructions corresponds to the repair
//! code"* in that work. This client shares the engine's machinery: it
//! introduces a collapsed PRE-style temporary `s ≡ i*c` per induction
//! expression, keeps it up to date with *repair* additions at each
//! injuring definition (`i = i + k` → `s = s + k*c`), replaces the
//! multiplications with copies, and finally rewrites the loop-exit test
//! `i < N` into `s < N*c` (linear-function test replacement).

use crate::stats::OptStats;
use specframe_analysis::FuncAnalyses;
use specframe_hssa::{HOperand, HStmt, HStmtKind, HTerm, HVarKind, HssaFunc, Phi as HPhi};
use specframe_ir::{BinOp, BlockId, Ty, VarId};

/// One recognized basic induction variable.
#[derive(Debug, Clone, Copy)]
struct BasicIv {
    /// The register.
    var: VarId,
    /// Version defined by the header φ.
    phi_dest: u32,
    /// Version flowing in from the preheader.
    pre_ver: u32,
    /// Version produced by the increment (flows around the back edge).
    latch_ver: u32,
    /// Increment constant `k`.
    k: i64,
    /// Location of the increment statement.
    inc_at: (BlockId, usize),
    /// φ argument index of the preheader / latch.
    pre_idx: usize,
    latch_idx: usize,
}

/// Runs strength reduction + LFTR over every loop of `hf`, using the
/// function's cached CFG analyses.
/// Returns the number of multiplications rewritten.
pub fn strength_reduce_hssa(hf: &mut HssaFunc, stats: &mut OptStats, fa: &FuncAnalyses) -> usize {
    let li = &fa.loops;
    let mut rewritten_total = 0;

    for l in li.loops.clone() {
        if l.latches.len() != 1 {
            continue;
        }
        let header = l.header;
        let latch = l.latches[0];
        let preds = hf.preds[header.index()].clone();
        let latch_idx = match preds.iter().position(|&p| p == latch) {
            Some(i) => i,
            None => continue,
        };
        // unique entry predecessor with a single successor (insertable)
        let entries: Vec<usize> = (0..preds.len()).filter(|&i| i != latch_idx).collect();
        if entries.len() != 1 {
            continue;
        }
        let pre_idx = entries[0];
        let preheader = preds[pre_idx];
        if hf.blocks[preheader.index()]
            .term
            .as_ref()
            .map(|t| t.successors().len())
            != Some(1)
        {
            continue;
        }

        // recognize basic induction variables from header φs
        let mut ivs: Vec<BasicIv> = Vec::new();
        for phi in hf.blocks[header.index()].phis.clone() {
            let HVarKind::Reg(var) = hf.catalog.kind(phi.var) else {
                continue;
            };
            let pre_ver = phi.args[pre_idx];
            let latch_ver = phi.args[latch_idx];
            // find `var.latch_ver = add var.phi_dest, k` in the loop body
            let mut found = None;
            'search: for &b in &l.body {
                for (si, stmt) in hf.blocks[b.index()].stmts.iter().enumerate() {
                    if let HStmtKind::Bin { dst, op, a, b: bb } = &stmt.kind {
                        if *dst != (var, latch_ver) {
                            continue;
                        }
                        let k = match (op, a, bb) {
                            (BinOp::Add, HOperand::Reg(v, ver), HOperand::ConstI(k))
                                if *v == var && *ver == phi.dest =>
                            {
                                Some(*k)
                            }
                            (BinOp::Add, HOperand::ConstI(k), HOperand::Reg(v, ver))
                                if *v == var && *ver == phi.dest =>
                            {
                                Some(*k)
                            }
                            (BinOp::Sub, HOperand::Reg(v, ver), HOperand::ConstI(k))
                                if *v == var && *ver == phi.dest =>
                            {
                                Some(-*k)
                            }
                            _ => None,
                        };
                        if let Some(k) = k {
                            found = Some(BasicIv {
                                var,
                                phi_dest: phi.dest,
                                pre_ver,
                                latch_ver,
                                k,
                                inc_at: (b, si),
                                pre_idx,
                                latch_idx,
                            });
                            break 'search;
                        }
                    }
                }
            }
            if let Some(iv) = found {
                ivs.push(iv);
            }
        }

        for iv in ivs {
            rewritten_total += reduce_one_iv(hf, &l.body, header, preheader, latch, iv, stats);
        }
    }
    rewritten_total
}

#[allow(clippy::too_many_arguments)]
fn reduce_one_iv(
    hf: &mut HssaFunc,
    body: &[BlockId],
    header: BlockId,
    preheader: BlockId,
    _latch: BlockId,
    iv: BasicIv,
    stats: &mut OptStats,
) -> usize {
    // collect candidate multiplications grouped by the constant factor
    // (block, stmt, dest, which version of i, factor)
    type MulCand = (BlockId, usize, (VarId, u32), u32, i64);
    let mut cands: Vec<MulCand> = Vec::new();
    for &b in body {
        for (si, stmt) in hf.blocks[b.index()].stmts.iter().enumerate() {
            let HStmtKind::Bin {
                dst,
                op: BinOp::Mul,
                a,
                b: bb,
            } = &stmt.kind
            else {
                continue;
            };
            let m = match (a, bb) {
                (HOperand::Reg(v, ver), HOperand::ConstI(c)) if *v == iv.var => Some((*ver, *c)),
                (HOperand::ConstI(c), HOperand::Reg(v, ver)) if *v == iv.var => Some((*ver, *c)),
                _ => None,
            };
            let Some((ver, c)) = m else { continue };
            let usable = ver == iv.phi_dest
                || (ver == iv.latch_ver
                    && (b, si) > (iv.inc_at.0, iv.inc_at.1)
                    && b == iv.inc_at.0);
            if usable && c != 0 {
                cands.push((b, si, *dst, ver, c));
            }
        }
    }
    if cands.is_empty() {
        return 0;
    }

    let mut factors: Vec<i64> = cands.iter().map(|c| c.4).collect();
    factors.sort_unstable();
    factors.dedup();

    let mut rewritten = 0;
    for c in factors {
        // s tracks i * c
        // SR temporaries are proper SSA (their header φ is constructed
        // explicitly), so they need no collapsing and their copies fully
        // propagate away
        let s = hf.add_temp(format!("sr{}", stats.temps), Ty::I64);
        stats.temps += 1;

        // preheader: s = i.pre * c
        let v_init = hf.fresh_ver_of_reg(s);
        hf.blocks[preheader.index()]
            .stmts
            .push(HStmt::new(HStmtKind::Bin {
                dst: (s, v_init),
                op: BinOp::Mul,
                a: HOperand::Reg(iv.var, iv.pre_ver),
                b: HOperand::ConstI(c),
            }));

        // header φ: s.h = φ(s.init, s.step)
        let v_phi = hf.fresh_ver_of_reg(s);
        let v_step = hf.fresh_ver_of_reg(s);
        let s_hvar = hf.catalog.get(HVarKind::Reg(s)).expect("temp interned");
        let npreds = hf.preds[header.index()].len();
        let mut args = vec![v_init; npreds];
        args[iv.pre_idx] = v_init;
        args[iv.latch_idx] = v_step;
        hf.blocks[header.index()].phis.push(HPhi {
            var: s_hvar,
            dest: v_phi,
            args,
        });

        // repair after the injuring definition: s.step = s.h + k*c
        let (ib, isi) = iv.inc_at;
        hf.blocks[ib.index()].stmts.insert(
            isi + 1,
            HStmt::new(HStmtKind::Bin {
                dst: (s, v_step),
                op: BinOp::Add,
                a: HOperand::Reg(s, v_phi),
                b: HOperand::ConstI(iv.k.wrapping_mul(c)),
            }),
        );

        // rewrite candidates of this factor (indices after the repair
        // insertion shift by one within the increment block)
        for &(b, si, dst, ver, cc) in &cands {
            if cc != c {
                continue;
            }
            let si_adj = if b == ib && si > isi { si + 1 } else { si };
            let src_ver = if ver == iv.phi_dest { v_phi } else { v_step };
            hf.blocks[b.index()].stmts[si_adj] = HStmt::new(HStmtKind::Copy {
                dst,
                src: HOperand::Reg(s, src_ver),
            });
            rewritten += 1;
            stats.strength_reduced += 1;
        }

        // LFTR: rewrite the loop-exit comparison `i <op> N` into
        // `s <op> N*c` when c > 0 and the comparison drives a branch only
        if c > 0 {
            lftr(hf, body, iv, s, v_phi, v_step, c, stats);
        }
    }
    rewritten
}

#[allow(clippy::too_many_arguments)]
fn lftr(
    hf: &mut HssaFunc,
    body: &[BlockId],
    iv: BasicIv,
    s: VarId,
    v_phi: u32,
    v_step: u32,
    c: i64,
    stats: &mut OptStats,
) {
    for &b in body {
        // the block must end in a branch whose condition is a comparison of i
        let Some(HTerm::Br {
            cond: HOperand::Reg(cv, cver),
            ..
        }) = hf.blocks[b.index()].term.clone()
        else {
            continue;
        };
        // find the defining comparison in this block
        let Some(ci) = hf.blocks[b.index()]
            .stmts
            .iter()
            .position(|st| st.def_reg() == Some((cv, cver)))
        else {
            continue;
        };
        let HStmtKind::Bin { dst, op, a, b: bb } = hf.blocks[b.index()].stmts[ci].kind.clone()
        else {
            continue;
        };
        if !matches!(op, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge) {
            continue;
        }
        // require the condition register to feed only the branch
        let uses_elsewhere = hf.blocks.iter().any(|blk| {
            blk.stmts
                .iter()
                .any(|st| st.reg_uses().contains(&(cv, cver)) && st.def_reg() != Some(dst))
        });
        if uses_elsewhere {
            continue;
        }
        let rewrite = match (a, bb) {
            (HOperand::Reg(v, ver), HOperand::ConstI(n)) if v == iv.var => {
                let s_ver = if ver == iv.phi_dest {
                    Some(v_phi)
                } else if ver == iv.latch_ver {
                    Some(v_step)
                } else {
                    None
                };
                s_ver.and_then(|sv| {
                    n.checked_mul(c)
                        .map(|nc| (HOperand::Reg(s, sv), HOperand::ConstI(nc)))
                })
            }
            (HOperand::ConstI(n), HOperand::Reg(v, ver)) if v == iv.var => {
                let s_ver = if ver == iv.phi_dest {
                    Some(v_phi)
                } else if ver == iv.latch_ver {
                    Some(v_step)
                } else {
                    None
                };
                s_ver.and_then(|sv| {
                    n.checked_mul(c)
                        .map(|nc| (HOperand::ConstI(nc), HOperand::Reg(s, sv)))
                })
            }
            _ => None,
        };
        if let Some((na, nb)) = rewrite {
            hf.blocks[b.index()].stmts[ci] = HStmt::new(HStmtKind::Bin {
                dst,
                op,
                a: na,
                b: nb,
            });
            stats.lftr_applied += 1;
        }
    }
}

/// Convenience wrapper running strength reduction on a whole module
/// outside the main driver (used by ablation benches).
pub fn strength_reduce_function(
    m: &mut specframe_ir::Module,
    fid: specframe_ir::FuncId,
    stats: &mut OptStats,
) -> usize {
    let aa = specframe_alias::AliasAnalysis::analyze(m);
    let fa = FuncAnalyses::compute(m.func(fid));
    let mut hf = specframe_hssa::build_hssa_in(
        &m.globals,
        m.func(fid),
        fid,
        &aa,
        specframe_hssa::SpecMode::NoSpeculation,
        &fa,
    );
    let n = strength_reduce_hssa(&mut hf, stats, &fa);
    specframe_hssa::lower_hssa(m, &hf);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use specframe_ir::{parse_module, Value};
    use specframe_profile::run;

    const MUL_LOOP: &str = r#"
global out: i64[64]

func f(n: i64) -> i64 {
  var i: i64
  var c: i64
  var x: i64
  var q: ptr
entry:
  i = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  x = mul i, 8
  q = add x, @out
  store.i64 [q], x
  i = add i, 1
  jmp head
exit:
  x = mul i, 8
  ret x
}
"#;

    #[test]
    fn reduces_multiplication_in_loop() {
        let m0 = parse_module(MUL_LOOP).unwrap();
        // verify semantics against the unoptimized run (note: array is 64
        // words; n*8 must stay in range -> n <= 8)
        let (expect, _) = run(&m0, "f", &[Value::I(8)], 1_000_000).unwrap();
        let mut m = m0.clone();
        let mut stats = OptStats::default();
        crate::driver::prepare_module(&mut m);
        let n = strength_reduce_function(&mut m, specframe_ir::FuncId(0), &mut stats);
        assert!(n >= 1, "one mul in the loop must be reduced");
        assert!(stats.strength_reduced >= 1);
        assert!(stats.lftr_applied == 0, "test is not on i so no lftr here");
        specframe_ir::verify_module(&m).unwrap();
        let (got, _) = run(&m, "f", &[Value::I(8)], 1_000_000).unwrap();
        assert_eq!(got, expect);
        // the loop body must no longer contain the multiplication
        let f = &m.funcs[0];
        let body_muls = f.blocks[2]
            .insts
            .iter()
            .filter(|i| matches!(i, specframe_ir::Inst::Bin { op: BinOp::Mul, .. }))
            .count();
        assert_eq!(body_muls, 0, "mul i,8 must be strength-reduced away");
    }

    const LFTR_LOOP: &str = r#"
func f(n: i64) -> i64 {
  var i: i64
  var c: i64
  var x: i64
  var acc: i64
entry:
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, 100
  br c, body, exit
body:
  x = mul i, 4
  acc = add acc, x
  i = add i, 1
  jmp head
exit:
  ret acc
}
"#;

    #[test]
    fn lftr_rewrites_loop_test() {
        let m0 = parse_module(LFTR_LOOP).unwrap();
        let (expect, _) = run(&m0, "f", &[Value::I(0)], 1_000_000).unwrap();
        let mut m = m0.clone();
        let mut stats = OptStats::default();
        crate::driver::prepare_module(&mut m);
        strength_reduce_function(&mut m, specframe_ir::FuncId(0), &mut stats);
        assert!(stats.strength_reduced >= 1, "{stats:?}");
        assert!(stats.lftr_applied >= 1, "{stats:?}");
        specframe_ir::verify_module(&m).unwrap();
        let (got, _) = run(&m, "f", &[Value::I(0)], 1_000_000).unwrap();
        assert_eq!(got, expect);
        // the comparison now tests the reduced variable against 400
        let printed = specframe_ir::display::print_module(&m);
        assert!(printed.contains("400"), "{printed}");
    }

    #[test]
    fn non_constant_step_is_left_alone() {
        let src = r#"
func f(n: i64, step: i64) -> i64 {
  var i: i64
  var c: i64
  var x: i64
  var acc: i64
entry:
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  x = mul i, 4
  acc = add acc, x
  i = add i, step
  jmp head
exit:
  ret acc
}
"#;
        let m0 = parse_module(src).unwrap();
        let mut m = m0.clone();
        let mut stats = OptStats::default();
        crate::driver::prepare_module(&mut m);
        let n = strength_reduce_function(&mut m, specframe_ir::FuncId(0), &mut stats);
        assert_eq!(n, 0, "variable step must not be reduced");
        let (a, _) = run(&m0, "f", &[Value::I(5), Value::I(2)], 1_000_000).unwrap();
        let (b, _) = run(&m, "f", &[Value::I(5), Value::I(2)], 1_000_000).unwrap();
        assert_eq!(a, b);
    }
}
