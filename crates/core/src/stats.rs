//! Optimization statistics.

/// Counters reported by one [`crate::driver::optimize`] run.
///
/// These are *static* counts (program text); the dynamic effect — retired
/// loads, check ratio, cycles — is measured by `specframe-machine` after
/// code generation, matching the paper's split between compile-time
/// transformation and `pfmon` run-time measurement.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OptStats {
    /// Candidate expressions scanned.
    pub candidates: u64,
    /// Expressions that changed the program.
    pub transformed: u64,
    /// PRE temporaries introduced.
    pub temps: u64,
    /// Defining occurrences saved into a temporary.
    pub saves: u64,
    /// Redundant occurrences replaced by reloads.
    pub reloads: u64,
    /// Static loads eliminated (reloads of load expressions).
    pub loads_removed: u64,
    /// Check instructions (ld.c / NaT checks) emitted.
    pub checks: u64,
    /// Reloads that required an ALAT check (data speculation).
    pub data_spec_reloads: u64,
    /// Loads flagged as advanced loads (`ld.a`).
    pub advanced_loads: u64,
    /// Computations inserted on incoming paths.
    pub insertions: u64,
    /// Inserted loads that are control-speculative (`ld.s`).
    pub control_spec_loads: u64,
    /// Expressions where data speculation fired.
    pub data_speculated_exprs: u64,
    /// Expressions where control speculation fired.
    pub control_speculated_exprs: u64,
    /// Strength-reduction rewrites applied.
    pub strength_reduced: u64,
    /// Linear-function test replacements applied.
    pub lftr_applied: u64,
    /// Loop stores sunk to loop exits (store promotion).
    pub stores_sunk: u64,
    /// Functions whose speculative compilation failed and were recompiled
    /// non-speculatively (each one also carries an `OptReport` warning).
    pub spec_fallbacks: u64,
    /// Functions rescued by the per-pass rollback rung of the degradation
    /// ladder: one offending pass was rolled back and the remaining
    /// pipeline re-run, keeping speculation for everything else.
    pub pass_rollbacks: u64,
    /// Speculative-leak sites the `--audit-leaks`/`--fence-leaks` auditor
    /// flagged (advanced-load values reaching an address or branch sink
    /// before their check).
    pub leak_sites_flagged: u64,
    /// Speculation barriers inserted by `--fence-leaks`.
    pub leak_fences_inserted: u64,
}

impl OptStats {
    /// Merges another stats block into this one.
    pub fn absorb(&mut self, other: &OptStats) {
        self.candidates += other.candidates;
        self.transformed += other.transformed;
        self.temps += other.temps;
        self.saves += other.saves;
        self.reloads += other.reloads;
        self.loads_removed += other.loads_removed;
        self.checks += other.checks;
        self.data_spec_reloads += other.data_spec_reloads;
        self.advanced_loads += other.advanced_loads;
        self.insertions += other.insertions;
        self.control_spec_loads += other.control_spec_loads;
        self.data_speculated_exprs += other.data_speculated_exprs;
        self.control_speculated_exprs += other.control_speculated_exprs;
        self.strength_reduced += other.strength_reduced;
        self.lftr_applied += other.lftr_applied;
        self.stores_sunk += other.stores_sunk;
        self.spec_fallbacks += other.spec_fallbacks;
        self.pass_rollbacks += other.pass_rollbacks;
        self.leak_sites_flagged += other.leak_sites_flagged;
        self.leak_fences_inserted += other.leak_fences_inserted;
    }
}

/// Per-pass wall-clock time of one [`crate::driver::optimize`] run, plus
/// the dominator-build counter backing the analysis-cache invariant.
///
/// Kept separate from [`OptStats`] on purpose: `OptStats` is `Eq`-compared
/// across serial and parallel runs by the determinism tests, while wall
/// times necessarily differ from run to run. Per-function timings are
/// merged (summed) at the driver's join point in function-index order, so
/// the *set* of samples is deterministic even though the values are not.
#[derive(Debug, Default, Clone, Copy)]
pub struct PassTimings {
    /// Module-level Steensgaard alias analysis.
    pub alias: std::time::Duration,
    /// FuncAnalyses construction (dominators, frontiers, loops) — all
    /// functions.
    pub analyses: std::time::Duration,
    /// Flow-sensitive refinement (`refine_function`).
    pub refine: std::time::Duration,
    /// Speculative SSA construction (`build_hssa`).
    pub hssa_build: std::time::Duration,
    /// The SSAPRE engine.
    pub ssapre: std::time::Duration,
    /// Strength reduction.
    pub strength: std::time::Duration,
    /// Linear-function test replacement.
    pub lftr: std::time::Duration,
    /// Store sinking.
    pub storeprom: std::time::Duration,
    /// HSSA verification.
    pub verify: std::time::Duration,
    /// Pass-boundary verification (`--verify-each`): every structural
    /// re-check between stages, summed.
    pub verify_each: std::time::Duration,
    /// Post-lowering speculation-safety audit (`--audit-spec`).
    pub audit: std::time::Duration,
    /// Post-lowering speculative-leak audit and fencing
    /// (`--audit-leaks` / `--fence-leaks`).
    pub audit_leaks: std::time::Duration,
    /// Out-of-SSA lowering.
    pub lower: std::time::Duration,
    /// Final whole-module IR verification.
    pub module_verify: std::time::Duration,
    /// Compile-cache overhead: key derivation, entry probes/decodes and
    /// write-back encodes. Zero when no cache is attached.
    pub cache: std::time::Duration,
    /// Whole `optimize` call, wall clock.
    pub total: std::time::Duration,
    /// `DomTree::compute` invocations attributed to this run.
    pub dom_computes: u64,
    /// Name of the execution target the run lowered for (`""` until a
    /// driver stamps it). Shown in the report header and the lower row so
    /// `--time-passes` output says which cost model was active.
    pub target: &'static str,
}

impl PassTimings {
    /// Merges another timing block into this one (sums every field).
    pub fn absorb(&mut self, other: &PassTimings) {
        self.alias += other.alias;
        self.analyses += other.analyses;
        self.refine += other.refine;
        self.hssa_build += other.hssa_build;
        self.ssapre += other.ssapre;
        self.strength += other.strength;
        self.lftr += other.lftr;
        self.storeprom += other.storeprom;
        self.verify += other.verify;
        self.verify_each += other.verify_each;
        self.audit += other.audit;
        self.audit_leaks += other.audit_leaks;
        self.lower += other.lower;
        self.module_verify += other.module_verify;
        self.cache += other.cache;
        self.total += other.total;
        self.dom_computes += other.dom_computes;
        if self.target.is_empty() {
            self.target = other.target;
        }
    }

    /// The per-pass rows in pipeline order, as `(name, duration)`.
    pub fn rows(&self) -> [(&'static str, std::time::Duration); 15] {
        [
            ("alias", self.alias),
            ("analyses", self.analyses),
            ("refine", self.refine),
            ("hssa-build", self.hssa_build),
            ("ssapre", self.ssapre),
            ("strength", self.strength),
            ("lftr", self.lftr),
            ("storeprom", self.storeprom),
            ("verify", self.verify),
            ("verify-each", self.verify_each),
            ("audit", self.audit),
            ("audit-leaks", self.audit_leaks),
            ("lower", self.lower),
            ("module-verify", self.module_verify),
            ("cache", self.cache),
        ]
    }

    /// Human-readable aggregate table (the `specc --time-passes` output):
    /// every pass with its total wall time and share of the whole
    /// `optimize` call, sorted most-expensive first (ties keep pipeline
    /// order — the sort is stable — so the layout is deterministic), then
    /// the total, the process peak RSS when the OS exposes it cheaply, and
    /// the dominator-build counter.
    pub fn report(&self) -> String {
        fn ms(d: std::time::Duration) -> String {
            format!("{:9.3} ms", d.as_secs_f64() * 1e3)
        }
        let total = self.total.as_secs_f64();
        let mut rows = self.rows();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1));
        let mut s = String::new();
        if self.target.is_empty() {
            s.push_str("=== pass timings ===\n");
        } else {
            s.push_str(&format!("=== pass timings (target: {}) ===\n", self.target));
        }
        for (name, d) in rows {
            let pct = if total > 0.0 {
                100.0 * d.as_secs_f64() / total
            } else {
                0.0
            };
            // the lower row names the target whose hooks produced the code
            let name = if name == "lower" && !self.target.is_empty() {
                format!("lower({})", self.target)
            } else {
                name.to_string()
            };
            s.push_str(&format!("  {name:<14} {} {pct:5.1}%\n", ms(d)));
        }
        s.push_str(&format!("  {:<14} {}\n", "total", ms(self.total)));
        if let Some(kb) = peak_rss_kb() {
            s.push_str(&format!("  {:<14} {:>9} kB\n", "peak-rss", kb));
        }
        s.push_str(&format!("  dom computes   {:>9}\n", self.dom_computes));
        s
    }
}

/// The process's peak resident set size in kilobytes (`VmHWM` from
/// `/proc/self/status`), or `None` where that interface does not exist.
/// One small file read — cheap enough to sample per report.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_absorb_sums() {
        let mut a = PassTimings {
            ssapre: std::time::Duration::from_millis(2),
            dom_computes: 3,
            ..Default::default()
        };
        let b = PassTimings {
            ssapre: std::time::Duration::from_millis(5),
            lower: std::time::Duration::from_millis(1),
            dom_computes: 4,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.ssapre, std::time::Duration::from_millis(7));
        assert_eq!(a.lower, std::time::Duration::from_millis(1));
        assert_eq!(a.dom_computes, 7);
    }

    #[test]
    fn report_mentions_every_pass() {
        let t = PassTimings::default();
        let r = t.report();
        for name in [
            "alias",
            "analyses",
            "refine",
            "hssa-build",
            "ssapre",
            "strength",
            "lftr",
            "storeprom",
            "verify",
            "verify-each",
            "audit",
            "audit-leaks",
            "lower",
            "module-verify",
            "cache",
            "total",
            "dom computes",
        ] {
            assert!(r.contains(name), "missing {name} in report");
        }
    }

    #[test]
    fn report_names_the_target_when_stamped() {
        let t = PassTimings {
            target: "swr",
            ..Default::default()
        };
        let r = t.report();
        assert!(r.contains("=== pass timings (target: swr) ==="));
        assert!(r.contains("lower(swr)"));
        // an unstamped block keeps the historical layout
        let plain = PassTimings::default().report();
        assert!(plain.contains("=== pass timings ===\n"));
        assert!(!plain.contains("lower("));
        // absorbing a stamped block propagates the name
        let mut merged = PassTimings::default();
        merged.absorb(&t);
        assert_eq!(merged.target, "swr");
    }

    #[test]
    fn absorb_sums_fields() {
        let mut a = OptStats {
            saves: 2,
            reloads: 3,
            ..Default::default()
        };
        let b = OptStats {
            saves: 1,
            checks: 5,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.saves, 3);
        assert_eq!(a.reloads, 3);
        assert_eq!(a.checks, 5);
    }
}
