//! Optimization statistics.

/// Counters reported by one [`crate::driver::optimize`] run.
///
/// These are *static* counts (program text); the dynamic effect — retired
/// loads, check ratio, cycles — is measured by `specframe-machine` after
/// code generation, matching the paper's split between compile-time
/// transformation and `pfmon` run-time measurement.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OptStats {
    /// Candidate expressions scanned.
    pub candidates: u64,
    /// Expressions that changed the program.
    pub transformed: u64,
    /// PRE temporaries introduced.
    pub temps: u64,
    /// Defining occurrences saved into a temporary.
    pub saves: u64,
    /// Redundant occurrences replaced by reloads.
    pub reloads: u64,
    /// Static loads eliminated (reloads of load expressions).
    pub loads_removed: u64,
    /// Check instructions (ld.c / NaT checks) emitted.
    pub checks: u64,
    /// Reloads that required an ALAT check (data speculation).
    pub data_spec_reloads: u64,
    /// Loads flagged as advanced loads (`ld.a`).
    pub advanced_loads: u64,
    /// Computations inserted on incoming paths.
    pub insertions: u64,
    /// Inserted loads that are control-speculative (`ld.s`).
    pub control_spec_loads: u64,
    /// Expressions where data speculation fired.
    pub data_speculated_exprs: u64,
    /// Expressions where control speculation fired.
    pub control_speculated_exprs: u64,
    /// Strength-reduction rewrites applied.
    pub strength_reduced: u64,
    /// Linear-function test replacements applied.
    pub lftr_applied: u64,
    /// Loop stores sunk to loop exits (store promotion).
    pub stores_sunk: u64,
}

impl OptStats {
    /// Merges another stats block into this one.
    pub fn absorb(&mut self, other: &OptStats) {
        self.candidates += other.candidates;
        self.transformed += other.transformed;
        self.temps += other.temps;
        self.saves += other.saves;
        self.reloads += other.reloads;
        self.loads_removed += other.loads_removed;
        self.checks += other.checks;
        self.data_spec_reloads += other.data_spec_reloads;
        self.advanced_loads += other.advanced_loads;
        self.insertions += other.insertions;
        self.control_spec_loads += other.control_spec_loads;
        self.data_speculated_exprs += other.data_speculated_exprs;
        self.control_speculated_exprs += other.control_speculated_exprs;
        self.strength_reduced += other.strength_reduced;
        self.lftr_applied += other.lftr_applied;
        self.stores_sunk += other.stores_sunk;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_fields() {
        let mut a = OptStats {
            saves: 2,
            reloads: 3,
            ..Default::default()
        };
        let b = OptStats {
            saves: 1,
            checks: 5,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.saves, 3);
        assert_eq!(a.reloads, 3);
        assert_eq!(a.checks, 5);
    }
}
