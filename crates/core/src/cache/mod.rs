//! Persistent per-function compile cache.
//!
//! The per-function transaction boundary (each function compiles, verifies
//! and degrades independently inside `catch_unwind`) is also the cache-entry
//! granularity: one entry = one function's lowered output + stats + dumps
//! under one content-addressed key ([`key`]). A hit skips the whole
//! refine→HSSA→SSAPRE→lower pipeline and replays the stored result; a miss
//! compiles normally and writes back at the driver's join point.
//!
//! Invariants, in priority order:
//!
//! 1. **Byte parity** — cached and uncached compiles of the same module
//!    under the same options produce byte-identical output at every
//!    `--jobs` level (the warm-path analogue of the parallel-determinism
//!    pin).
//! 2. **No stale hits** — anything that can change a function's lowering is
//!    folded into its key (see [`key`]); a profile change, config change, or
//!    edit anywhere the function can observe changes the key.
//! 3. **Graceful degradation** — a corrupt or version-skewed entry is a
//!    *miss with a diagnostic* (a new rung on the degradation ladder), never
//!    an error and never wrong output; the bad entry is removed and
//!    rewritten by the fresh compile.

pub mod codec;
pub mod fault;
pub mod key;
pub mod store;

pub use codec::{decode_entry, encode_entry, CachedFunc, EntryError};
pub use fault::{
    classify_io_error, parse_store_fault_policy, FaultStore, IoErrorClass, StoreFaultPolicy,
};
pub use key::{CacheKey, KeyContext, StableHasher, CACHE_FORMAT_VERSION};
pub use store::{EntryMeta, FileStore, MemStore, Storage};

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Hit/miss/stale/evict counters for one `optimize` run (or one service
/// lifetime — they sum).
///
/// Kept out of [`crate::OptStats`] on purpose: `OptStats` is `Eq`-compared
/// between cached and uncached runs by the parity tests, and a warm run
/// *must* report identical transformation counters while reporting
/// different cache counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Functions replayed from the cache.
    pub hits: u64,
    /// Functions compiled because no entry existed.
    pub misses: u64,
    /// Functions compiled because their entry was corrupt or version-skewed
    /// (each also carries a `CompileDiag` on the report).
    pub stale: u64,
    /// Entries removed by the capacity policy during write-back.
    pub evicts: u64,
    /// Storage operations re-attempted after a transient I/O error.
    pub retries: u64,
    /// Storage operations that returned an I/O error (before retry).
    pub io_errors: u64,
    /// Times the circuit breaker opened this run (0 or 1 per run; a run
    /// that starts with the session breaker already open reports 0).
    pub breaker_trips: u64,
}

impl CacheStats {
    /// Merges another counter block into this one.
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.stale += other.stale;
        self.evicts += other.evicts;
        self.retries += other.retries;
        self.io_errors += other.io_errors;
        self.breaker_trips += other.breaker_trips;
    }

    /// Total probes this block describes.
    pub fn probes(&self) -> u64 {
        self.hits + self.misses + self.stale
    }
}

/// Per-function cache outcome, in function-index order — the service's
/// per-function status lines read these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Replayed from the cache.
    Hit,
    /// Compiled fresh (no entry).
    Miss,
    /// Compiled fresh (entry was corrupt or version-skewed).
    Stale,
}

impl CacheOutcome {
    /// The stable lower-case name used in service responses.
    pub fn name(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Stale => "stale",
        }
    }
}

/// Result of probing one key.
#[derive(Debug)]
pub enum Probe {
    /// Entry decoded cleanly.
    Hit(Box<CachedFunc>),
    /// No entry.
    Miss,
    /// Entry existed but failed to decode (reason inside); it has been
    /// removed so the fresh compile's write-back replaces it.
    Stale(String),
}

/// Report from [`FuncCache::verify`]: every entry decoded, with failures.
#[derive(Debug, Default)]
pub struct VerifyReport {
    /// Entries that decoded cleanly.
    pub ok: usize,
    /// Entries that failed, with the decode error.
    pub bad: Vec<(CacheKey, String)>,
    /// Total stored bytes walked.
    pub bytes: u64,
    /// In-flight write debris (`.tmp-*`) found alongside the entries.
    pub tmps: Vec<PathBuf>,
}

/// Session-wide cache circuit breaker, shared (via `Arc`) by every
/// compile in one service session or one-shot run.
///
/// The breaker opens when a storage error is permanent or a retry budget
/// is exhausted; from then on the session compiles cache-off (probes
/// answer [`Probe::Miss`], inserts are skipped) instead of hammering a
/// broken filesystem once per function. It never closes within a
/// session — a restart is the reset, which keeps degraded behavior easy
/// to reason about (and to test).
#[derive(Debug, Default)]
pub struct CacheHealth {
    open: AtomicBool,
    trips: AtomicU64,
    reason: Mutex<Option<String>>,
}

impl CacheHealth {
    /// Whether the breaker is open (cache disabled for the session).
    pub fn is_open(&self) -> bool {
        self.open.load(Ordering::SeqCst)
    }

    /// Opens the breaker; returns `true` iff this call flipped it.
    pub fn trip(&self, reason: &str) -> bool {
        let flipped = self
            .open
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok();
        if flipped {
            self.trips.fetch_add(1, Ordering::SeqCst);
            *self.reason.lock().unwrap() = Some(reason.to_string());
        }
        flipped
    }

    /// Why the breaker opened, if it has.
    pub fn reason(&self) -> Option<String> {
        self.reason.lock().unwrap().clone()
    }

    /// How many times [`CacheHealth::trip`] flipped the breaker (0 or 1).
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::SeqCst)
    }
}

/// Default [`FuncCache`] retry budget: transient I/O errors are retried
/// this many times before the breaker trips.
pub const DEFAULT_RETRY_BUDGET: u32 = 2;

/// The persistent function cache: policy over a [`Storage`] backend.
pub struct FuncCache {
    store: Box<dyn Storage>,
    /// Maximum retained entries; `None` = unbounded. Enforced at
    /// write-back, evicting oldest-modified first (key order breaks ties so
    /// eviction is deterministic under equal timestamps).
    max_entries: Option<usize>,
    /// Transient-error retry budget per storage operation.
    retry_budget: u32,
    /// Session breaker (shared across compiles of one session).
    health: Arc<CacheHealth>,
    /// Whether THIS cache instance tripped the breaker (drives the
    /// once-per-session `pass="cache"` diagnostic).
    tripped_here: AtomicBool,
    retries: AtomicU64,
    io_errors: AtomicU64,
}

impl FuncCache {
    /// A cache over the sharded file store at `dir`, unbounded.
    pub fn open(dir: impl Into<PathBuf>) -> FuncCache {
        FuncCache::with_store(Box::new(FileStore::new(dir)))
    }

    /// A cache over an explicit backend.
    pub fn with_store(store: Box<dyn Storage>) -> FuncCache {
        FuncCache {
            store,
            max_entries: None,
            retry_budget: DEFAULT_RETRY_BUDGET,
            health: Arc::new(CacheHealth::default()),
            tripped_here: AtomicBool::new(false),
            retries: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
        }
    }

    /// Sets the entry-count cap (builder style).
    pub fn with_max_entries(mut self, cap: usize) -> FuncCache {
        self.max_entries = Some(cap);
        self
    }

    /// Sets the transient-error retry budget (builder style).
    pub fn with_retry_budget(mut self, budget: u32) -> FuncCache {
        self.retry_budget = budget;
        self
    }

    /// Shares a session-wide breaker (builder style). Without this, each
    /// cache gets a private breaker scoped to its own run.
    pub fn with_health(mut self, health: Arc<CacheHealth>) -> FuncCache {
        self.health = health;
        self
    }

    /// Wraps the backend in a [`FaultStore`] (builder style); the `none`
    /// policy is a true no-op, not a pass-through decorator.
    pub fn with_fault_policy(mut self, policy: StoreFaultPolicy) -> FuncCache {
        if policy != StoreFaultPolicy::None {
            self.store = Box::new(FaultStore::new(self.store, policy));
        }
        self
    }

    /// The session breaker this cache reports to.
    pub fn health(&self) -> &Arc<CacheHealth> {
        &self.health
    }

    /// Fault counters accumulated by this cache instance:
    /// `(retries, io_errors, breaker_trips)`.
    pub fn fault_counters(&self) -> (u64, u64, u64) {
        (
            self.retries.load(Ordering::SeqCst),
            self.io_errors.load(Ordering::SeqCst),
            u64::from(self.tripped_here.load(Ordering::SeqCst)),
        )
    }

    /// The breaker reason, iff this instance tripped it — the caller turns
    /// this into the once-per-session `pass="cache"` diagnostic.
    pub fn breaker_diag(&self) -> Option<String> {
        if self.tripped_here.load(Ordering::SeqCst) {
            self.health.reason()
        } else {
            None
        }
    }

    /// Runs one storage operation with classified-error retry. Transient
    /// errors get `retry_budget` further attempts with a short, bounded,
    /// deterministic backoff (attempt-indexed, no randomness — backoff
    /// shapes wall time, never output); a permanent error or an exhausted
    /// budget trips the session breaker and returns the error.
    fn with_retry<T>(&self, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        let mut attempt = 0u32;
        loop {
            let err = match op() {
                Ok(v) => return Ok(v),
                Err(e) => e,
            };
            self.io_errors.fetch_add(1, Ordering::SeqCst);
            if classify_io_error(&err) == IoErrorClass::Transient && attempt < self.retry_budget {
                attempt += 1;
                self.retries.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_micros(100 << attempt.min(6)));
                continue;
            }
            if self.health.trip(&err.to_string()) {
                self.tripped_here.store(true, Ordering::SeqCst);
            }
            return Err(err);
        }
    }

    /// Looks up `key`, decoding the entry. Undecodable entries degrade to
    /// [`Probe::Stale`]; I/O errors are retried, then degrade to
    /// [`Probe::Miss`] with the breaker open — the cache can slow a
    /// compile down but never fail one.
    pub fn probe(&self, key: &CacheKey) -> Probe {
        if self.health.is_open() {
            return Probe::Miss;
        }
        let bytes = match self.with_retry(|| self.store.load(key)) {
            Ok(Some(b)) => b,
            Ok(None) => return Probe::Miss,
            // breaker just tripped: this and every later probe is cache-off
            Err(_) => return Probe::Miss,
        };
        match decode_entry(&bytes) {
            Ok(cf) => Probe::Hit(Box::new(cf)),
            Err(e) => {
                let _ = self.store.remove(key);
                Probe::Stale(e.to_string())
            }
        }
    }

    /// Writes one encoded entry back, then applies the capacity policy.
    /// Returns how many entries were evicted. With the breaker open the
    /// write is skipped (`Ok(0)`): the session already carries the
    /// degradation diagnostic.
    pub fn insert(&self, key: &CacheKey, bytes: &[u8]) -> io::Result<u64> {
        if self.health.is_open() {
            return Ok(0);
        }
        self.with_retry(|| self.store.store(key, bytes))?;
        let Some(cap) = self.max_entries else {
            return Ok(0);
        };
        let mut metas = self.store.list()?;
        if metas.len() <= cap {
            return Ok(0);
        }
        metas.sort_by_key(|m| (m.modified, m.key));
        let excess = metas.len() - cap;
        let mut evicted = 0;
        for m in metas.iter().filter(|m| m.key != *key).take(excess) {
            self.store.remove(&m.key)?;
            evicted += 1;
        }
        Ok(evicted)
    }

    /// Removes every entry; returns how many were removed.
    pub fn clear(&self) -> io::Result<usize> {
        let metas = self.store.list()?;
        for m in &metas {
            self.store.remove(&m.key)?;
        }
        Ok(metas.len())
    }

    /// Entry count and total stored bytes (the `cache stats` numbers).
    pub fn entry_stats(&self) -> io::Result<(usize, u64)> {
        let metas = self.store.list()?;
        Ok((metas.len(), metas.iter().map(|m| m.size).sum()))
    }

    /// Walks every entry and attempts a full decode (the `cache verify`
    /// subcommand). Bad entries are reported, not removed — removal is the
    /// compile path's job, and a read-only walk is safer for diagnosis.
    pub fn verify(&self) -> io::Result<VerifyReport> {
        let mut metas = self.store.list()?;
        metas.sort_by_key(|m| m.key);
        let mut rep = VerifyReport::default();
        for m in metas {
            rep.bytes += m.size;
            match self.store.load(&m.key)? {
                None => rep.bad.push((m.key, "entry vanished mid-walk".into())),
                Some(bytes) => match decode_entry(&bytes) {
                    Ok(_) => rep.ok += 1,
                    Err(e) => rep.bad.push((m.key, e.to_string())),
                },
            }
        }
        rep.tmps = self.store.tmp_debris()?;
        Ok(rep)
    }

    /// Removes write debris whose owner is provably gone (see
    /// [`Storage::sweep_stale_tmps`]); the open-time fsck and `cache
    /// verify` both route through here.
    pub fn sweep_stale_tmps(&self) -> io::Result<usize> {
        self.store.sweep_stale_tmps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::PassDump;
    use crate::stats::OptStats;
    use specframe_ir::{Block, Function, Terminator};

    fn tiny_entry(name: &str) -> Vec<u8> {
        let f = Function {
            name: name.into(),
            params: 0,
            ret_ty: None,
            vars: vec![],
            slots: vec![],
            blocks: vec![Block {
                name: "entry".into(),
                insts: vec![],
                term: Terminator::Ret(None),
            }],
        };
        encode_entry(&f, 0, &OptStats::default(), &[] as &[PassDump])
    }

    fn key(label: &str) -> CacheKey {
        let mut h = StableHasher::new();
        h.write_str(label);
        h.finish()
    }

    #[test]
    fn probe_insert_roundtrip() {
        let c = FuncCache::with_store(Box::new(MemStore::new()));
        let k = key("f");
        assert!(matches!(c.probe(&k), Probe::Miss));
        c.insert(&k, &tiny_entry("f")).unwrap();
        match c.probe(&k) {
            Probe::Hit(cf) => assert_eq!(cf.func.name, "f"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn corrupt_entry_probes_stale_and_is_removed() {
        let c = FuncCache::with_store(Box::new(MemStore::new()));
        let k = key("f");
        let mut bytes = tiny_entry("f");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        c.insert(&k, &bytes).unwrap();
        assert!(matches!(c.probe(&k), Probe::Stale(_)));
        // removed on probe, so the next probe is a plain miss
        assert!(matches!(c.probe(&k), Probe::Miss));
    }

    #[test]
    fn capacity_policy_evicts_oldest() {
        let c = FuncCache::with_store(Box::new(MemStore::new())).with_max_entries(3);
        let mut evicted = 0;
        for i in 0..6 {
            evicted += c.insert(&key(&format!("f{i}")), &tiny_entry("f")).unwrap();
            // MemStore timestamps have full precision, but don't rely on it
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(evicted, 3);
        let (n, _) = c.entry_stats().unwrap();
        assert_eq!(n, 3);
        // the newest entries survive
        assert!(matches!(c.probe(&key("f5")), Probe::Hit(_)));
        assert!(matches!(c.probe(&key("f0")), Probe::Miss));
    }

    #[test]
    fn verify_reports_bad_entries() {
        let c = FuncCache::with_store(Box::new(MemStore::new()));
        c.insert(&key("good"), &tiny_entry("g")).unwrap();
        c.insert(&key("bad"), b"SPCCgarbage").unwrap();
        let rep = c.verify().unwrap();
        assert_eq!(rep.ok, 1);
        assert_eq!(rep.bad.len(), 1);
        // verify is read-only: the bad entry is still there
        let (n, _) = c.entry_stats().unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn clear_empties_the_store() {
        let c = FuncCache::with_store(Box::new(MemStore::new()));
        c.insert(&key("a"), &tiny_entry("a")).unwrap();
        c.insert(&key("b"), &tiny_entry("b")).unwrap();
        assert_eq!(c.clear().unwrap(), 2);
        assert_eq!(c.entry_stats().unwrap().0, 0);
    }

    /// A backend that fails the first `fail_n` operations of each kind
    /// with a transient error, then behaves.
    struct FlakyStore {
        inner: MemStore,
        load_fails: std::sync::atomic::AtomicU32,
        store_fails: std::sync::atomic::AtomicU32,
    }

    impl FlakyStore {
        fn new(load_fails: u32, store_fails: u32) -> FlakyStore {
            FlakyStore {
                inner: MemStore::new(),
                load_fails: load_fails.into(),
                store_fails: store_fails.into(),
            }
        }

        fn take(counter: &std::sync::atomic::AtomicU32) -> bool {
            counter
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
        }
    }

    impl Storage for FlakyStore {
        fn load(&self, key: &CacheKey) -> io::Result<Option<Vec<u8>>> {
            if FlakyStore::take(&self.load_fails) {
                return Err(io::Error::other("flaky read"));
            }
            self.inner.load(key)
        }
        fn store(&self, key: &CacheKey, bytes: &[u8]) -> io::Result<()> {
            if FlakyStore::take(&self.store_fails) {
                return Err(io::Error::other("flaky write"));
            }
            self.inner.store(key, bytes)
        }
        fn remove(&self, key: &CacheKey) -> io::Result<()> {
            self.inner.remove(key)
        }
        fn list(&self) -> io::Result<Vec<EntryMeta>> {
            self.inner.list()
        }
    }

    #[test]
    fn transient_errors_are_retried_within_budget() {
        // 2 flaky loads, budget 2: the probe still hits, counters move
        let c = FuncCache::with_store(Box::new(FlakyStore::new(2, 0)));
        let k = key("f");
        c.insert(&k, &tiny_entry("f")).unwrap();
        assert!(matches!(c.probe(&k), Probe::Hit(_)));
        let (retries, io_errors, trips) = c.fault_counters();
        assert_eq!((retries, io_errors, trips), (2, 2, 0));
        assert!(!c.health().is_open());
    }

    #[test]
    fn exhausted_retries_trip_the_breaker_and_degrade_to_miss() {
        let c = FuncCache::with_store(Box::new(FlakyStore::new(100, 0))).with_retry_budget(1);
        let k = key("f");
        c.insert(&k, &tiny_entry("f")).unwrap();
        assert!(matches!(c.probe(&k), Probe::Miss), "degrades, not fails");
        assert!(c.health().is_open());
        let (retries, io_errors, trips) = c.fault_counters();
        assert_eq!((retries, io_errors, trips), (1, 2, 1));
        assert!(c.breaker_diag().unwrap().contains("flaky read"));
        // breaker open: probes short-circuit, inserts are skipped
        assert!(matches!(c.probe(&k), Probe::Miss));
        assert_eq!(c.insert(&k, &tiny_entry("f")).unwrap(), 0);
        assert_eq!(c.fault_counters().1, 2, "no further I/O once open");
    }

    #[test]
    fn permanent_errors_trip_without_retrying() {
        struct FullDisk;
        impl Storage for FullDisk {
            fn load(&self, _: &CacheKey) -> io::Result<Option<Vec<u8>>> {
                Ok(None)
            }
            fn store(&self, _: &CacheKey, _: &[u8]) -> io::Result<()> {
                Err(io::Error::new(io::ErrorKind::StorageFull, "disk full"))
            }
            fn remove(&self, _: &CacheKey) -> io::Result<()> {
                Ok(())
            }
            fn list(&self) -> io::Result<Vec<EntryMeta>> {
                Ok(Vec::new())
            }
        }
        let c = FuncCache::with_store(Box::new(FullDisk));
        assert!(c.insert(&key("f"), &tiny_entry("f")).is_err());
        let (retries, io_errors, trips) = c.fault_counters();
        assert_eq!((retries, io_errors, trips), (0, 1, 1));
        assert!(c.health().is_open());
    }

    #[test]
    fn shared_health_breaks_the_whole_session() {
        let health = Arc::new(CacheHealth::default());
        let first = FuncCache::with_store(Box::new(FlakyStore::new(100, 0)))
            .with_health(Arc::clone(&health));
        let k = key("f");
        first.insert(&k, &tiny_entry("f")).unwrap();
        assert!(matches!(first.probe(&k), Probe::Miss));
        assert!(health.is_open());
        // a later compile in the same session: cache-off from the start,
        // and it does NOT re-report the trip
        let second =
            FuncCache::with_store(Box::new(MemStore::new())).with_health(Arc::clone(&health));
        second.insert(&k, &tiny_entry("f")).unwrap();
        assert!(matches!(second.probe(&k), Probe::Miss));
        assert_eq!(second.fault_counters(), (0, 0, 0));
        assert!(second.breaker_diag().is_none());
        assert_eq!(health.trips(), 1);
    }

    #[test]
    fn retry_heals_a_torn_write() {
        // torn-write:1 faults EVERY store, so exhaust trips; torn-write:2
        // with retries repairs the damage within one insert
        let store = FaultStore::new(
            Box::new(MemStore::new()),
            StoreFaultPolicy::TornWrite { period: 2 },
        );
        let c = FuncCache::with_store(Box::new(store));
        let k = key("f");
        c.insert(&k, &tiny_entry("f")).unwrap();
        c.insert(&k, &tiny_entry("f")).unwrap(); // 2nd store torn, retried
        match c.probe(&k) {
            Probe::Hit(cf) => assert_eq!(cf.func.name, "f"),
            other => panic!("torn write not healed: {other:?}"),
        }
        let (retries, io_errors, trips) = c.fault_counters();
        assert_eq!((retries, io_errors, trips), (1, 1, 0));
    }

    #[test]
    fn verify_reports_tmp_debris() {
        let dir = std::env::temp_dir().join(format!(
            "specframe-verify-tmps-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let c = FuncCache::open(&dir);
        let k = key("f");
        c.insert(&k, &tiny_entry("f")).unwrap();
        let shard = dir.join(&k.hex()[..2]);
        std::fs::write(shard.join(format!(".tmp-{}-0-9", k.hex())), b"junk").unwrap();
        let rep = c.verify().unwrap();
        assert_eq!((rep.ok, rep.bad.len(), rep.tmps.len()), (1, 0, 1));
        assert_eq!(c.sweep_stale_tmps().unwrap(), 1);
        assert!(c.verify().unwrap().tmps.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
