//! Persistent per-function compile cache.
//!
//! The per-function transaction boundary (each function compiles, verifies
//! and degrades independently inside `catch_unwind`) is also the cache-entry
//! granularity: one entry = one function's lowered output + stats + dumps
//! under one content-addressed key ([`key`]). A hit skips the whole
//! refine→HSSA→SSAPRE→lower pipeline and replays the stored result; a miss
//! compiles normally and writes back at the driver's join point.
//!
//! Invariants, in priority order:
//!
//! 1. **Byte parity** — cached and uncached compiles of the same module
//!    under the same options produce byte-identical output at every
//!    `--jobs` level (the warm-path analogue of the parallel-determinism
//!    pin).
//! 2. **No stale hits** — anything that can change a function's lowering is
//!    folded into its key (see [`key`]); a profile change, config change, or
//!    edit anywhere the function can observe changes the key.
//! 3. **Graceful degradation** — a corrupt or version-skewed entry is a
//!    *miss with a diagnostic* (a new rung on the degradation ladder), never
//!    an error and never wrong output; the bad entry is removed and
//!    rewritten by the fresh compile.

pub mod codec;
pub mod key;
pub mod store;

pub use codec::{decode_entry, encode_entry, CachedFunc, EntryError};
pub use key::{CacheKey, KeyContext, StableHasher, CACHE_FORMAT_VERSION};
pub use store::{EntryMeta, FileStore, MemStore, Storage};

use std::io;
use std::path::PathBuf;

/// Hit/miss/stale/evict counters for one `optimize` run (or one service
/// lifetime — they sum).
///
/// Kept out of [`crate::OptStats`] on purpose: `OptStats` is `Eq`-compared
/// between cached and uncached runs by the parity tests, and a warm run
/// *must* report identical transformation counters while reporting
/// different cache counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Functions replayed from the cache.
    pub hits: u64,
    /// Functions compiled because no entry existed.
    pub misses: u64,
    /// Functions compiled because their entry was corrupt or version-skewed
    /// (each also carries a `CompileDiag` on the report).
    pub stale: u64,
    /// Entries removed by the capacity policy during write-back.
    pub evicts: u64,
}

impl CacheStats {
    /// Merges another counter block into this one.
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.stale += other.stale;
        self.evicts += other.evicts;
    }

    /// Total probes this block describes.
    pub fn probes(&self) -> u64 {
        self.hits + self.misses + self.stale
    }
}

/// Per-function cache outcome, in function-index order — the service's
/// per-function status lines read these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Replayed from the cache.
    Hit,
    /// Compiled fresh (no entry).
    Miss,
    /// Compiled fresh (entry was corrupt or version-skewed).
    Stale,
}

impl CacheOutcome {
    /// The stable lower-case name used in service responses.
    pub fn name(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Stale => "stale",
        }
    }
}

/// Result of probing one key.
#[derive(Debug)]
pub enum Probe {
    /// Entry decoded cleanly.
    Hit(Box<CachedFunc>),
    /// No entry.
    Miss,
    /// Entry existed but failed to decode (reason inside); it has been
    /// removed so the fresh compile's write-back replaces it.
    Stale(String),
}

/// Report from [`FuncCache::verify`]: every entry decoded, with failures.
#[derive(Debug, Default)]
pub struct VerifyReport {
    /// Entries that decoded cleanly.
    pub ok: usize,
    /// Entries that failed, with the decode error.
    pub bad: Vec<(CacheKey, String)>,
    /// Total stored bytes walked.
    pub bytes: u64,
}

/// The persistent function cache: policy over a [`Storage`] backend.
pub struct FuncCache {
    store: Box<dyn Storage>,
    /// Maximum retained entries; `None` = unbounded. Enforced at
    /// write-back, evicting oldest-modified first (key order breaks ties so
    /// eviction is deterministic under equal timestamps).
    max_entries: Option<usize>,
}

impl FuncCache {
    /// A cache over the sharded file store at `dir`, unbounded.
    pub fn open(dir: impl Into<PathBuf>) -> FuncCache {
        FuncCache {
            store: Box::new(FileStore::new(dir)),
            max_entries: None,
        }
    }

    /// A cache over an explicit backend.
    pub fn with_store(store: Box<dyn Storage>) -> FuncCache {
        FuncCache {
            store,
            max_entries: None,
        }
    }

    /// Sets the entry-count cap (builder style).
    pub fn with_max_entries(mut self, cap: usize) -> FuncCache {
        self.max_entries = Some(cap);
        self
    }

    /// Looks up `key`, decoding the entry. I/O errors and undecodable
    /// entries both degrade to [`Probe::Stale`] — the cache can slow a
    /// compile down but never fail one.
    pub fn probe(&self, key: &CacheKey) -> Probe {
        let bytes = match self.store.load(key) {
            Ok(Some(b)) => b,
            Ok(None) => return Probe::Miss,
            Err(e) => return Probe::Stale(format!("read failed: {e}")),
        };
        match decode_entry(&bytes) {
            Ok(cf) => Probe::Hit(Box::new(cf)),
            Err(e) => {
                let _ = self.store.remove(key);
                Probe::Stale(e.to_string())
            }
        }
    }

    /// Writes one encoded entry back, then applies the capacity policy.
    /// Returns how many entries were evicted.
    pub fn insert(&self, key: &CacheKey, bytes: &[u8]) -> io::Result<u64> {
        self.store.store(key, bytes)?;
        let Some(cap) = self.max_entries else {
            return Ok(0);
        };
        let mut metas = self.store.list()?;
        if metas.len() <= cap {
            return Ok(0);
        }
        metas.sort_by_key(|m| (m.modified, m.key));
        let excess = metas.len() - cap;
        let mut evicted = 0;
        for m in metas.iter().filter(|m| m.key != *key).take(excess) {
            self.store.remove(&m.key)?;
            evicted += 1;
        }
        Ok(evicted)
    }

    /// Removes every entry; returns how many were removed.
    pub fn clear(&self) -> io::Result<usize> {
        let metas = self.store.list()?;
        for m in &metas {
            self.store.remove(&m.key)?;
        }
        Ok(metas.len())
    }

    /// Entry count and total stored bytes (the `cache stats` numbers).
    pub fn entry_stats(&self) -> io::Result<(usize, u64)> {
        let metas = self.store.list()?;
        Ok((metas.len(), metas.iter().map(|m| m.size).sum()))
    }

    /// Walks every entry and attempts a full decode (the `cache verify`
    /// subcommand). Bad entries are reported, not removed — removal is the
    /// compile path's job, and a read-only walk is safer for diagnosis.
    pub fn verify(&self) -> io::Result<VerifyReport> {
        let mut metas = self.store.list()?;
        metas.sort_by_key(|m| m.key);
        let mut rep = VerifyReport::default();
        for m in metas {
            rep.bytes += m.size;
            match self.store.load(&m.key)? {
                None => rep.bad.push((m.key, "entry vanished mid-walk".into())),
                Some(bytes) => match decode_entry(&bytes) {
                    Ok(_) => rep.ok += 1,
                    Err(e) => rep.bad.push((m.key, e.to_string())),
                },
            }
        }
        Ok(rep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::PassDump;
    use crate::stats::OptStats;
    use specframe_ir::{Block, Function, Terminator};

    fn tiny_entry(name: &str) -> Vec<u8> {
        let f = Function {
            name: name.into(),
            params: 0,
            ret_ty: None,
            vars: vec![],
            slots: vec![],
            blocks: vec![Block {
                name: "entry".into(),
                insts: vec![],
                term: Terminator::Ret(None),
            }],
        };
        encode_entry(&f, 0, &OptStats::default(), &[] as &[PassDump])
    }

    fn key(label: &str) -> CacheKey {
        let mut h = StableHasher::new();
        h.write_str(label);
        h.finish()
    }

    #[test]
    fn probe_insert_roundtrip() {
        let c = FuncCache::with_store(Box::new(MemStore::new()));
        let k = key("f");
        assert!(matches!(c.probe(&k), Probe::Miss));
        c.insert(&k, &tiny_entry("f")).unwrap();
        match c.probe(&k) {
            Probe::Hit(cf) => assert_eq!(cf.func.name, "f"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn corrupt_entry_probes_stale_and_is_removed() {
        let c = FuncCache::with_store(Box::new(MemStore::new()));
        let k = key("f");
        let mut bytes = tiny_entry("f");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        c.insert(&k, &bytes).unwrap();
        assert!(matches!(c.probe(&k), Probe::Stale(_)));
        // removed on probe, so the next probe is a plain miss
        assert!(matches!(c.probe(&k), Probe::Miss));
    }

    #[test]
    fn capacity_policy_evicts_oldest() {
        let c = FuncCache::with_store(Box::new(MemStore::new())).with_max_entries(3);
        let mut evicted = 0;
        for i in 0..6 {
            evicted += c.insert(&key(&format!("f{i}")), &tiny_entry("f")).unwrap();
            // MemStore timestamps have full precision, but don't rely on it
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(evicted, 3);
        let (n, _) = c.entry_stats().unwrap();
        assert_eq!(n, 3);
        // the newest entries survive
        assert!(matches!(c.probe(&key("f5")), Probe::Hit(_)));
        assert!(matches!(c.probe(&key("f0")), Probe::Miss));
    }

    #[test]
    fn verify_reports_bad_entries() {
        let c = FuncCache::with_store(Box::new(MemStore::new()));
        c.insert(&key("good"), &tiny_entry("g")).unwrap();
        c.insert(&key("bad"), b"SPCCgarbage").unwrap();
        let rep = c.verify().unwrap();
        assert_eq!(rep.ok, 1);
        assert_eq!(rep.bad.len(), 1);
        // verify is read-only: the bad entry is still there
        let (n, _) = c.entry_stats().unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn clear_empties_the_store() {
        let c = FuncCache::with_store(Box::new(MemStore::new()));
        c.insert(&key("a"), &tiny_entry("a")).unwrap();
        c.insert(&key("b"), &tiny_entry("b")).unwrap();
        assert_eq!(c.clear().unwrap(), 2);
        assert_eq!(c.entry_stats().unwrap().0, 0);
    }
}
