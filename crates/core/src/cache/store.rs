//! Cache storage backends.
//!
//! [`Storage`] is the seam between cache policy (keying, eviction, staleness
//! handling — all in [`super::FuncCache`]) and byte persistence. The default
//! backend is [`FileStore`], a two-level sharded directory of entry files;
//! the trait is deliberately tiny (load/store/remove/list over opaque byte
//! blobs) so an SQLite or remote backend can slot in later without touching
//! any cache logic.

use super::key::CacheKey;
use crate::crashpoint;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::SystemTime;

/// One entry as seen by [`Storage::list`]: enough for eviction ordering and
/// `cache stats` without decoding payloads.
#[derive(Debug, Clone, Copy)]
pub struct EntryMeta {
    /// The entry's content hash.
    pub key: CacheKey,
    /// Stored size in bytes.
    pub size: u64,
    /// Last-modified time (write time for the file backend).
    pub modified: SystemTime,
}

/// A byte-blob store addressed by [`CacheKey`].
pub trait Storage: Send + Sync {
    /// Reads an entry, `None` if absent.
    fn load(&self, key: &CacheKey) -> io::Result<Option<Vec<u8>>>;
    /// Writes (or replaces) an entry atomically.
    fn store(&self, key: &CacheKey, bytes: &[u8]) -> io::Result<()>;
    /// Deletes an entry; absent entries are not an error.
    fn remove(&self, key: &CacheKey) -> io::Result<()>;
    /// Enumerates every entry. Order is unspecified — callers sort.
    fn list(&self) -> io::Result<Vec<EntryMeta>>;
    /// Leftover in-flight write artifacts (a crashed writer's temp files).
    /// Backends without such debris report none.
    fn tmp_debris(&self) -> io::Result<Vec<PathBuf>> {
        Ok(Vec::new())
    }
    /// Removes debris whose writer is provably gone; returns how many were
    /// swept. Never touches committed entries or a live writer's temp file.
    fn sweep_stale_tmps(&self) -> io::Result<usize> {
        Ok(0)
    }
}

/// On-disk store: `root/<first 2 hex chars>/<32 hex chars>.spcc`.
///
/// Sharding by the key's first byte keeps directories small on large
/// caches; writes go through a temp file + rename so a concurrent reader
/// (or a crash) can never observe a half-written entry — at worst it sees
/// the old bytes or nothing.
#[derive(Debug)]
pub struct FileStore {
    root: PathBuf,
}

const ENTRY_EXT: &str = "spcc";

impl FileStore {
    /// A store rooted at `root`. The directory is created lazily on first
    /// write, so opening a cache never dirties the filesystem.
    pub fn new(root: impl Into<PathBuf>) -> FileStore {
        FileStore { root: root.into() }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path(&self, key: &CacheKey) -> PathBuf {
        let hex = key.hex();
        self.root.join(&hex[..2]).join(format!("{hex}.{ENTRY_EXT}"))
    }

    /// Whether the writer that owns this temp file is provably gone.
    /// Temp names are `.tmp-<hex>-<pid>-<seq>`; a file from our own pid is
    /// live by definition (some thread is mid-store), another pid is stale
    /// once `/proc/<pid>` no longer exists. Where `/proc` is unavailable
    /// the age fallback (10 minutes) keeps the sweep conservative.
    fn tmp_is_stale(path: &Path) -> bool {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let pid: Option<u32> = name
            .strip_prefix(".tmp-")
            .and_then(|rest| rest.split('-').nth(1))
            .and_then(|p| p.parse().ok());
        match pid {
            Some(pid) if pid == std::process::id() => false,
            Some(pid) if Path::new("/proc").is_dir() => {
                !Path::new(&format!("/proc/{pid}")).exists()
            }
            _ => path
                .metadata()
                .and_then(|md| md.modified())
                .ok()
                .and_then(|m| m.elapsed().ok())
                .is_some_and(|age| age.as_secs() > 600),
        }
    }
}

/// Per-process write sequence number: combined with the pid it makes temp
/// names unique across *threads* of one process, not just across processes
/// (two worker threads storing the same key simultaneously must not share
/// a temp file).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl Storage for FileStore {
    fn load(&self, key: &CacheKey) -> io::Result<Option<Vec<u8>>> {
        match std::fs::read(self.path(key)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn store(&self, key: &CacheKey, bytes: &[u8]) -> io::Result<()> {
        let path = self.path(key);
        let dir = path.parent().expect("sharded path has a parent");
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join(format!(
            ".tmp-{}-{}-{}",
            key.hex(),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, bytes)?;
        crashpoint::hit("cache-pre-rename");
        match std::fs::rename(&tmp, &path) {
            Ok(()) => {
                crashpoint::hit("cache-post-rename");
                Ok(())
            }
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    fn remove(&self, key: &CacheKey) -> io::Result<()> {
        match std::fs::remove_file(self.path(key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn list(&self) -> io::Result<Vec<EntryMeta>> {
        let mut out = Vec::new();
        let shards = match std::fs::read_dir(&self.root) {
            Ok(rd) => rd,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e),
        };
        for shard in shards {
            let shard = shard?;
            if !shard.file_type()?.is_dir() {
                continue;
            }
            for entry in std::fs::read_dir(shard.path())? {
                let entry = entry?;
                let path = entry.path();
                if path.extension().and_then(|e| e.to_str()) != Some(ENTRY_EXT) {
                    continue;
                }
                let Some(key) = path
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .and_then(CacheKey::from_hex)
                else {
                    continue;
                };
                let md = entry.metadata()?;
                out.push(EntryMeta {
                    key,
                    size: md.len(),
                    modified: md.modified().unwrap_or(SystemTime::UNIX_EPOCH),
                });
            }
        }
        Ok(out)
    }

    fn tmp_debris(&self) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        let shards = match std::fs::read_dir(&self.root) {
            Ok(rd) => rd,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e),
        };
        for shard in shards {
            let shard = shard?;
            if !shard.file_type()?.is_dir() {
                continue;
            }
            for entry in std::fs::read_dir(shard.path())? {
                let path = entry?.path();
                if path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with(".tmp-"))
                {
                    out.push(path);
                }
            }
        }
        out.sort();
        Ok(out)
    }

    fn sweep_stale_tmps(&self) -> io::Result<usize> {
        let mut swept = 0;
        for tmp in self.tmp_debris()? {
            if FileStore::tmp_is_stale(&tmp) && std::fs::remove_file(&tmp).is_ok() {
                swept += 1;
            }
        }
        Ok(swept)
    }
}

/// In-memory store for unit tests and ephemeral (single-process) caches.
#[derive(Debug, Default)]
pub struct MemStore {
    entries: Mutex<HashMap<[u8; 16], MemEntry>>,
}

/// One in-memory entry: payload bytes plus their write timestamp.
type MemEntry = (Vec<u8>, SystemTime);

impl MemStore {
    /// An empty store.
    pub fn new() -> MemStore {
        MemStore::default()
    }
}

impl Storage for MemStore {
    fn load(&self, key: &CacheKey) -> io::Result<Option<Vec<u8>>> {
        Ok(self
            .entries
            .lock()
            .unwrap()
            .get(&key.0)
            .map(|(b, _)| b.clone()))
    }

    fn store(&self, key: &CacheKey, bytes: &[u8]) -> io::Result<()> {
        self.entries
            .lock()
            .unwrap()
            .insert(key.0, (bytes.to_vec(), SystemTime::now()));
        Ok(())
    }

    fn remove(&self, key: &CacheKey) -> io::Result<()> {
        self.entries.lock().unwrap().remove(&key.0);
        Ok(())
    }

    fn list(&self) -> io::Result<Vec<EntryMeta>> {
        Ok(self
            .entries
            .lock()
            .unwrap()
            .iter()
            .map(|(k, (b, t))| EntryMeta {
                key: CacheKey(*k),
                size: b.len() as u64,
                modified: *t,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::key::StableHasher;

    fn key(label: &str) -> CacheKey {
        let mut h = StableHasher::new();
        h.write_str(label);
        h.finish()
    }

    fn exercise(store: &dyn Storage) {
        let k = key("a");
        assert_eq!(store.load(&k).unwrap(), None);
        store.store(&k, b"hello").unwrap();
        assert_eq!(store.load(&k).unwrap().as_deref(), Some(&b"hello"[..]));
        // overwrite is a replace
        store.store(&k, b"world").unwrap();
        assert_eq!(store.load(&k).unwrap().as_deref(), Some(&b"world"[..]));
        store.store(&key("b"), b"x").unwrap();
        let mut listed = store.list().unwrap();
        listed.sort_by_key(|m| m.key);
        assert_eq!(listed.len(), 2);
        assert!(listed.iter().any(|m| m.key == k && m.size == 5));
        store.remove(&k).unwrap();
        store.remove(&k).unwrap(); // idempotent
        assert_eq!(store.load(&k).unwrap(), None);
        assert_eq!(store.list().unwrap().len(), 1);
    }

    #[test]
    fn mem_store_contract() {
        exercise(&MemStore::new());
    }

    #[test]
    fn tmp_names_are_unique_across_threads() {
        // the pre-fix name `.tmp-<hex>-<pid>` collides when two threads of
        // one process store the same key; the sequence suffix must not
        let dir =
            std::env::temp_dir().join(format!("specframe-tmpseq-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FileStore::new(&dir);
        let k = key("contested");
        std::thread::scope(|s| {
            for i in 0..8u8 {
                let store = &store;
                let k = &k;
                s.spawn(move || {
                    for _ in 0..50 {
                        store.store(k, &[i; 64]).unwrap();
                    }
                });
            }
        });
        // the entry is whole (one of the writers' payloads, never a mix)
        let got = store.load(&k).unwrap().unwrap();
        assert_eq!(got.len(), 64);
        assert!(got.iter().all(|b| *b == got[0]), "torn entry: {got:?}");
        assert!(store.tmp_debris().unwrap().is_empty(), "leftover tmp files");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_tmp_sweep_spares_live_writers() {
        let dir =
            std::env::temp_dir().join(format!("specframe-tmpsweep-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FileStore::new(&dir);
        let k = key("x");
        store.store(&k, b"payload").unwrap();
        let shard = store.path(&k).parent().unwrap().to_path_buf();
        // our own pid: a thread could be mid-store — never swept
        let live = shard.join(format!(".tmp-{}-{}-0", k.hex(), std::process::id()));
        // pid 0 never exists in /proc: a crashed writer's debris
        let stale = shard.join(format!(".tmp-{}-0-1", k.hex()));
        std::fs::write(&live, b"half").unwrap();
        std::fs::write(&stale, b"half").unwrap();
        assert_eq!(store.tmp_debris().unwrap().len(), 2);
        assert_eq!(store.sweep_stale_tmps().unwrap(), 1);
        assert!(live.exists(), "live writer's tmp swept");
        assert!(!stale.exists(), "stale tmp survived the sweep");
        // committed entries are untouched
        assert_eq!(store.load(&k).unwrap().as_deref(), Some(&b"payload"[..]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_store_contract() {
        let dir =
            std::env::temp_dir().join(format!("specframe-filestore-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FileStore::new(&dir);
        // listing a store that was never written to is empty, not an error
        assert!(store.list().unwrap().is_empty());
        exercise(&store);
        // no stray temp files left behind
        for shard in std::fs::read_dir(&dir).unwrap() {
            for f in std::fs::read_dir(shard.unwrap().path()).unwrap() {
                let name = f.unwrap().file_name();
                assert!(
                    !name.to_string_lossy().starts_with(".tmp-"),
                    "leftover temp file {name:?}"
                );
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
