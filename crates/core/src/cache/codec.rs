//! Binary codec for cache entries.
//!
//! One entry stores everything the driver's join point needs to replay a
//! function without recompiling it: the lowered [`Function`] *before*
//! fresh-site renumbering (placeholder site ids ≥ `LOCAL_FRESH_BASE` are
//! preserved verbatim so the join can renumber them into whatever module
//! the hit lands in), the fresh-site count, the function's [`OptStats`],
//! and its `--dump-after` snapshots.
//!
//! The envelope is `"SPCC"` + format version + payload length + an FNV-1a
//! checksum + payload. Decoding distinguishes *version skew* (an entry
//! written by an older format — silently recompile) from *corruption*
//! (truncation, bit flips, impossible tags — recompile with a structured
//! diagnostic). Both outcomes land on the degradation ladder's stale-entry
//! rung; neither can produce wrong output.

use super::key::CACHE_FORMAT_VERSION;
use crate::passes::{Pass, PassDump};
use crate::stats::OptStats;
use specframe_ir::{
    AllocSiteId, BinOp, Block, BlockId, CallSiteId, CheckKind, FuncId, Function, GlobalId, Inst,
    LoadSpec, MemSiteId, Operand, SlotDecl, SlotId, Terminator, Ty, UnOp, VarDecl, VarId,
};

/// The decoded payload of one cache entry.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedFunc {
    /// The lowered function, pre-renumbering (fresh sites still hold their
    /// `LOCAL_FRESH_BASE`-relative placeholders).
    pub func: Function,
    /// How many fresh memory sites the compile minted.
    pub fresh_sites: u32,
    /// The function's deterministic transformation counters.
    pub stats: OptStats,
    /// `--dump-after` snapshots taken during the original compile.
    pub dumps: Vec<PassDump>,
}

/// Why an entry failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryError {
    /// Written by a different cache format — expected across upgrades.
    VersionSkew { found: u32 },
    /// Structurally damaged (truncated, bit-flipped, bad tag, bad checksum).
    Corrupt(String),
}

impl core::fmt::Display for EntryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EntryError::VersionSkew { found } => write!(
                f,
                "cache format version {found} (current {CACHE_FORMAT_VERSION})"
            ),
            EntryError::Corrupt(why) => write!(f, "corrupt entry: {why}"),
        }
    }
}

const MAGIC: &[u8; 4] = b"SPCC";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn checksum(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Serializes one entry (envelope + payload).
pub fn encode_entry(
    func: &Function,
    fresh_sites: u32,
    stats: &OptStats,
    dumps: &[PassDump],
) -> Vec<u8> {
    let mut p = Enc::default();
    enc_function(&mut p, func);
    p.u32(fresh_sites);
    enc_stats(&mut p, stats);
    p.u64(dumps.len() as u64);
    for d in dumps {
        p.u8(pass_tag(d.pass));
        p.str(&d.func);
        p.str(&d.text);
    }
    let payload = p.buf;

    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&CACHE_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// The canonical byte form of one function for key derivation: the same
/// encoding entries store, so the key covers exactly what a hit replays —
/// every instruction, operand, declaration, and raw mem/call/alloc site
/// id — at byte-pushing speed (the printer would dominate warm probes).
pub(crate) fn function_bytes(f: &Function) -> Vec<u8> {
    let mut p = Enc::default();
    enc_function(&mut p, f);
    p.buf
}

/// Parses an entry produced by [`encode_entry`], validating the envelope
/// and every structural tag.
pub fn decode_entry(bytes: &[u8]) -> Result<CachedFunc, EntryError> {
    if bytes.len() < 24 {
        return Err(EntryError::Corrupt(format!(
            "{} bytes is shorter than the envelope",
            bytes.len()
        )));
    }
    if &bytes[..4] != MAGIC {
        return Err(EntryError::Corrupt("bad magic".into()));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != CACHE_FORMAT_VERSION {
        return Err(EntryError::VersionSkew { found: version });
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
    let sum = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let payload = &bytes[24..];
    if payload.len() != len {
        return Err(EntryError::Corrupt(format!(
            "payload length {} != header {len}",
            payload.len()
        )));
    }
    if checksum(payload) != sum {
        return Err(EntryError::Corrupt("checksum mismatch".into()));
    }

    let mut d = Dec {
        buf: payload,
        pos: 0,
    };
    let func = dec_function(&mut d)?;
    let fresh_sites = d.u32()?;
    let stats = dec_stats(&mut d)?;
    let ndumps = d.u64()?;
    let mut dumps = Vec::new();
    for _ in 0..ndumps {
        let pass = pass_from_tag(d.u8()?)?;
        let func = d.str()?;
        let text = d.str()?;
        dumps.push(PassDump { pass, func, text });
    }
    if d.pos != d.buf.len() {
        return Err(EntryError::Corrupt(format!(
            "{} trailing bytes after payload",
            d.buf.len() - d.pos
        )));
    }
    Ok(CachedFunc {
        func,
        fresh_sites,
        stats,
        dumps,
    })
}

// --- primitive cursor ---

#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Dec<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], EntryError> {
        if self.buf.len() - self.pos < n {
            return Err(EntryError::Corrupt("truncated payload".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, EntryError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, EntryError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, EntryError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, EntryError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn len(&mut self) -> Result<usize, EntryError> {
        let n = self.u64()?;
        // an honest entry can never hold more elements than payload bytes;
        // rejecting early keeps a flipped length bit from OOM-ing us
        if n > self.buf.len() as u64 {
            return Err(EntryError::Corrupt(format!("implausible length {n}")));
        }
        Ok(n as usize)
    }
    fn str(&mut self) -> Result<String, EntryError> {
        let n = self.len()?;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).map_err(|_| EntryError::Corrupt("non-UTF-8 string".into()))
    }
}

// --- IR codecs ---

fn enc_ty(p: &mut Enc, ty: Ty) {
    p.u8(match ty {
        Ty::I64 => 0,
        Ty::F64 => 1,
        Ty::Ptr => 2,
    });
}

fn dec_ty(d: &mut Dec) -> Result<Ty, EntryError> {
    match d.u8()? {
        0 => Ok(Ty::I64),
        1 => Ok(Ty::F64),
        2 => Ok(Ty::Ptr),
        t => Err(EntryError::Corrupt(format!("bad type tag {t}"))),
    }
}

fn enc_operand(p: &mut Enc, o: Operand) {
    match o {
        Operand::Var(v) => {
            p.u8(0);
            p.u32(v.0);
        }
        Operand::ConstI(x) => {
            p.u8(1);
            p.i64(x);
        }
        Operand::ConstF(x) => {
            p.u8(2);
            p.u64(x.to_bits());
        }
        Operand::GlobalAddr(g) => {
            p.u8(3);
            p.u32(g.0);
        }
        Operand::SlotAddr(s) => {
            p.u8(4);
            p.u32(s.0);
        }
    }
}

fn dec_operand(d: &mut Dec) -> Result<Operand, EntryError> {
    Ok(match d.u8()? {
        0 => Operand::Var(VarId(d.u32()?)),
        1 => Operand::ConstI(d.i64()?),
        2 => Operand::ConstF(f64::from_bits(d.u64()?)),
        3 => Operand::GlobalAddr(GlobalId(d.u32()?)),
        4 => Operand::SlotAddr(SlotId(d.u32()?)),
        t => return Err(EntryError::Corrupt(format!("bad operand tag {t}"))),
    })
}

fn pass_tag(p: Pass) -> u8 {
    Pass::ALL.iter().position(|&q| q == p).expect("pass in ALL") as u8
}

fn pass_from_tag(t: u8) -> Result<Pass, EntryError> {
    Pass::ALL
        .get(t as usize)
        .copied()
        .ok_or_else(|| EntryError::Corrupt(format!("bad pass tag {t}")))
}

fn enc_inst(p: &mut Enc, i: &Inst) {
    match i {
        Inst::Bin { dst, op, a, b } => {
            p.u8(0);
            p.u32(dst.0);
            p.u8(BinOp::ALL.iter().position(|o| o == op).unwrap() as u8);
            enc_operand(p, *a);
            enc_operand(p, *b);
        }
        Inst::Un { dst, op, a } => {
            p.u8(1);
            p.u32(dst.0);
            p.u8(UnOp::ALL.iter().position(|o| o == op).unwrap() as u8);
            enc_operand(p, *a);
        }
        Inst::Copy { dst, src } => {
            p.u8(2);
            p.u32(dst.0);
            enc_operand(p, *src);
        }
        Inst::Load {
            dst,
            base,
            offset,
            ty,
            spec,
            site,
        } => {
            p.u8(3);
            p.u32(dst.0);
            enc_operand(p, *base);
            p.i64(*offset);
            enc_ty(p, *ty);
            p.u8(match spec {
                LoadSpec::Normal => 0,
                LoadSpec::Advanced => 1,
                LoadSpec::Speculative => 2,
            });
            p.u32(site.0);
        }
        Inst::Store {
            base,
            offset,
            val,
            ty,
            site,
        } => {
            p.u8(4);
            enc_operand(p, *base);
            p.i64(*offset);
            enc_operand(p, *val);
            enc_ty(p, *ty);
            p.u32(site.0);
        }
        Inst::CheckLoad {
            dst,
            base,
            offset,
            ty,
            kind,
            site,
        } => {
            p.u8(5);
            p.u32(dst.0);
            enc_operand(p, *base);
            p.i64(*offset);
            enc_ty(p, *ty);
            p.u8(match kind {
                CheckKind::Alat => 0,
                CheckKind::Nat => 1,
            });
            p.u32(site.0);
        }
        Inst::Call {
            dst,
            callee,
            args,
            site,
        } => {
            p.u8(6);
            match dst {
                None => p.u8(0),
                Some(v) => {
                    p.u8(1);
                    p.u32(v.0);
                }
            }
            p.u32(callee.0);
            p.u64(args.len() as u64);
            for a in args {
                enc_operand(p, *a);
            }
            p.u32(site.0);
        }
        Inst::Alloc { dst, words, site } => {
            p.u8(7);
            p.u32(dst.0);
            enc_operand(p, *words);
            p.u32(site.0);
        }
    }
}

fn dec_inst(d: &mut Dec) -> Result<Inst, EntryError> {
    Ok(match d.u8()? {
        0 => Inst::Bin {
            dst: VarId(d.u32()?),
            op: *BinOp::ALL
                .get(d.u8()? as usize)
                .ok_or_else(|| EntryError::Corrupt("bad binop tag".into()))?,
            a: dec_operand(d)?,
            b: dec_operand(d)?,
        },
        1 => Inst::Un {
            dst: VarId(d.u32()?),
            op: *UnOp::ALL
                .get(d.u8()? as usize)
                .ok_or_else(|| EntryError::Corrupt("bad unop tag".into()))?,
            a: dec_operand(d)?,
        },
        2 => Inst::Copy {
            dst: VarId(d.u32()?),
            src: dec_operand(d)?,
        },
        3 => Inst::Load {
            dst: VarId(d.u32()?),
            base: dec_operand(d)?,
            offset: d.i64()?,
            ty: dec_ty(d)?,
            spec: match d.u8()? {
                0 => LoadSpec::Normal,
                1 => LoadSpec::Advanced,
                2 => LoadSpec::Speculative,
                t => return Err(EntryError::Corrupt(format!("bad load-spec tag {t}"))),
            },
            site: MemSiteId(d.u32()?),
        },
        4 => Inst::Store {
            base: dec_operand(d)?,
            offset: d.i64()?,
            val: dec_operand(d)?,
            ty: dec_ty(d)?,
            site: MemSiteId(d.u32()?),
        },
        5 => Inst::CheckLoad {
            dst: VarId(d.u32()?),
            base: dec_operand(d)?,
            offset: d.i64()?,
            ty: dec_ty(d)?,
            kind: match d.u8()? {
                0 => CheckKind::Alat,
                1 => CheckKind::Nat,
                t => return Err(EntryError::Corrupt(format!("bad check-kind tag {t}"))),
            },
            site: MemSiteId(d.u32()?),
        },
        6 => {
            let dst = match d.u8()? {
                0 => None,
                1 => Some(VarId(d.u32()?)),
                t => return Err(EntryError::Corrupt(format!("bad call-dst tag {t}"))),
            };
            let callee = FuncId(d.u32()?);
            let nargs = d.len()?;
            let mut args = Vec::with_capacity(nargs);
            for _ in 0..nargs {
                args.push(dec_operand(d)?);
            }
            Inst::Call {
                dst,
                callee,
                args,
                site: CallSiteId(d.u32()?),
            }
        }
        7 => Inst::Alloc {
            dst: VarId(d.u32()?),
            words: dec_operand(d)?,
            site: AllocSiteId(d.u32()?),
        },
        t => return Err(EntryError::Corrupt(format!("bad inst tag {t}"))),
    })
}

fn enc_term(p: &mut Enc, t: &Terminator) {
    match t {
        Terminator::Jump(b) => {
            p.u8(0);
            p.u32(b.0);
        }
        Terminator::Br { cond, then_, else_ } => {
            p.u8(1);
            enc_operand(p, *cond);
            p.u32(then_.0);
            p.u32(else_.0);
        }
        Terminator::Ret(v) => {
            p.u8(2);
            match v {
                None => p.u8(0),
                Some(o) => {
                    p.u8(1);
                    enc_operand(p, *o);
                }
            }
        }
    }
}

fn dec_term(d: &mut Dec) -> Result<Terminator, EntryError> {
    Ok(match d.u8()? {
        0 => Terminator::Jump(BlockId(d.u32()?)),
        1 => Terminator::Br {
            cond: dec_operand(d)?,
            then_: BlockId(d.u32()?),
            else_: BlockId(d.u32()?),
        },
        2 => Terminator::Ret(match d.u8()? {
            0 => None,
            1 => Some(dec_operand(d)?),
            t => return Err(EntryError::Corrupt(format!("bad ret tag {t}"))),
        }),
        t => return Err(EntryError::Corrupt(format!("bad terminator tag {t}"))),
    })
}

fn enc_function(p: &mut Enc, f: &Function) {
    p.str(&f.name);
    p.u32(f.params);
    match f.ret_ty {
        None => p.u8(0),
        Some(t) => {
            p.u8(1);
            enc_ty(p, t);
        }
    }
    p.u64(f.vars.len() as u64);
    for v in &f.vars {
        p.str(&v.name);
        enc_ty(p, v.ty);
    }
    p.u64(f.slots.len() as u64);
    for s in &f.slots {
        p.str(&s.name);
        p.u32(s.words);
        enc_ty(p, s.ty);
    }
    p.u64(f.blocks.len() as u64);
    for b in &f.blocks {
        p.str(&b.name);
        p.u64(b.insts.len() as u64);
        for i in &b.insts {
            enc_inst(p, i);
        }
        enc_term(p, &b.term);
    }
}

fn dec_function(d: &mut Dec) -> Result<Function, EntryError> {
    let name = d.str()?;
    let params = d.u32()?;
    let ret_ty = match d.u8()? {
        0 => None,
        1 => Some(dec_ty(d)?),
        t => return Err(EntryError::Corrupt(format!("bad ret-ty tag {t}"))),
    };
    let nvars = d.len()?;
    let mut vars = Vec::with_capacity(nvars);
    for _ in 0..nvars {
        vars.push(VarDecl {
            name: d.str()?,
            ty: dec_ty(d)?,
        });
    }
    let nslots = d.len()?;
    let mut slots = Vec::with_capacity(nslots);
    for _ in 0..nslots {
        slots.push(SlotDecl {
            name: d.str()?,
            words: d.u32()?,
            ty: dec_ty(d)?,
        });
    }
    let nblocks = d.len()?;
    let mut blocks = Vec::with_capacity(nblocks);
    for _ in 0..nblocks {
        let name = d.str()?;
        let ninsts = d.len()?;
        let mut insts = Vec::with_capacity(ninsts);
        for _ in 0..ninsts {
            insts.push(dec_inst(d)?);
        }
        let term = dec_term(d)?;
        blocks.push(Block { name, insts, term });
    }
    Ok(Function {
        name,
        params,
        ret_ty,
        vars,
        slots,
        blocks,
    })
}

fn enc_stats(p: &mut Enc, s: &OptStats) {
    for v in stats_fields(s) {
        p.u64(v);
    }
}

fn dec_stats(d: &mut Dec) -> Result<OptStats, EntryError> {
    let mut s = OptStats::default();
    let mut vals = [0u64; 20];
    for v in &mut vals {
        *v = d.u64()?;
    }
    [
        s.candidates,
        s.transformed,
        s.temps,
        s.saves,
        s.reloads,
        s.loads_removed,
        s.checks,
        s.data_spec_reloads,
        s.advanced_loads,
        s.insertions,
        s.control_spec_loads,
        s.data_speculated_exprs,
        s.control_speculated_exprs,
        s.strength_reduced,
        s.lftr_applied,
        s.stores_sunk,
        s.spec_fallbacks,
        s.pass_rollbacks,
        s.leak_sites_flagged,
        s.leak_fences_inserted,
    ] = vals;
    Ok(s)
}

/// Every `OptStats` field in declaration order — shared by encode/decode so
/// the two can never disagree on count or order.
fn stats_fields(s: &OptStats) -> [u64; 20] {
    [
        s.candidates,
        s.transformed,
        s.temps,
        s.saves,
        s.reloads,
        s.loads_removed,
        s.checks,
        s.data_spec_reloads,
        s.advanced_loads,
        s.insertions,
        s.control_spec_loads,
        s.data_speculated_exprs,
        s.control_speculated_exprs,
        s.strength_reduced,
        s.lftr_applied,
        s.stores_sunk,
        s.spec_fallbacks,
        s.pass_rollbacks,
        s.leak_sites_flagged,
        s.leak_fences_inserted,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_function() -> Function {
        Function {
            name: "f".into(),
            params: 1,
            ret_ty: Some(Ty::I64),
            vars: vec![
                VarDecl {
                    name: "x".into(),
                    ty: Ty::I64,
                },
                VarDecl {
                    name: "t".into(),
                    ty: Ty::F64,
                },
            ],
            slots: vec![SlotDecl {
                name: "buf".into(),
                words: 4,
                ty: Ty::I64,
            }],
            blocks: vec![Block {
                name: "entry".into(),
                insts: vec![
                    Inst::Load {
                        dst: VarId(0),
                        base: Operand::SlotAddr(SlotId(0)),
                        offset: 2,
                        ty: Ty::I64,
                        spec: LoadSpec::Advanced,
                        site: MemSiteId(17),
                    },
                    Inst::Bin {
                        dst: VarId(0),
                        op: BinOp::FGe,
                        a: Operand::ConstF(-0.5),
                        b: Operand::Var(VarId(1)),
                    },
                    Inst::Call {
                        dst: None,
                        callee: FuncId(3),
                        args: vec![Operand::ConstI(-9)],
                        site: CallSiteId(5),
                    },
                ],
                term: Terminator::Ret(Some(Operand::Var(VarId(0)))),
            }],
        }
    }

    #[test]
    fn entry_round_trips() {
        let f = sample_function();
        let stats = OptStats {
            saves: 3,
            pass_rollbacks: 1,
            ..Default::default()
        };
        let dumps = vec![PassDump {
            pass: Pass::Ssapre,
            func: "f".into(),
            text: "snapshot".into(),
        }];
        let bytes = encode_entry(&f, 7, &stats, &dumps);
        let back = decode_entry(&bytes).unwrap();
        assert_eq!(back.func, f);
        assert_eq!(back.fresh_sites, 7);
        assert_eq!(back.stats, stats);
        assert_eq!(back.dumps, dumps);
    }

    #[test]
    fn nan_payloads_round_trip_bitwise() {
        let mut f = sample_function();
        f.blocks[0].insts[1] = Inst::Bin {
            dst: VarId(0),
            op: BinOp::FAdd,
            a: Operand::ConstF(f64::NAN),
            b: Operand::ConstF(f64::NEG_INFINITY),
        };
        let bytes = encode_entry(&f, 0, &OptStats::default(), &[]);
        let back = decode_entry(&bytes).unwrap();
        match back.func.blocks[0].insts[1] {
            Inst::Bin {
                a: Operand::ConstF(x),
                ..
            } => {
                assert_eq!(x.to_bits(), f64::NAN.to_bits());
            }
            ref other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn truncation_is_corrupt_not_panic() {
        let bytes = encode_entry(&sample_function(), 0, &OptStats::default(), &[]);
        for cut in [0, 3, 10, 23, bytes.len() / 2, bytes.len() - 1] {
            match decode_entry(&bytes[..cut]) {
                Err(EntryError::Corrupt(_)) => {}
                other => panic!("truncation at {cut} gave {other:?}"),
            }
        }
    }

    #[test]
    fn bit_flips_are_detected() {
        let bytes = encode_entry(&sample_function(), 0, &OptStats::default(), &[]);
        // flip one bit in every byte position; decode must reject (or, for
        // the version field, report skew) — never return a wrong function
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            match decode_entry(&bad) {
                Err(_) => {}
                Ok(back) => {
                    panic!(
                        "bit flip at byte {pos} decoded successfully: {:?}",
                        back.func.name
                    )
                }
            }
        }
    }

    #[test]
    fn version_skew_is_distinguished() {
        let mut bytes = encode_entry(&sample_function(), 0, &OptStats::default(), &[]);
        bytes[4..8].copy_from_slice(&999u32.to_le_bytes());
        assert_eq!(
            decode_entry(&bytes),
            Err(EntryError::VersionSkew { found: 999 })
        );
    }

    #[test]
    fn implausible_lengths_do_not_allocate() {
        let mut bytes = encode_entry(&sample_function(), 0, &OptStats::default(), &[]);
        // the first payload field is the name length; blow it up
        let sum_at = 16;
        bytes[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
        // fix the checksum so we exercise the length guard, not the checksum
        let sum = checksum(&bytes[24..]);
        bytes[sum_at..sum_at + 8].copy_from_slice(&sum.to_le_bytes());
        match decode_entry(&bytes) {
            Err(EntryError::Corrupt(why)) => assert!(why.contains("implausible"), "{why}"),
            other => panic!("{other:?}"),
        }
    }
}
