//! Storage fault injection for the compile cache.
//!
//! [`FaultStore`] decorates any [`Storage`] backend with a seeded,
//! deterministic fault policy — the filesystem analogue of the ALAT
//! fault policies in `specframe-machine`: the environment misbehaves on a
//! schedule we control, and the cache layer above must degrade without
//! ever changing compiled output. The grammar deliberately mirrors
//! `parse_fault_policy` (`--fault-policy`) so both knobs read alike:
//!
//! | spec                  | effect                                          |
//! |-----------------------|-------------------------------------------------|
//! | `none`                | pass-through (same as omitting the flag)        |
//! | `enospc:N`            | every Nth `store` fails with `StorageFull`      |
//! | `eio-read:SEED[:DENOM]` | each `load` fails with an I/O error with probability 1/DENOM (seeded; DENOM defaults to 4) |
//! | `torn-write:N`        | every Nth `store` commits truncated bytes, then errors |
//! | `latency:MS`          | every op sleeps MS milliseconds (no errors)     |
//!
//! Faults are classified for the retry/breaker logic in
//! [`super::FuncCache`]: `enospc` models a permanent condition (retrying
//! cannot help), `eio-read` and `torn-write` are transient (a retry may
//! succeed — and for torn writes, *repairs* the truncated entry).

use super::key::CacheKey;
use super::store::{EntryMeta, Storage};
use specframe_machine::policy::XorShift64;
use std::io;
use std::path::PathBuf;
use std::sync::Mutex;

/// How an I/O error should be handled by the layer above.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoErrorClass {
    /// Retrying may succeed (flaky read, interrupted write).
    Transient,
    /// Retrying cannot help (full disk, permissions); trip the breaker.
    Permanent,
}

/// Classifies an I/O error for retry purposes. Resource-exhaustion and
/// policy errors are permanent; everything else is worth one more try.
pub fn classify_io_error(e: &io::Error) -> IoErrorClass {
    match e.kind() {
        io::ErrorKind::StorageFull
        | io::ErrorKind::QuotaExceeded
        | io::ErrorKind::PermissionDenied
        | io::ErrorKind::ReadOnlyFilesystem
        | io::ErrorKind::Unsupported => IoErrorClass::Permanent,
        _ => IoErrorClass::Transient,
    }
}

/// One parsed `--cache-fault-policy` spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFaultPolicy {
    /// Pass-through.
    None,
    /// Every `period`-th store fails with [`io::ErrorKind::StorageFull`].
    Enospc {
        /// Failure period (1 = every store).
        period: u64,
    },
    /// Each load fails with probability `1/denom`, seeded.
    EioRead {
        /// RNG seed (0 is remapped by [`XorShift64`]).
        seed: u64,
        /// Failure denominator (1 = every load).
        denom: u64,
    },
    /// Every `period`-th store writes truncated bytes, then errors.
    TornWrite {
        /// Failure period (1 = every store).
        period: u64,
    },
    /// Every operation sleeps this many milliseconds; no errors.
    Latency {
        /// Added per-op latency in milliseconds.
        ms: u64,
    },
}

impl StoreFaultPolicy {
    /// Canonical textual form — round-trips through [`parse_store_fault_policy`].
    pub fn name(&self) -> String {
        match self {
            StoreFaultPolicy::None => "none".into(),
            StoreFaultPolicy::Enospc { period } => format!("enospc:{period}"),
            StoreFaultPolicy::EioRead { seed, denom } => format!("eio-read:{seed}:{denom}"),
            StoreFaultPolicy::TornWrite { period } => format!("torn-write:{period}"),
            StoreFaultPolicy::Latency { ms } => format!("latency:{ms}"),
        }
    }
}

/// Parses a `--cache-fault-policy` spec (see the module table).
pub fn parse_store_fault_policy(s: &str) -> Result<StoreFaultPolicy, String> {
    let mut parts = s.split(':');
    let head = parts.next().unwrap_or("");
    let rest: Vec<&str> = parts.collect();
    let arity = |want: std::ops::RangeInclusive<usize>| -> Result<(), String> {
        if want.contains(&rest.len()) {
            Ok(())
        } else {
            Err(format!("bad cache fault policy `{s}` (try --help)"))
        }
    };
    let num = |t: &str, what: &str| -> Result<u64, String> {
        t.parse::<u64>()
            .map_err(|_| format!("bad cache fault policy `{s}`: `{t}` is not a valid {what}"))
    };
    let positive = |t: &str, what: &str| -> Result<u64, String> {
        let n = num(t, what)?;
        if n == 0 {
            return Err(format!("bad cache fault policy `{s}`: {what} must be >= 1"));
        }
        Ok(n)
    };
    match head {
        "none" => {
            arity(0..=0)?;
            Ok(StoreFaultPolicy::None)
        }
        "enospc" => {
            arity(1..=1)?;
            Ok(StoreFaultPolicy::Enospc {
                period: positive(rest[0], "period")?,
            })
        }
        "eio-read" => {
            arity(1..=2)?;
            Ok(StoreFaultPolicy::EioRead {
                seed: num(rest[0], "seed")?,
                denom: rest
                    .get(1)
                    .map(|t| positive(t, "denominator"))
                    .transpose()?
                    .unwrap_or(4),
            })
        }
        "torn-write" => {
            arity(1..=1)?;
            Ok(StoreFaultPolicy::TornWrite {
                period: positive(rest[0], "period")?,
            })
        }
        "latency" => {
            arity(1..=1)?;
            Ok(StoreFaultPolicy::Latency {
                ms: num(rest[0], "latency")?,
            })
        }
        _ => Err(format!("bad cache fault policy `{s}` (try --help)")),
    }
}

/// Mutable injection state, behind one mutex (probes run from worker
/// threads; contention is irrelevant next to the I/O being decorated).
#[derive(Debug)]
struct FaultState {
    rng: XorShift64,
    loads: u64,
    stores: u64,
}

/// A [`Storage`] decorator that injects faults per [`StoreFaultPolicy`].
///
/// Maintenance traffic (`remove`/`list`/tmp sweeps) passes through
/// unfaulted: the grammar targets the hot load/store path the compile
/// pipeline depends on.
pub struct FaultStore {
    inner: Box<dyn Storage>,
    policy: StoreFaultPolicy,
    state: Mutex<FaultState>,
}

impl FaultStore {
    /// Decorates `inner` with `policy`.
    pub fn new(inner: Box<dyn Storage>, policy: StoreFaultPolicy) -> FaultStore {
        let seed = match policy {
            StoreFaultPolicy::EioRead { seed, .. } => seed,
            _ => 1,
        };
        FaultStore {
            inner,
            policy,
            state: Mutex::new(FaultState {
                rng: XorShift64::new(seed),
                loads: 0,
                stores: 0,
            }),
        }
    }

    fn sleep_if_latency(&self) {
        if let StoreFaultPolicy::Latency { ms } = self.policy {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
    }
}

impl Storage for FaultStore {
    fn load(&self, key: &CacheKey) -> io::Result<Option<Vec<u8>>> {
        self.sleep_if_latency();
        if let StoreFaultPolicy::EioRead { denom, .. } = self.policy {
            let mut st = self.state.lock().unwrap();
            st.loads += 1;
            let n = st.loads;
            if st.rng.next_u64().is_multiple_of(denom) {
                return Err(io::Error::other(format!("injected EIO (load {n})")));
            }
        }
        self.inner.load(key)
    }

    fn store(&self, key: &CacheKey, bytes: &[u8]) -> io::Result<()> {
        self.sleep_if_latency();
        match self.policy {
            StoreFaultPolicy::Enospc { period } => {
                let mut st = self.state.lock().unwrap();
                st.stores += 1;
                if st.stores.is_multiple_of(period) {
                    let n = st.stores;
                    return Err(io::Error::new(
                        io::ErrorKind::StorageFull,
                        format!("injected ENOSPC (store {n})"),
                    ));
                }
            }
            StoreFaultPolicy::TornWrite { period } => {
                let torn = {
                    let mut st = self.state.lock().unwrap();
                    st.stores += 1;
                    st.stores.is_multiple_of(period)
                };
                if torn {
                    // commit a truncated entry — a later probe must see it
                    // as stale (decode failure), never as wrong output —
                    // then report the write as interrupted (transient, so
                    // a retry overwrites the damage)
                    self.inner.store(key, &bytes[..bytes.len() / 2])?;
                    return Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        "injected torn write",
                    ));
                }
            }
            _ => {}
        }
        self.inner.store(key, bytes)
    }

    fn remove(&self, key: &CacheKey) -> io::Result<()> {
        self.inner.remove(key)
    }

    fn list(&self) -> io::Result<Vec<EntryMeta>> {
        self.inner.list()
    }

    fn tmp_debris(&self) -> io::Result<Vec<PathBuf>> {
        self.inner.tmp_debris()
    }

    fn sweep_stale_tmps(&self) -> io::Result<usize> {
        self.inner.sweep_stale_tmps()
    }
}

#[cfg(test)]
mod tests {
    use super::super::key::StableHasher;
    use super::super::store::MemStore;
    use super::*;

    fn key(label: &str) -> CacheKey {
        let mut h = StableHasher::new();
        h.write_str(label);
        h.finish()
    }

    #[test]
    fn grammar_round_trips() {
        for spec in [
            "none",
            "enospc:3",
            "eio-read:7:2",
            "torn-write:2",
            "latency:5",
        ] {
            let p = parse_store_fault_policy(spec).unwrap();
            assert_eq!(p.name(), spec, "round trip of {spec}");
        }
        // the denominator defaults to 4
        assert_eq!(
            parse_store_fault_policy("eio-read:9").unwrap(),
            StoreFaultPolicy::EioRead { seed: 9, denom: 4 }
        );
    }

    #[test]
    fn grammar_rejects_malformed_specs() {
        for spec in [
            "",
            "bogus",
            "enospc",
            "enospc:0",
            "enospc:x",
            "enospc:1:2",
            "eio-read",
            "eio-read:1:0",
            "torn-write:zero",
            "latency",
            "none:1",
        ] {
            let err = parse_store_fault_policy(spec).unwrap_err();
            assert!(err.starts_with("bad cache fault policy"), "{spec}: {err}");
        }
    }

    #[test]
    fn enospc_fails_every_nth_store_permanently() {
        let s = FaultStore::new(
            Box::new(MemStore::new()),
            StoreFaultPolicy::Enospc { period: 2 },
        );
        s.store(&key("a"), b"x").unwrap();
        let e = s.store(&key("b"), b"x").unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::StorageFull);
        assert_eq!(classify_io_error(&e), IoErrorClass::Permanent);
        s.store(&key("c"), b"x").unwrap();
    }

    #[test]
    fn torn_write_commits_truncated_bytes_then_errors() {
        let s = FaultStore::new(
            Box::new(MemStore::new()),
            StoreFaultPolicy::TornWrite { period: 1 },
        );
        let e = s.store(&key("a"), b"0123456789").unwrap_err();
        assert_eq!(classify_io_error(&e), IoErrorClass::Transient);
        // the torn half IS on disk — exactly the hazard the stale path heals
        assert_eq!(s.load(&key("a")).unwrap().as_deref(), Some(&b"01234"[..]));
    }

    #[test]
    fn eio_read_is_seeded_and_deterministic() {
        let run = |seed| {
            let s = FaultStore::new(
                Box::new(MemStore::new()),
                StoreFaultPolicy::EioRead { seed, denom: 2 },
            );
            s.inner.store(&key("a"), b"x").unwrap();
            (0..32)
                .map(|_| u8::from(s.load(&key("a")).is_err()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same seed, same fault schedule");
        assert!(run(7).contains(&1), "denom 2 must fire within 32 loads");
        assert!(run(7).contains(&0), "denom 2 must also pass sometimes");
    }
}
