//! Content-addressed cache keys.
//!
//! A function's key must change whenever *anything* that can influence its
//! lowered output changes, and must be bit-stable across process restarts
//! (no pointer values, no `HashMap` iteration order). The key covers:
//!
//! 1. the cache format version ([`CACHE_FORMAT_VERSION`]);
//! 2. the optimization configuration: every [`OptOptions`] knob plus the
//!    output-shaping [`PipelineHooks`] (`--dump-after`, `--stop-after`,
//!    `--verify-each`, `--audit-spec`) — the fault-injection hooks disable
//!    caching entirely, so they never reach a key;
//! 3. a module-context digest: the global table (name/type/size/init) and
//!    every function signature, because lowering resolves global addresses
//!    and call targets against them;
//! 4. the function itself: the codec's canonical byte encoding of the
//!    whole body (params, vars, slots, blocks, instructions *including*
//!    their raw memory/call/alloc site ids — module-global names the
//!    pretty-printer elides, so two textually identical bodies with
//!    different site numbering are still different cache entries). Using
//!    the same encoder as the entry payload keeps keying a byte walk
//!    instead of a pretty-print — the dominant cost of a warm probe;
//! 5. the alias-analysis slice the χ/μ oracle consults for this function:
//!    the points-to class of every variable and the mod/ref sets of every
//!    callee, expanded to LOC lists (classes are expanded so a numbering
//!    shift caused by an edit *elsewhere* degrades to a spurious miss, not
//!    a wrong hit);
//! 6. when speculation is profile-guided, the slice of the alias/edge
//!    profile this function's sites can observe — a profile change can
//!    never serve stale speculation decisions (the ISSUE's soundness
//!    requirement).

use crate::driver::{ControlSpec, OptOptions, SpecSource};
use crate::passes::{Pass, PipelineHooks};
use specframe_alias::{AliasAnalysis, Loc};
use specframe_analysis::EdgeProfile;
use specframe_ir::{FuncId, Function, Inst, Module, Ty, Value, VarId};
use specframe_profile::AliasProfile;

/// Bumped whenever the entry payload layout or the key derivation changes;
/// old entries then decode as version-skewed and degrade to fresh compiles.
pub const CACHE_FORMAT_VERSION: u32 = 3;

/// A 128-bit content hash naming one cache entry.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CacheKey(pub [u8; 16]);

impl CacheKey {
    /// Lower-case hex spelling (32 chars) — the on-disk file stem.
    pub fn hex(&self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parses the [`CacheKey::hex`] spelling back.
    pub fn from_hex(s: &str) -> Option<CacheKey> {
        if s.len() != 32 || !s.is_ascii() {
            return None;
        }
        let mut out = [0u8; 16];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = (hi * 16 + lo) as u8;
        }
        Some(CacheKey(out))
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Two independent multiply-rotate lanes folded into a 128-bit key.
/// Deliberately hand-rolled: `DefaultHasher` is allowed to change between
/// Rust releases and `fxhash` is not collision-resistant enough for content
/// addressing; two decorrelated 64-bit lanes are plenty for a compile cache
/// (a false hit needs a 128-bit collision *and* an identical config
/// fingerprint). Bulk input is absorbed a word at a time — the canonical
/// function body dominates key cost on the warm path, and a byte-at-a-time
/// FNV there is ~8× the work. Note the digest therefore depends on `write`
/// call boundaries (unlike FNV, `write(ab)` ≠ `write(a);write(b)`); keys
/// are only ever compared between identical derivation code paths, so the
/// boundaries are deterministic.
#[derive(Clone, Debug)]
pub struct StableHasher {
    a: u64,
    b: u64,
}

impl Default for StableHasher {
    fn default() -> StableHasher {
        StableHasher::new()
    }
}

impl StableHasher {
    /// A fresh hasher at the standard offset basis.
    pub fn new() -> StableHasher {
        StableHasher {
            a: FNV_OFFSET,
            b: FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Absorbs raw bytes, eight at a time.
    pub fn write(&mut self, bytes: &[u8]) {
        const K2: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let w = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            self.a = (self.a ^ w).wrapping_mul(FNV_PRIME).rotate_left(29);
            // the second lane sees each word rotated and a different
            // multiplier so the lanes do not collide on the same inputs
            self.b = (self.b ^ w.rotate_left(17))
                .wrapping_mul(K2)
                .rotate_left(31);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            // pad the tail to a word, folding the tail length in so
            // `[x]` and `[x, 0]` stay distinct
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            tail[7] ^= 0x80 | rem.len() as u8;
            let w = u64::from_le_bytes(tail);
            self.a = (self.a ^ w).wrapping_mul(FNV_PRIME).rotate_left(29);
            self.b = (self.b ^ w.rotate_left(17))
                .wrapping_mul(K2)
                .rotate_left(31);
        }
    }

    /// Absorbs a length-prefixed string (prefixing prevents `"ab","c"` from
    /// colliding with `"a","bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Absorbs a little-endian u32.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a little-endian u64.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs an i64 (two's-complement bytes).
    pub fn write_i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a bool as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Folds both lanes into the final 128-bit key.
    pub fn finish(&self) -> CacheKey {
        // one avalanche round per lane so short inputs still spread
        let mix = |mut x: u64| {
            x ^= x >> 33;
            x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
            x ^= x >> 33;
            x
        };
        let a = mix(self.a);
        let b = mix(self.b);
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&a.to_le_bytes());
        out[8..].copy_from_slice(&b.to_le_bytes());
        CacheKey(out)
    }
}

fn hash_ty(h: &mut StableHasher, ty: Ty) {
    h.write_u8(match ty {
        Ty::I64 => 0,
        Ty::F64 => 1,
        Ty::Ptr => 2,
    });
}

fn hash_value(h: &mut StableHasher, v: Value) {
    match v {
        Value::I(x) => {
            h.write_u8(0);
            h.write_i64(x);
        }
        Value::F(x) => {
            h.write_u8(1);
            h.write_u64(x.to_bits());
        }
        Value::Nat => h.write_u8(2),
    }
}

fn hash_loc(h: &mut StableHasher, loc: Loc) {
    match loc {
        Loc::Global(g) => {
            h.write_u8(0);
            h.write_u32(g.0);
        }
        Loc::Slot(fs) => {
            h.write_u8(1);
            h.write_u32(fs.func.0);
            h.write_u32(fs.slot.0);
        }
        Loc::Heap(a) => {
            h.write_u8(2);
            h.write_u32(a.0);
        }
    }
}

fn pass_index(p: Pass) -> u8 {
    Pass::ALL.iter().position(|&q| q == p).expect("pass in ALL") as u8
}

/// Per-module context for deriving per-function cache keys.
///
/// Construction hashes everything function-independent once (config
/// fingerprint + module-context digest); [`KeyContext::function_key`] then
/// folds in the per-function material.
pub struct KeyContext<'a> {
    m: &'a Module,
    aa: &'a AliasAnalysis,
    opts: &'a OptOptions<'a>,
    /// Hash state after the version, config fingerprint, and module
    /// context digest — cloned as the seed of every function key.
    seed: StableHasher,
}

impl<'a> KeyContext<'a> {
    /// Builds the shared key context for one `optimize` run.
    pub fn new(
        m: &'a Module,
        aa: &'a AliasAnalysis,
        opts: &'a OptOptions<'a>,
        hooks: &PipelineHooks,
    ) -> KeyContext<'a> {
        let mut h = StableHasher::new();
        h.write_u32(CACHE_FORMAT_VERSION);

        // --- config fingerprint ---
        match opts.data {
            SpecSource::None => h.write_u8(0),
            SpecSource::Profile(_) => h.write_u8(1), // profile content hashed per function
            SpecSource::Heuristic => h.write_u8(2),
            SpecSource::Aggressive => h.write_u8(3),
        }
        match opts.control {
            ControlSpec::Off => h.write_u8(0),
            ControlSpec::Profile(_) => h.write_u8(1), // ditto
            // the static estimator is a pure function of the body, which is
            // already in the key — the mode tag suffices
            ControlSpec::Static => h.write_u8(2),
        }
        h.write_bool(opts.strength_reduction);
        h.write_bool(opts.lftr);
        h.write_bool(opts.store_sinking);
        // The execution target changes both the oracle's profitability
        // verdicts and the machine lowering of any audited artifact; its
        // fingerprint (identity | lowering revision) keys them apart.
        h.write_u64(opts.target.spec().fingerprint());
        // Output-shaping hooks: dumps are stored in the entry and
        // verify-each/audit change which ladder rung a function lands on,
        // so entries produced under different hook configs must not mix.
        for p in hooks.dump_after.iter() {
            h.write_u8(pass_index(p));
        }
        h.write_u8(0xff);
        match hooks.stop_after {
            None => h.write_u8(0xff),
            Some(p) => h.write_u8(pass_index(p)),
        }
        h.write_bool(hooks.verify_each);
        h.write_bool(hooks.audit_spec);
        h.write_bool(hooks.audit_leaks);
        h.write_bool(hooks.fence_leaks);

        // --- module-context digest: globals + every signature ---
        h.write_u64(m.globals.len() as u64);
        for g in &m.globals {
            h.write_str(&g.name);
            h.write_u32(g.words);
            hash_ty(&mut h, g.ty);
            h.write_u64(g.init.len() as u64);
            for &v in &g.init {
                hash_value(&mut h, v);
            }
        }
        h.write_u64(m.funcs.len() as u64);
        for f in &m.funcs {
            h.write_str(&f.name);
            h.write_u32(f.params);
            match f.ret_ty {
                None => h.write_u8(0xff),
                Some(t) => hash_ty(&mut h, t),
            }
        }

        KeyContext {
            m,
            aa,
            opts,
            seed: h,
        }
    }

    /// The content hash of function `fi` under this run's configuration.
    pub fn function_key(&self, fi: usize) -> CacheKey {
        let f = &self.m.funcs[fi];
        let fid = FuncId::from_index(fi);
        let mut h = self.seed.clone();

        // --- canonical body: the entry codec's byte encoding, so the key
        // covers exactly what a hit replays — every instruction, operand,
        // declaration, and raw mem/call/alloc site id ---
        h.write(&crate::cache::codec::function_bytes(f));

        // --- alias-analysis slice ---
        h.write_u64(f.vars.len() as u64);
        for v in 0..f.vars.len() {
            let locs = self
                .aa
                .locs_in_class(self.aa.var_class(fid, VarId(v as u32)));
            h.write_u64(locs.len() as u64);
            for &loc in locs {
                hash_loc(&mut h, loc);
            }
        }
        for b in &f.blocks {
            for inst in &b.insts {
                if let Inst::Call { callee, .. } = inst {
                    for set in [self.aa.func_mod(*callee), self.aa.func_ref(*callee)] {
                        h.write_u64(set.len() as u64);
                        for &c in set {
                            let locs = self.aa.locs_in_class(c);
                            h.write_u64(locs.len() as u64);
                            for &loc in locs {
                                hash_loc(&mut h, loc);
                            }
                        }
                    }
                }
            }
        }

        // --- profile slices (queried per site in body order — HashMap
        // iteration order never reaches the hash) ---
        if let SpecSource::Profile(p) = self.opts.data {
            hash_alias_profile_slice(&mut h, f, p);
        }
        if let ControlSpec::Profile(p) = self.opts.control {
            hash_edge_profile_slice(&mut h, fid, f, p);
        }

        h.finish()
    }
}

fn hash_alias_profile_slice(h: &mut StableHasher, f: &Function, p: &AliasProfile) {
    for b in &f.blocks {
        for inst in &b.insts {
            match inst {
                Inst::Load { site, .. }
                | Inst::Store { site, .. }
                | Inst::CheckLoad { site, .. } => {
                    h.write_u32(site.0);
                    match p.mem.get(site) {
                        None => h.write_u8(0),
                        Some(set) => {
                            h.write_u8(1);
                            h.write_u64(set.len() as u64);
                            for &loc in set {
                                hash_loc(h, loc);
                            }
                        }
                    }
                    h.write_u64(p.mem_count.get(site).copied().unwrap_or(0));
                }
                Inst::Call { site, .. } => {
                    h.write_u32(site.0);
                    for map in [&p.call_mod, &p.call_ref] {
                        match map.get(site) {
                            None => h.write_u8(0),
                            Some(set) => {
                                h.write_u8(1);
                                h.write_u64(set.len() as u64);
                                for &loc in set {
                                    hash_loc(h, loc);
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

fn hash_edge_profile_slice(h: &mut StableHasher, fid: FuncId, f: &Function, p: &EdgeProfile) {
    h.write_u64(p.entry_count(fid));
    for b in f.block_ids() {
        for s in f.block(b).term.successors() {
            h.write_u64(p.edge_count(fid, b, s));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips() {
        let mut h = StableHasher::new();
        h.write_str("hello");
        let k = h.finish();
        assert_eq!(CacheKey::from_hex(&k.hex()), Some(k));
        assert_eq!(CacheKey::from_hex("zz"), None);
        assert_eq!(CacheKey::from_hex(""), None);
    }

    #[test]
    fn hasher_is_order_and_length_sensitive() {
        let key = |parts: &[&str]| {
            let mut h = StableHasher::new();
            for p in parts {
                h.write_str(p);
            }
            h.finish()
        };
        assert_ne!(key(&["ab", "c"]), key(&["a", "bc"]));
        assert_ne!(key(&["a", "b"]), key(&["b", "a"]));
        assert_eq!(key(&["a", "b"]), key(&["a", "b"]));
    }

    #[test]
    fn lanes_are_decorrelated() {
        let mut h = StableHasher::new();
        h.write(b"x");
        let k = h.finish();
        assert_ne!(k.0[..8], k.0[8..]);
    }
}
