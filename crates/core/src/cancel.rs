//! Cooperative cancellation for per-request deadlines.
//!
//! A [`CancelToken`] is carried on [`crate::PipelineHooks`] and polled at
//! pass boundaries and between functions — the same places the
//! degradation ladder already has clean rollback points, so cancellation
//! can never observe (or commit) a half-transformed function. The token
//! is deliberately *not* part of the cache-key fingerprint: deadlines
//! change when a compile stops, never what it produces.
//!
//! Two things can fire a token: the embedded deadline instant (polled,
//! so a compile that never polls past its deadline simply finishes), and
//! a [`Watchdog`] thread that trips the flag the moment the deadline
//! passes — making long sleeps or stuck I/O inside a pass cancellable at
//! the *next* poll without any per-poll clock reads.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

#[derive(Debug)]
struct CancelInner {
    cancelled: AtomicBool,
    deadline: Instant,
}

/// A cheaply clonable cancellation token. The default token is inert:
/// [`CancelToken::cancelled`] is `false` forever and costs one `Option`
/// check, so unarmed compiles pay nothing measurable.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<CancelInner>>,
}

impl CancelToken {
    /// A token that trips `timeout` from now.
    pub fn deadline_in(timeout: Duration) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: Instant::now() + timeout,
            })),
        }
    }

    /// Whether this token carries a deadline at all.
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// Trips the token immediately.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::SeqCst);
        }
    }

    /// Whether work should stop: the flag was tripped or the deadline has
    /// passed. Once true, stays true.
    pub fn cancelled(&self) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        if inner.cancelled.load(Ordering::SeqCst) {
            return true;
        }
        if Instant::now() >= inner.deadline {
            inner.cancelled.store(true, Ordering::SeqCst);
            return true;
        }
        false
    }

    /// Time left before the deadline (`None` for an inert token,
    /// `Some(ZERO)` once expired).
    pub fn remaining(&self) -> Option<Duration> {
        let inner = self.inner.as_ref()?;
        Some(inner.deadline.saturating_duration_since(Instant::now()))
    }
}

/// A thread that trips a [`CancelToken`] when its deadline passes, so
/// polls stay clock-free. Dropping the watchdog disarms and joins it —
/// a compile that finishes in time leaves no thread behind.
#[derive(Debug)]
pub struct Watchdog {
    disarm: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Arms a watchdog for `token`; inert tokens need (and get) none.
    pub fn arm(token: &CancelToken) -> Option<Watchdog> {
        let timeout = token.remaining()?;
        let disarm = Arc::new((Mutex::new(false), Condvar::new()));
        let disarm2 = Arc::clone(&disarm);
        let token = token.clone();
        let handle = std::thread::Builder::new()
            .name("specframe-watchdog".into())
            .spawn(move || {
                let (lock, cv) = &*disarm2;
                let mut disarmed = lock.lock().unwrap();
                let deadline = Instant::now() + timeout;
                loop {
                    if *disarmed {
                        return;
                    }
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        token.cancel();
                        return;
                    }
                    let (guard, _) = cv.wait_timeout(disarmed, left).unwrap();
                    disarmed = guard;
                }
            })
            .ok()?;
        Some(Watchdog {
            disarm,
            handle: Some(handle),
        })
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        let (lock, cv) = &*self.disarm;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_token_never_cancels() {
        let t = CancelToken::default();
        assert!(!t.is_armed());
        assert!(!t.cancelled());
        t.cancel(); // no-op
        assert!(!t.cancelled());
        assert_eq!(t.remaining(), None);
    }

    #[test]
    fn explicit_cancel_trips_all_clones() {
        let t = CancelToken::deadline_in(Duration::from_secs(3600));
        let clone = t.clone();
        assert!(!clone.cancelled());
        t.cancel();
        assert!(clone.cancelled());
    }

    #[test]
    fn deadline_trips_on_poll() {
        let t = CancelToken::deadline_in(Duration::ZERO);
        assert!(t.cancelled());
    }

    #[test]
    fn watchdog_trips_the_flag_without_polling_the_clock() {
        let t = CancelToken::deadline_in(Duration::from_millis(10));
        let _dog = Watchdog::arm(&t).expect("armed token gets a watchdog");
        let start = Instant::now();
        while !t.cancelled() {
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "watchdog never fired"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn dropping_the_watchdog_disarms_it_promptly() {
        let t = CancelToken::deadline_in(Duration::from_secs(3600));
        let dog = Watchdog::arm(&t).unwrap();
        let start = Instant::now();
        drop(dog); // must join well before the hour is up
        assert!(start.elapsed() < Duration::from_secs(10));
        assert!(!t.cancelled());
    }

    #[test]
    fn watchdog_arm_on_inert_token_is_none() {
        assert!(Watchdog::arm(&CancelToken::default()).is_none());
    }
}
