//! Expression candidates for SSAPRE.
//!
//! SSAPRE works one *lexically identified* expression at a time (§4.1: "all
//! expressions are represented as trees with leaves being either constants
//! or SSA renamed variables"; the program is three-address, so every
//! candidate is first-order). Three families exist:
//!
//! * arithmetic expressions `a ⊕ b`;
//! * direct loads of a real variable (`a` in the paper's figures) — the
//!   scalar register-promotion candidates;
//! * indirect loads `*(p + off)` — the paper's `*p` / `A[i][j]` promotion
//!   candidates, where data speculation pays off.

use specframe_hssa::{HOperand, HStmt, HStmtKind, HVarId, HVarKind, HssaFunc, MemBase, MemVar};
use specframe_ir::InlineVec;
use specframe_ir::{BinOp, Ty, VarId};

/// A lexical operand of an expression key: the *identity* of the value, not
/// a version.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum LexOperand {
    /// A register by id.
    Reg(VarId),
    /// An integer constant.
    ConstI(i64),
    /// A float constant (compared bitwise).
    ConstF(u64),
    /// A link-time global address.
    GlobalAddr(specframe_ir::GlobalId),
    /// A slot address.
    SlotAddr(specframe_ir::SlotId),
}

impl Eq for LexOperand {}

impl LexOperand {
    fn of(o: &HOperand) -> LexOperand {
        match o {
            HOperand::Reg(v, _) => LexOperand::Reg(*v),
            HOperand::ConstI(c) => LexOperand::ConstI(*c),
            HOperand::ConstF(c) => LexOperand::ConstF(c.to_bits()),
            HOperand::GlobalAddr(g) => LexOperand::GlobalAddr(*g),
            HOperand::SlotAddr(s) => LexOperand::SlotAddr(*s),
        }
    }

    /// The register, if this operand is one.
    pub fn reg(self) -> Option<VarId> {
        match self {
            LexOperand::Reg(v) => Some(v),
            _ => None,
        }
    }
}

/// A lexically identified expression.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ExprKey {
    /// `a ⊕ b` (commutative operators canonicalized).
    Bin(BinOp, LexOperand, LexOperand),
    /// Direct load of a real variable.
    DirectLoad(MemVar, Ty),
    /// Indirect load `*(base + off)`; `vvar` is the virtual variable of the
    /// access class (the second SSA operand of the expression).
    IndirectLoad {
        /// Base pointer register.
        base: VarId,
        /// Constant word offset.
        off: i64,
        /// Access type.
        ty: Ty,
        /// The virtual variable of the load's alias class.
        vvar: HVarId,
    },
}

impl ExprKey {
    /// Whether this expression is a memory load (eligible for data
    /// speculation — arithmetic never is, because registers have no χs).
    pub fn is_load(&self) -> bool {
        !matches!(self, ExprKey::Bin(..))
    }

    /// The loaded type when this expression is a load (feeds the oracle's
    /// per-target profitability gate); `None` for arithmetic.
    pub fn load_ty(&self) -> Option<Ty> {
        match self {
            ExprKey::Bin(..) => None,
            ExprKey::DirectLoad(_, ty) => Some(*ty),
            ExprKey::IndirectLoad { ty, .. } => Some(*ty),
        }
    }

    /// Whether an inserted computation of this expression may fault, which
    /// rules out *control* speculation (inserting on paths that did not
    /// execute it): loads may fault (handled by `ld.s`), and so do integer
    /// division/modulo — the paper's framework only control-speculates
    /// instructions the architecture can defer.
    pub fn control_speculatable(&self) -> bool {
        match self {
            ExprKey::Bin(op, _, _) => !matches!(op, BinOp::Div | BinOp::Mod),
            _ => true, // loads are speculated via ld.s
        }
    }

    /// The registers the expression's value depends on.
    pub fn tracked_regs(&self) -> Vec<VarId> {
        match self {
            ExprKey::Bin(_, a, b) => {
                let mut v = Vec::new();
                if let Some(r) = a.reg() {
                    v.push(r);
                }
                if let Some(r) = b.reg() {
                    if !v.contains(&r) {
                        v.push(r);
                    }
                }
                v
            }
            ExprKey::DirectLoad(..) => Vec::new(),
            ExprKey::IndirectLoad { base, .. } => vec![*base],
        }
    }

    /// The memory variable (real or virtual) the expression's value depends
    /// on, if any.
    pub fn tracked_mem(&self, hf: &HssaFunc) -> Option<HVarId> {
        match self {
            ExprKey::Bin(..) => None,
            ExprKey::DirectLoad(mv, _) => hf.catalog.get(HVarKind::Mem(*mv)),
            ExprKey::IndirectLoad { vvar, .. } => Some(*vvar),
        }
    }

    /// The load syntax `(base reg, offset)` for the heuristic same-syntax
    /// rule (§3.2.2 rule 1), if this is an indirect load.
    pub fn syntax(&self) -> Option<(VarId, i64)> {
        match self {
            ExprKey::IndirectLoad { base, off, .. } => Some((*base, *off)),
            _ => None,
        }
    }
}

/// Does `stmt` contain a real occurrence of `key`? Returns the operand
/// versions if so: register versions in [`ExprKey::tracked_regs`] order,
/// and the memory-variable version.
pub fn occurrence_versions(stmt: &HStmt, key: &ExprKey) -> Option<OccVersions> {
    match (&stmt.kind, key) {
        (HStmtKind::Bin { op, a, b, .. }, ExprKey::Bin(kop, ka, kb)) => {
            if op != kop {
                return None;
            }
            let (la, lb) = (LexOperand::of(a), LexOperand::of(b));
            let matched = if la == *ka && lb == *kb {
                Some((a, b))
            } else if op.is_commutative() && la == *kb && lb == *ka {
                Some((b, a))
            } else {
                None
            };
            let (a, b) = matched?;
            let mut regs = InlineVec::new();
            for r in key.tracked_regs() {
                // find the version of r among the (possibly swapped) operands
                let ver = [a, b]
                    .iter()
                    .find_map(|o| match o {
                        HOperand::Reg(v, ver) if *v == r => Some(*ver),
                        _ => None,
                    })
                    .expect("tracked reg present");
                regs.push(ver);
            }
            Some(OccVersions { regs, mem: None })
        }
        (
            HStmtKind::Load {
                base: HOperand::GlobalAddr(g),
                offset,
                ty,
                dvar: Some((_, mver)),
                ..
            },
            ExprKey::DirectLoad(mv, kty),
        ) => {
            if mv.base == MemBase::Global(*g) && mv.off == *offset && ty == kty {
                Some(OccVersions {
                    regs: InlineVec::new(),
                    mem: Some(*mver),
                })
            } else {
                None
            }
        }
        (
            HStmtKind::Load {
                base: HOperand::SlotAddr(s),
                offset,
                ty,
                dvar: Some((_, mver)),
                ..
            },
            ExprKey::DirectLoad(mv, kty),
        ) => {
            if mv.base == MemBase::Slot(*s) && mv.off == *offset && ty == kty {
                Some(OccVersions {
                    regs: InlineVec::new(),
                    mem: Some(*mver),
                })
            } else {
                None
            }
        }
        (
            HStmtKind::Load {
                base: HOperand::Reg(b, bver),
                offset,
                ty,
                ..
            },
            ExprKey::IndirectLoad {
                base,
                off,
                ty: kty,
                vvar,
            },
        ) => {
            if b == base && offset == off && ty == kty {
                let mver = stmt.mu.iter().find(|m| m.var == *vvar).map(|m| m.ver)?;
                Some(OccVersions {
                    regs: [*bver].into_iter().collect(),
                    mem: Some(mver),
                })
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Operand versions of one real occurrence.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OccVersions {
    /// Versions of the tracked registers, in [`ExprKey::tracked_regs`]
    /// order.
    pub regs: InlineVec<u32, 2>,
    /// Version of the tracked memory variable.
    pub mem: Option<u32>,
}

/// Scans a function for all SSAPRE candidates, in a deterministic order:
/// arithmetic first, then direct loads, then indirect loads (so promoted
/// address arithmetic feeds load candidates within one pass ordering).
/// Expressions with speculative loads or checks already in place are not
/// re-collected.
pub fn collect_candidates(hf: &HssaFunc) -> Vec<ExprKey> {
    let mut bins: Vec<ExprKey> = Vec::new();
    let mut directs: Vec<ExprKey> = Vec::new();
    let mut indirects: Vec<ExprKey> = Vec::new();
    let push_unique = |list: &mut Vec<ExprKey>, k: ExprKey| {
        if !list.contains(&k) {
            list.push(k);
        }
    };
    for b in hf.block_ids() {
        for stmt in &hf.blocks[b.index()].stmts {
            match &stmt.kind {
                HStmtKind::Bin { op, a, b, .. } => {
                    let (la, lb) = (LexOperand::of(a), LexOperand::of(b));
                    // skip all-constant expressions (constant folding's job)
                    if la.reg().is_none() && lb.reg().is_none() {
                        continue;
                    }
                    let (ka, kb) = if op.is_commutative() && lex_gt(&la, &lb) {
                        (lb, la)
                    } else {
                        (la, lb)
                    };
                    push_unique(&mut bins, ExprKey::Bin(*op, ka, kb));
                }
                HStmtKind::Load {
                    base,
                    offset,
                    ty,
                    spec: specframe_ir::LoadSpec::Normal,
                    dvar,
                    ..
                } => match base {
                    HOperand::GlobalAddr(g) if dvar.is_some() => {
                        push_unique(
                            &mut directs,
                            ExprKey::DirectLoad(
                                MemVar {
                                    base: MemBase::Global(*g),
                                    off: *offset,
                                },
                                *ty,
                            ),
                        );
                    }
                    HOperand::SlotAddr(s) if dvar.is_some() => {
                        push_unique(
                            &mut directs,
                            ExprKey::DirectLoad(
                                MemVar {
                                    base: MemBase::Slot(*s),
                                    off: *offset,
                                },
                                *ty,
                            ),
                        );
                    }
                    HOperand::Reg(r, _) => {
                        if let Some(mu) = stmt.mu.first() {
                            // the first mu is always the vvar (build order)
                            push_unique(
                                &mut indirects,
                                ExprKey::IndirectLoad {
                                    base: *r,
                                    off: *offset,
                                    ty: *ty,
                                    vvar: mu.var,
                                },
                            );
                        }
                    }
                    _ => {}
                },
                _ => {}
            }
        }
    }
    bins.extend(directs);
    bins.extend(indirects);
    bins
}

fn lex_gt(a: &LexOperand, b: &LexOperand) -> bool {
    format!("{a:?}") > format!("{b:?}")
}

/// Statements killed/defined view used by the anticipation dataflow: does
/// `stmt` redefine any value `key` depends on? `speculative` controls
/// whether weak updates kill (they do **not** when data speculation is on —
/// that is the paper's enhancement); `heuristic` additionally makes a store
/// with the same syntax as an indirect-load candidate kill it (rule 1 of
/// §3.2.2 read in the contrapositive).
pub fn kills(
    stmt: &HStmt,
    key: &ExprKey,
    mem_var: Option<HVarId>,
    speculative: bool,
    heuristic: bool,
) -> bool {
    // register redefinitions always kill
    if let Some((v, _)) = stmt.def_reg() {
        if key.tracked_regs().contains(&v) {
            return true;
        }
    }
    let Some(mv) = mem_var else {
        return false;
    };
    // strong (direct) def of the memory variable
    if let HStmtKind::Store {
        dvar_def: Some((id, _)),
        ..
    } = &stmt.kind
    {
        if *id == mv {
            return true;
        }
    }
    // chi over the memory variable
    if let Some(chi) = stmt.chi_of(mv) {
        if !speculative {
            return true;
        }
        if heuristic {
            if let HStmtKind::Store {
                base: HOperand::Reg(sb, _),
                offset,
                ..
            } = &stmt.kind
            {
                // for indirect stores the per-candidate same-syntax
                // comparison is authoritative: identical address
                // expressions are highly likely to hold the same value ->
                // the store's new value IS the expression's new value (not
                // redundant with older loads), while a different-syntax
                // store is a skippable weak update even when the build-time
                // flag answered rule 1 for some *other* load's syntax
                return matches!(key.syntax(), Some((eb, eoff)) if *sb == eb && *offset == eoff);
            }
            // calls kill in heuristic mode (rule 3) via their likely flag
        }
        if chi.likely {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use specframe_alias::AliasAnalysis;
    use specframe_hssa::{build_hssa, SpecMode};
    use specframe_ir::parse_module;

    fn hssa_of(src: &str, func: &str) -> (specframe_ir::Module, HssaFunc) {
        let m = parse_module(src).unwrap();
        let aa = AliasAnalysis::analyze(&m);
        let fid = m.func_by_name(func).unwrap();
        let hf = build_hssa(&m, fid, &aa, SpecMode::NoSpeculation);
        (m, hf)
    }

    #[test]
    fn collects_all_three_families() {
        let (_, hf) = hssa_of(
            r#"
global g: i64[1]

func f(p: ptr, n: i64) -> i64 {
  var x: i64
  var y: i64
  var z: i64
entry:
  x = add n, 1
  y = load.i64 [@g]
  z = load.i64 [p + 2]
  x = add x, y
  x = add x, z
  ret x
}
"#,
            "f",
        );
        let cands = collect_candidates(&hf);
        assert!(cands
            .iter()
            .any(|k| matches!(k, ExprKey::Bin(BinOp::Add, ..))));
        assert!(cands.iter().any(|k| matches!(k, ExprKey::DirectLoad(..))));
        assert!(cands
            .iter()
            .any(|k| matches!(k, ExprKey::IndirectLoad { off: 2, .. })));
    }

    #[test]
    fn commutative_keys_canonicalize() {
        let (_, hf) = hssa_of(
            r#"
func f(a: i64, b: i64) -> i64 {
  var x: i64
  var y: i64
entry:
  x = add a, b
  y = add b, a
  x = add x, y
  ret x
}
"#,
            "f",
        );
        let cands = collect_candidates(&hf);
        let adds: Vec<_> = cands
            .iter()
            .filter(|k| {
                matches!(k, ExprKey::Bin(BinOp::Add, LexOperand::Reg(a), LexOperand::Reg(b))
                    if (a.0 == 0 && b.0 == 1) || (a.0 == 1 && b.0 == 0))
            })
            .collect();
        assert_eq!(adds.len(), 1, "a+b and b+a must share one key: {cands:?}");
    }

    #[test]
    fn occurrence_versions_extracted() {
        let (_, hf) = hssa_of(
            r#"
global g: i64[1]

func f(n: i64) -> i64 {
  var x: i64
  var y: i64
entry:
  x = load.i64 [@g]
  store.i64 [@g], n
  y = load.i64 [@g]
  x = add x, y
  ret x
}
"#,
            "f",
        );
        let key = collect_candidates(&hf)
            .into_iter()
            .find(|k| matches!(k, ExprKey::DirectLoad(..)))
            .unwrap();
        let b0 = &hf.blocks[0];
        let v1 = occurrence_versions(&b0.stmts[0], &key).unwrap();
        let v2 = occurrence_versions(&b0.stmts[2], &key).unwrap();
        assert_ne!(v1.mem, v2.mem, "store must change the mem version");
        assert!(occurrence_versions(&b0.stmts[1], &key).is_none());
    }

    #[test]
    fn kill_semantics_respect_speculation() {
        let (_m, hf) = hssa_of(
            r#"
global a: i64[1]
global b: i64[1]

func f(p: ptr) -> i64 {
  var x: i64
  var y: i64
entry:
  x = load.i64 [@a]
  store.i64 [p], 1
  y = load.i64 [@a]
  x = add x, y
  ret x
}

func main(s: i64) -> i64 {
  var q: ptr
  var r: i64
entry:
  br s, ua, ub
ua:
  q = @a
  jmp go
ub:
  q = @b
  jmp go
go:
  r = call f(q)
  ret r
}
"#,
            "f",
        );
        let key = collect_candidates(&hf)
            .into_iter()
            .find(|k| matches!(k, ExprKey::DirectLoad(..)))
            .unwrap();
        let mv = key.tracked_mem(&hf);
        let store = &hf.blocks[0].stmts[1];
        // NoSpeculation mode: the chi is flagged likely -> kills regardless
        assert!(kills(store, &key, mv, true, false));
        assert!(kills(store, &key, mv, false, false));
    }
}
