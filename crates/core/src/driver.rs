//! The whole-module optimization pipeline.
//!
//! `prepare_module` → (profiling, outside) → [`optimize`]:
//!
//! 1. split critical edges (so SSAPRE insertions and φ lowering have a
//!    block per edge);
//! 2. Steensgaard alias analysis;
//! 3. per function: build the speculative SSA form, run the speculative
//!    SSAPRE worklist (PRE + register promotion), run strength reduction /
//!    LFTR, verify, lower out of SSA;
//! 4. verify the module.
//!
//! The `SpecSource`/`ControlSpec` pair selects the paper's configurations:
//!
//! | paper configuration | `SpecSource`  | `ControlSpec` |
//! |---------------------|---------------|----------------|
//! | O3 baseline         | `None`        | `Off`          |
//! | profile-guided      | `Profile`     | `Profile`      |
//! | heuristic rules     | `Heuristic`   | `Static`       |
//! | potential estimate  | `Aggressive`  | `Off`          |

use crate::cache::{self, CacheOutcome, CacheStats, CachedFunc, FuncCache, Probe};
use crate::error::{panic_message, with_quiet_panics, CompileDiag, CompileError};
use crate::passes::{Pass, PassDump, PassSet, PipelineHooks};
use crate::ssapre::{ssapre_function, SpecPolicy};
use crate::stats::{OptStats, PassTimings};
use crate::strength::strength_reduce_hssa;
use specframe_alias::AliasAnalysis;
use specframe_analysis::{
    dom_compute_count, estimate_function_with, split_critical_edges, EdgeProfile, FuncAnalyses,
};
use specframe_hssa::{
    build_hssa_with, lower_function, print_hssa_in, refine_function_in, resolve_fresh_sites,
    verify_hssa_detailed, HssaFunc, Likeliness, SpecCosts, SpecMode,
};
use specframe_ir::display::{func_name_table, print_function_in};
use specframe_ir::{layout_globals, CalleeSig, FuncId, Function, Global, MemSiteId, Module};
use specframe_profile::AliasProfile;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Instant;

/// Where data-speculation likeliness comes from (Figure 3's "alias profile
/// / heuristic rules" box).
#[derive(Debug, Clone, Copy, Default)]
pub enum SpecSource<'a> {
    /// No data speculation: the O3 baseline.
    #[default]
    None,
    /// Alias-profile guided (§3.2.1).
    Profile(&'a AliasProfile),
    /// Heuristic rules (§3.2.2).
    Heuristic,
    /// Ignore all may-aliases — the §5.3 upper-bound estimator.
    Aggressive,
}

/// Where control-speculation likeliness comes from (Figure 3's "edge/path
/// profile / heuristic rules" box).
#[derive(Debug, Clone, Copy, Default)]
pub enum ControlSpec<'a> {
    /// No control speculation.
    #[default]
    Off,
    /// Edge-profile guided.
    Profile(&'a EdgeProfile),
    /// Ball–Larus-style static heuristics.
    Static,
}

/// Pipeline options.
#[derive(Debug, Clone, Copy, Default)]
pub struct OptOptions<'a> {
    /// Data speculation source.
    pub data: SpecSource<'a>,
    /// Control speculation source.
    pub control: ControlSpec<'a>,
    /// Run strength reduction.
    pub strength_reduction: bool,
    /// Run linear-function test replacement over the strength-reduction
    /// temporaries. A no-op unless strength reduction also ran (LFTR
    /// consumes the `s ≡ i*c` version state SR records).
    pub lftr: bool,
    /// Run store promotion (sinking loop-invariant direct stores).
    pub store_sinking: bool,
    /// The execution target whose lowering hooks and cost model the
    /// pipeline compiles for. The oracle weighs speculation profitability
    /// against this target's per-check overhead, so the same input can
    /// legitimately motion differently per target.
    pub target: specframe_machine::TargetId,
}

impl OptOptions<'_> {
    /// The oracle's plain-data view of the target's cost model.
    pub fn spec_costs(&self) -> SpecCosts {
        target_spec_costs(self.target)
    }
}

/// Projects a target's cost table down to the oracle's plain-data view
/// (the hssa crate cannot depend on the machine crate, so the driver — and
/// the `--explain-spec` renderer — perform the projection).
pub fn target_spec_costs(target: specframe_machine::TargetId) -> SpecCosts {
    let t = target.spec();
    let c = t.costs();
    SpecCosts {
        check_cost: t.check_overhead(),
        int_load: c.int_load,
        fp_load: c.fp_load,
    }
}

/// Splits critical edges in every function. Run this **before** collecting
/// edge profiles so profile block ids match what [`optimize`] sees
/// (idempotent).
pub fn prepare_module(m: &mut Module) {
    for f in &mut m.funcs {
        split_critical_edges(f);
    }
}

/// Execution configuration of the pipeline (how to run, not what to run —
/// that is [`OptOptions`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineConfig {
    /// Worker threads for the per-function fan-out. `0` means auto: the
    /// `SPECFRAME_JOBS` environment variable if set to a positive integer,
    /// otherwise the machine's available parallelism.
    pub jobs: usize,
}

impl PipelineConfig {
    /// The effective worker count after env/auto resolution (always ≥ 1).
    pub fn resolved_jobs(&self) -> usize {
        if self.jobs > 0 {
            return self.jobs;
        }
        if let Some(n) = std::env::var("SPECFRAME_JOBS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return n;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Everything one [`optimize_with`] call reports: transformation counters
/// plus per-pass wall times, plus the diagnostics of any per-function
/// degradation the driver performed.
#[derive(Debug, Default, Clone)]
pub struct OptReport {
    /// Deterministic transformation counters (identical for any job count).
    pub stats: OptStats,
    /// Per-pass wall clock (varies run to run).
    pub timings: PassTimings,
    /// One warning per function that was recompiled non-speculatively
    /// after its speculative compilation failed (function index order),
    /// preceded by one `"cache"` warning per stale entry encountered.
    pub warnings: Vec<CompileDiag>,
    /// Compile-cache counters for this run; all-zero when no cache was
    /// attached. Deliberately not part of [`OptStats`]: cached and
    /// uncached runs must report identical transformation counters while
    /// reporting different cache counters.
    pub cache: CacheStats,
    /// Per-function cache outcome in function-index order; empty when no
    /// cache was attached. The compile service's per-function status lines
    /// read these.
    pub cache_outcomes: Vec<CacheOutcome>,
}

/// Runs the full speculative optimization pipeline over `m` with the
/// default execution configuration (parallel fan-out, auto worker count).
///
/// # Panics
/// Panics if an internal invariant breaks (the SSA verifier or the module
/// verifier rejects the result) — optimizer bugs are made loud.
pub fn optimize(m: &mut Module, opts: &OptOptions<'_>) -> OptStats {
    optimize_with(m, opts, &PipelineConfig::default()).stats
}

/// [`optimize`] with an explicit execution configuration, reporting per-pass
/// timings.
///
/// The per-function stages — refine → build HSSA → SSAPRE → strength
/// reduction / store sinking → verify → lower — are embarrassingly
/// parallel: each worker owns exactly one [`Function`] (moved out of the
/// module) plus read-only shared state (globals, alias analysis, profiles,
/// the per-function analysis cache). The module is only touched at two
/// deterministic points: the fan-out (functions moved out in index order)
/// and the join (lowered functions spliced back in index order, with
/// optimizer-synthesized memory sites renumbered serially there). Output is
/// therefore bit-identical for every job count, including 1.
pub fn optimize_with(m: &mut Module, opts: &OptOptions<'_>, cfg: &PipelineConfig) -> OptReport {
    optimize_with_hooks(m, opts, cfg, &PipelineHooks::default()).0
}

/// [`optimize_with`] plus the pass-manager seam: snapshot the textual form
/// of any function after any named stage ([`PipelineHooks::dump_after`]),
/// or run the pipeline only through a stage
/// ([`PipelineHooks::stop_after`]).
///
/// Snapshots are taken inside the per-function workers (each one depends
/// only on that worker's function) and assembled at the deterministic
/// join, functions in module order and stages in pipeline order, so the
/// returned dump list — like the module itself — is bit-identical for
/// every job count. `lower` snapshots are taken at the join, after fresh
/// memory sites have been renumbered to their module-unique ids.
pub fn optimize_with_hooks(
    m: &mut Module,
    opts: &OptOptions<'_>,
    cfg: &PipelineConfig,
    hooks: &PipelineHooks,
) -> (OptReport, Vec<PassDump>) {
    match try_optimize_with_hooks(m, opts, cfg, hooks) {
        Ok(out) => out,
        Err(e) => panic!("optimize failed: {e}"),
    }
}

/// [`optimize_with_hooks`] with structured failure instead of panics.
///
/// A function whose speculative compilation fails (verifier rejection or a
/// worker panic) is recompiled with speculation disabled; the degradation
/// is recorded as an [`OptReport`] warning and counted in
/// [`OptStats::spec_fallbacks`]. An error is returned only when that
/// fallback fails too, or when final whole-module verification rejects the
/// result.
///
/// # Errors
/// A [`CompileError`] naming the function and stage that failed.
pub fn try_optimize_with_hooks(
    m: &mut Module,
    opts: &OptOptions<'_>,
    cfg: &PipelineConfig,
    hooks: &PipelineHooks,
) -> Result<(OptReport, Vec<PassDump>), CompileError> {
    try_optimize_cached(m, opts, cfg, hooks, None)
}

/// [`try_optimize_with_hooks`] over a persistent per-function compile
/// cache.
///
/// Before the fan-out, every function's content hash (body + config +
/// alias-analysis slice + profile slices — see [`crate::cache::key`]) is
/// probed serially. Hits replay their stored lowering, stats, and dumps
/// and never occupy a worker slot; only misses (and stale entries, which
/// degrade with a `"cache"` diagnostic on the report) enter the chunked
/// claim loop. Clean misses are written back at the deterministic join,
/// *before* fresh-site renumbering, so an entry replays identically into
/// any module. Cached and uncached compiles are byte-identical at every
/// job count; cache counters land on [`OptReport::cache`], never on
/// [`OptStats`].
///
/// # Errors
/// A [`CompileError`] naming the function and stage that failed. Cache
/// I/O failures are never errors — they degrade to fresh compiles.
pub fn try_optimize_cached(
    m: &mut Module,
    opts: &OptOptions<'_>,
    cfg: &PipelineConfig,
    hooks: &PipelineHooks,
    fcache: Option<&FuncCache>,
) -> Result<(OptReport, Vec<PassDump>), CompileError> {
    let total0 = Instant::now();
    let dom0 = dom_compute_count();
    prepare_module(m);

    let mut timings = PassTimings {
        target: opts.target.name(),
        ..PassTimings::default()
    };
    let t0 = Instant::now();
    let aa = AliasAnalysis::analyze(m);
    timings.alias = t0.elapsed();

    // Fault injection makes a compile run-specific (the injected failure
    // and its recovery must actually happen); replaying such a result —
    // or caching it — would defeat the test hooks, so they turn the cache
    // off wholesale.
    let fcache = fcache.filter(|_| {
        hooks.inject_spec_fail.is_none()
            && hooks.inject_fallback_fail.is_none()
            && hooks.inject_corrupt.is_none()
    });

    let nfuncs = m.funcs.len();
    let mut cache_stats = CacheStats::default();
    let mut cache_outcomes: Vec<CacheOutcome> = Vec::new();
    // stale-entry diagnostics are module-level (the *recompile* itself is
    // clean and write-back eligible), so they are collected apart from the
    // per-function fallback warnings and prepended to the report
    let mut cache_warnings: Vec<CompileDiag> = Vec::new();
    let mut keys: Vec<cache::CacheKey> = Vec::new();
    let mut cached: Vec<Option<Box<CachedFunc>>> = Vec::new();
    cached.resize_with(nfuncs, || None);
    if let Some(c) = fcache {
        let t0 = Instant::now();
        let ctx = cache::KeyContext::new(m, &aa, opts, hooks);
        // key derivation and entry decode are independent per function, so
        // probing fans out over the worker pool like compilation does; the
        // outcomes are folded back in index order below, keeping counters,
        // warnings and write-back decisions deterministic.
        let pjobs = cfg.resolved_jobs().min(nfuncs.max(1));
        let mut probes: Vec<Option<(cache::CacheKey, Probe)>> = Vec::new();
        probes.resize_with(nfuncs, || None);
        if pjobs <= 1 {
            for (fi, slot) in probes.iter_mut().enumerate() {
                let key = ctx.function_key(fi);
                let probe = c.probe(&key);
                *slot = Some((key, probe));
            }
        } else {
            let chunk = (nfuncs / (pjobs * 8)).clamp(1, 32);
            let next = std::sync::atomic::AtomicUsize::new(0);
            let out: Mutex<Vec<Option<(cache::CacheKey, Probe)>>> =
                Mutex::new(std::mem::take(&mut probes));
            let ctx = &ctx;
            let worker = || {
                let mut local: Vec<(usize, cache::CacheKey, Probe)> = Vec::new();
                loop {
                    let lo = next.fetch_add(chunk, std::sync::atomic::Ordering::Relaxed);
                    if lo >= nfuncs {
                        break;
                    }
                    for fi in lo..(lo + chunk).min(nfuncs) {
                        let key = ctx.function_key(fi);
                        let probe = c.probe(&key);
                        local.push((fi, key, probe));
                    }
                }
                let mut out = out.lock().unwrap();
                for (fi, key, probe) in local {
                    out[fi] = Some((key, probe));
                }
            };
            std::thread::scope(|s| {
                for _ in 1..pjobs {
                    s.spawn(worker);
                }
                worker();
            });
            probes = out.into_inner().unwrap();
        }
        for (fi, slot) in probes.into_iter().enumerate() {
            let (key, probe) = slot.expect("every function probed");
            match probe {
                Probe::Hit(cf) => {
                    cache_stats.hits += 1;
                    cache_outcomes.push(CacheOutcome::Hit);
                    cached[fi] = Some(cf);
                }
                Probe::Miss => {
                    cache_stats.misses += 1;
                    cache_outcomes.push(CacheOutcome::Miss);
                }
                Probe::Stale(why) => {
                    cache_stats.stale += 1;
                    cache_outcomes.push(CacheOutcome::Stale);
                    cache_warnings.push(CompileDiag {
                        function: m.funcs[fi].name.clone(),
                        pass: "cache".into(),
                        message: format!("stale cache entry ({why}); recompiled from source"),
                    });
                }
            }
            keys.push(key);
        }
        timings.cache += t0.elapsed();
    }

    // CFG analyses once per function, up front: every later pass only
    // rewrites instructions (never the CFG — critical edges were split
    // above), so the cache stays valid through the whole fan-out. Cache
    // hits skip the pipeline entirely and need no analyses.
    let t0 = Instant::now();
    let fas: Vec<Option<FuncAnalyses>> = m
        .funcs
        .iter()
        .enumerate()
        .map(|(fi, f)| cached[fi].is_none().then(|| FuncAnalyses::compute(f)))
        .collect();
    timings.analyses = t0.elapsed();

    let estimated;
    let control_profile: Option<&EdgeProfile> = match opts.control {
        ControlSpec::Off => None,
        ControlSpec::Profile(p) => Some(p),
        ControlSpec::Static => {
            // estimate only the functions that will actually compile; the
            // estimator is per-function, so hits don't change miss keys
            let mut p = EdgeProfile::new();
            for (fi, (f, fa)) in m.funcs.iter().zip(&fas).enumerate() {
                if let Some(fa) = fa {
                    estimate_function_with(&mut p, FuncId::from_index(fi), f, fa);
                }
            }
            estimated = p;
            Some(&estimated)
        }
    };

    let func_names = func_name_table(m);
    // callee signatures and the global address layout, frozen before the
    // fan-out so per-worker verification/audit can run without the
    // (moved-out) module
    let sigs: Vec<(u32, bool)> = m
        .funcs
        .iter()
        .map(|f| (f.params, f.ret_ty.is_some()))
        .collect();
    let layout = layout_globals(&m.globals);
    // only misses occupy worker slots; hits are spliced in at the join
    let miss: Vec<usize> = (0..nfuncs).filter(|&fi| cached[fi].is_none()).collect();
    let jobs = cfg.resolved_jobs().min(miss.len().max(1));
    let funcs = std::mem::take(&mut m.funcs);
    let shared = Shared {
        globals: &m.globals,
        func_names: &func_names,
        sigs: &sigs,
        layout: &layout,
        aa: &aa,
        opts,
        control_profile,
        hooks,
    };
    let fa_of = |fi: usize| fas[fi].as_ref().expect("analyses computed for every miss");

    let mut results: Vec<Option<Result<FuncResult, CompileError>>> = if jobs <= 1 {
        funcs
            .into_iter()
            .enumerate()
            .map(|(fi, f)| match cached[fi].take() {
                Some(cf) => Some(Ok(FuncResult::from_cached(*cf))),
                None => Some(process_function(&shared, f, fi, fa_of(fi))),
            })
            .collect()
    } else {
        // chunked work claiming: workers grab CHUNK *miss-list* positions
        // per atomic fetch_add instead of popping one job from a global
        // locked queue, and each input slot has its own (uncontended)
        // mutex — the per-function synchronization cost is one futex fast
        // path, not a fight over one queue lock. Results accumulate
        // worker-locally and merge under the output lock once per worker.
        let nmiss = miss.len();
        let chunk = (nmiss / (jobs * 8)).clamp(1, 32);
        let slots: Vec<Mutex<Option<Function>>> =
            funcs.into_iter().map(|f| Mutex::new(Some(f))).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let out: Mutex<Vec<Option<Result<FuncResult, CompileError>>>> = {
            let mut v = Vec::new();
            v.resize_with(nfuncs, || None);
            Mutex::new(v)
        };
        let miss = &miss;
        let worker = || {
            let mut local: Vec<(usize, Result<FuncResult, CompileError>)> = Vec::new();
            loop {
                let lo = next.fetch_add(chunk, std::sync::atomic::Ordering::Relaxed);
                if lo >= nmiss {
                    break;
                }
                for &fi in &miss[lo..(lo + chunk).min(nmiss)] {
                    let f = slots[fi].lock().unwrap().take().expect("slot claimed once");
                    local.push((fi, process_function(&shared, f, fi, fa_of(fi))));
                }
            }
            let mut out = out.lock().unwrap();
            for (fi, r) in local {
                out[fi] = Some(r);
            }
        };
        // worker panics are caught inside process_function, so the scope
        // join never unwinds; failures arrive as CompileErrors in order.
        // The calling thread is worker zero — only jobs-1 spawns.
        std::thread::scope(|s| {
            for _ in 1..jobs {
                s.spawn(worker);
            }
            worker();
        });
        let mut results = out.into_inner().unwrap();
        for (fi, slot) in cached.iter_mut().enumerate() {
            if let Some(cf) = slot.take() {
                results[fi] = Some(Ok(FuncResult::from_cached(*cf)));
            }
        }
        results
    };

    // deterministic join: splice lowered functions back in index order and
    // renumber fresh memory sites serially, reproducing serial numbering;
    // per-function dumps and warnings are concatenated in the same order.
    // An unrecoverable per-function failure surfaces here — the lowest
    // function index wins, independent of worker scheduling. Clean misses
    // are written back here, encoded *before* renumbering so the stored
    // placeholders replay into any module.
    let mut stats = OptStats::default();
    let mut warnings: Vec<CompileDiag> = cache_warnings;
    let mut dumps: Vec<PassDump> = Vec::new();
    m.funcs = Vec::with_capacity(results.len());
    for (fi, slot) in results.iter_mut().enumerate() {
        let mut r = slot.take().expect("every function processed")?;
        let write_back = match fcache {
            // a cancelled request stops writing entries: the join may still
            // splice results compiled before the deadline, but none of them
            // reach the store (the deadline error surfaces from `?` above)
            Some(_)
                if matches!(
                    cache_outcomes.get(fi),
                    Some(CacheOutcome::Miss | CacheOutcome::Stale)
                ) && r.warnings.is_empty()
                    && !hooks.cancel.cancelled() =>
            {
                // a function that needed the degradation ladder is not
                // cached: its result encodes a recovery, not the plain
                // compile the key describes
                let t0 = Instant::now();
                let bytes = cache::encode_entry(&r.f, r.fresh_sites, &r.stats, &r.dumps);
                timings.cache += t0.elapsed();
                Some(bytes)
            }
            _ => None,
        };
        let first = MemSiteId(m.next_mem_site);
        m.next_mem_site += r.fresh_sites;
        resolve_fresh_sites(&mut r.f, first);
        stats.absorb(&r.stats);
        timings.absorb(&r.timings);
        warnings.append(&mut r.warnings);
        dumps.append(&mut r.dumps);
        if hooks.dump_after.contains(Pass::Lower) {
            let mut text = String::new();
            print_function_in(&mut text, &m.globals, &func_names, &r.f);
            dumps.push(PassDump {
                pass: Pass::Lower,
                func: r.f.name.clone(),
                text,
            });
        }
        if let (Some(c), Some(bytes)) = (fcache, write_back) {
            let t0 = Instant::now();
            match c.insert(&keys[fi], &bytes) {
                Ok(evicted) => cache_stats.evicts += evicted,
                Err(e) => warnings.push(CompileDiag {
                    function: r.f.name.clone(),
                    pass: "cache".into(),
                    message: format!("cache write failed ({e}); result not cached"),
                }),
            }
            timings.cache += t0.elapsed();
        }
        m.funcs.push(r.f);
    }

    // fold the storage-fault counters in and surface the circuit breaker
    // (once per session: only the cache instance that tripped it reports)
    if let Some(c) = fcache {
        let (retries, io_errors, breaker_trips) = c.fault_counters();
        cache_stats.retries = retries;
        cache_stats.io_errors = io_errors;
        cache_stats.breaker_trips = breaker_trips;
        if let Some(reason) = c.breaker_diag() {
            warnings.push(CompileDiag {
                function: String::new(),
                pass: "cache".into(),
                message: format!(
                    "cache circuit breaker tripped ({reason}); compiling without the cache"
                ),
            });
        }
    }

    let t0 = Instant::now();
    if let Err(e) = specframe_ir::verify_module(m) {
        return Err(CompileError {
            function: String::new(),
            pass: "module-verify".into(),
            message: e.to_string(),
            fallback_exhausted: false,
        });
    }
    timings.module_verify = t0.elapsed();
    timings.total = total0.elapsed();
    timings.dom_computes = dom_compute_count() - dom0;
    Ok((
        OptReport {
            stats,
            timings,
            warnings,
            cache: cache_stats,
            cache_outcomes,
        },
        dumps,
    ))
}

/// One worker's output for one function.
struct FuncResult {
    /// The lowered function (fresh sites still local placeholders).
    f: Function,
    stats: OptStats,
    timings: PassTimings,
    /// Placeholder count for [`resolve_fresh_sites`] at the join.
    fresh_sites: u32,
    /// Snapshots this worker took, in pipeline order.
    dumps: Vec<PassDump>,
    /// Degradation diagnostics (non-speculative fallback taken).
    warnings: Vec<CompileDiag>,
}

impl FuncResult {
    /// A result replayed from a cache entry: stored lowering, stats and
    /// dumps, zero timings (nothing ran), no warnings (only clean compiles
    /// are written back).
    fn from_cached(cf: CachedFunc) -> FuncResult {
        FuncResult {
            f: cf.func,
            stats: cf.stats,
            timings: PassTimings::default(),
            fresh_sites: cf.fresh_sites,
            dumps: cf.dumps,
            warnings: Vec::new(),
        }
    }
}

/// Read-only state shared by every per-function worker.
struct Shared<'a, 'p> {
    globals: &'a [Global],
    func_names: &'a [String],
    /// `(params, has_ret)` per function, for per-worker call checking.
    sigs: &'a [(u32, bool)],
    /// Global address layout, for per-worker machine lowering (`--audit-spec`).
    layout: &'a [i64],
    aa: &'a AliasAnalysis,
    opts: &'a OptOptions<'p>,
    control_profile: Option<&'a EdgeProfile>,
    hooks: &'a PipelineHooks,
}

/// Output of one (speculative or fallback) run of the post-refine stages.
struct StageOutput {
    f: Function,
    stats: OptStats,
    timings: PassTimings,
    fresh_sites: u32,
    dumps: Vec<PassDump>,
    /// Diagnostics from repairing stages (`--fence-leaks` site reports).
    warnings: Vec<CompileDiag>,
}

/// The per-function pipeline. Owns `f`; everything else is shared
/// read-only.
///
/// Refinement runs once up front (it is not speculation-dependent), then
/// the speculative stage group — HSSA build, SSAPRE, strength reduction,
/// store promotion, verify, lower — runs under `catch_unwind`. If it fails
/// (verifier rejection or panic), the same group is re-run with
/// speculation fully disabled; only a failure of that fallback, too, is an
/// error.
fn process_function(
    sh: &Shared<'_, '_>,
    mut f: Function,
    fi: usize,
    fa: &FuncAnalyses,
) -> Result<FuncResult, CompileError> {
    let fid = FuncId::from_index(fi);
    let hooks = sh.hooks;
    // between-functions deadline gate: a request past its deadline stops
    // claiming work; functions already in flight stop at their next pass
    // boundary (see `check_deadline` in `run_spec_stages`)
    if hooks.cancel.cancelled() {
        return Err(CompileError::deadline(&f.name));
    }
    let mut dumps: Vec<PassDump> = Vec::new();

    // flow-sensitive refinement (Figure 4's last box): fold pointer bases
    // that provably hold one static address into direct references, then
    // build the SSA form the optimizer sees
    let mut refine_time = std::time::Duration::ZERO;
    let refined = with_quiet_panics(|| {
        catch_unwind(AssertUnwindSafe(|| {
            let t0 = Instant::now();
            refine_function_in(sh.globals, &mut f, fid, sh.aa, fa);
            refine_time = t0.elapsed();
        }))
    });
    if let Err(payload) = refined {
        // refinement is shared by both attempts, so there is no
        // speculation to disable — report it directly
        return Err(CompileError {
            function: f.name.clone(),
            pass: "refine".into(),
            message: panic_message(payload.as_ref()),
            fallback_exhausted: false,
        });
    }
    let mut pre_verify_time = std::time::Duration::ZERO;
    if hooks.verify_each {
        // pass-boundary check on the refined IR (refine is shared by every
        // later attempt, so a rejection here is unrecoverable, like a
        // refine panic)
        let t0 = Instant::now();
        let checked = verify_ir_function(sh, Pass::Refine, &f);
        pre_verify_time = t0.elapsed();
        if let Err(message) = checked {
            return Err(CompileError {
                function: f.name.clone(),
                pass: Pass::Refine.name().into(),
                message,
                fallback_exhausted: false,
            });
        }
    }
    if hooks.dump_after.contains(Pass::Refine) {
        let mut text = String::new();
        print_function_in(&mut text, sh.globals, sh.func_names, &f);
        dumps.push(PassDump {
            pass: Pass::Refine,
            func: f.name.clone(),
            text,
        });
    }
    if !hooks.runs(Pass::Hssa) {
        // stopped after refine: the function is already executable IR
        return Ok(FuncResult {
            f,
            stats: OptStats::default(),
            timings: PassTimings {
                refine: refine_time,
                verify_each: pre_verify_time,
                ..Default::default()
            },
            fresh_sites: 0,
            dumps,
            warnings: Vec::new(),
        });
    }

    // the degradation ladder: full speculative attempt, then per-pass
    // rollback (skip just the offending pass, keep speculating), then the
    // whole-function non-speculative fallback
    let current = Cell::new("hssa");
    let attempt = |speculative: bool, skip: PassSet| {
        current.set("hssa");
        let r = with_quiet_panics(|| {
            catch_unwind(AssertUnwindSafe(|| {
                run_spec_stages(sh, &f, fid, fa, speculative, skip, &current)
            }))
        });
        flatten_attempt(r, &current)
    };
    let (out, warnings) = match attempt(true, PassSet::EMPTY) {
        Ok(out) => (out, Vec::new()),
        // a deadline is not a compile failure the ladder can recover from —
        // retrying without speculation cannot buy time back — so it
        // bypasses every rung and surfaces as its own error shape
        Err((pass, _)) if pass == CompileError::DEADLINE_PASS => {
            return Err(CompileError::deadline(&f.name))
        }
        Err((pass, message)) => {
            // rung 1: roll back just the offending pass and re-run the
            // remaining pipeline. An attributed failure names its pass; an
            // unattributed one (final verify, audit, lower) is bisected by
            // trying single-pass skips from the back of the pipeline.
            let candidates: Vec<Pass> = match pass.parse::<Pass>() {
                Ok(p) if SKIPPABLE.contains(&p) => vec![p],
                _ => SKIPPABLE.iter().rev().copied().collect(),
            };
            let mut rescued = None;
            for p in candidates {
                if !pass_enabled(sh, p) {
                    continue;
                }
                match attempt(true, PassSet::from_iter([p])) {
                    Ok(mut out) => {
                        out.stats.pass_rollbacks = 1;
                        let diag = CompileDiag {
                            function: f.name.clone(),
                            pass: pass.clone(),
                            message: format!(
                                "speculative compilation failed ({message}); rolled back \
                                 pass `{p}` for this function and re-ran the remaining \
                                 pipeline"
                            ),
                        };
                        rescued = Some((out, vec![diag]));
                        break;
                    }
                    Err((p2, _)) if p2 == CompileError::DEADLINE_PASS => {
                        return Err(CompileError::deadline(&f.name))
                    }
                    Err(_) => {}
                }
            }
            if let Some(r) = rescued {
                r
            } else {
                // rung 2: non-speculative fallback — same function,
                // speculation off
                match attempt(false, PassSet::EMPTY) {
                    Ok(mut out) => {
                        out.stats.spec_fallbacks = 1;
                        let diag = CompileDiag {
                            function: f.name.clone(),
                            pass,
                            message: format!(
                                "speculative compilation failed ({message}); \
                                 recompiled without speculation"
                            ),
                        };
                        (out, vec![diag])
                    }
                    Err((fpass, _)) if fpass == CompileError::DEADLINE_PASS => {
                        return Err(CompileError::deadline(&f.name))
                    }
                    Err((fpass, fmessage)) => {
                        return Err(CompileError {
                            function: f.name.clone(),
                            pass: fpass,
                            message: fmessage,
                            fallback_exhausted: true,
                        })
                    }
                }
            }
        }
    };

    let mut out = out;
    let mut warnings = warnings;
    warnings.append(&mut out.warnings);
    let mut timings = out.timings;
    timings.refine = refine_time;
    timings.verify_each += pre_verify_time;
    dumps.extend(out.dumps);
    Ok(FuncResult {
        f: out.f,
        stats: out.stats,
        timings,
        fresh_sites: out.fresh_sites,
        dumps,
        warnings,
    })
}

/// Collapses the two failure shapes of a stage-group attempt — a clean
/// verifier rejection and a caught panic — into one `(pass, message)`.
fn flatten_attempt(
    attempt: std::thread::Result<Result<StageOutput, (String, String)>>,
    current: &Cell<&'static str>,
) -> Result<StageOutput, (String, String)> {
    match attempt {
        Ok(Ok(out)) => Ok(out),
        Ok(Err(e)) => Err(e),
        Err(payload) => Err((current.get().to_string(), panic_message(payload.as_ref()))),
    }
}

/// The passes the rollback rung of the degradation ladder may skip
/// individually. HSSA build and lowering are structural (nothing runs
/// without them); refine runs before the ladder.
const SKIPPABLE: [Pass; 4] = [Pass::Ssapre, Pass::Strength, Pass::Lftr, Pass::Storeprom];

/// Whether pass `p` actually runs under this configuration (hooks *and*
/// option gates) — skipping a pass that never ran is a wasted retry.
fn pass_enabled(sh: &Shared<'_, '_>, p: Pass) -> bool {
    sh.hooks.runs(p)
        && match p {
            Pass::Strength => sh.opts.strength_reduction,
            Pass::Lftr => sh.opts.lftr,
            Pass::Storeprom => sh.opts.store_sinking,
            _ => true,
        }
}

/// The `pass=<p> fn=<f> bb=<n>` attribution suffix of verify-each and
/// audit diagnostics.
fn attribution(pass: &str, func: &str, bb: Option<u32>) -> String {
    match bb {
        Some(b) => format!("pass={pass} fn={func} bb={b}"),
        None => format!("pass={pass} fn={func}"),
    }
}

/// IR-level pass-boundary check (after `refine` and after `lower`): the
/// per-function structural verifier, run against the worker-shared global
/// count and callee signatures.
///
/// # Errors
/// Returns the fully attributed diagnostic message.
fn verify_ir_function(sh: &Shared<'_, '_>, pass: Pass, f: &Function) -> Result<(), String> {
    let callee = |i: usize| -> Option<CalleeSig<'_>> {
        sh.sigs.get(i).map(|&(params, has_ret)| CalleeSig {
            name: &sh.func_names[i],
            params,
            has_ret,
        })
    };
    specframe_ir::verify_function_in(sh.globals.len(), &callee, f).map_err(|e| {
        format!(
            "pass-boundary verification failed after `{pass}`: {} [{}]",
            e.msg,
            attribution(pass.name(), &f.name, e.block)
        )
    })
}

/// HSSA-level pass-boundary check: the detailed structural verifier plus,
/// once strength reduction has run, the SrTemp chain-consistency check.
///
/// # Errors
/// `(pass, message)` in the shape the degradation ladder consumes.
fn hssa_verify_each(
    f: &Function,
    hf: &HssaFunc,
    p: Pass,
    sr_temps: &[crate::strength::SrTemp],
    t: &mut PassTimings,
) -> Result<(), (String, String)> {
    let t0 = Instant::now();
    let mut r = verify_hssa_detailed(hf).map_err(|e| (e.block.map(|b| b as u32), e.msg));
    if r.is_ok() && p >= Pass::Strength {
        r = crate::lftr::verify_sr_temps(hf, sr_temps).map_err(|m| (None, m));
    }
    t.verify_each += t0.elapsed();
    r.map_err(|(bb, msg)| {
        (
            p.name().to_string(),
            format!(
                "pass-boundary verification failed after `{p}`: {msg} [{}]",
                attribution(p.name(), &f.name, bb)
            ),
        )
    })
}

/// Deterministic HSSA corruption for `--inject-corrupt`: breaks the first
/// renamed φ argument (falling back to a χ operand, then the entry
/// terminator) so the verify-each checker has a real violation to catch.
fn corrupt_hssa(hf: &mut HssaFunc) {
    for b in &mut hf.blocks {
        if let Some(arg) = b.phis.first_mut().and_then(|phi| phi.args.first_mut()) {
            *arg = u32::MAX;
            return;
        }
    }
    for b in &mut hf.blocks {
        if let Some(st) = b.stmts.iter_mut().find(|s| !s.chi.is_empty()) {
            st.chi[0].old_ver = u32::MAX;
            return;
        }
    }
    if let Some(b) = hf.blocks.first_mut() {
        b.term = None;
    }
}

/// The speculation-dependent stage group: HSSA build → SSAPRE → strength
/// reduction → store promotion → verify → lower. When `speculative` is
/// false, every speculation source is forced off (the degradation target).
/// Passes in `skip` are left out (the ladder's per-pass rollback rung).
/// `current` tracks the running stage so a panic can be attributed.
fn run_spec_stages(
    sh: &Shared<'_, '_>,
    f: &Function,
    fid: FuncId,
    fa: &FuncAnalyses,
    speculative: bool,
    skip: PassSet,
    current: &Cell<&'static str>,
) -> Result<StageOutput, (String, String)> {
    let hooks = sh.hooks;
    let mut stats = OptStats::default();
    let mut t = PassTimings::default();
    let mut dumps: Vec<PassDump> = Vec::new();
    let dump_hssa = |dumps: &mut Vec<PassDump>, pass: Pass, hf: &HssaFunc| {
        dumps.push(PassDump {
            pass,
            func: f.name.clone(),
            text: print_hssa_in(sh.globals, sh.func_names, f, hf),
        });
    };
    let inject = if speculative {
        &hooks.inject_spec_fail
    } else {
        &hooks.inject_fallback_fail
    };
    // the driver owns the likeliness oracle; HSSA construction and the
    // SSAPRE kernel query the same instance, so their verdicts agree
    let mode = if !speculative {
        SpecMode::NoSpeculation
    } else {
        match sh.opts.data {
            SpecSource::None => SpecMode::NoSpeculation,
            SpecSource::Profile(p) => SpecMode::Profile(p),
            SpecSource::Heuristic => SpecMode::Heuristic,
            SpecSource::Aggressive => SpecMode::Aggressive,
        }
    };
    let oracle = Likeliness::with_costs(mode, sh.opts.spec_costs());

    // deadline poll, one per stage gate: cancellation is only observed at
    // pass boundaries, where no function is half-rewritten, so a cancelled
    // compile never commits (or caches) a partial transformation
    let check_deadline = || -> Result<(), (String, String)> {
        if hooks.cancel.cancelled() {
            Err((
                CompileError::DEADLINE_PASS.into(),
                "deadline exceeded".into(),
            ))
        } else {
            Ok(())
        }
    };

    // `--inject-corrupt` sabotages the speculative attempt right after the
    // named pass; the fallback attempt stays clean, like the other
    // injection knobs, so the ladder always has a sound rung to land on
    let maybe_corrupt = |hf: &mut HssaFunc, p: Pass| {
        if let Some((func, pass)) = &hooks.inject_corrupt {
            if speculative && *pass == p && func == f.name.as_str() {
                corrupt_hssa(hf);
            }
        }
    };

    current.set("hssa");
    check_deadline()?;
    let t0 = Instant::now();
    let mut hf = build_hssa_with(sh.globals, f, fid, sh.aa, &oracle, fa);
    t.hssa_build = t0.elapsed();
    if hooks.dump_after.contains(Pass::Hssa) {
        dump_hssa(&mut dumps, Pass::Hssa, &hf);
    }
    maybe_corrupt(&mut hf, Pass::Hssa);
    if hooks.verify_each {
        hssa_verify_each(f, &hf, Pass::Hssa, &[], &mut t)?;
    }

    if hooks.runs(Pass::Ssapre) {
        current.set("ssapre");
        check_deadline()?;
        // injection fires on every attempt that reaches this stage — also
        // the rollback retry — so recovery degrades past rung 1
        if inject.as_deref() == Some(f.name.as_str()) {
            panic!(
                "injected {} failure",
                if speculative {
                    "speculative-compilation"
                } else {
                    "fallback-compilation"
                }
            );
        }
        if !skip.contains(Pass::Ssapre) {
            let policy = if speculative {
                SpecPolicy {
                    oracle,
                    control: sh.control_profile.map(|p| (p, fid)),
                }
            } else {
                SpecPolicy::none()
            };
            let t0 = Instant::now();
            ssapre_function(f, &mut hf, &policy, &mut stats, fa);
            t.ssapre = t0.elapsed();
            if hooks.dump_after.contains(Pass::Ssapre) {
                dump_hssa(&mut dumps, Pass::Ssapre, &hf);
            }
            maybe_corrupt(&mut hf, Pass::Ssapre);
            if hooks.verify_each {
                hssa_verify_each(f, &hf, Pass::Ssapre, &[], &mut t)?;
            }
        }
    }

    let mut sr_temps: Vec<crate::strength::SrTemp> = Vec::new();
    if sh.opts.strength_reduction && hooks.runs(Pass::Strength) && !skip.contains(Pass::Strength) {
        current.set("strength");
        check_deadline()?;
        let t0 = Instant::now();
        strength_reduce_hssa(&mut hf, &mut stats, fa, &mut sr_temps);
        crate::ssapre::cleanup_hssa(&mut hf);
        t.strength = t0.elapsed();
        if hooks.dump_after.contains(Pass::Strength) {
            dump_hssa(&mut dumps, Pass::Strength, &hf);
        }
        maybe_corrupt(&mut hf, Pass::Strength);
        if hooks.verify_each {
            hssa_verify_each(f, &hf, Pass::Strength, &sr_temps, &mut t)?;
        }
    }
    if sh.opts.lftr && hooks.runs(Pass::Lftr) && !skip.contains(Pass::Lftr) {
        current.set("lftr");
        check_deadline()?;
        let t0 = Instant::now();
        crate::lftr::lftr_hssa(&mut hf, &sr_temps, &mut stats);
        crate::ssapre::cleanup_hssa(&mut hf);
        t.lftr = t0.elapsed();
        if hooks.dump_after.contains(Pass::Lftr) {
            dump_hssa(&mut dumps, Pass::Lftr, &hf);
        }
        maybe_corrupt(&mut hf, Pass::Lftr);
        if hooks.verify_each {
            hssa_verify_each(f, &hf, Pass::Lftr, &sr_temps, &mut t)?;
        }
    }
    if sh.opts.store_sinking && hooks.runs(Pass::Storeprom) && !skip.contains(Pass::Storeprom) {
        current.set("storeprom");
        check_deadline()?;
        let t0 = Instant::now();
        crate::storeprom::sink_stores_hssa(&mut hf, &mut stats, fa);
        crate::ssapre::cleanup_hssa(&mut hf);
        t.storeprom = t0.elapsed();
        if hooks.dump_after.contains(Pass::Storeprom) {
            dump_hssa(&mut dumps, Pass::Storeprom, &hf);
        }
        maybe_corrupt(&mut hf, Pass::Storeprom);
        if hooks.verify_each {
            hssa_verify_each(f, &hf, Pass::Storeprom, &sr_temps, &mut t)?;
        }
    }

    current.set("verify");
    check_deadline()?;
    let t0 = Instant::now();
    if let Err(e) = verify_hssa_detailed(&hf) {
        return Err(("verify".into(), e.msg));
    }
    t.verify = t0.elapsed();

    current.set("lower");
    check_deadline()?;
    let t0 = Instant::now();
    let (lowered, fresh_sites) = lower_function(f, &hf);
    t.lower = t0.elapsed();
    if hooks.verify_each {
        let t0 = Instant::now();
        let checked = verify_ir_function(sh, Pass::Lower, &lowered);
        t.verify_each += t0.elapsed();
        if let Err(message) = checked {
            return Err((Pass::Lower.name().into(), message));
        }
    }

    if hooks.audit_spec {
        // machine-lower this one function against the frozen global layout
        // and prove the ld.a/ld.c pairing contract on the result
        current.set("audit");
        let t0 = Instant::now();
        let mf = specframe_codegen::lower_function_machine_for(
            &lowered,
            sh.layout,
            sh.opts.target.spec(),
        );
        let audited = specframe_machine::audit_func(&mf);
        t.audit = t0.elapsed();
        if let Err(e) = audited {
            return Err((
                "audit".into(),
                format!("{e} [{}]", attribution("audit", &f.name, None)),
            ));
        }
    }

    let mut warnings: Vec<CompileDiag> = Vec::new();
    if hooks.audit_leaks || hooks.fence_leaks {
        // speculative-leak audit: no advanced-load value may reach an
        // address or branch sink before its check. Audit mode rejects the
        // function (the degradation ladder then rolls speculation back);
        // fence mode records the repair the machine lowering will apply
        // (the IR artifact is untouched — fences are a deterministic
        // machine-level transform, so sim/bench lowerings re-derive them).
        current.set("audit-leaks");
        let t0 = Instant::now();
        let mut mf = specframe_codegen::lower_function_machine_for(
            &lowered,
            sh.layout,
            sh.opts.target.spec(),
        );
        let sites = specframe_machine::leak_audit_func(&mf);
        if !sites.is_empty() {
            stats.leak_sites_flagged = sites.len() as u64;
            if hooks.fence_leaks {
                let fences = specframe_machine::fence_func(&mut mf);
                stats.leak_fences_inserted = fences;
                let clean = specframe_machine::leak_audit_func(&mf).is_empty();
                for s in &sites {
                    warnings.push(CompileDiag {
                        function: f.name.clone(),
                        pass: "audit-leaks".into(),
                        message: format!("{s} [{}]", attribution("audit-leaks", &f.name, None)),
                    });
                }
                warnings.push(CompileDiag {
                    function: f.name.clone(),
                    pass: "audit-leaks".into(),
                    message: format!(
                        "fenced `{}`: inserted {} speculation barrier(s); re-audit {}",
                        f.name,
                        fences,
                        if clean { "clean" } else { "STILL DIRTY" }
                    ),
                });
                if !clean {
                    return Err((
                        "audit-leaks".into(),
                        format!(
                            "fencing failed to close every speculation window [{}]",
                            attribution("audit-leaks", &f.name, None)
                        ),
                    ));
                }
            } else {
                let report: Vec<String> = sites.iter().map(|s| s.to_string()).collect();
                return Err((
                    "audit-leaks".into(),
                    format!(
                        "{} [{}]",
                        report.join("; "),
                        attribution("audit-leaks", &f.name, None)
                    ),
                ));
            }
        }
        t.audit_leaks = t0.elapsed();
    }

    Ok(StageOutput {
        f: lowered,
        stats,
        timings: t,
        fresh_sites,
        dumps,
        warnings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use specframe_ir::{parse_module, Value};
    use specframe_profile::{run, run_with, AliasProfiler, EdgeProfiler};

    /// End-to-end semantic preservation: every configuration must compute
    /// what the unoptimized interpreter computes.
    fn check_all_modes(src: &str, entry: &str, args: &[Value]) {
        let m0 = parse_module(src).unwrap();
        let (expect, base_stats) = run(&m0, entry, args, 10_000_000).unwrap();

        // collect profiles on the prepared module
        let mut prepared = m0.clone();
        prepare_module(&mut prepared);
        let mut ap = AliasProfiler::new();
        let mut ep = EdgeProfiler::new();
        {
            let mut both = specframe_profile::observer::Compose(vec![&mut ap, &mut ep]);
            run_with(&prepared, entry, args, 10_000_000, &mut both).unwrap();
        }
        let aprof = ap.finish();
        let eprof = ep.finish();

        let configs: Vec<(&str, OptOptions)> = vec![
            ("baseline", OptOptions::default()),
            (
                "profile",
                OptOptions {
                    data: SpecSource::Profile(&aprof),
                    control: ControlSpec::Profile(&eprof),
                    strength_reduction: true,
                    lftr: true,
                    store_sinking: false,
                    target: Default::default(),
                },
            ),
            (
                "heuristic",
                OptOptions {
                    data: SpecSource::Heuristic,
                    control: ControlSpec::Static,
                    strength_reduction: true,
                    lftr: true,
                    store_sinking: false,
                    target: Default::default(),
                },
            ),
            (
                "aggressive",
                OptOptions {
                    data: SpecSource::Aggressive,
                    control: ControlSpec::Off,
                    strength_reduction: false,
                    lftr: false,
                    store_sinking: false,
                    target: Default::default(),
                },
            ),
        ];
        for (name, opts) in configs {
            let mut m = prepared.clone();
            let stats = optimize(&mut m, &opts);
            let (got, opt_stats) = run(&m, entry, args, 10_000_000)
                .unwrap_or_else(|e| panic!("{name}: optimized program failed: {e}"));
            assert_eq!(got, expect, "{name}: wrong result");
            let _ = (stats, opt_stats, base_stats);
        }
    }

    #[test]
    fn loop_with_global_promotes() {
        let src = r#"
global g: i64[1] = [5]

func f(n: i64) -> i64 {
  var i: i64
  var c: i64
  var v: i64
  var acc: i64
entry:
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  v = load.i64 [@g]
  acc = add acc, v
  i = add i, 1
  jmp head
exit:
  ret acc
}
"#;
        check_all_modes(src, "f", &[Value::I(25)]);
        // promotion effect: optimized baseline should do fewer dynamic loads
        let m0 = parse_module(src).unwrap();
        let (_, s0) = run(&m0, "f", &[Value::I(25)], 1_000_000).unwrap();
        let mut m = m0.clone();
        // loop-invariant promotion out of a while loop needs control
        // speculation (the paper's O3 ORC baseline has it: "the existing
        // SSAPRE in ORC already supports control speculation")
        optimize(
            &mut m,
            &OptOptions {
                control: ControlSpec::Static,
                ..Default::default()
            },
        );
        let (_, s1) = run(&m, "f", &[Value::I(25)], 1_000_000).unwrap();
        assert!(
            s1.loads < s0.loads,
            "promotion must cut loads: {} -> {}",
            s0.loads,
            s1.loads
        );
    }

    #[test]
    fn may_aliased_loop_needs_speculation() {
        // the paper's core scenario: a loop-invariant load may-aliased with
        // a store through a pointer that never actually aliases at run time
        // p may point at a or b (Steensgaard unifies them), but at run
        // time it only ever points at b — the paper's exact scenario
        let src = r#"
global a: i64[1] = [7]
global b: i64[1]

func smvp_like(p: ptr, n: i64) -> i64 {
  var i: i64
  var c: i64
  var v: i64
  var acc: i64
entry:
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  v = load.i64 [@a]
  acc = add acc, v
  store.i64 [p], acc
  i = add i, 1
  jmp head
exit:
  ret acc
}

func main(n: i64) -> i64 {
  var r: i64
  var p: ptr
entry:
  br n, ub, ua
ua:
  p = @a
  jmp go
ub:
  p = @b
  jmp go
go:
  r = call smvp_like(p, n)
  ret r
}
"#;
        check_all_modes(src, "main", &[Value::I(30)]);

        // baseline cannot promote (store *p may alias a); profile mode can
        let m0 = parse_module(src).unwrap();
        let mut prepared = m0.clone();
        prepare_module(&mut prepared);
        let mut ap = AliasProfiler::new();
        run_with(&prepared, "main", &[Value::I(30)], 1_000_000, &mut ap).unwrap();
        let aprof = ap.finish();

        let mut base = prepared.clone();
        optimize(
            &mut base,
            &OptOptions {
                control: ControlSpec::Static,
                ..Default::default()
            },
        );
        let (_, sb) = run(&base, "main", &[Value::I(30)], 1_000_000).unwrap();

        let mut spec = prepared.clone();
        let st = optimize(
            &mut spec,
            &OptOptions {
                data: SpecSource::Profile(&aprof),
                control: ControlSpec::Static,
                strength_reduction: false,
                lftr: false,
                store_sinking: false,
                target: Default::default(),
            },
        );
        let (_, ss) = run(&spec, "main", &[Value::I(30)], 1_000_000).unwrap();
        assert!(st.data_spec_reloads > 0, "speculation must fire: {st:?}");
        assert!(
            ss.loads < sb.loads,
            "speculative promotion must cut loads: baseline {} spec {}",
            sb.loads,
            ss.loads
        );
    }

    #[test]
    fn redundant_expressions_eliminated() {
        let src = r#"
func f(a: i64, b: i64) -> i64 {
  var x: i64
  var y: i64
  var z: i64
entry:
  x = add a, b
  y = add a, b
  z = add x, y
  ret z
}
"#;
        check_all_modes(src, "f", &[Value::I(3), Value::I(4)]);
        let m0 = parse_module(src).unwrap();
        let mut m = m0.clone();
        let stats = optimize(&mut m, &OptOptions::default());
        assert!(stats.reloads >= 1, "a+b must be reloaded: {stats:?}");
    }

    #[test]
    fn diamond_partial_redundancy() {
        // classic PRE: a+b computed in one arm and after the merge
        let src = r#"
func f(a: i64, b: i64, sel: i64) -> i64 {
  var x: i64
  var y: i64
entry:
  br sel, have, nothave
have:
  x = add a, b
  jmp merge
nothave:
  x = 0
  jmp merge
merge:
  y = add a, b
  x = add x, y
  ret x
}
"#;
        check_all_modes(src, "f", &[Value::I(3), Value::I(4), Value::I(1)]);
        check_all_modes(src, "f", &[Value::I(3), Value::I(4), Value::I(0)]);
        let m0 = parse_module(src).unwrap();
        let mut m = m0.clone();
        let stats = optimize(&mut m, &OptOptions::default());
        // PRE must insert a+b on the nothave edge and reload at merge
        assert!(stats.insertions >= 1, "{stats:?}");
        assert!(stats.reloads >= 1, "{stats:?}");
    }

    #[test]
    fn injected_spec_failure_falls_back_to_nonspeculative() {
        // two functions; `kern`'s speculative compile is sabotaged — the
        // module must still compile, with `kern` recompiled non-
        // speculatively and a warning recorded; `other` is unaffected
        let src = r#"
global g: i64[1] = [5]

func kern(n: i64) -> i64 {
  var i: i64
  var c: i64
  var v: i64
  var acc: i64
entry:
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  v = load.i64 [@g]
  acc = add acc, v
  i = add i, 1
  jmp head
exit:
  ret acc
}

func other(a: i64, b: i64) -> i64 {
  var x: i64
  var y: i64
entry:
  x = add a, b
  y = add a, b
  ret y
}
"#;
        let m0 = parse_module(src).unwrap();
        let (expect, _) = run(&m0, "kern", &[Value::I(20)], 1_000_000).unwrap();
        for jobs in [1, 4] {
            let mut m = m0.clone();
            let hooks = PipelineHooks {
                inject_spec_fail: Some("kern".into()),
                ..Default::default()
            };
            let opts = OptOptions {
                data: SpecSource::Heuristic,
                control: ControlSpec::Static,
                strength_reduction: true,
                lftr: true,
                store_sinking: false,
                target: Default::default(),
            };
            let (report, _) =
                try_optimize_with_hooks(&mut m, &opts, &PipelineConfig { jobs }, &hooks)
                    .expect("fallback must rescue the module");
            assert_eq!(report.stats.spec_fallbacks, 1, "jobs={jobs}");
            assert_eq!(report.warnings.len(), 1, "jobs={jobs}");
            let w = &report.warnings[0];
            assert_eq!(w.function, "kern");
            assert_eq!(w.pass, "ssapre");
            assert!(
                w.message
                    .contains("injected speculative-compilation failure"),
                "{w}"
            );
            assert!(w.message.contains("recompiled without speculation"), "{w}");
            let (got, _) = run(&m, "kern", &[Value::I(20)], 1_000_000).unwrap();
            assert_eq!(got, expect, "jobs={jobs}: fallback output must run");
        }
    }

    #[test]
    fn injected_corruption_recovers_via_pass_rollback() {
        // corrupt kern's HSSA right after strength reduction: verify-each
        // must catch it, attribute it, and the ladder's rollback rung must
        // rescue the function by skipping just that pass — speculation and
        // the rest of the pipeline stay on
        let src = r#"
global g: i64[1] = [5]

func kern(n: i64) -> i64 {
  var i: i64
  var c: i64
  var v: i64
  var acc: i64
entry:
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  v = load.i64 [@g]
  acc = add acc, v
  i = add i, 1
  jmp head
exit:
  ret acc
}

func other(a: i64, b: i64) -> i64 {
  var x: i64
entry:
  x = add a, b
  ret x
}
"#;
        let m0 = parse_module(src).unwrap();
        let (expect, _) = run(&m0, "kern", &[Value::I(20)], 1_000_000).unwrap();
        for jobs in [1, 4] {
            let mut m = m0.clone();
            let hooks = PipelineHooks {
                verify_each: true,
                inject_corrupt: Some(("kern".into(), Pass::Strength)),
                ..Default::default()
            };
            let opts = OptOptions {
                data: SpecSource::Heuristic,
                control: ControlSpec::Static,
                strength_reduction: true,
                lftr: true,
                store_sinking: false,
                target: Default::default(),
            };
            let (report, _) =
                try_optimize_with_hooks(&mut m, &opts, &PipelineConfig { jobs }, &hooks)
                    .expect("rollback must rescue the module");
            assert_eq!(report.stats.pass_rollbacks, 1, "jobs={jobs}");
            assert_eq!(report.stats.spec_fallbacks, 0, "jobs={jobs}");
            assert_eq!(report.warnings.len(), 1, "jobs={jobs}");
            let w = &report.warnings[0];
            assert_eq!(w.function, "kern");
            assert_eq!(w.pass, "strength");
            assert!(w.message.contains("rolled back pass `strength`"), "{w}");
            assert!(w.message.contains("pass=strength fn=kern"), "{w}");
            let (got, _) = run(&m, "kern", &[Value::I(20)], 1_000_000).unwrap();
            assert_eq!(got, expect, "jobs={jobs}: rescued output must run");
        }
    }

    #[test]
    fn unskippable_corruption_degrades_to_nonspeculative() {
        // corruption injected after HSSA build poisons every speculative
        // attempt (hssa is not a skippable pass), so rung 1 fails for each
        // candidate and rung 2 — the non-speculative fallback, which the
        // injector leaves clean — must rescue the function
        let src = r#"
global g: i64[1] = [5]

func kern(n: i64) -> i64 {
  var i: i64
  var c: i64
  var v: i64
  var acc: i64
entry:
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  v = load.i64 [@g]
  acc = add acc, v
  i = add i, 1
  jmp head
exit:
  ret acc
}
"#;
        let m0 = parse_module(src).unwrap();
        let (expect, _) = run(&m0, "kern", &[Value::I(20)], 1_000_000).unwrap();
        let mut m = m0.clone();
        let hooks = PipelineHooks {
            verify_each: true,
            inject_corrupt: Some(("kern".into(), Pass::Hssa)),
            ..Default::default()
        };
        let (report, _) = try_optimize_with_hooks(
            &mut m,
            &OptOptions {
                data: SpecSource::Heuristic,
                control: ControlSpec::Static,
                strength_reduction: true,
                lftr: true,
                store_sinking: false,
                target: Default::default(),
            },
            &PipelineConfig { jobs: 1 },
            &hooks,
        )
        .expect("fallback must rescue the module");
        assert_eq!(report.stats.pass_rollbacks, 0);
        assert_eq!(report.stats.spec_fallbacks, 1);
        assert_eq!(report.warnings.len(), 1);
        let w = &report.warnings[0];
        assert_eq!(w.function, "kern");
        assert_eq!(w.pass, "hssa");
        assert!(w.message.contains("recompiled without speculation"), "{w}");
        let (got, _) = run(&m, "kern", &[Value::I(20)], 1_000_000).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn audit_spec_accepts_speculative_output() {
        // the auditor must accept the pipeline's own speculative output:
        // heuristic data speculation over a may-aliased loop emits
        // ld.a/ld.c pairs, and --audit-spec proves the pairing contract
        let src = r#"
global a: i64[1] = [7]
global b: i64[1]

func kern(p: ptr, n: i64) -> i64 {
  var i: i64
  var c: i64
  var v: i64
  var acc: i64
entry:
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  v = load.i64 [@a]
  acc = add acc, v
  store.i64 [p], i
  i = add i, 1
  jmp head
exit:
  ret acc
}

func main(sel: i64, n: i64) -> i64 {
  var r: i64
  var p: ptr
entry:
  br sel, ua, ub
ua:
  p = @a
  jmp go
ub:
  p = @b
  jmp go
go:
  r = call kern(p, n)
  ret r
}
"#;
        let mut m = parse_module(src).unwrap();
        let hooks = PipelineHooks {
            verify_each: true,
            audit_spec: true,
            ..Default::default()
        };
        let (report, _) = try_optimize_with_hooks(
            &mut m,
            &OptOptions {
                data: SpecSource::Heuristic,
                control: ControlSpec::Static,
                strength_reduction: true,
                lftr: true,
                store_sinking: false,
                target: Default::default(),
            },
            &PipelineConfig { jobs: 1 },
            &hooks,
        )
        .expect("clean speculative output must pass the audit");
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
        assert!(
            report.stats.checks > 0,
            "speculation must fire so the audit has checked loads to prove: {:?}",
            report.stats
        );
        assert!(report.timings.audit > std::time::Duration::ZERO);
        let (got, _) = run(&m, "main", &[Value::I(1), Value::I(10)], 1_000_000).unwrap();
        let m0 = parse_module(src).unwrap();
        let (expect, _) = run(&m0, "main", &[Value::I(1), Value::I(10)], 1_000_000).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn injected_fallback_failure_exhausts_recovery() {
        let src = r#"
func f(a: i64, b: i64) -> i64 {
  var x: i64
entry:
  x = add a, b
  ret x
}
"#;
        let mut m = parse_module(src).unwrap();
        let hooks = PipelineHooks {
            inject_spec_fail: Some("f".into()),
            inject_fallback_fail: Some("f".into()),
            ..Default::default()
        };
        let e = try_optimize_with_hooks(
            &mut m,
            &OptOptions::default(),
            &PipelineConfig { jobs: 1 },
            &hooks,
        )
        .expect_err("both attempts sabotaged");
        assert_eq!(e.function, "f");
        assert!(e.fallback_exhausted, "{e}");
        assert!(
            e.message.contains("injected fallback-compilation failure"),
            "{e}"
        );
    }

    #[test]
    fn no_injection_means_no_warnings() {
        let src = r#"
func f(a: i64, b: i64) -> i64 {
  var x: i64
entry:
  x = add a, b
  ret x
}
"#;
        let mut m = parse_module(src).unwrap();
        let (report, _) = try_optimize_with_hooks(
            &mut m,
            &OptOptions::default(),
            &PipelineConfig { jobs: 1 },
            &PipelineHooks::default(),
        )
        .unwrap();
        assert_eq!(report.stats.spec_fallbacks, 0);
        assert!(report.warnings.is_empty());
    }

    #[test]
    fn mis_speculation_still_correct() {
        // profile lies: train with p = &b, run with p = &a (input
        // sensitivity, §1) — the check loads must keep the result correct
        let src = r#"
global a: i64[1] = [7]
global b: i64[1]

func kern(p: ptr, n: i64) -> i64 {
  var i: i64
  var c: i64
  var v: i64
  var acc: i64
entry:
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  v = load.i64 [@a]
  acc = add acc, v
  store.i64 [p], i
  i = add i, 1
  jmp head
exit:
  ret acc
}

func main(sel: i64, n: i64) -> i64 {
  var r: i64
  var p: ptr
entry:
  br sel, ua, ub
ua:
  p = @a
  jmp go
ub:
  p = @b
  jmp go
go:
  r = call kern(p, n)
  ret r
}
"#;
        let m0 = parse_module(src).unwrap();
        let mut prepared = m0.clone();
        prepare_module(&mut prepared);
        // train on sel=0 (p=&b, no aliasing)
        let mut ap = AliasProfiler::new();
        run_with(
            &prepared,
            "main",
            &[Value::I(0), Value::I(10)],
            1_000_000,
            &mut ap,
        )
        .unwrap();
        let aprof = ap.finish();
        let mut spec = prepared.clone();
        optimize(
            &mut spec,
            &OptOptions {
                data: SpecSource::Profile(&aprof),
                ..Default::default()
            },
        );
        // deploy on sel=1 (p=&a: the weak update actually happens!)
        let (expect, _) = run(&prepared, "main", &[Value::I(1), Value::I(10)], 1_000_000).unwrap();
        let (got, _) = run(&spec, "main", &[Value::I(1), Value::I(10)], 1_000_000).unwrap();
        assert_eq!(got, expect, "mis-speculated run must still be correct");
    }
}
