//! Structured compile failures and diagnostics.
//!
//! The driver used to `panic!` when a per-function verification failed —
//! acceptable for an optimizer prototype, fatal for a compiler. Failures
//! now carry *where* (function, pass) and *what* (diagnostic text), and
//! the driver's first response to a speculative-pipeline failure is not an
//! error at all: it recompiles the function with speculation disabled and
//! records a [`CompileDiag`] warning. A [`CompileError`] only escapes when
//! that non-speculative fallback fails too (`fallback_exhausted`), or when
//! the failure is outside any per-function pipeline (module verification).

use std::fmt;

/// A non-fatal compile diagnostic: something went wrong, the driver
/// recovered, and the output is still correct (just less optimized).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileDiag {
    /// Function the diagnostic is about (empty for module-level ones).
    pub function: String,
    /// Pipeline stage that failed (stable `--dump-after` spelling).
    pub pass: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for CompileDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "[{}] {}", self.pass, self.message)
        } else {
            write!(
                f,
                "func `{}` [{}]: {}",
                self.function, self.pass, self.message
            )
        }
    }
}

/// A structured compile failure the driver could not recover from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Function being compiled when the failure happened (empty for
    /// module-level failures).
    pub function: String,
    /// Pipeline stage that failed (stable `--dump-after` spelling, or
    /// `module-verify` for the final whole-module check).
    pub pass: String,
    /// Human-readable description (verifier message or panic payload).
    pub message: String,
    /// True when the non-speculative per-function fallback was attempted
    /// and also failed — the strongest failure the driver can report.
    pub fallback_exhausted: bool,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let where_ = if self.function.is_empty() {
            format!("[{}]", self.pass)
        } else {
            format!("func `{}` [{}]", self.function, self.pass)
        };
        if self.fallback_exhausted {
            write!(
                f,
                "{where_}: {} (non-speculative fallback also failed)",
                self.message
            )
        } else {
            write!(f, "{where_}: {}", self.message)
        }
    }
}

impl CompileError {
    /// The pseudo-pass name for deadline cancellations.
    pub const DEADLINE_PASS: &'static str = "deadline";

    /// A deadline cancellation attributed to `function` (empty for
    /// module-level points). Deadlines bypass the degradation ladder —
    /// retrying non-speculatively cannot buy time back — and map to their
    /// own exit code / service error code (5).
    pub fn deadline(function: &str) -> CompileError {
        CompileError {
            function: function.into(),
            pass: CompileError::DEADLINE_PASS.into(),
            message: "deadline exceeded; compilation cancelled".into(),
            fallback_exhausted: false,
        }
    }

    /// Whether this failure is a deadline cancellation.
    pub fn is_deadline(&self) -> bool {
        self.pass == CompileError::DEADLINE_PASS
    }
}

impl std::error::Error for CompileError {}

thread_local! {
    static PANIC_EXPECTED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

static QUIET_HOOK: std::sync::Once = std::sync::Once::new();

/// Runs `f` with the default panic hook silenced *on this thread*: a
/// panic raised inside `f` (which the caller is about to `catch_unwind`
/// and convert into a [`CompileError`]) does not spray a backtrace onto
/// stderr. Panics on other threads keep the previous hook's behavior.
pub fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    QUIET_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !PANIC_EXPECTED.with(|e| e.get()) {
                prev(info);
            }
        }));
    });
    // restore (not clear) on exit so nested uses compose: an outer
    // wrapper stays in effect when an inner driver call returns
    struct Reset(bool);
    impl Drop for Reset {
        fn drop(&mut self) {
            PANIC_EXPECTED.with(|e| e.set(self.0));
        }
    }
    let _reset = Reset(PANIC_EXPECTED.with(|e| e.replace(true)));
    f()
}

/// Renders a caught panic payload as text (the `&str`/`String` payloads
/// `panic!` produces; anything else becomes a placeholder).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let d = CompileDiag {
            function: "kern".into(),
            pass: "ssapre".into(),
            message: "speculative compilation failed; retried without speculation".into(),
        };
        assert_eq!(
            d.to_string(),
            "func `kern` [ssapre]: speculative compilation failed; \
             retried without speculation"
        );
        let e = CompileError {
            function: "kern".into(),
            pass: "verify".into(),
            message: "bad phi".into(),
            fallback_exhausted: true,
        };
        assert_eq!(
            e.to_string(),
            "func `kern` [verify]: bad phi (non-speculative fallback also failed)"
        );
        let e2 = CompileError {
            function: String::new(),
            pass: "module-verify".into(),
            message: "dangling block".into(),
            fallback_exhausted: false,
        };
        assert_eq!(e2.to_string(), "[module-verify]: dangling block");
    }

    #[test]
    fn quiet_panics_returns_value_and_resets() {
        let v = with_quiet_panics(|| 41 + 1);
        assert_eq!(v, 42);
        // a caught panic inside the scope leaves the flag reset
        let r = with_quiet_panics(|| std::panic::catch_unwind(|| panic!("silent")));
        assert!(r.is_err());
        super::PANIC_EXPECTED.with(|e| assert!(!e.get()));
    }

    #[test]
    fn panic_payload_rendering() {
        let p = std::panic::catch_unwind(|| panic!("boom {}", 7)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "boom 7");
        let p = std::panic::catch_unwind(|| std::panic::panic_any(42i32)).unwrap_err();
        assert_eq!(
            panic_message(p.as_ref()),
            "worker panicked with a non-string payload"
        );
    }
}
