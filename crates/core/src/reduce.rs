//! Automatic failure reduction: a ddmin-style module shrinker.
//!
//! Given a module and a *failing predicate* — any reproducible property,
//! e.g. "the differential oracle reports a divergence" or "compilation
//! exits with a verifier error" — [`reduce_module`] searches for a much
//! smaller module on which the predicate still holds, by repeatedly
//! deleting functions, blocks and instructions and keeping every deletion
//! that preserves the failure (Zeller's delta debugging, specialized to
//! the IR's structure).
//!
//! The reducer never interprets the failure itself; the predicate is the
//! single source of truth. That is what makes it safe to wire under any
//! client — `fuzzdiff` hands it the differential oracle, `specc --reduce`
//! hands it "the compile error class reproduces" — and what makes it the
//! caller's job to ensure the predicate matches the *original* failure
//! class (a reducer steered by "anything goes wrong" happily reduces one
//! bug into a different one).
//!
//! Deletion moves, iterated to a fixpoint:
//!
//! 1. **Uncalled functions** are dropped (callee indices remapped).
//! 2. **Instructions** are deleted in halving windows over the whole
//!    module (the classic ddmin chunk schedule): windows of n/2, then
//!    n/4, … then single instructions. Registers left without a
//!    definition read as zero, so any subset deletion stays executable.
//! 3. **Conditional branches** are rewritten to unconditional jumps
//!    (each arm tried separately), which turns whole regions dead.
//! 4. **Unreachable blocks** are removed (labels remapped).
//!
//! Every candidate is checked by calling the predicate; [`ReduceStats`]
//! counts those probes so clients can report reduction effort.

use specframe_ir::{Inst, Module, Terminator};

/// Effort and effect counters of one [`reduce_module`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReduceStats {
    /// Predicate evaluations (each one compiles/runs a candidate).
    pub probes: u64,
    /// Instruction count of the input module.
    pub initial_insts: usize,
    /// Instruction count of the reduced module.
    pub final_insts: usize,
}

impl ReduceStats {
    /// Percentage of instructions removed (0 when the input was empty).
    pub fn shrink_percent(&self) -> f64 {
        if self.initial_insts == 0 {
            0.0
        } else {
            100.0 * (self.initial_insts - self.final_insts) as f64 / self.initial_insts as f64
        }
    }
}

/// Shrinks `m` while `failing` keeps returning `true`.
///
/// The caller must ensure `failing(m)` holds for the input; the reducer
/// only ever *keeps* candidates for which it holds, so the returned
/// module still fails, and it is never larger than the input.
pub fn reduce_module(
    m: &Module,
    failing: &mut dyn FnMut(&Module) -> bool,
) -> (Module, ReduceStats) {
    let mut cur = m.clone();
    let mut stats = ReduceStats {
        probes: 0,
        initial_insts: cur.inst_count(),
        final_insts: 0,
    };
    loop {
        let mut changed = false;
        changed |= drop_uncalled_funcs(&mut cur, failing, &mut stats);
        changed |= ddmin_insts(&mut cur, failing, &mut stats);
        changed |= simplify_branches(&mut cur, failing, &mut stats);
        changed |= drop_unreachable_blocks(&mut cur, failing, &mut stats);
        if !changed {
            break;
        }
    }
    stats.final_insts = cur.inst_count();
    (cur, stats)
}

/// One predicate probe.
fn probe(failing: &mut dyn FnMut(&Module) -> bool, stats: &mut ReduceStats, cand: &Module) -> bool {
    stats.probes += 1;
    failing(cand)
}

/// Tries to delete every function that no *other* function calls,
/// highest index first (so earlier removals don't shift later candidates).
fn drop_uncalled_funcs(
    m: &mut Module,
    failing: &mut dyn FnMut(&Module) -> bool,
    stats: &mut ReduceStats,
) -> bool {
    let mut changed = false;
    let mut fi = m.funcs.len();
    while fi > 0 {
        fi -= 1;
        if m.funcs.len() == 1 {
            break; // an empty module fails for the wrong reason
        }
        let called_elsewhere = m.funcs.iter().enumerate().any(|(j, f)| {
            j != fi
                && f.blocks.iter().any(|b| {
                    b.insts
                        .iter()
                        .any(|i| matches!(i, Inst::Call { callee, .. } if callee.index() == fi))
                })
        });
        if called_elsewhere {
            continue;
        }
        let mut cand = m.clone();
        cand.funcs.remove(fi);
        for f in &mut cand.funcs {
            for b in &mut f.blocks {
                for i in &mut b.insts {
                    if let Inst::Call { callee, .. } = i {
                        if callee.index() > fi {
                            *callee = specframe_ir::FuncId::from_index(callee.index() - 1);
                        }
                    }
                }
            }
        }
        if probe(failing, stats, &cand) {
            *m = cand;
            changed = true;
        }
    }
    changed
}

/// Every instruction's position, in module order.
fn inst_sites(m: &Module) -> Vec<(usize, usize, usize)> {
    let mut sites = Vec::new();
    for (fi, f) in m.funcs.iter().enumerate() {
        for (bi, b) in f.blocks.iter().enumerate() {
            for ii in 0..b.insts.len() {
                sites.push((fi, bi, ii));
            }
        }
    }
    sites
}

/// Windowed ddmin over the module's instruction list: windows of half the
/// program, quarters, … down to single instructions. A successful
/// deletion re-collects the site list and retries the same position (the
/// window now covers fresh instructions); a failed one advances.
fn ddmin_insts(
    m: &mut Module,
    failing: &mut dyn FnMut(&Module) -> bool,
    stats: &mut ReduceStats,
) -> bool {
    let mut changed = false;
    let mut chunk = (m.inst_count() / 2).max(1);
    loop {
        let mut pos = 0;
        loop {
            let sites = inst_sites(m);
            if pos >= sites.len() {
                break;
            }
            let window = &sites[pos..(pos + chunk).min(sites.len())];
            let mut cand = m.clone();
            // delete back-to-front so earlier indices stay valid
            for &(fi, bi, ii) in window.iter().rev() {
                cand.funcs[fi].blocks[bi].insts.remove(ii);
            }
            if probe(failing, stats, &cand) {
                *m = cand;
                changed = true;
                // keep pos: the window now covers the survivors
            } else {
                pos += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    changed
}

/// Tries to replace each conditional branch by a jump to one of its arms.
fn simplify_branches(
    m: &mut Module,
    failing: &mut dyn FnMut(&Module) -> bool,
    stats: &mut ReduceStats,
) -> bool {
    let mut changed = false;
    for fi in 0..m.funcs.len() {
        for bi in 0..m.funcs[fi].blocks.len() {
            let Terminator::Br { then_, else_, .. } = m.funcs[fi].blocks[bi].term else {
                continue;
            };
            for target in [then_, else_] {
                let mut cand = m.clone();
                cand.funcs[fi].blocks[bi].term = Terminator::Jump(target);
                if probe(failing, stats, &cand) {
                    *m = cand;
                    changed = true;
                    break;
                }
            }
        }
    }
    changed
}

/// Removes blocks unreachable from the entry (per function, one probe per
/// function that has any).
fn drop_unreachable_blocks(
    m: &mut Module,
    failing: &mut dyn FnMut(&Module) -> bool,
    stats: &mut ReduceStats,
) -> bool {
    let mut changed = false;
    for fi in 0..m.funcs.len() {
        let f = &m.funcs[fi];
        let n = f.blocks.len();
        let mut reachable = vec![false; n];
        let mut work = vec![0usize];
        reachable[0] = true;
        while let Some(b) = work.pop() {
            for s in f.blocks[b].term.successors() {
                if !reachable[s.index()] {
                    reachable[s.index()] = true;
                    work.push(s.index());
                }
            }
        }
        if reachable.iter().all(|&r| r) {
            continue;
        }
        // old index -> new index for the surviving blocks
        let mut remap = vec![0u32; n];
        let mut next = 0u32;
        for (bi, r) in reachable.iter().enumerate() {
            if *r {
                remap[bi] = next;
                next += 1;
            }
        }
        let mut cand = m.clone();
        let cf = &mut cand.funcs[fi];
        let mut bi = 0;
        cf.blocks.retain(|_| {
            let keep = reachable[bi];
            bi += 1;
            keep
        });
        for b in &mut cf.blocks {
            b.term
                .map_successors(|t| *t = specframe_ir::BlockId(remap[t.index()]));
        }
        if probe(failing, stats, &cand) {
            *m = cand;
            changed = true;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use specframe_ir::{parse_module, verify_module, BinOp};

    /// The predicate every test uses: "some function still contains a
    /// `div`" — standing in for a real failure trigger — *and* the module
    /// still verifies (a reduction that breaks structure is a different
    /// failure class, which a real client's predicate also rejects).
    fn contains_div(m: &Module) -> bool {
        verify_module(m).is_ok()
            && m.funcs.iter().any(|f| {
                f.blocks.iter().any(|b| {
                    b.insts
                        .iter()
                        .any(|i| matches!(i, Inst::Bin { op: BinOp::Div, .. }))
                })
            })
    }

    #[test]
    fn reduces_to_the_trigger() {
        // a loop, a helper call, dead arithmetic — and one div, the
        // "failure trigger" the reducer must preserve
        let src = r#"
func helper(a: i64) -> i64 {
  var x: i64
  var y: i64
entry:
  x = add a, 1
  y = mul x, 2
  ret y
}

func kern(n: i64) -> i64 {
  var i: i64
  var c: i64
  var t: i64
  var u: i64
  var q: i64
  var acc: i64
entry:
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  t = add i, 3
  u = call helper(t)
  q = div u, 2
  acc = add acc, q
  i = add i, 1
  jmp head
exit:
  ret acc
}
"#;
        let m = parse_module(src).unwrap();
        assert!(contains_div(&m), "input must fail");
        let initial = m.inst_count();
        let (red, stats) = reduce_module(&m, &mut contains_div);
        assert!(contains_div(&red), "reduced module must still fail");
        assert_eq!(stats.initial_insts, initial);
        assert_eq!(stats.final_insts, red.inst_count());
        assert!(stats.probes > 0);
        // everything but the div (and the structure keeping it alive)
        // must go: 13 instructions down to 1
        assert_eq!(red.inst_count(), 1, "{stats:?}");
        assert!(stats.shrink_percent() >= 80.0, "{stats:?}");
        // the uncalled helper must have been dropped
        assert_eq!(red.funcs.len(), 1);
        // the loop must have been straightened: no conditional branches
        assert!(red.funcs[0]
            .blocks
            .iter()
            .all(|b| !matches!(b.term, Terminator::Br { .. })));
    }

    #[test]
    fn keeps_called_functions_and_remaps_callees() {
        // the trigger lives in the *callee*: the caller chain must
        // survive, the unrelated function in between must not
        let src = r#"
func unrelated(a: i64) -> i64 {
  var x: i64
entry:
  x = mul a, 7
  ret x
}

func trigger(a: i64) -> i64 {
  var q: i64
entry:
  q = div a, 3
  ret q
}

func main(n: i64) -> i64 {
  var r: i64
entry:
  r = call trigger(n)
  ret r
}
"#;
        let m = parse_module(src).unwrap();
        let keep_call = |m: &Module| -> bool {
            verify_module(m).is_ok()
                && m.func_by_name("main").is_some_and(|main| {
                    m.funcs[main.index()].blocks.iter().any(|b| {
                        b.insts.iter().any(|i| {
                            matches!(i, Inst::Call { callee, .. }
                                 if m.funcs[callee.index()].name == "trigger")
                        })
                    })
                })
                && contains_div(m)
        };
        let mut pred = keep_call;
        let (red, _) = reduce_module(&m, &mut pred);
        assert!(keep_call(&red));
        assert_eq!(red.funcs.len(), 2, "unrelated must be dropped");
        // callee index was remapped when `unrelated` (index 0) went away
        let main = red.func_by_name("main").unwrap();
        assert!(red.funcs[main.index()].blocks.iter().any(|b| b
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Call { callee, .. } if callee.index() == 0))));
    }

    #[test]
    fn empty_failure_is_a_fixpoint() {
        // a predicate nothing satisfies: the reducer must return the
        // input unchanged (it only keeps candidates that still fail)
        let src = r#"
func f(a: i64) -> i64 {
  var x: i64
entry:
  x = add a, 1
  ret x
}
"#;
        let m = parse_module(src).unwrap();
        let (red, stats) = reduce_module(&m, &mut |_| false);
        assert_eq!(red.inst_count(), m.inst_count());
        assert_eq!(stats.final_insts, stats.initial_insts);
    }
}
