//! Linear-function test replacement (LFTR), the fourth kernel client.
//!
//! The paper lists LFTR among the SSAPRE optimization set (§4.1, after
//! Kennedy et al., CC '98): once strength reduction has materialized
//! `s ≡ i*c`, the loop-exit test `i <op> N` can be rewritten to
//! `s <op> N*c`, making the original induction variable dead in loops
//! that only used it for the multiplication and the test.
//!
//! LFTR is only tractable here because strength reduction and PRE share
//! the kernel's rename/version state: each [`SrTemp`] records which `s`
//! version corresponds to which `i` version (`v_phi` ↔ the header-φ
//! version, `v_step` ↔ the post-increment version), so the test rewrite
//! is a version-exact substitution, not a new dataflow analysis.
//!
//! Safety conditions, all checked per candidate:
//!
//! * the factor is positive (`c > 0`) — a negative factor would flip the
//!   comparison's direction;
//! * `N*c` does not overflow (`checked_mul`);
//! * the condition register feeds *only* the branch (the [`SpecClient`]
//!   kill query: any other use kills the rewrite);
//! * the recorded `s` version is still defined — cleanup between
//!   strength reduction and this pass may have deleted a dead reduction
//!   chain.

use crate::expr::OccVersions;
use crate::prekernel::{apply_edits, MotionEdit, SpecClient};
use crate::stats::OptStats;
use crate::strength::SrTemp;
use specframe_hssa::{HOperand, HStmt, HStmtKind, HTerm, HVarId, HVarKind, HssaFunc};
use specframe_ir::{BinOp, LoadSpec, Ty, VarId};

/// One replaceable loop-exit test: a branch-feeding comparison of the
/// recorded IV against a constant, with the version-matched `s` version
/// and the pre-multiplied bound.
struct LftrClient<'a> {
    sr: &'a SrTemp,
    /// The branch condition register (also the comparison's destination).
    cond: (VarId, u32),
    op: BinOp,
    /// The `s` version substituting for the tested `i` version.
    s_ver: u32,
    /// The pre-multiplied bound `N*c`.
    nc: i64,
    /// Whether the IV was the left operand of the comparison.
    iv_left: bool,
}

impl<'a> LftrClient<'a> {
    /// Recognizes `stmt` (the definition of `cond`) as a replaceable
    /// comparison of `sr`'s induction variable against a constant.
    fn recognize(sr: &'a SrTemp, cond: (VarId, u32), stmt: &HStmt) -> Option<Self> {
        let HStmtKind::Bin { op, a, b, .. } = &stmt.kind else {
            return None;
        };
        if !matches!(op, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge) {
            return None;
        }
        let (ver, n, iv_left) = match (a, b) {
            (HOperand::Reg(v, ver), HOperand::ConstI(n)) if *v == sr.iv_var => (*ver, *n, true),
            (HOperand::ConstI(n), HOperand::Reg(v, ver)) if *v == sr.iv_var => (*ver, *n, false),
            _ => return None,
        };
        let s_ver = if ver == sr.iv_phi_dest {
            sr.v_phi
        } else if ver == sr.iv_latch_ver {
            sr.v_step
        } else {
            return None;
        };
        let nc = n.checked_mul(sr.c)?;
        Some(LftrClient {
            sr,
            cond,
            op: *op,
            s_ver,
            nc,
            iv_left,
        })
    }
}

impl SpecClient for LftrClient<'_> {
    fn describe(&self) -> String {
        format!("lftr {:?} -> {:?}*{}", self.sr.iv_var, self.sr.s, self.sr.c)
    }

    /// The single occurrence is the comparison defining the condition.
    fn occurrence(&self, stmt: &HStmt) -> Option<OccVersions> {
        if stmt.def_reg() == Some(self.cond) {
            Some(OccVersions {
                regs: [self.s_ver].into_iter().collect(),
                mem: None,
            })
        } else {
            None
        }
    }

    /// Any use of the condition register outside its defining comparison
    /// kills the replacement: the rewritten comparison computes a scaled
    /// value, valid only as a branch predicate.
    fn kills(&self, stmt: &HStmt) -> bool {
        stmt.reg_uses().contains(&self.cond) && stmt.def_reg() != Some(self.cond)
    }

    fn tracked_regs(&self) -> &[VarId] {
        std::slice::from_ref(&self.sr.iv_var)
    }

    fn tracked_mem(&self) -> Option<HVarId> {
        None
    }

    fn is_load(&self) -> bool {
        false
    }

    fn control_speculatable(&self) -> bool {
        false
    }

    fn temp_ty(&self) -> Ty {
        Ty::I64
    }

    fn temp_name(&self, n: u64) -> String {
        format!("lftr{n}")
    }

    /// The replacement comparison `s <op> N*c`.
    fn materialize(
        &self,
        _hf: &HssaFunc,
        t: (VarId, u32),
        vers: &OccVersions,
        _spec: LoadSpec,
    ) -> HStmt {
        let s = HOperand::Reg(self.sr.s, vers.regs[0]);
        let n = HOperand::ConstI(self.nc);
        let (a, b) = if self.iv_left { (s, n) } else { (n, s) };
        HStmt::new(HStmtKind::Bin {
            dst: t,
            op: self.op,
            a,
            b,
        })
    }
}

/// Verify-each support: cleanup may legitimately delete a *whole*
/// reduction chain whose value turned out dead (that is why
/// [`sr_ver_defined`] guards every LFTR application), but a chain deleted
/// by half — the header φ version surviving without its step version, or
/// vice versa — means a pass corrupted the `s ≡ i*c` version state LFTR
/// relies on.
///
/// # Errors
/// Returns a description of the first dangling chain.
pub(crate) fn verify_sr_temps(hf: &HssaFunc, temps: &[SrTemp]) -> Result<(), String> {
    for sr in temps {
        let phi = sr_ver_defined(hf, sr.s, sr.v_phi);
        let step = sr_ver_defined(hf, sr.s, sr.v_step);
        if phi != step {
            let (live, live_ver, dead_ver) = if phi {
                ("phi", sr.v_phi, sr.v_step)
            } else {
                ("step", sr.v_step, sr.v_phi)
            };
            return Err(format!(
                "dangling SrTemp chain for {}: {live} version {live_ver} is still \
                 defined but version {dead_ver} is gone",
                sr.s
            ));
        }
    }
    Ok(())
}

/// Whether version `ver` of register `s` still has a definition (a φ or
/// a statement). Cleanup between strength reduction and LFTR may delete
/// a reduction chain whose value turned out dead.
fn sr_ver_defined(hf: &HssaFunc, s: VarId, ver: u32) -> bool {
    let Some(hv) = hf.catalog.get(HVarKind::Reg(s)) else {
        return false;
    };
    hf.blocks.iter().any(|blk| {
        blk.phis.iter().any(|p| p.var == hv && p.dest == ver)
            || blk.stmts.iter().any(|st| st.def_reg() == Some((s, ver)))
    })
}

/// Runs LFTR over the strength-reduction temporaries recorded by
/// [`crate::strength::strength_reduce_hssa`], in recording order (so with
/// several factors over one IV the first recorded factor wins — later
/// temps no longer see a comparison of the IV). Returns the number of
/// loop-exit tests replaced.
pub fn lftr_hssa(hf: &mut HssaFunc, temps: &[SrTemp], stats: &mut OptStats) -> usize {
    let mut applied = 0;
    for sr in temps {
        // a negative factor would flip the comparison's direction
        if sr.c <= 0 {
            continue;
        }
        for &b in &sr.body {
            // the block must end in a branch whose condition is a
            // comparison of i defined in the same block
            let Some(HTerm::Br {
                cond: HOperand::Reg(cv, cver),
                ..
            }) = hf.blocks[b.index()].term.clone()
            else {
                continue;
            };
            let Some(ci) = hf.blocks[b.index()]
                .stmts
                .iter()
                .position(|st| st.def_reg() == Some((cv, cver)))
            else {
                continue;
            };
            let Some(client) =
                LftrClient::recognize(sr, (cv, cver), &hf.blocks[b.index()].stmts[ci])
            else {
                continue;
            };
            // kill scan over the whole function: the condition register
            // must feed only the branch
            if hf
                .blocks
                .iter()
                .any(|blk| blk.stmts.iter().any(|st| client.kills(st)))
            {
                continue;
            }
            if !sr_ver_defined(hf, sr.s, client.s_ver) {
                continue;
            }
            let vers = client
                .occurrence(&hf.blocks[b.index()].stmts[ci])
                .expect("recognized comparison is the occurrence");
            let with = client.materialize(hf, (cv, cver), &vers, LoadSpec::Normal);
            apply_edits(
                hf,
                vec![MotionEdit::Replace {
                    block: b,
                    stmt: ci,
                    with,
                }],
            );
            stats.lftr_applied += 1;
            applied += 1;
        }
    }
    applied
}
