//! Speculative SSAPRE clients: expression PRE and register promotion.
//!
//! The six-step engine itself lives in [`crate::prekernel`]; this module
//! hosts the *expression* client of that kernel — the lexical candidate
//! families [`ExprKey`] describes:
//!
//! * arithmetic expressions (address computations among them);
//! * direct loads (scalar promotion);
//! * indirect loads (speculative register promotion, §5 of the paper).
//!
//! [`ssapre_function`] runs the kernel over every candidate in the phase
//! order the cascading rewrites need (arithmetic first so address
//! computations common up, then direct loads whose collapsed temporaries
//! may become indirect bases, then indirect loads). The client's kill
//! query routes every χ weak-update decision through the driver's single
//! [`Likeliness`](specframe_hssa::Likeliness) oracle.
//!
//! The PRE temporary `t` is *collapsed* at lowering (all SSA versions map
//! to one register): that is what lets the ALAT key advanced loads and
//! check loads by the same register, and what makes a failed check's
//! reloaded value visible to every later reload.

use crate::expr::{collect_candidates, kills, occurrence_versions, ExprKey, OccVersions};
use crate::prekernel::{run_kernel, SpecClient};
use crate::stats::OptStats;
use specframe_analysis::{DomFrontiers, DomTree, FuncAnalyses};
use specframe_hssa::{
    ChiRefine, HOperand, HStmt, HStmtKind, HVarId, HssaFunc, MemBase, RefineStmt,
};
use specframe_ir::FxHashSet;
use specframe_ir::{Function, LoadSpec, Ty, VarId};

// The engine moved to `prekernel`; keep the public surface stable.
pub use crate::prekernel::{
    cleanup_hssa, copy_propagate, eliminate_dead_copies, eliminate_dead_phis,
    propagate_collapsed_local, SpecPolicy,
};

/// Runs speculative SSAPRE for every candidate expression of `hf`.
/// Returns the number of expressions that were transformed.
///
/// `f_base` is the function the SSA form was built from (pre-SSAPRE view;
/// SSAPRE itself never mutates it) and `fa` its cached CFG analyses.
pub fn ssapre_function(
    f_base: &specframe_ir::Function,
    hf: &mut HssaFunc,
    policy: &SpecPolicy<'_>,
    stats: &mut OptStats,
    fa: &FuncAnalyses,
) -> usize {
    let (dt, df) = (&fa.dt, &fa.df);
    let mut changed = 0;
    // phase 1: arithmetic expressions (address computations among them)
    let candidates = collect_candidates(hf);
    stats.candidates += candidates.len() as u64;
    for key in candidates.iter().filter(|k| !k.is_load()) {
        if ssapre_expression(f_base, hf, key, dt, df, policy, stats) {
            changed += 1;
        }
    }
    // phase 2: copy propagation unifies the base registers of loads whose
    // address arithmetic phase 1 just commoned — this restores the "same
    // syntax tree" identity the paper's lexical expression matching relies
    // on (a three-address IR would otherwise hide it behind copies)
    copy_propagate(hf);
    // phase 3a: direct loads (scalar promotion) first — their collapsed
    // temporaries may become the base registers of indirect candidates
    let candidates = collect_candidates(hf);
    for key in candidates
        .iter()
        .filter(|k| matches!(k, ExprKey::DirectLoad(..)))
    {
        if ssapre_expression(f_base, hf, key, dt, df, policy, stats) {
            changed += 1;
        }
    }
    // phase 3b: forward the promoted pointers into dependent load bases so
    // cascaded speculation (Appendix B's chk.a scenario) can see them
    copy_propagate(hf);
    propagate_collapsed_local(hf);
    // phase 3c: indirect loads, re-collected after the rewrite
    let candidates = collect_candidates(hf);
    for key in candidates
        .iter()
        .filter(|k| matches!(k, ExprKey::IndirectLoad { .. }))
    {
        if ssapre_expression(f_base, hf, key, dt, df, policy, stats) {
            changed += 1;
        }
    }
    // phase 4: clean up — propagate the copies the transformations left
    // behind and drop the dead ones, so a reload costs its check and
    // nothing more
    cleanup_hssa(hf);
    changed
}

/// Runs the six kernel steps for one expression. Returns `true` if the
/// program changed.
#[allow(clippy::too_many_arguments)]
pub fn ssapre_expression(
    f_base: &Function,
    hf: &mut HssaFunc,
    key: &ExprKey,
    dt: &DomTree,
    df: &DomFrontiers,
    policy: &SpecPolicy<'_>,
    stats: &mut OptStats,
) -> bool {
    let client = ExprClient::new(hf, key, policy, dt);
    run_kernel(f_base, hf, &client, dt, df, policy, stats)
}

// ---------------------------------------------------------------------------
// the expression client
// ---------------------------------------------------------------------------

/// The kernel client for one lexical expression candidate.
struct ExprClient<'a> {
    key: &'a ExprKey,
    policy: &'a SpecPolicy<'a>,
    tracked_regs: Vec<VarId>,
    mem_var: Option<HVarId>,
    /// Cascaded speculation (Appendix B's chk.a case): when an indirect
    /// load's base register is itself a collapsed promotion temporary, its
    /// SSA versions all denote "the current value of the promoted pointer"
    /// and a new version (a check or save of the pointer) is an *injuring*
    /// definition, not a kill: the dependent reload re-validates through
    /// its own ALAT check against the current address, so matching across
    /// those versions is recoverable.
    base_collapsed: bool,
    /// Union of profiled LOCs across the candidate's occurrence sites
    /// (for the per-expression χ refinement in profile mode).
    expr_locs: FxHashSet<specframe_alias::Loc>,
}

impl<'a> ExprClient<'a> {
    fn new(hf: &HssaFunc, key: &'a ExprKey, policy: &'a SpecPolicy<'a>, dt: &DomTree) -> Self {
        let base_collapsed = match key {
            ExprKey::IndirectLoad { base, .. } => hf.collapsed_vars.contains(base),
            _ => false,
        };
        let expr_locs: FxHashSet<specframe_alias::Loc> = match policy.oracle.profile() {
            Some(p) => {
                let mut locs = FxHashSet::default();
                for b in hf.block_ids() {
                    if !dt.is_reachable(b) {
                        continue;
                    }
                    for stmt in &hf.blocks[b.index()].stmts {
                        if occurrence_versions(stmt, key).is_none() {
                            continue;
                        }
                        if let HStmtKind::Load { site, .. } = &stmt.kind {
                            if let Some(s) = p.locs(*site) {
                                locs.extend(s.iter().copied());
                            }
                        }
                    }
                }
                locs
            }
            None => FxHashSet::default(),
        };
        ExprClient {
            key,
            policy,
            tracked_regs: key.tracked_regs(),
            mem_var: key.tracked_mem(hf),
            base_collapsed,
            expr_locs,
        }
    }
}

impl SpecClient for ExprClient<'_> {
    fn describe(&self) -> String {
        format!("{:?}", self.key)
    }

    fn occurrence(&self, stmt: &HStmt) -> Option<OccVersions> {
        occurrence_versions(stmt, self.key)
    }

    fn kills(&self, stmt: &HStmt) -> bool {
        kills_with_policy(
            stmt,
            self.key,
            self.mem_var,
            self.policy,
            &self.expr_locs,
            self.base_collapsed,
        )
    }

    fn tracked_regs(&self) -> &[VarId] {
        &self.tracked_regs
    }

    fn tracked_mem(&self) -> Option<HVarId> {
        self.mem_var
    }

    fn base_collapsed(&self) -> bool {
        self.base_collapsed
    }

    fn is_load(&self) -> bool {
        self.key.is_load()
    }

    fn control_speculatable(&self) -> bool {
        self.key.control_speculatable()
    }

    fn temp_ty(&self) -> Ty {
        match self.key {
            ExprKey::Bin(op, _, _) => op.result_ty(),
            ExprKey::DirectLoad(_, ty) => *ty,
            ExprKey::IndirectLoad { ty, .. } => *ty,
        }
    }

    fn temp_name(&self, n: u64) -> String {
        format!("pre{n}")
    }

    fn materialize(
        &self,
        hf: &HssaFunc,
        t: (VarId, u32),
        vers: &OccVersions,
        spec: LoadSpec,
    ) -> HStmt {
        materialize(self.key, hf, t, vers, self.mem_var, spec)
    }
}

// ---------------------------------------------------------------------------
// the client's kill query (the speculative-weak-update decision)
// ---------------------------------------------------------------------------

/// The killing statement's shape as the oracle's plain-data view.
fn refine_stmt(stmt: &HStmt) -> RefineStmt {
    match &stmt.kind {
        HStmtKind::Store {
            site, base, offset, ..
        } => RefineStmt::Store {
            site: *site,
            syntax: match base {
                HOperand::Reg(sb, _) => Some((*sb, *offset)),
                _ => None,
            },
        },
        HStmtKind::Call { site, .. } => RefineStmt::Call { site: *site },
        _ => RefineStmt::Other,
    }
}

fn kills_with_policy(
    stmt: &HStmt,
    key: &ExprKey,
    mem_var: Option<HVarId>,
    policy: &SpecPolicy<'_>,
    expr_locs: &FxHashSet<specframe_alias::Loc>,
    base_collapsed: bool,
) -> bool {
    if !policy.data() {
        return kills(stmt, key, mem_var, false, false);
    }
    // a redefinition of a collapsed base register is an injuring def, not a
    // kill: dependent reloads re-validate through their own check
    if base_collapsed {
        if let Some((v, _)) = stmt.def_reg() {
            if key.tracked_regs().contains(&v)
                && !kills_mem_part(stmt, key, mem_var, policy, expr_locs)
            {
                return false;
            }
        }
    }
    if kills_reg_or_strong(stmt, key, mem_var) {
        return true;
    }
    let Some(mv) = mem_var else { return false };
    let Some(chi) = stmt.chi_of(mv) else {
        return false;
    };
    policy.oracle.chi_kills(&ChiRefine {
        chi_likely: chi.likely,
        stmt: refine_stmt(stmt),
        cand_direct: matches!(key, ExprKey::DirectLoad(..)),
        cand_syntax: key.syntax(),
        cand_ty: key.load_ty(),
        expr_locs,
    })
}

/// The memory component of the kill decision (strong def or effective chi
/// kill of the tracked memory variable), ignoring register redefinitions.
fn kills_mem_part(
    stmt: &HStmt,
    key: &ExprKey,
    mem_var: Option<HVarId>,
    policy: &SpecPolicy<'_>,
    expr_locs: &FxHashSet<specframe_alias::Loc>,
) -> bool {
    let Some(mv) = mem_var else { return false };
    if let HStmtKind::Store {
        dvar_def: Some((id, _)),
        ..
    } = &stmt.kind
    {
        if *id == mv {
            return true;
        }
    }
    let Some(chi) = stmt.chi_of(mv) else {
        return false;
    };
    policy.oracle.chi_kills(&ChiRefine {
        chi_likely: chi.likely,
        stmt: refine_stmt(stmt),
        cand_direct: matches!(key, ExprKey::DirectLoad(..)),
        cand_syntax: key.syntax(),
        cand_ty: key.load_ty(),
        expr_locs,
    })
}

fn kills_reg_or_strong(stmt: &HStmt, key: &ExprKey, mem_var: Option<HVarId>) -> bool {
    if let Some((v, _)) = stmt.def_reg() {
        if key.tracked_regs().contains(&v) {
            return true;
        }
    }
    if let (
        Some(mv),
        HStmtKind::Store {
            dvar_def: Some((id, _)),
            ..
        },
    ) = (mem_var, &stmt.kind)
    {
        if *id == mv {
            return true;
        }
    }
    false
}

/// Builds the inserted computation of `key` writing `t`, using the operand
/// versions recorded at the predecessor end.
fn materialize(
    key: &ExprKey,
    hf: &HssaFunc,
    t: (VarId, u32),
    vers: &OccVersions,
    mem_var: Option<HVarId>,
    spec: LoadSpec,
) -> HStmt {
    let _ = hf;
    match key {
        ExprKey::Bin(op, a, b) => {
            let mut it = vers.regs.iter();
            let mut conv = |l: &crate::expr::LexOperand| -> HOperand {
                match l {
                    crate::expr::LexOperand::Reg(v) => HOperand::Reg(*v, *it.next().unwrap()),
                    crate::expr::LexOperand::ConstI(c) => HOperand::ConstI(*c),
                    crate::expr::LexOperand::ConstF(c) => HOperand::ConstF(f64::from_bits(*c)),
                    crate::expr::LexOperand::GlobalAddr(g) => HOperand::GlobalAddr(*g),
                    crate::expr::LexOperand::SlotAddr(s) => HOperand::SlotAddr(*s),
                }
            };
            // note: tracked_regs dedups, so a+a uses one version for both
            let a_op = conv(a);
            let b_op = if a == b { a_op } else { conv(b) };
            HStmt::new(HStmtKind::Bin {
                dst: t,
                op: *op,
                a: a_op,
                b: b_op,
            })
        }
        ExprKey::DirectLoad(mv, ty) => {
            let base = match mv.base {
                MemBase::Global(g) => HOperand::GlobalAddr(g),
                MemBase::Slot(s) => HOperand::SlotAddr(s),
            };
            let mut stmt = HStmt::new(HStmtKind::Load {
                dst: t,
                base,
                offset: mv.off,
                ty: *ty,
                spec,
                site: specframe_hssa::stmt::FRESH_SITE,
                dvar: mem_var.map(|id| (id, vers.mem.unwrap_or(0))),
            });
            stmt.mu.clear();
            stmt
        }
        ExprKey::IndirectLoad {
            base,
            off,
            ty,
            vvar,
            ..
        } => {
            let mut stmt = HStmt::new(HStmtKind::Load {
                dst: t,
                base: HOperand::Reg(*base, vers.regs[0]),
                offset: *off,
                ty: *ty,
                spec,
                site: specframe_hssa::stmt::FRESH_SITE,
                dvar: None,
            });
            stmt.mu.push(specframe_hssa::MuOp {
                var: *vvar,
                ver: vers.mem.unwrap_or(0),
                likely: true,
            });
            stmt
        }
    }
}
