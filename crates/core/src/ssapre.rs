//! The speculative SSAPRE engine (§4 and Appendices A/B of the paper).
//!
//! One run of [`ssapre_expression`] performs the six SSAPRE steps for a
//! single lexically identified expression `E` over a function in
//! speculative SSA form:
//!
//! 1. **Φ-Insertion** — Φs for the hypothetical temporary `h` are placed at
//!    the iterated dominance frontier of every real occurrence and at every
//!    φ of a variable of `E`. Because the operand-variable φ set includes
//!    φs reached *through speculative weak updates*, this is the superset
//!    the paper's Appendix A computes by walking unflagged χs (an
//!    expression killed only by weak updates is *speculatively
//!    anticipated*, Figure 6).
//! 2. **Rename** — a preorder dominator-tree walk assigns h-versions. The
//!    paper's extension: when operand versions differ *only through
//!    speculative weak updates*, the occurrence receives the same h-version
//!    and a speculation flag (Figure 7).
//! 3. **DownSafety** — block-lexical backward anticipation; with data
//!    speculation, weak updates do not kill. Control speculation treats a
//!    profitable non-down-safe Φ as down-safe (edge-profile gated).
//! 4. **WillBeAvailable** — `can_be_avail` / `later` propagation over the
//!    Φ graph, exactly as in SSAPRE.
//! 5. **Finalize** — availability walk deciding saves, reloads and
//!    insertions.
//! 6. **CodeMotion** — rewrites the HSSA: saves become `t = E; x = t`,
//!    reloads become `x = t`, *speculative* reloads become check loads
//!    (`ld.c`, Appendix B), control-speculative insertions become `ld.s`
//!    with NaT-check reloads, and every load feeding a check is flagged as
//!    an advanced load (`ld.a`).
//!
//! The PRE temporary `t` is *collapsed* at lowering (all SSA versions map
//! to one register): that is what lets the ALAT key advanced loads and
//! check loads by the same register, and what makes a failed check's
//! reloaded value visible to every later reload.

use crate::expr::{collect_candidates, kills, occurrence_versions, ExprKey, OccVersions};
use crate::stats::OptStats;
use specframe_analysis::{iterated_df, DomFrontiers, DomTree, EdgeProfile, FuncAnalyses};
use specframe_hssa::{
    HOperand, HStmt, HStmtKind, HVarId, HVarKind, HssaFunc, MemBase, Phi as HPhi,
};
use specframe_ir::{BlockId, CheckKind, FuncId, Function, LoadSpec, Ty, VarId};
use specframe_profile::AliasProfile;
use std::collections::{HashMap, HashSet};

/// Speculation policy given to the engine.
#[derive(Clone, Copy, Debug)]
pub struct SpecPolicy<'a> {
    /// Data speculation enabled (weak updates skippable).
    pub data: bool,
    /// Heuristic mode: apply the §3.2.2 same-syntax refinement.
    pub heuristic: bool,
    /// Alias profile for per-expression χ refinement, when in profile mode.
    pub profile: Option<&'a AliasProfile>,
    /// Control speculation: edge profile + owning function.
    pub control: Option<(&'a EdgeProfile, FuncId)>,
}

impl SpecPolicy<'_> {
    /// Policy with all speculation off (the O3 baseline).
    pub fn none() -> SpecPolicy<'static> {
        SpecPolicy {
            data: false,
            heuristic: false,
            profile: None,
            control: None,
        }
    }
}

// ---------------------------------------------------------------------------
// occurrence bookkeeping
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct RealOcc {
    block: BlockId,
    stmt: usize,
    vers: OccVersions,
    class: u32,
    /// Matched its class only through speculative weak updates.
    spec: bool,
    /// Filled by Finalize.
    role: Role,
    /// t-version, when this occurrence is a class def (save).
    t_ver: u32,
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum Role {
    /// Computes E itself (maybe saving into t).
    Compute { save: bool },
    /// Reloads from t.
    Reload { from: u32, check: bool },
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum OpndDef {
    Bottom,
    Real(usize),
    Phi(usize),
}

#[derive(Clone, Debug)]
struct PhiOpnd {
    def: OpndDef,
    has_real_use: bool,
    spec: bool,
    /// Variable versions at the end of the predecessor (for insertion).
    vers_at_pred: OccVersions,
    /// t-version carried along this edge (filled by Finalize).
    t_ver: u32,
    /// Insertion performed on this edge.
    inserted: bool,
}

#[derive(Clone, Debug)]
struct PhiE {
    block: BlockId,
    class: u32,
    opnds: Vec<PhiOpnd>,
    down_safe: bool,
    /// Made "down-safe" by control speculation.
    cspec: bool,
    can_be_avail: bool,
    later: bool,
    will_be_avail: bool,
    /// Some incoming value is only speculatively equal.
    tainted: bool,
    t_ver: u32,
}

/// Where a memory-variable version was defined (for weak-chain walking).
#[derive(Clone, Copy, Debug)]
enum MemDef {
    Entry,
    Phi(#[allow(dead_code)] BlockId),
    /// Strong direct def (store to the variable itself).
    Strong,
    /// χ at (block, stmt); `old` is the version merged in.
    Chi {
        block: BlockId,
        stmt: usize,
        old: u32,
    },
}

// ---------------------------------------------------------------------------
// engine
// ---------------------------------------------------------------------------

/// Runs speculative SSAPRE for every candidate expression of `hf`.
/// Returns the number of expressions that were transformed.
///
/// `f_base` is the function the SSA form was built from (pre-SSAPRE view;
/// SSAPRE itself never mutates it) and `fa` its cached CFG analyses.
pub fn ssapre_function(
    f_base: &specframe_ir::Function,
    hf: &mut HssaFunc,
    policy: &SpecPolicy<'_>,
    stats: &mut OptStats,
    fa: &FuncAnalyses,
) -> usize {
    let (dt, df) = (&fa.dt, &fa.df);
    let mut changed = 0;
    // phase 1: arithmetic expressions (address computations among them)
    let candidates = collect_candidates(hf);
    stats.candidates += candidates.len() as u64;
    for key in candidates.iter().filter(|k| !k.is_load()) {
        if ssapre_expression(f_base, hf, key, dt, df, policy, stats) {
            changed += 1;
        }
    }
    // phase 2: copy propagation unifies the base registers of loads whose
    // address arithmetic phase 1 just commoned — this restores the "same
    // syntax tree" identity the paper's lexical expression matching relies
    // on (a three-address IR would otherwise hide it behind copies)
    copy_propagate(hf);
    // phase 3a: direct loads (scalar promotion) first — their collapsed
    // temporaries may become the base registers of indirect candidates
    let candidates = collect_candidates(hf);
    for key in candidates
        .iter()
        .filter(|k| matches!(k, ExprKey::DirectLoad(..)))
    {
        if ssapre_expression(f_base, hf, key, dt, df, policy, stats) {
            changed += 1;
        }
    }
    // phase 3b: forward the promoted pointers into dependent load bases so
    // cascaded speculation (Appendix B's chk.a scenario) can see them
    copy_propagate(hf);
    propagate_collapsed_local(hf);
    // phase 3c: indirect loads, re-collected after the rewrite
    let candidates = collect_candidates(hf);
    for key in candidates
        .iter()
        .filter(|k| matches!(k, ExprKey::IndirectLoad { .. }))
    {
        if ssapre_expression(f_base, hf, key, dt, df, policy, stats) {
            changed += 1;
        }
    }
    // phase 4: clean up — propagate the copies the transformations left
    // behind and drop the dead ones, so a reload costs its check and
    // nothing more
    cleanup_hssa(hf);
    changed
}

/// Post-SSAPRE cleanup: copy propagation, block-local forwarding of
/// collapsed-temporary copies, dead-φ pruning and dead-copy elimination,
/// iterated to a fixpoint. Without the φ pruning, non-pruned SSA would
/// lower into a φ-copy per live-range per loop iteration and drown the
/// cycle savings the promotion just bought.
pub fn cleanup_hssa(hf: &mut HssaFunc) {
    for _ in 0..4 {
        copy_propagate(hf);
        propagate_collapsed_local(hf);
        let a = eliminate_dead_phis(hf);
        let b = eliminate_dead_copies(hf);
        if a == 0 && b == 0 {
            break;
        }
    }
}

/// Removes φs over *register* variables whose result version is never
/// used by any statement, terminator, or live φ. Memory/virtual-variable
/// φs are ghosts (no lowering cost) and are kept. Returns the number of
/// φs removed.
pub fn eliminate_dead_phis(hf: &mut HssaFunc) -> usize {
    // seed: versions used by non-phi consumers
    let mut needed: HashSet<(VarId, u32)> = HashSet::new();
    for b in hf.block_ids() {
        let blk = &hf.blocks[b.index()];
        for stmt in &blk.stmts {
            for u in stmt.reg_uses() {
                needed.insert(u);
            }
        }
        match &blk.term {
            Some(specframe_hssa::HTerm::Br {
                cond: HOperand::Reg(v, ver),
                ..
            }) => {
                needed.insert((*v, *ver));
            }
            Some(specframe_hssa::HTerm::Ret(Some(HOperand::Reg(v, ver)))) => {
                needed.insert((*v, *ver));
            }
            _ => {}
        }
    }
    // propagate: a phi is live iff its dest is needed; live phis need their
    // arguments — dead phis keep nothing alive (this is what prunes the
    // circular self-sustaining phi webs of non-pruned SSA)
    let mut changed = true;
    while changed {
        changed = false;
        for b in hf.block_ids() {
            for phi in &hf.blocks[b.index()].phis {
                if let HVarKind::Reg(v) = hf.catalog.kind(phi.var) {
                    if needed.contains(&(v, phi.dest)) {
                        for &a in &phi.args {
                            changed |= needed.insert((v, a));
                        }
                    }
                }
            }
        }
    }
    let mut removed = 0usize;
    for b in hf.block_ids() {
        let catalog = hf.catalog.clone();
        let blk = &mut hf.blocks[b.index()];
        let before = blk.phis.len();
        blk.phis.retain(|phi| match catalog.kind(phi.var) {
            HVarKind::Reg(v) => needed.contains(&(v, phi.dest)),
            _ => true,
        });
        removed += before - blk.phis.len();
    }
    removed
}

/// Block-local propagation of copies *from* collapsed registers.
///
/// A copy `x = t` where `t` is a collapsed promotion temporary cannot be
/// propagated globally (another check may refresh `t` in between), but it
/// *is* safe to forward within the same block up to the next definition of
/// `t` — which removes the one-cycle copy from almost every reload (the
/// value is consumed right where it was reloaded).
pub fn propagate_collapsed_local(hf: &mut HssaFunc) {
    let collapsed: HashSet<VarId> = hf.collapsed_vars.iter().copied().collect();
    if collapsed.is_empty() {
        return;
    }
    for b in 0..hf.blocks.len() {
        let mut local: HashMap<(VarId, u32), (VarId, u32)> = HashMap::new();
        let blk = &mut hf.blocks[b];
        for stmt in &mut blk.stmts {
            let rewrite = |o: &mut HOperand, local: &HashMap<(VarId, u32), (VarId, u32)>| {
                if let HOperand::Reg(v, ver) = o {
                    if let Some(&(tv, tver)) = local.get(&(*v, *ver)) {
                        *o = HOperand::Reg(tv, tver);
                    }
                }
            };
            match &mut stmt.kind {
                HStmtKind::Bin { a, b, .. } => {
                    rewrite(a, &local);
                    rewrite(b, &local);
                }
                HStmtKind::Un { a, .. } => rewrite(a, &local),
                HStmtKind::Copy { src, .. } => rewrite(src, &local),
                HStmtKind::Load { base, .. } | HStmtKind::CheckLoad { base, .. } => {
                    rewrite(base, &local)
                }
                HStmtKind::Store { base, val, .. } => {
                    rewrite(base, &local);
                    rewrite(val, &local);
                }
                HStmtKind::Call { args, .. } => {
                    for a in args {
                        rewrite(a, &local);
                    }
                }
                HStmtKind::Alloc { words, .. } => rewrite(words, &local),
            }
            // a new definition of a collapsed register invalidates forwards
            if let Some((dv, _)) = stmt.def_reg() {
                if collapsed.contains(&dv) {
                    local.retain(|_, &mut (s, _)| s != dv);
                }
            }
            if let HStmtKind::Copy {
                dst,
                src: HOperand::Reg(sv, sver),
            } = &stmt.kind
            {
                if collapsed.contains(sv) && !collapsed.contains(&dst.0) {
                    local.insert(*dst, (*sv, *sver));
                }
            }
        }
        if let Some(term) = &mut blk.term {
            match term {
                specframe_hssa::HTerm::Br { cond, .. } => {
                    if let HOperand::Reg(v, ver) = cond {
                        if let Some(&(tv, tver)) = local.get(&(*v, *ver)) {
                            *cond = HOperand::Reg(tv, tver);
                        }
                    }
                }
                specframe_hssa::HTerm::Ret(Some(HOperand::Reg(v, ver))) => {
                    if let Some(&(tv, tver)) = local.get(&(*v, *ver)) {
                        *term = specframe_hssa::HTerm::Ret(Some(HOperand::Reg(tv, tver)));
                    }
                }
                _ => {}
            }
        }
    }
}

/// Removes `x = y` statements whose destination version is never used
/// (by any statement operand, terminator, or φ argument). Iterates to a
/// fixpoint since copies can feed only other dead copies.
pub fn eliminate_dead_copies(hf: &mut HssaFunc) -> usize {
    let mut total = 0usize;
    loop {
        let mut used: HashSet<(VarId, u32)> = HashSet::new();
        for b in hf.block_ids() {
            let blk = &hf.blocks[b.index()];
            for phi in &blk.phis {
                if let HVarKind::Reg(v) = hf.catalog.kind(phi.var) {
                    for &a in &phi.args {
                        used.insert((v, a));
                    }
                }
            }
            for stmt in &blk.stmts {
                for u in stmt.reg_uses() {
                    used.insert(u);
                }
            }
            match &blk.term {
                Some(specframe_hssa::HTerm::Br {
                    cond: HOperand::Reg(v, ver),
                    ..
                }) => {
                    used.insert((*v, *ver));
                }
                Some(specframe_hssa::HTerm::Ret(Some(HOperand::Reg(v, ver)))) => {
                    used.insert((*v, *ver));
                }
                _ => {}
            }
        }
        let mut removed = 0usize;
        for b in hf.block_ids() {
            let blk = &mut hf.blocks[b.index()];
            let before = blk.stmts.len();
            blk.stmts.retain(|stmt| match &stmt.kind {
                HStmtKind::Copy { dst, .. } => used.contains(dst),
                _ => true,
            });
            removed += before - blk.stmts.len();
        }
        total += removed;
        if removed == 0 {
            return total;
        }
    }
}

/// SSA copy propagation: rewrites every use of a register version defined
/// by `x = y` to use `y` directly. Versions of *collapsed* registers (the
/// load-promotion temporaries) are never propagated: their versions all
/// alias one machine register whose content changes at every check, so a
/// snapshot copy must stay a copy.
pub fn copy_propagate(hf: &mut HssaFunc) {
    let collapsed: HashSet<VarId> = hf.collapsed_vars.iter().copied().collect();
    let mut map: HashMap<(VarId, u32), HOperand> = HashMap::new();
    for b in hf.block_ids() {
        for stmt in &hf.blocks[b.index()].stmts {
            if let HStmtKind::Copy { dst, src } = &stmt.kind {
                let ok = match src {
                    HOperand::Reg(v, _) => !collapsed.contains(v),
                    _ => true,
                };
                if ok && !collapsed.contains(&dst.0) {
                    map.insert(*dst, *src);
                }
            }
        }
    }
    let resolve = |mut o: HOperand| -> HOperand {
        for _ in 0..64 {
            match o {
                HOperand::Reg(v, ver) => match map.get(&(v, ver)) {
                    Some(&next) => o = next,
                    None => break,
                },
                _ => break,
            }
        }
        o
    };
    for b in 0..hf.blocks.len() {
        for stmt in &mut hf.blocks[b].stmts {
            match &mut stmt.kind {
                HStmtKind::Bin { a, b, .. } => {
                    *a = resolve(*a);
                    *b = resolve(*b);
                }
                HStmtKind::Un { a, .. } => *a = resolve(*a),
                HStmtKind::Copy { src, .. } => *src = resolve(*src),
                HStmtKind::Load { base, .. } | HStmtKind::CheckLoad { base, .. } => {
                    *base = resolve(*base)
                }
                HStmtKind::Store { base, val, .. } => {
                    *base = resolve(*base);
                    *val = resolve(*val);
                }
                HStmtKind::Call { args, .. } => {
                    for a in args {
                        *a = resolve(*a);
                    }
                }
                HStmtKind::Alloc { words, .. } => *words = resolve(*words),
            }
        }
        if let Some(term) = &mut hf.blocks[b].term {
            match term {
                specframe_hssa::HTerm::Br { cond, .. } => *cond = resolve(*cond),
                specframe_hssa::HTerm::Ret(Some(v)) => *v = resolve(*v),
                _ => {}
            }
        }
    }
}

/// Runs the six steps for one expression. Returns `true` if the program
/// changed.
#[allow(clippy::too_many_arguments)]
pub fn ssapre_expression(
    f_base: &Function,
    hf: &mut HssaFunc,
    key: &ExprKey,
    dt: &DomTree,
    df: &DomFrontiers,
    policy: &SpecPolicy<'_>,
    stats: &mut OptStats,
) -> bool {
    let debug = std::env::var_os("SPECFRAME_DEBUG_SSAPRE").is_some();
    let mem_var = key.tracked_mem(hf);
    let tracked_regs = key.tracked_regs();
    // Cascaded speculation (Appendix B's chk.a case): when an indirect
    // load's base register is itself a collapsed promotion temporary, its
    // SSA versions all denote "the current value of the promoted pointer"
    // and a new version (a check or save of the pointer) is an *injuring*
    // definition, not a kill: the dependent reload re-validates through its
    // own ALAT check against the current address, so matching across those
    // versions is recoverable.
    let base_collapsed = match key {
        ExprKey::IndirectLoad { base, .. } => hf.collapsed_vars.contains(base),
        _ => false,
    };

    // ---- scan: real occurrences + def tables -----------------------------
    let mut occs: Vec<RealOcc> = Vec::new();
    for b in hf.block_ids() {
        if !dt.is_reachable(b) {
            continue;
        }
        for (si, stmt) in hf.blocks[b.index()].stmts.iter().enumerate() {
            if let Some(vers) = occurrence_versions(stmt, key) {
                occs.push(RealOcc {
                    block: b,
                    stmt: si,
                    vers,
                    class: u32::MAX,
                    spec: false,
                    role: Role::Compute { save: false },
                    t_ver: u32::MAX,
                });
            }
        }
    }
    if occs.is_empty() {
        return false;
    }

    // union of profiled LOCs across E's occurrence sites (for the
    // per-expression χ refinement in profile mode)
    let expr_locs: HashSet<specframe_alias::Loc> = match policy.profile {
        Some(p) => occs
            .iter()
            .filter_map(|o| match &hf.blocks[o.block.index()].stmts[o.stmt].kind {
                HStmtKind::Load { site, .. } => p.locs(*site),
                _ => None,
            })
            .flat_map(|s| s.iter().copied())
            .collect(),
        None => HashSet::new(),
    };

    // memory-variable def table: (version) -> MemDef
    let mut mem_defs: HashMap<u32, MemDef> = HashMap::new();
    if let Some(mv) = mem_var {
        mem_defs.insert(0, MemDef::Entry);
        for b in hf.block_ids() {
            for phi in &hf.blocks[b.index()].phis {
                if phi.var == mv {
                    mem_defs.insert(phi.dest, MemDef::Phi(b));
                }
            }
            for (si, stmt) in hf.blocks[b.index()].stmts.iter().enumerate() {
                if let HStmtKind::Store {
                    dvar_def: Some((id, ver)),
                    ..
                } = &stmt.kind
                {
                    if *id == mv {
                        mem_defs.insert(*ver, MemDef::Strong);
                    }
                }
                if let Some(chi) = stmt.chi_of(mv) {
                    mem_defs.insert(
                        chi.new_ver,
                        MemDef::Chi {
                            block: b,
                            stmt: si,
                            old: chi.old_ver,
                        },
                    );
                }
            }
        }
    }

    // does this chi (at stmt) kill E under the active policy?
    let chi_kills = |stmt: &HStmt| -> bool {
        kills_with_policy(stmt, key, mem_var, policy, &expr_locs, base_collapsed)
    };

    // weak-chain: can version `from` reach `to` through skippable chis only?
    let weak_reaches = |hf: &HssaFunc, mut from: u32, to: u32| -> Option<bool> {
        // Some(true) = reaches with >0 weak steps; Some(false) = equal;
        // None = blocked
        if from == to {
            return Some(false);
        }
        let mut steps = 0;
        while steps < 4096 {
            match mem_defs.get(&from) {
                Some(MemDef::Chi { block, stmt, old }) => {
                    let s = &hf.blocks[block.index()].stmts[*stmt];
                    if chi_kills(s) {
                        return None;
                    }
                    from = *old;
                    if from == to {
                        return Some(true);
                    }
                }
                _ => return None,
            }
            steps += 1;
        }
        None
    };

    // ---- step 1: Phi-Insertion -------------------------------------------
    let occ_blocks: HashSet<BlockId> = occs.iter().map(|o| o.block).collect();
    let mut phi_blocks: HashSet<BlockId> = iterated_df(df, occ_blocks.iter().copied())
        .into_iter()
        .collect();
    // plus every phi of a variable of E (Appendix A's enhanced insertion:
    // walking def chains through speculative weak updates can only ever
    // reach variable phis, so taking all of them is a sound superset)
    let reg_hvars: Vec<HVarId> = tracked_regs
        .iter()
        .filter_map(|&r| hf.catalog.get(HVarKind::Reg(r)))
        .collect();
    for b in hf.block_ids() {
        if !dt.is_reachable(b) {
            continue;
        }
        for phi in &hf.blocks[b.index()].phis {
            if reg_hvars.contains(&phi.var) || mem_var == Some(phi.var) {
                phi_blocks.insert(b);
            }
        }
    }
    let mut phis: Vec<PhiE> = phi_blocks
        .iter()
        .filter(|b| dt.is_reachable(**b))
        .map(|&b| PhiE {
            block: b,
            class: u32::MAX,
            opnds: hf.preds[b.index()]
                .iter()
                .map(|_| PhiOpnd {
                    def: OpndDef::Bottom,
                    has_real_use: false,
                    spec: false,
                    vers_at_pred: OccVersions {
                        regs: vec![0; tracked_regs.len()],
                        mem: mem_var.map(|_| 0),
                    },
                    t_ver: u32::MAX,
                    inserted: false,
                })
                .collect(),
            down_safe: false,
            cspec: false,
            can_be_avail: true,
            later: true,
            will_be_avail: false,
            tainted: false,
            t_ver: u32::MAX,
        })
        .collect();
    phis.sort_by_key(|p| p.block);
    let phi_at: HashMap<BlockId, usize> =
        phis.iter().enumerate().map(|(i, p)| (p.block, i)).collect();

    // ---- step 2: Rename ---------------------------------------------------
    #[derive(Clone, Debug)]
    enum Top {
        Real(usize),
        Phi(usize),
    }
    struct Entry {
        class: u32,
        top: Top,
        vers: OccVersions,
    }

    let mut next_class = 0u32;
    let mut expr_stack: Vec<Entry> = Vec::new();
    // variable version stacks: regs by position in tracked_regs, mem last
    let mut reg_stacks: Vec<Vec<u32>> = tracked_regs.iter().map(|_| vec![0]).collect();
    let mut mem_stack: Vec<u32> = vec![0];

    // map occurrences by (block, stmt) for the walk
    let mut occ_at: HashMap<(BlockId, usize), usize> = HashMap::new();
    for (i, o) in occs.iter().enumerate() {
        occ_at.insert((o.block, o.stmt), i);
    }

    enum Walk {
        Visit(BlockId),
        Pop {
            exprs: usize,
            regs: Vec<usize>,
            mems: usize,
        },
    }
    let mut walk = vec![Walk::Visit(dt.rpo()[0])];
    while let Some(w) = walk.pop() {
        match w {
            Walk::Pop { exprs, regs, mems } => {
                for _ in 0..exprs {
                    expr_stack.pop();
                }
                for (i, n) in regs.iter().enumerate() {
                    for _ in 0..*n {
                        reg_stacks[i].pop();
                    }
                }
                for _ in 0..mems {
                    mem_stack.pop();
                }
            }
            Walk::Visit(b) => {
                let mut pushed_exprs = 0usize;
                let mut pushed_regs = vec![0usize; tracked_regs.len()];
                let mut pushed_mem = 0usize;

                // (a) variable phis at block entry
                for phi in &hf.blocks[b.index()].phis {
                    match hf.catalog.kind(phi.var) {
                        HVarKind::Reg(v) => {
                            if let Some(pos) = tracked_regs.iter().position(|&r| r == v) {
                                reg_stacks[pos].push(phi.dest);
                                pushed_regs[pos] += 1;
                            }
                        }
                        _ => {
                            if Some(phi.var) == mem_var {
                                mem_stack.push(phi.dest);
                                pushed_mem += 1;
                            }
                        }
                    }
                }

                // (b) expression Phi
                if let Some(&pi) = phi_at.get(&b) {
                    let vers = OccVersions {
                        regs: reg_stacks.iter().map(|s| *s.last().unwrap()).collect(),
                        mem: mem_var.map(|_| *mem_stack.last().unwrap()),
                    };
                    let class = next_class;
                    next_class += 1;
                    phis[pi].class = class;
                    expr_stack.push(Entry {
                        class,
                        top: Top::Phi(pi),
                        vers,
                    });
                    pushed_exprs += 1;
                }

                // (c) statements
                let nstmts = hf.blocks[b.index()].stmts.len();
                for si in 0..nstmts {
                    if let Some(&oi) = occ_at.get(&(b, si)) {
                        let vers = occs[oi].vers.clone();
                        let mut assigned = false;
                        if let Some(top) = expr_stack.last() {
                            let regs_exact = top.vers.regs == vers.regs;
                            let regs_eq = regs_exact || (base_collapsed && policy.data);
                            let reg_spec = regs_eq && !regs_exact;
                            if regs_eq && top.vers.mem == vers.mem {
                                occs[oi].class = top.class;
                                occs[oi].spec = reg_spec;
                                assigned = true;
                            } else if regs_eq && policy.data {
                                if let (Some(cur), Some(at)) = (vers.mem, top.vers.mem) {
                                    if let Some(true) = weak_reaches(hf, cur, at) {
                                        occs[oi].class = top.class;
                                        occs[oi].spec = true;
                                        assigned = true;
                                    }
                                }
                            }
                        }
                        if !assigned {
                            occs[oi].class = next_class;
                            next_class += 1;
                        }
                        let class = occs[oi].class;
                        expr_stack.push(Entry {
                            class,
                            top: Top::Real(oi),
                            vers,
                        });
                        pushed_exprs += 1;
                    }
                    // variable defs
                    let stmt = &hf.blocks[b.index()].stmts[si];
                    if let Some((v, ver)) = stmt.def_reg() {
                        if let Some(pos) = tracked_regs.iter().position(|&r| r == v) {
                            reg_stacks[pos].push(ver);
                            pushed_regs[pos] += 1;
                        }
                    }
                    if let Some(mv) = mem_var {
                        if let HStmtKind::Store {
                            dvar_def: Some((id, ver)),
                            ..
                        } = &stmt.kind
                        {
                            if *id == mv {
                                mem_stack.push(*ver);
                                pushed_mem += 1;
                            }
                        }
                        if let Some(chi) = stmt.chi_of(mv) {
                            mem_stack.push(chi.new_ver);
                            pushed_mem += 1;
                        }
                    }
                }

                // (e) expression-Phi operands in successors
                let succs = hf.blocks[b.index()]
                    .term
                    .as_ref()
                    .map(|t| t.successors())
                    .unwrap_or_default();
                for s in succs {
                    let Some(&pi) = phi_at.get(&s) else { continue };
                    let Some(op_idx) = hf.pred_index(s, b) else {
                        continue;
                    };
                    let cur = OccVersions {
                        regs: reg_stacks.iter().map(|st| *st.last().unwrap()).collect(),
                        mem: mem_var.map(|_| *mem_stack.last().unwrap()),
                    };
                    let opnd = &mut phis[pi].opnds[op_idx];
                    opnd.vers_at_pred = cur.clone();
                    if let Some(top) = expr_stack.last() {
                        let regs_exact = top.vers.regs == cur.regs;
                        let regs_eq = regs_exact || (base_collapsed && policy.data);
                        let reg_spec = regs_eq && !regs_exact;
                        let mem_match = if top.vers.mem == cur.mem {
                            Some(reg_spec)
                        } else if regs_eq && policy.data {
                            match (cur.mem, top.vers.mem) {
                                (Some(c), Some(a)) => weak_reaches(hf, c, a),
                                _ => None,
                            }
                        } else {
                            None
                        };
                        if regs_eq {
                            if let Some(spec) = mem_match {
                                opnd.def = match top.top {
                                    Top::Real(i) => OpndDef::Real(i),
                                    Top::Phi(i) => OpndDef::Phi(i),
                                };
                                opnd.has_real_use = matches!(top.top, Top::Real(_));
                                opnd.spec = spec;
                            }
                        }
                    }
                }

                walk.push(Walk::Pop {
                    exprs: pushed_exprs,
                    regs: pushed_regs,
                    mems: pushed_mem,
                });
                for &c in dt.children(b).iter().rev() {
                    walk.push(Walk::Visit(c));
                }
            }
        }
    }

    // ---- step 3: DownSafety (block-lexical anticipation) ------------------
    #[derive(Clone, Copy, PartialEq)]
    enum Ev {
        Use,
        Kill,
        Transparent,
    }
    let nblocks = hf.blocks.len();
    let mut first_event = vec![Ev::Transparent; nblocks];
    for b in hf.block_ids() {
        for (si, stmt) in hf.blocks[b.index()].stmts.iter().enumerate() {
            if occ_at.contains_key(&(b, si)) {
                first_event[b.index()] = Ev::Use;
                break;
            }
            if kills_with_policy(stmt, key, mem_var, policy, &expr_locs, base_collapsed) {
                first_event[b.index()] = Ev::Kill;
                break;
            }
        }
    }
    let mut ant_in = vec![true; nblocks];
    let mut changed = true;
    while changed {
        changed = false;
        for &b in dt.rpo().iter().rev() {
            let succs = hf.blocks[b.index()]
                .term
                .as_ref()
                .map(|t| t.successors())
                .unwrap_or_default();
            let out = if succs.is_empty() {
                false
            } else {
                succs.iter().all(|s| ant_in[s.index()])
            };
            let inb = match first_event[b.index()] {
                Ev::Use => true,
                Ev::Kill => false,
                Ev::Transparent => out,
            };
            if inb != ant_in[b.index()] {
                ant_in[b.index()] = inb;
                changed = true;
            }
        }
    }
    for p in phis.iter_mut() {
        p.down_safe = ant_in[p.block.index()];
    }
    // control speculation: profitable non-down-safe Phis become "down-safe"
    if let Some((ep, fid)) = policy.control {
        if key.control_speculatable() {
            let freqs = ep.block_freqs(fid, f_base);
            for p in phis.iter_mut() {
                if p.down_safe {
                    continue;
                }
                let bfreq = freqs[p.block.index()];
                if bfreq == 0 {
                    continue;
                }
                let preds = &hf.preds[p.block.index()];
                let ok = p.opnds.iter().enumerate().all(|(i, o)| {
                    o.def != OpndDef::Bottom || ep.edge_count(fid, preds[i], p.block) * 2 < bfreq
                });
                // at least one operand must carry a value for speculation
                // to be able to pay off
                let any_def = p.opnds.iter().any(|o| o.def != OpndDef::Bottom);
                if ok && any_def {
                    p.cspec = true;
                }
            }
        }
    }

    // ---- step 4: WillBeAvailable ------------------------------------------
    // can_be_avail
    let mut queue: Vec<usize> = Vec::new();
    for (i, p) in phis.iter_mut().enumerate() {
        if !(p.down_safe || p.cspec) && p.opnds.iter().any(|o| o.def == OpndDef::Bottom) {
            p.can_be_avail = false;
            queue.push(i);
        }
    }
    while let Some(dead) = queue.pop() {
        for (i, p) in phis.iter_mut().enumerate() {
            if !p.can_be_avail {
                continue;
            }
            let affected = p
                .opnds
                .iter()
                .any(|o| o.def == OpndDef::Phi(dead) && !o.has_real_use);
            if affected && !(p.down_safe || p.cspec) {
                p.can_be_avail = false;
                queue.push(i);
            }
        }
    }
    // later
    for p in phis.iter_mut() {
        p.later = p.can_be_avail;
    }
    let mut queue: Vec<usize> = Vec::new();
    for (i, p) in phis.iter_mut().enumerate() {
        if p.later {
            let has_real = p
                .opnds
                .iter()
                .any(|o| o.has_real_use || matches!(o.def, OpndDef::Real(_)));
            if has_real {
                p.later = false;
                queue.push(i);
            }
        }
    }
    while let Some(early) = queue.pop() {
        for (i, p) in phis.iter_mut().enumerate() {
            if p.later && p.opnds.iter().any(|o| o.def == OpndDef::Phi(early)) {
                p.later = false;
                queue.push(i);
            }
        }
    }
    for p in phis.iter_mut() {
        p.will_be_avail = p.can_be_avail && !p.later;
    }

    // taint: speculative values flowing into Phis
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..phis.len() {
            if phis[i].tainted {
                continue;
            }
            let t = phis[i].opnds.iter().any(|o| {
                o.spec
                    || match o.def {
                        OpndDef::Phi(j) => phis[j].tainted,
                        _ => false,
                    }
            });
            if t {
                phis[i].tainted = true;
                changed = true;
            }
        }
    }

    // quick profitability scan: is there anything to do at all?
    let any_redundancy = occs.iter().enumerate().any(|(i, o)| {
        occs.iter()
            .take(i)
            .any(|p| p.class == o.class && (p.block, p.stmt) != (o.block, o.stmt))
    });
    let any_wba_phi_use = occs
        .iter()
        .any(|o| phis.iter().any(|p| p.class == o.class && p.will_be_avail));
    if debug {
        eprintln!("[ssapre] key={key:?} occs={:?}", occs);
        for p in &phis {
            eprintln!(
                "[ssapre]   phi@{:?} class={} ds={} cspec={} cba={} later={} wba={} opnds={:?}",
                p.block,
                p.class,
                p.down_safe,
                p.cspec,
                p.can_be_avail,
                p.later,
                p.will_be_avail,
                p.opnds
            );
        }
        eprintln!("[ssapre]   any_red={any_redundancy} any_wba={any_wba_phi_use}");
    }
    if !any_redundancy && !any_wba_phi_use {
        return false;
    }

    // ---- step 5+6: Finalize & CodeMotion -----------------------------------
    // the PRE temporary (collapsed at lowering)
    let ty = expr_ty(key);
    let t = hf.add_temp(format!("pre{}", stats.temps), ty);
    stats.temps += 1;
    // only load temporaries collapse onto one machine register (the ALAT
    // keys ld.a/ld.c by it, and failed checks refresh it for later
    // reloads); arithmetic temporaries stay in proper SSA
    if key.is_load() {
        hf.collapsed_vars.push(t);
    }

    // availability walk in dominator preorder
    #[derive(Clone, Copy)]
    enum Avail {
        FromPhi { phi: usize, t_ver: u32 },
        FromReal { occ: usize, t_ver: u32 },
    }
    let mut avail: HashMap<u32, Vec<Avail>> = HashMap::new();
    // collected edits
    let mut saves: Vec<usize> = Vec::new(); // occ indices that must save
    let mut insertions: Vec<(usize, usize)> = Vec::new(); // (phi, opnd)
    enum Walk2 {
        Visit(BlockId),
        Pop(Vec<u32>),
    }
    let mut walk = vec![Walk2::Visit(dt.rpo()[0])];
    // occurrence order within block
    let mut occs_in_block: HashMap<BlockId, Vec<usize>> = HashMap::new();
    for (i, o) in occs.iter().enumerate() {
        occs_in_block.entry(o.block).or_default().push(i);
    }
    for v in occs_in_block.values_mut() {
        v.sort_by_key(|&i| occs[i].stmt);
    }
    while let Some(w) = walk.pop() {
        match w {
            Walk2::Pop(classes) => {
                for c in classes {
                    avail.get_mut(&c).unwrap().pop();
                }
            }
            Walk2::Visit(b) => {
                let mut pushed: Vec<u32> = Vec::new();
                if let Some(&pi) = phi_at.get(&b) {
                    if phis[pi].will_be_avail {
                        let tv = hf.fresh_ver_of_reg(t);
                        phis[pi].t_ver = tv;
                        avail
                            .entry(phis[pi].class)
                            .or_default()
                            .push(Avail::FromPhi { phi: pi, t_ver: tv });
                        pushed.push(phis[pi].class);
                    }
                }
                if let Some(list) = occs_in_block.get(&b) {
                    for &oi in list {
                        let class = occs[oi].class;
                        let top = avail.get(&class).and_then(|v| v.last().copied());
                        match top {
                            Some(Avail::FromPhi { phi, t_ver }) => {
                                let check = occs[oi].spec || phis[phi].tainted;
                                occs[oi].role = Role::Reload { from: t_ver, check };
                            }
                            Some(Avail::FromReal { occ, t_ver }) => {
                                let check = occs[oi].spec || occs[occ].spec;
                                occs[oi].role = Role::Reload { from: t_ver, check };
                                if !saves.contains(&occ) {
                                    saves.push(occ);
                                }
                            }
                            None => {
                                let tv = hf.fresh_ver_of_reg(t);
                                occs[oi].t_ver = tv;
                                occs[oi].role = Role::Compute { save: false };
                                avail
                                    .entry(class)
                                    .or_default()
                                    .push(Avail::FromReal { occ: oi, t_ver: tv });
                                pushed.push(class);
                            }
                        }
                    }
                }
                // successors' Phi operands: insertions & t-version routing
                let succs = hf.blocks[b.index()]
                    .term
                    .as_ref()
                    .map(|tm| tm.successors())
                    .unwrap_or_default();
                for s in succs {
                    let Some(&pi) = phi_at.get(&s) else { continue };
                    if !phis[pi].will_be_avail {
                        continue;
                    }
                    let Some(op_idx) = hf.pred_index(s, b) else {
                        continue;
                    };
                    let need_insert = match phis[pi].opnds[op_idx].def {
                        OpndDef::Bottom => true,
                        OpndDef::Phi(j) => {
                            !phis[j].will_be_avail && !phis[pi].opnds[op_idx].has_real_use
                        }
                        OpndDef::Real(_) => false,
                    };
                    if need_insert {
                        let tv = hf.fresh_ver_of_reg(t);
                        phis[pi].opnds[op_idx].t_ver = tv;
                        phis[pi].opnds[op_idx].inserted = true;
                        insertions.push((pi, op_idx));
                    } else {
                        // route the available t version along the edge
                        let tv = match phis[pi].opnds[op_idx].def {
                            OpndDef::Real(oi) => {
                                if !saves.contains(&oi) {
                                    saves.push(oi);
                                }
                                match occs[oi].role {
                                    Role::Compute { .. } => occs[oi].t_ver,
                                    Role::Reload { from, .. } => from,
                                }
                            }
                            OpndDef::Phi(j) => phis[j].t_ver,
                            OpndDef::Bottom => unreachable!(),
                        };
                        phis[pi].opnds[op_idx].t_ver = tv;
                    }
                }
                walk.push(Walk2::Pop(pushed));
                for &c in dt.children(b).iter().rev() {
                    walk.push(Walk2::Visit(c));
                }
            }
        }
    }
    for &oi in &saves {
        if let Role::Compute { .. } = occs[oi].role {
            occs[oi].role = Role::Compute { save: true };
        }
    }

    // nothing materialized? (all computes unsaved and no reloads)
    let any_change = occs.iter().any(|o| match o.role {
        Role::Reload { .. } => true,
        Role::Compute { save } => save,
    }) || !insertions.is_empty();
    if !any_change {
        // roll back the temp we allocated (harmless to keep, but tidy)
        return false;
    }

    // advanced-load marking (Appendix B): a class with any checking reload
    // gets its defining loads flagged ld.a
    let mut checked_classes: HashSet<u32> = HashSet::new();
    for o in &occs {
        if let Role::Reload { check: true, .. } = o.role {
            checked_classes.insert(o.class);
        }
    }
    // any Phi reachable from a checked class spreads the marking to defs
    // (conservative: mark every saving def of a checked class and every
    // insertion feeding a Phi of a checked class)
    let mut changed = true;
    let mut checked_phis: HashSet<usize> = HashSet::new();
    while changed {
        changed = false;
        for (i, p) in phis.iter().enumerate() {
            if checked_classes.contains(&p.class) && checked_phis.insert(i) {
                changed = true;
            }
        }
        for p in phis.iter() {
            for o in &p.opnds {
                if let OpndDef::Phi(j) = o.def {
                    if checked_classes.contains(&p.class) && checked_classes.insert(phis[j].class) {
                        changed = true;
                    }
                }
            }
        }
        // defs linked as operands of checked phis
        for (i, p) in phis.iter().enumerate() {
            if !checked_phis.contains(&i) {
                continue;
            }
            for o in &p.opnds {
                if let OpndDef::Real(oi) = o.def {
                    if checked_classes.insert(occs[oi].class) {
                        changed = true;
                    }
                }
            }
        }
    }

    // control-speculation: classes fed by a cspec Phi need NaT-check reloads
    let cspec_phis: HashSet<usize> = phis
        .iter()
        .enumerate()
        .filter(|(_, p)| p.cspec && p.will_be_avail)
        .map(|(i, _)| i)
        .collect();
    let mut nat_classes: HashSet<u32> = HashSet::new();
    for &i in &cspec_phis {
        nat_classes.insert(phis[i].class);
    }
    // propagate downstream through phi operands
    let mut changed = true;
    while changed {
        changed = false;
        for p in phis.iter() {
            if p.opnds.iter().any(|o| match o.def {
                OpndDef::Phi(j) => nat_classes.contains(&phis[j].class),
                _ => false,
            }) && nat_classes.insert(p.class)
            {
                changed = true;
            }
        }
    }

    // ---- apply edits -------------------------------------------------------
    #[derive(Debug)]
    enum Edit {
        Save { stmt: usize, occ: usize },
        Reload { stmt: usize, occ: usize },
    }
    let mut per_block: HashMap<BlockId, Vec<Edit>> = HashMap::new();
    for (oi, o) in occs.iter().enumerate() {
        match o.role {
            Role::Compute { save: true } => {
                per_block.entry(o.block).or_default().push(Edit::Save {
                    stmt: o.stmt,
                    occ: oi,
                })
            }
            Role::Reload { .. } => per_block.entry(o.block).or_default().push(Edit::Reload {
                stmt: o.stmt,
                occ: oi,
            }),
            _ => {}
        }
    }

    let is_load_expr = key.is_load();
    // apply in block-index order: edit application allocates temp versions,
    // so hash-order iteration would leak into the printed SSA form
    let mut per_block: Vec<(BlockId, Vec<Edit>)> = per_block.into_iter().collect();
    per_block.sort_by_key(|(b, _)| b.index());
    for (b, mut edits) in per_block {
        edits.sort_by_key(|e| match e {
            Edit::Save { stmt, .. } | Edit::Reload { stmt, .. } => *stmt,
        });
        for e in edits.into_iter().rev() {
            match e {
                Edit::Save { stmt, occ } => {
                    let o = &occs[occ];
                    let old = hf.blocks[b.index()].stmts[stmt].clone();
                    let dst = old.def_reg().expect("occurrence defines a register");
                    let mut def_stmt = old.clone();
                    // defining statement now writes t
                    set_dst(&mut def_stmt.kind, (t, o.t_ver));
                    if is_load_expr
                        && (checked_classes.contains(&o.class) || nat_classes.contains(&o.class))
                    {
                        if let HStmtKind::Load { spec, .. } = &mut def_stmt.kind {
                            if *spec == LoadSpec::Normal {
                                *spec = LoadSpec::Advanced;
                                stats.advanced_loads += 1;
                            }
                        }
                    }
                    let copy = HStmt::new(HStmtKind::Copy {
                        dst,
                        src: HOperand::Reg(t, o.t_ver),
                    });
                    let blk = &mut hf.blocks[b.index()];
                    blk.stmts[stmt] = def_stmt;
                    blk.stmts.insert(stmt + 1, copy);
                    stats.saves += 1;
                }
                Edit::Reload { stmt, occ } => {
                    let o = &occs[occ];
                    let Role::Reload { from, check } = o.role else {
                        unreachable!()
                    };
                    let old = hf.blocks[b.index()].stmts[stmt].clone();
                    let dst = old.def_reg().expect("occurrence defines a register");
                    let needs_nat = nat_classes.contains(&o.class);
                    if is_load_expr && (check || needs_nat) {
                        // check load revalidates t, then the original
                        // destination copies from it (Appendix B / Fig. 8)
                        let tv2 = hf.fresh_ver_of_reg(t);
                        let (base, offset, lty, site_kind) = load_shape(&old.kind);
                        let kind = if check {
                            CheckKind::Alat
                        } else {
                            CheckKind::Nat
                        };
                        let chk = HStmt::new(HStmtKind::CheckLoad {
                            dst: (t, tv2),
                            base,
                            offset,
                            ty: lty,
                            kind,
                            site: site_kind,
                            dvar: None,
                        });
                        let copy = HStmt::new(HStmtKind::Copy {
                            dst,
                            src: HOperand::Reg(t, tv2),
                        });
                        let blk = &mut hf.blocks[b.index()];
                        blk.stmts[stmt] = chk;
                        blk.stmts.insert(stmt + 1, copy);
                        stats.checks += 1;
                        if check {
                            stats.data_spec_reloads += 1;
                        }
                    } else {
                        let copy = HStmt::new(HStmtKind::Copy {
                            dst,
                            src: HOperand::Reg(t, from),
                        });
                        hf.blocks[b.index()].stmts[stmt] = copy;
                    }
                    stats.reloads += 1;
                    if is_load_expr {
                        stats.loads_removed += 1;
                    }
                }
            }
        }
    }

    // insertions at predecessor ends
    for (pi, op_idx) in insertions {
        let p = &phis[pi];
        let pred = hf.preds[p.block.index()][op_idx];
        let opnd = &p.opnds[op_idx];
        let spec_load = p.cspec && is_load_expr;
        let stmt = materialize(
            key,
            hf,
            (t, opnd.t_ver),
            &opnd.vers_at_pred,
            mem_var,
            if spec_load {
                LoadSpec::Speculative
            } else if checked_classes.contains(&p.class) || nat_classes.contains(&p.class) {
                LoadSpec::Advanced
            } else {
                LoadSpec::Normal
            },
        );
        let blk = &mut hf.blocks[pred.index()];
        blk.stmts.push(stmt);
        stats.insertions += 1;
        if spec_load {
            stats.control_spec_loads += 1;
        }
    }

    // phis for t
    let t_hvar = hf.catalog.get(HVarKind::Reg(t)).expect("temp interned");
    for p in &phis {
        if !p.will_be_avail {
            continue;
        }
        let args: Vec<u32> = p
            .opnds
            .iter()
            .map(|o| {
                if o.t_ver != u32::MAX {
                    o.t_ver
                } else {
                    0 // unreachable value path; collapsed var makes this benign
                }
            })
            .collect();
        hf.blocks[p.block.index()].phis.push(HPhi {
            var: t_hvar,
            dest: p.t_ver,
            args,
        });
    }

    stats.transformed += 1;
    if occs.iter().any(|o| o.spec) {
        stats.data_speculated_exprs += 1;
    }
    if !cspec_phis.is_empty() {
        stats.control_speculated_exprs += 1;
    }
    true
}

fn kills_with_policy(
    stmt: &HStmt,
    key: &ExprKey,
    mem_var: Option<HVarId>,
    policy: &SpecPolicy<'_>,
    expr_locs: &HashSet<specframe_alias::Loc>,
    base_collapsed: bool,
) -> bool {
    if !policy.data {
        return kills(stmt, key, mem_var, false, false);
    }
    // a redefinition of a collapsed base register is an injuring def, not a
    // kill: dependent reloads re-validate through their own check
    if base_collapsed {
        if let Some((v, _)) = stmt.def_reg() {
            if key.tracked_regs().contains(&v)
                && !kills_mem_part(stmt, key, mem_var, policy, expr_locs)
            {
                return false;
            }
        }
    }
    if let Some(p) = policy.profile {
        // profile mode with the per-expression LOC refinement: a likely chi
        // over a *virtual* variable only kills when the killing site's
        // observed LOCs overlap the expression's observed LOCs
        if kills_reg_or_strong(stmt, key, mem_var) {
            return true;
        }
        let Some(mv) = mem_var else { return false };
        let Some(chi) = stmt.chi_of(mv) else {
            return false;
        };
        if !chi.likely {
            return false;
        }
        if matches!(key, ExprKey::DirectLoad(..)) {
            return true; // per-loc flags are already exact
        }
        match &stmt.kind {
            HStmtKind::Store { site, .. } => match p.locs(*site) {
                Some(locs) => locs.iter().any(|l| expr_locs.contains(l)),
                None => true,
            },
            HStmtKind::Call { site, .. } => match p.call_mod.get(site) {
                Some(locs) => locs.iter().any(|l| expr_locs.contains(l)),
                None => true,
            },
            _ => true,
        }
    } else {
        kills(stmt, key, mem_var, true, policy.heuristic)
    }
}

/// The memory component of the kill decision (strong def or effective chi
/// kill of the tracked memory variable), ignoring register redefinitions.
fn kills_mem_part(
    stmt: &HStmt,
    key: &ExprKey,
    mem_var: Option<HVarId>,
    policy: &SpecPolicy<'_>,
    expr_locs: &HashSet<specframe_alias::Loc>,
) -> bool {
    let Some(mv) = mem_var else { return false };
    if let HStmtKind::Store {
        dvar_def: Some((id, _)),
        ..
    } = &stmt.kind
    {
        if *id == mv {
            return true;
        }
    }
    let Some(chi) = stmt.chi_of(mv) else {
        return false;
    };
    if let Some(p) = policy.profile {
        if !chi.likely {
            return false;
        }
        if matches!(key, ExprKey::DirectLoad(..)) {
            return true;
        }
        match &stmt.kind {
            HStmtKind::Store { site, .. } => match p.locs(*site) {
                Some(locs) => locs.iter().any(|l| expr_locs.contains(l)),
                None => true,
            },
            HStmtKind::Call { site, .. } => match p.call_mod.get(site) {
                Some(locs) => locs.iter().any(|l| expr_locs.contains(l)),
                None => true,
            },
            _ => true,
        }
    } else {
        // heuristic / aggressive path mirrors expr::kills' chi handling
        if chi.likely {
            return true;
        }
        if policy.heuristic {
            if let (
                HStmtKind::Store {
                    base: HOperand::Reg(sb, _),
                    offset,
                    ..
                },
                Some((eb, eoff)),
            ) = (&stmt.kind, key.syntax())
            {
                if *sb == eb && *offset == eoff {
                    return true;
                }
            }
        }
        false
    }
}

fn kills_reg_or_strong(stmt: &HStmt, key: &ExprKey, mem_var: Option<HVarId>) -> bool {
    if let Some((v, _)) = stmt.def_reg() {
        if key.tracked_regs().contains(&v) {
            return true;
        }
    }
    if let (
        Some(mv),
        HStmtKind::Store {
            dvar_def: Some((id, _)),
            ..
        },
    ) = (mem_var, &stmt.kind)
    {
        if *id == mv {
            return true;
        }
    }
    false
}

fn expr_ty(key: &ExprKey) -> Ty {
    match key {
        ExprKey::Bin(op, _, _) => op.result_ty(),
        ExprKey::DirectLoad(_, ty) => *ty,
        ExprKey::IndirectLoad { ty, .. } => *ty,
    }
}

fn set_dst(kind: &mut HStmtKind, new: (VarId, u32)) {
    match kind {
        HStmtKind::Bin { dst, .. }
        | HStmtKind::Un { dst, .. }
        | HStmtKind::Copy { dst, .. }
        | HStmtKind::Load { dst, .. }
        | HStmtKind::CheckLoad { dst, .. }
        | HStmtKind::Alloc { dst, .. } => *dst = new,
        HStmtKind::Call { dst: Some(d), .. } => *d = new,
        _ => panic!("set_dst on store"),
    }
}

/// Extracts the address shape of a load statement for check generation.
fn load_shape(kind: &HStmtKind) -> (HOperand, i64, Ty, specframe_ir::MemSiteId) {
    match kind {
        HStmtKind::Load {
            base, offset, ty, ..
        } => (*base, *offset, *ty, specframe_hssa::stmt::FRESH_SITE),
        HStmtKind::CheckLoad {
            base, offset, ty, ..
        } => (*base, *offset, *ty, specframe_hssa::stmt::FRESH_SITE),
        other => panic!("load_shape on non-load {other:?}"),
    }
}

/// Builds the inserted computation of `key` writing `t`, using the operand
/// versions recorded at the predecessor end.
fn materialize(
    key: &ExprKey,
    hf: &HssaFunc,
    t: (VarId, u32),
    vers: &OccVersions,
    mem_var: Option<HVarId>,
    spec: LoadSpec,
) -> HStmt {
    let _ = hf;
    match key {
        ExprKey::Bin(op, a, b) => {
            let mut it = vers.regs.iter();
            let mut conv = |l: &crate::expr::LexOperand| -> HOperand {
                match l {
                    crate::expr::LexOperand::Reg(v) => HOperand::Reg(*v, *it.next().unwrap()),
                    crate::expr::LexOperand::ConstI(c) => HOperand::ConstI(*c),
                    crate::expr::LexOperand::ConstF(c) => HOperand::ConstF(f64::from_bits(*c)),
                    crate::expr::LexOperand::GlobalAddr(g) => HOperand::GlobalAddr(*g),
                    crate::expr::LexOperand::SlotAddr(s) => HOperand::SlotAddr(*s),
                }
            };
            // note: tracked_regs dedups, so a+a uses one version for both
            let a_op = conv(a);
            let b_op = if a == b { a_op } else { conv(b) };
            HStmt::new(HStmtKind::Bin {
                dst: t,
                op: *op,
                a: a_op,
                b: b_op,
            })
        }
        ExprKey::DirectLoad(mv, ty) => {
            let base = match mv.base {
                MemBase::Global(g) => HOperand::GlobalAddr(g),
                MemBase::Slot(s) => HOperand::SlotAddr(s),
            };
            let mut stmt = HStmt::new(HStmtKind::Load {
                dst: t,
                base,
                offset: mv.off,
                ty: *ty,
                spec,
                site: specframe_hssa::stmt::FRESH_SITE,
                dvar: mem_var.map(|id| (id, vers.mem.unwrap_or(0))),
            });
            stmt.mu.clear();
            stmt
        }
        ExprKey::IndirectLoad {
            base,
            off,
            ty,
            vvar,
            ..
        } => {
            let mut stmt = HStmt::new(HStmtKind::Load {
                dst: t,
                base: HOperand::Reg(*base, vers.regs[0]),
                offset: *off,
                ty: *ty,
                spec,
                site: specframe_hssa::stmt::FRESH_SITE,
                dvar: None,
            });
            stmt.mu.push(specframe_hssa::MuOp {
                var: *vvar,
                ver: vers.mem.unwrap_or(0),
                likely: true,
            });
            stmt
        }
    }
}
