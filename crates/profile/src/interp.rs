//! The IR interpreter.
//!
//! This is the framework's execution substrate: it runs workloads to collect
//! alias/edge profiles, and it serves as the semantic oracle — an optimized
//! module must produce exactly the values the interpreter produces for the
//! unoptimized module, or the optimizer is wrong. Speculation never gets to
//! change semantics here: a check load simply reloads (the always-correct
//! implementation of `ld.c`), and only the machine simulator in
//! `specframe-machine` models the cycle-level fast path.
//!
//! ## Memory model
//!
//! One flat, word-addressed memory of [`Value`] cells:
//!
//! ```text
//! [0, 16)              unmapped (null page)
//! [16, G)              globals, laid out by `Module::global_layout`
//! [G, G + STACK_WORDS) stack; frames push slot storage and pop on return
//! [G + STACK_WORDS, …) heap; `alloc` bumps, nothing frees
//! ```
//!
//! Every named region (global, live slot, heap object) is tracked in an
//! interval map so dynamic addresses resolve to the abstract locations
//! ([`Loc`]) the alias profiler records.

use crate::observer::{MemAccess, Observer};
use specframe_alias::Loc;
use specframe_ir::{
    BinOp, FuncId, FuncSlot, Function, Inst, LoadSpec, Module, Operand, Terminator, Ty, UnOp, Value,
};
use std::collections::BTreeMap;

/// Words reserved for the stack region.
pub const STACK_WORDS: i64 = 1 << 20;

/// Hard cap on memory (words) to catch wild pointers.
pub const MEM_CAP: i64 = 1 << 28;

/// Maximum call depth.
pub const MAX_DEPTH: usize = 512;

/// Dynamic execution counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Instructions executed.
    pub steps: u64,
    /// Plain and advanced/speculative loads executed (real memory reads
    /// that are not checks).
    pub loads: u64,
    /// Check loads executed (`ld.c` / NaT checks). The machine simulator
    /// decides how many of these actually re-access memory; the interpreter
    /// only counts them.
    pub check_loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Calls executed.
    pub calls: u64,
    /// Heap allocations executed.
    pub allocs: u64,
}

/// A run-time failure.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    /// The fuel budget ran out (use a larger budget for bigger workloads).
    OutOfFuel,
    /// A non-speculative access touched an unmapped or out-of-range address.
    BadAddress(i64),
    /// Integer division or modulo by zero.
    DivByZero,
    /// Call depth exceeded [`MAX_DEPTH`].
    StackOverflow,
    /// A NaT value reached a non-check consumer (branch, store, address).
    NatConsumed,
    /// The requested entry function does not exist.
    NoSuchFunction(String),
    /// Wrong number of entry arguments.
    BadEntryArgs,
    /// The stack region overflowed.
    StackExhausted,
}

impl core::fmt::Display for InterpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            InterpError::OutOfFuel => write!(f, "out of fuel"),
            InterpError::BadAddress(a) => write!(f, "bad address {a}"),
            InterpError::DivByZero => write!(f, "division by zero"),
            InterpError::StackOverflow => write!(f, "call stack overflow"),
            InterpError::NatConsumed => write!(f, "NaT consumed by non-check instruction"),
            InterpError::NoSuchFunction(n) => write!(f, "no such function `{n}`"),
            InterpError::BadEntryArgs => write!(f, "wrong number of entry arguments"),
            InterpError::StackExhausted => write!(f, "stack region exhausted"),
        }
    }
}

impl std::error::Error for InterpError {}

/// The interpreter state for one module.
pub struct Interpreter<'m> {
    m: &'m Module,
    mem: Vec<Value>,
    /// Interval map: start -> (end, loc) for every named live region.
    regions: BTreeMap<i64, (i64, Loc)>,
    stack_base: i64,
    stack_top: i64,
    heap_base: i64,
    heap_top: i64,
    fuel: u64,
    stats: RunStats,
    invocations: u64,
}

impl<'m> Interpreter<'m> {
    /// Creates an interpreter with globals initialized and `fuel`
    /// instruction budget.
    pub fn new(m: &'m Module, fuel: u64) -> Interpreter<'m> {
        let layout = m.global_layout();
        let global_end = layout
            .last()
            .zip(m.globals.last())
            .map(|(&base, g)| base + i64::from(g.words))
            .unwrap_or(Module::GLOBAL_BASE);
        let stack_base = global_end;
        let heap_base = stack_base + STACK_WORDS;
        let mut it = Interpreter {
            m,
            mem: Vec::new(),
            regions: BTreeMap::new(),
            stack_base,
            stack_top: stack_base,
            heap_base,
            heap_top: heap_base,
            fuel,
            stats: RunStats::default(),
            invocations: 0,
        };
        for (gi, g) in m.globals.iter().enumerate() {
            let base = layout[gi];
            it.regions.insert(
                base,
                (
                    base + i64::from(g.words),
                    Loc::Global(specframe_ir::GlobalId::from_index(gi)),
                ),
            );
            for w in 0..g.words as usize {
                let v = g.init.get(w).copied().unwrap_or(Value::zero(g.ty));
                it.poke(base + w as i64, v);
            }
        }
        it
    }

    /// Execution counters so far.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Reads a memory cell (for post-run inspection in tests).
    pub fn peek(&self, addr: i64) -> Value {
        self.mem.get(addr as usize).copied().unwrap_or(Value::I(0))
    }

    fn poke(&mut self, addr: i64, v: Value) {
        let i = addr as usize;
        if i >= self.mem.len() {
            self.mem.resize(i + 1, Value::I(0));
        }
        self.mem[i] = v;
    }

    fn addr_ok(&self, addr: i64) -> bool {
        addr >= Module::GLOBAL_BASE && addr < self.heap_top.max(self.heap_base) && addr < MEM_CAP
    }

    fn resolve(&self, addr: i64) -> Option<Loc> {
        let (&start, &(end, loc)) = self.regions.range(..=addr).next_back()?;
        debug_assert!(start <= addr);
        (addr < end).then_some(loc)
    }

    /// Calls `func` with `args`, streaming events to `obs`.
    ///
    /// # Errors
    /// Any [`InterpError`] raised during execution.
    pub fn call(
        &mut self,
        func: FuncId,
        args: &[Value],
        obs: &mut dyn Observer,
    ) -> Result<Option<Value>, InterpError> {
        self.call_depth(func, args, obs, 0)
    }

    fn eval(frame: &[Value], layout: &[i64], slot_base: &[i64], op: Operand) -> Value {
        match op {
            Operand::Var(v) => frame[v.index()],
            Operand::ConstI(c) => Value::I(c),
            Operand::ConstF(c) => Value::F(c),
            Operand::GlobalAddr(g) => Value::I(layout[g.index()]),
            Operand::SlotAddr(s) => Value::I(slot_base[s.index()]),
        }
    }

    fn call_depth(
        &mut self,
        func: FuncId,
        args: &[Value],
        obs: &mut dyn Observer,
        depth: usize,
    ) -> Result<Option<Value>, InterpError> {
        if depth >= MAX_DEPTH {
            return Err(InterpError::StackOverflow);
        }
        let f: &Function = self.m.func(func);
        if args.len() != f.params as usize {
            return Err(InterpError::BadEntryArgs);
        }
        self.invocations += 1;
        let invocation = self.invocations;
        obs.on_entry(func, invocation);

        let layout = self.m.global_layout();

        // frame registers
        let mut frame: Vec<Value> = f.vars.iter().map(|d| Value::zero(d.ty)).collect();
        frame[..args.len()].copy_from_slice(args);

        // slot storage
        let frame_stack_base = self.stack_top;
        let mut slot_base = Vec::with_capacity(f.slots.len());
        for (si, s) in f.slots.iter().enumerate() {
            let base = self.stack_top;
            let end = base + i64::from(s.words);
            if end > self.stack_base + STACK_WORDS {
                return Err(InterpError::StackExhausted);
            }
            self.stack_top = end;
            slot_base.push(base);
            self.regions.insert(
                base,
                (
                    end,
                    Loc::Slot(FuncSlot {
                        func,
                        slot: specframe_ir::SlotId::from_index(si),
                    }),
                ),
            );
            for w in base..end {
                self.poke(w, Value::zero(s.ty));
            }
        }

        let result = self.run_blocks(
            func, f, &mut frame, &layout, &slot_base, obs, depth, invocation,
        );

        // pop slot regions
        for &b in &slot_base {
            self.regions.remove(&b);
        }
        self.stack_top = frame_stack_base;
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn run_blocks(
        &mut self,
        func: FuncId,
        f: &Function,
        frame: &mut [Value],
        layout: &[i64],
        slot_base: &[i64],
        obs: &mut dyn Observer,
        depth: usize,
        invocation: u64,
    ) -> Result<Option<Value>, InterpError> {
        let mut block = f.entry();
        loop {
            let b = f.block(block);
            for inst in &b.insts {
                if self.fuel == 0 {
                    return Err(InterpError::OutOfFuel);
                }
                self.fuel -= 1;
                self.stats.steps += 1;
                match inst {
                    Inst::Copy { dst, src } => {
                        frame[dst.index()] = Self::eval(frame, layout, slot_base, *src);
                    }
                    Inst::Bin { dst, op, a, b } => {
                        let va = Self::eval(frame, layout, slot_base, *a);
                        let vb = Self::eval(frame, layout, slot_base, *b);
                        frame[dst.index()] = eval_bin(*op, va, vb)?;
                    }
                    Inst::Un { dst, op, a } => {
                        let va = Self::eval(frame, layout, slot_base, *a);
                        frame[dst.index()] = eval_un(*op, va);
                    }
                    Inst::Load {
                        dst,
                        base,
                        offset,
                        ty,
                        spec,
                        site,
                    } => {
                        let vb = Self::eval(frame, layout, slot_base, *base);
                        if vb.is_nat() {
                            if *spec == LoadSpec::Speculative {
                                frame[dst.index()] = Value::Nat;
                                continue;
                            }
                            return Err(InterpError::NatConsumed);
                        }
                        let addr = vb.as_i64() + offset;
                        if !self.addr_ok(addr) {
                            if *spec == LoadSpec::Speculative {
                                // deferred fault: NaT token (Figure 1)
                                frame[dst.index()] = Value::Nat;
                                continue;
                            }
                            return Err(InterpError::BadAddress(addr));
                        }
                        let v = coerce(self.peek(addr), *ty);
                        frame[dst.index()] = v;
                        self.stats.loads += 1;
                        obs.on_mem(&MemAccess {
                            site: *site,
                            func,
                            addr,
                            loc: self.resolve(addr),
                            value: v,
                            ty: *ty,
                            is_load: true,
                            invocation,
                        });
                    }
                    Inst::CheckLoad {
                        dst,
                        base,
                        offset,
                        ty,
                        site,
                        ..
                    } => {
                        // semantics: always reload — correctness never
                        // depends on the speculation outcome
                        let vb = Self::eval(frame, layout, slot_base, *base);
                        if vb.is_nat() {
                            return Err(InterpError::NatConsumed);
                        }
                        let addr = vb.as_i64() + offset;
                        if !self.addr_ok(addr) {
                            return Err(InterpError::BadAddress(addr));
                        }
                        let v = coerce(self.peek(addr), *ty);
                        frame[dst.index()] = v;
                        self.stats.check_loads += 1;
                        obs.on_mem(&MemAccess {
                            site: *site,
                            func,
                            addr,
                            loc: self.resolve(addr),
                            value: v,
                            ty: *ty,
                            is_load: true,
                            invocation,
                        });
                    }
                    Inst::Store {
                        base,
                        offset,
                        val,
                        ty,
                        site,
                    } => {
                        let vb = Self::eval(frame, layout, slot_base, *base);
                        if vb.is_nat() {
                            return Err(InterpError::NatConsumed);
                        }
                        let addr = vb.as_i64() + offset;
                        if !self.addr_ok(addr) {
                            return Err(InterpError::BadAddress(addr));
                        }
                        let v = Self::eval(frame, layout, slot_base, *val);
                        if v.is_nat() {
                            return Err(InterpError::NatConsumed);
                        }
                        let v = coerce(v, *ty);
                        self.poke(addr, v);
                        self.stats.stores += 1;
                        obs.on_mem(&MemAccess {
                            site: *site,
                            func,
                            addr,
                            loc: self.resolve(addr),
                            value: v,
                            ty: *ty,
                            is_load: false,
                            invocation,
                        });
                    }
                    Inst::Call {
                        dst,
                        callee,
                        args,
                        site,
                    } => {
                        let vals: Vec<Value> = args
                            .iter()
                            .map(|&a| Self::eval(frame, layout, slot_base, a))
                            .collect();
                        if vals.iter().any(|v| v.is_nat()) {
                            return Err(InterpError::NatConsumed);
                        }
                        self.stats.calls += 1;
                        obs.on_call(*site, func, *callee);
                        let r = self.call_depth(*callee, &vals, obs, depth + 1)?;
                        obs.on_return(*site);
                        if let Some(d) = dst {
                            // verifier guarantees dst implies a non-void callee
                            frame[d.index()] = r.unwrap_or(Value::I(0));
                        }
                    }
                    Inst::Alloc { dst, words, site } => {
                        let w = Self::eval(frame, layout, slot_base, *words).as_i64().max(0);
                        let base = self.heap_top;
                        let end = base + w;
                        if end > MEM_CAP {
                            return Err(InterpError::BadAddress(end));
                        }
                        self.heap_top = end;
                        self.stats.allocs += 1;
                        // extend (or create) the region for this alloc site:
                        // all objects from one site share one LOC name, so
                        // each allocation gets its own interval entry
                        self.regions.insert(base, (end, Loc::Heap(*site)));
                        frame[dst.index()] = Value::I(base);
                    }
                }
            }
            match &b.term {
                Terminator::Jump(t) => {
                    obs.on_edge(func, block, *t);
                    block = *t;
                }
                Terminator::Br { cond, then_, else_ } => {
                    let c = Self::eval(frame, layout, slot_base, *cond);
                    if c.is_nat() {
                        return Err(InterpError::NatConsumed);
                    }
                    let t = if c.as_i64() != 0 { *then_ } else { *else_ };
                    obs.on_edge(func, block, t);
                    block = t;
                }
                Terminator::Ret(v) => {
                    return Ok(v.map(|v| Self::eval(frame, layout, slot_base, v)));
                }
            }
        }
    }
}

/// Stores into typed cells keep the declared representation: an `i64` store
/// of a float value truncates, an `f64` store of an int converts. This
/// mirrors what typed memory on a real target does and keeps TBAA honest.
fn coerce(v: Value, ty: Ty) -> Value {
    match (ty, v) {
        (Ty::F64, Value::I(x)) => Value::F(x as f64),
        (Ty::F64, v) => v,
        (_, Value::F(x)) => Value::I(x as i64),
        (_, v) => v,
    }
}

fn eval_bin(op: BinOp, a: Value, b: Value) -> Result<Value, InterpError> {
    use BinOp::*;
    if a.is_nat() || b.is_nat() {
        // NaT propagates through arithmetic, as on IA-64
        return Ok(Value::Nat);
    }
    Ok(match op {
        Add => Value::I(a.as_i64().wrapping_add(b.as_i64())),
        Sub => Value::I(a.as_i64().wrapping_sub(b.as_i64())),
        Mul => Value::I(a.as_i64().wrapping_mul(b.as_i64())),
        Div => {
            let d = b.as_i64();
            if d == 0 {
                return Err(InterpError::DivByZero);
            }
            Value::I(a.as_i64().wrapping_div(d))
        }
        Mod => {
            let d = b.as_i64();
            if d == 0 {
                return Err(InterpError::DivByZero);
            }
            Value::I(a.as_i64().wrapping_rem(d))
        }
        And => Value::I(a.as_i64() & b.as_i64()),
        Or => Value::I(a.as_i64() | b.as_i64()),
        Xor => Value::I(a.as_i64() ^ b.as_i64()),
        Shl => Value::I(a.as_i64().wrapping_shl(b.as_i64() as u32)),
        Shr => Value::I(a.as_i64().wrapping_shr(b.as_i64() as u32)),
        Eq => Value::I((a.as_i64() == b.as_i64()) as i64),
        Ne => Value::I((a.as_i64() != b.as_i64()) as i64),
        Lt => Value::I((a.as_i64() < b.as_i64()) as i64),
        Le => Value::I((a.as_i64() <= b.as_i64()) as i64),
        Gt => Value::I((a.as_i64() > b.as_i64()) as i64),
        Ge => Value::I((a.as_i64() >= b.as_i64()) as i64),
        FAdd => Value::F(a.as_f64() + b.as_f64()),
        FSub => Value::F(a.as_f64() - b.as_f64()),
        FMul => Value::F(a.as_f64() * b.as_f64()),
        FDiv => Value::F(a.as_f64() / b.as_f64()),
        FEq => Value::I((a.as_f64() == b.as_f64()) as i64),
        FNe => Value::I((a.as_f64() != b.as_f64()) as i64),
        FLt => Value::I((a.as_f64() < b.as_f64()) as i64),
        FLe => Value::I((a.as_f64() <= b.as_f64()) as i64),
        FGt => Value::I((a.as_f64() > b.as_f64()) as i64),
        FGe => Value::I((a.as_f64() >= b.as_f64()) as i64),
    })
}

fn eval_un(op: UnOp, a: Value) -> Value {
    if a.is_nat() {
        return Value::Nat;
    }
    match op {
        UnOp::Neg => Value::I(a.as_i64().wrapping_neg()),
        UnOp::Not => Value::I(!a.as_i64()),
        UnOp::FNeg => Value::F(-a.as_f64()),
        UnOp::I2F => Value::F(a.as_i64() as f64),
        UnOp::F2I => Value::I(a.as_f64() as i64),
    }
}

/// Runs `func_name` with `args` and no instrumentation.
///
/// # Errors
/// See [`InterpError`].
pub fn run(
    m: &Module,
    func_name: &str,
    args: &[Value],
    fuel: u64,
) -> Result<(Option<Value>, RunStats), InterpError> {
    run_with(m, func_name, args, fuel, &mut crate::observer::NullObserver)
}

/// Runs `func_name` with `args`, streaming events to `obs`.
///
/// # Errors
/// See [`InterpError`].
pub fn run_with(
    m: &Module,
    func_name: &str,
    args: &[Value],
    fuel: u64,
    obs: &mut dyn Observer,
) -> Result<(Option<Value>, RunStats), InterpError> {
    let f = m
        .func_by_name(func_name)
        .ok_or_else(|| InterpError::NoSuchFunction(func_name.to_string()))?;
    let mut it = Interpreter::new(m, fuel);
    let r = it.call(f, args, obs)?;
    Ok((r, it.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use specframe_ir::{parse_module, ModuleBuilder, Operand};

    #[test]
    fn computes_a_sum_loop() {
        let src = r#"
func sum(n: i64) -> i64 {
  var i: i64
  var acc: i64
  var c: i64
entry:
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  acc = add acc, i
  i = add i, 1
  jmp head
exit:
  ret acc
}
"#;
        let m = parse_module(src).unwrap();
        let (r, stats) = run(&m, "sum", &[Value::I(10)], 10_000).unwrap();
        assert_eq!(r, Some(Value::I(45)));
        assert!(stats.steps > 30);
        assert_eq!(stats.loads, 0);
    }

    #[test]
    fn globals_initialized_and_stored() {
        let src = r#"
global g: i64[2] = [7, 8]

func f() -> i64 {
  var a: i64
  var b: i64
entry:
  a = load.i64 [@g]
  b = load.i64 [@g + 1]
  a = add a, b
  store.i64 [@g], a
  a = load.i64 [@g]
  ret a
}
"#;
        let m = parse_module(src).unwrap();
        let (r, stats) = run(&m, "f", &[], 1000).unwrap();
        assert_eq!(r, Some(Value::I(15)));
        assert_eq!(stats.loads, 3);
        assert_eq!(stats.stores, 1);
    }

    #[test]
    fn heap_alloc_and_pointer_walk() {
        let src = r#"
func f(n: i64) -> i64 {
  var p: ptr
  var q: ptr
  var i: i64
  var c: i64
  var acc: i64
  var v: i64
entry:
  p = alloc n
  i = 0
  jmp fill
fill:
  c = lt i, n
  br c, fbody, sum
fbody:
  q = add p, i
  store.i64 [q], i
  i = add i, 1
  jmp fill
sum:
  i = 0
  acc = 0
  jmp shead
shead:
  c = lt i, n
  br c, sbody, exit
sbody:
  q = add p, i
  v = load.i64 [q]
  acc = add acc, v
  i = add i, 1
  jmp shead
exit:
  ret acc
}
"#;
        let m = parse_module(src).unwrap();
        let (r, stats) = run(&m, "f", &[Value::I(8)], 10_000).unwrap();
        assert_eq!(r, Some(Value::I(28)));
        assert_eq!(stats.allocs, 1);
        assert_eq!(stats.loads, 8);
    }

    #[test]
    fn slots_are_per_invocation() {
        let src = r#"
func helper(v: i64) -> i64 {
  var r: i64
  slot tmp: i64[1]
entry:
  store.i64 [&tmp], v
  r = load.i64 [&tmp]
  ret r
}

func main() -> i64 {
  var a: i64
  var b: i64
entry:
  a = call helper(3)
  b = call helper(4)
  a = add a, b
  ret a
}
"#;
        let m = parse_module(src).unwrap();
        let (r, stats) = run(&m, "main", &[], 10_000).unwrap();
        assert_eq!(r, Some(Value::I(7)));
        assert_eq!(stats.calls, 2);
    }

    #[test]
    fn null_deref_faults() {
        let src = r#"
func f() -> i64 {
  var p: ptr
  var v: i64
entry:
  p = 0
  v = load.i64 [p]
  ret v
}
"#;
        let m = parse_module(src).unwrap();
        assert_eq!(
            run(&m, "f", &[], 100).unwrap_err(),
            InterpError::BadAddress(0)
        );
    }

    #[test]
    fn speculative_load_defers_fault_to_nat() {
        // ld.s of a bad address gives NaT; a later chks reloads from a good
        // address — here we only verify NaT is produced and storing it traps
        let mut mb = ModuleBuilder::new();
        let f = mb.declare_func("f", &[], Some(Ty::I64));
        {
            let mut fb = mb.define(f);
            let v = fb.var("v", Ty::I64);
            let site = {
                let s = fb.load(Operand::ConstI(0), 0, Ty::I64);
                // rewrite to speculative
                s
            };
            let _ = site;
            fb.copy_to(v, 1.into());
            fb.ret(Some(v.into()));
        }
        let mut m = mb.finish();
        // make the load speculative
        if let Inst::Load { spec, .. } = &mut m.funcs[0].blocks[0].insts[0] {
            *spec = LoadSpec::Speculative;
        }
        let (r, _) = run(&m, "f", &[], 100).unwrap();
        assert_eq!(r, Some(Value::I(1)));
    }

    #[test]
    fn nat_propagates_then_store_traps() {
        let src = r#"
func f(p: ptr) -> i64 {
  var v: i64
  var w: i64
entry:
  v = load.s.i64 [p]
  w = add v, 1
  store.i64 [@g], w
  ret w
}
global g: i64[1]
"#;
        let m = parse_module(src).unwrap();
        assert_eq!(
            run(&m, "f", &[Value::I(2)], 100).unwrap_err(),
            InterpError::NatConsumed
        );
    }

    #[test]
    fn fuel_bounds_infinite_loops() {
        let src = "func f() {\nentry:\n  jmp entry\n}";
        // a block with no instructions loops forever; give it one inst
        let src = src.replace("entry:\n", "entry:\n  x = add 0, 0\n");
        let src = src.replace("func f() {", "func f() {\n  var x: i64");
        let m = parse_module(&src).unwrap();
        assert_eq!(run(&m, "f", &[], 1000).unwrap_err(), InterpError::OutOfFuel);
    }

    #[test]
    fn float_memory_and_coercion() {
        let src = r#"
global a: f64[1] = [2.5]

func f() -> f64 {
  var x: f64
  var y: f64
entry:
  x = load.f64 [@a]
  y = fmul x, 4.0
  store.f64 [@a], y
  x = load.f64 [@a]
  ret x
}
"#;
        let m = parse_module(src).unwrap();
        let (r, _) = run(&m, "f", &[], 100).unwrap();
        assert_eq!(r, Some(Value::F(10.0)));
    }

    #[test]
    fn recursion_depth_limited() {
        let src = r#"
func f(n: i64) -> i64 {
  var r: i64
entry:
  r = call f(n)
  ret r
}
"#;
        let m = parse_module(src).unwrap();
        assert_eq!(
            run(&m, "f", &[Value::I(1)], 1_000_000).unwrap_err(),
            InterpError::StackOverflow
        );
    }

    #[test]
    fn oversized_slots_exhaust_stack() {
        let src = format!(
            "func f() {{\n  slot big: i64[{}]\nentry:\n  ret\n}}",
            STACK_WORDS + 1
        );
        let m = parse_module(&src).unwrap();
        assert_eq!(
            run(&m, "f", &[], 100).unwrap_err(),
            InterpError::StackExhausted
        );
    }

    #[test]
    fn check_loads_counted_separately() {
        let src = r#"
global g: i64[1] = [5]

func f() -> i64 {
  var a: i64
  var b: i64
entry:
  a = load.a.i64 [@g]
  b = ldc.i64 [@g]
  a = add a, b
  ret a
}
"#;
        let m = parse_module(src).unwrap();
        let (r, stats) = run(&m, "f", &[], 100).unwrap();
        assert_eq!(r, Some(Value::I(10)));
        assert_eq!(stats.loads, 1);
        assert_eq!(stats.check_loads, 1);
    }

    #[test]
    fn div_by_zero_traps() {
        let src = r#"
func f(a: i64) -> i64 {
  var r: i64
entry:
  r = div a, 0
  ret r
}
"#;
        let m = parse_module(src).unwrap();
        assert_eq!(
            run(&m, "f", &[Value::I(1)], 100).unwrap_err(),
            InterpError::DivByZero
        );
    }
}
