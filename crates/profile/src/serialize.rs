//! On-disk alias-profile serialization — treated as *untrusted input*.
//!
//! Training runs are expensive, so `specc --save-alias-profile` persists
//! an [`AliasProfile`] and `--alias-profile` reloads it in a later
//! compile. A profile file crosses a trust boundary: it may be truncated
//! by a crashed writer, hand-edited, or produced against a different
//! module revision. Ingest therefore never panics — every malformation is
//! a typed [`ProfileParseError`], and the pipeline's response to one is to
//! fall back to the §3.2.2 heuristic rules with a diagnostic, not to
//! abort.
//!
//! The format is line-oriented text (deterministic: sites sorted by id,
//! LOC sets in `BTreeSet` order):
//!
//! ```text
//! specframe-alias-profile v1
//! site 3 count 17 locs G0 S1.2 H0
//! call 5 mod G0 H1 ref G2
//! end
//! ```
//!
//! `site` lines carry a memory site's execution count and touched-LOC set
//! (`locs` may be empty); `call` lines carry a call site's transitive
//! mod/ref sets. LOC tokens reuse the [`Loc`] display syntax: `G<global>`,
//! `S<func>.<slot>`, `H<alloc-site>`. The trailing `end` is mandatory —
//! its absence is how truncation is detected.

use crate::aliasprof::AliasProfile;
use specframe_alias::Loc;
use specframe_ir::{
    AllocSiteId, CallSiteId, FuncId, FuncSlot, GlobalId, MemSiteId, Module, SlotId,
};
use std::fmt;

/// The `v1` header line.
pub const PROFILE_HEADER: &str = "specframe-alias-profile v1";

/// Why an alias-profile file was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileParseError {
    /// Missing or wrong first line.
    BadHeader,
    /// No terminating `end` line — the file was cut off mid-write.
    Truncated,
    /// A line that doesn't follow the grammar.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        msg: String,
    },
    /// A well-formed id that doesn't exist in the module being compiled
    /// (stale profile from another module revision).
    UnknownId {
        /// 1-based line number.
        line: usize,
        /// The id family: `mem site`, `call site`, `global`, `slot`,
        /// `alloc site`.
        what: &'static str,
        /// The offending token.
        token: String,
    },
    /// A negative execution count.
    NegativeCount {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for ProfileParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileParseError::BadHeader => {
                write!(f, "not an alias profile (expected `{PROFILE_HEADER}`)")
            }
            ProfileParseError::Truncated => {
                write!(f, "truncated profile (missing `end` line)")
            }
            ProfileParseError::Syntax { line, msg } => {
                write!(f, "line {line}: {msg}")
            }
            ProfileParseError::UnknownId { line, what, token } => {
                write!(f, "line {line}: unknown {what} `{token}`")
            }
            ProfileParseError::NegativeCount { line } => {
                write!(f, "line {line}: negative count")
            }
        }
    }
}

impl std::error::Error for ProfileParseError {}

/// Serializes a profile to the v1 text format. Deterministic: sites
/// ordered by id, LOC sets in their `BTreeSet` order.
pub fn write_alias_profile(p: &AliasProfile) -> String {
    let mut out = String::new();
    out.push_str(PROFILE_HEADER);
    out.push('\n');
    let mut sites: Vec<MemSiteId> = p.mem_count.keys().copied().collect();
    for s in p.mem.keys() {
        if !p.mem_count.contains_key(s) {
            sites.push(*s);
        }
    }
    sites.sort();
    sites.dedup();
    for s in sites {
        let count = p.mem_count.get(&s).copied().unwrap_or(0);
        out.push_str(&format!("site {} count {count} locs", s.0));
        if let Some(locs) = p.mem.get(&s) {
            for l in locs {
                out.push_str(&format!(" {l}"));
            }
        }
        out.push('\n');
    }
    let mut calls: Vec<CallSiteId> = p.call_mod.keys().copied().collect();
    calls.extend(p.call_ref.keys().copied());
    calls.sort();
    calls.dedup();
    for c in calls {
        out.push_str(&format!("call {} mod", c.0));
        if let Some(locs) = p.call_mod.get(&c) {
            for l in locs {
                out.push_str(&format!(" {l}"));
            }
        }
        out.push_str(" ref");
        if let Some(locs) = p.call_ref.get(&c) {
            for l in locs {
                out.push_str(&format!(" {l}"));
            }
        }
        out.push('\n');
    }
    out.push_str("end\n");
    out
}

/// Parses the v1 text format, validating every id against `m`.
///
/// # Errors
/// See [`ProfileParseError`] — truncation, syntax, ids unknown to this
/// module, negative counts.
pub fn parse_alias_profile(text: &str, m: &Module) -> Result<AliasProfile, ProfileParseError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, l)) if l.trim() == PROFILE_HEADER => {}
        _ => return Err(ProfileParseError::BadHeader),
    }
    let mut p = AliasProfile::default();
    let mut terminated = false;
    for (idx, raw) in lines {
        let line = idx + 1; // 1-based
        let l = raw.trim();
        if l.is_empty() || l.starts_with('#') {
            continue;
        }
        if terminated {
            return Err(ProfileParseError::Syntax {
                line,
                msg: format!("content after `end`: `{l}`"),
            });
        }
        if l == "end" {
            terminated = true;
            continue;
        }
        let toks: Vec<&str> = l.split_whitespace().collect();
        match toks[0] {
            "site" => parse_site_line(&toks, line, m, &mut p)?,
            "call" => parse_call_line(&toks, line, m, &mut p)?,
            other => {
                return Err(ProfileParseError::Syntax {
                    line,
                    msg: format!("expected `site`, `call` or `end`, got `{other}`"),
                })
            }
        }
    }
    if !terminated {
        return Err(ProfileParseError::Truncated);
    }
    Ok(p)
}

fn parse_site_line(
    toks: &[&str],
    line: usize,
    m: &Module,
    p: &mut AliasProfile,
) -> Result<(), ProfileParseError> {
    // site <id> count <n> locs <tok>*
    if toks.len() < 5 || toks[2] != "count" || toks[4] != "locs" {
        return Err(ProfileParseError::Syntax {
            line,
            msg: "expected `site <id> count <n> locs ...`".into(),
        });
    }
    let id: u32 = toks[1].parse().map_err(|_| ProfileParseError::Syntax {
        line,
        msg: format!("bad site id `{}`", toks[1]),
    })?;
    if id >= m.next_mem_site {
        return Err(ProfileParseError::UnknownId {
            line,
            what: "mem site",
            token: toks[1].to_string(),
        });
    }
    let count: i64 = toks[3].parse().map_err(|_| ProfileParseError::Syntax {
        line,
        msg: format!("bad count `{}`", toks[3]),
    })?;
    if count < 0 {
        return Err(ProfileParseError::NegativeCount { line });
    }
    let site = MemSiteId(id);
    *p.mem_count.entry(site).or_insert(0) += count as u64;
    let set = p.mem.entry(site).or_default();
    for t in &toks[5..] {
        set.insert(parse_loc(t, line, m)?);
    }
    Ok(())
}

fn parse_call_line(
    toks: &[&str],
    line: usize,
    m: &Module,
    p: &mut AliasProfile,
) -> Result<(), ProfileParseError> {
    // call <id> mod <tok>* ref <tok>*
    if toks.len() < 3 || toks[2] != "mod" {
        return Err(ProfileParseError::Syntax {
            line,
            msg: "expected `call <id> mod ... ref ...`".into(),
        });
    }
    let id: u32 = toks[1].parse().map_err(|_| ProfileParseError::Syntax {
        line,
        msg: format!("bad call site id `{}`", toks[1]),
    })?;
    if id >= m.next_call_site {
        return Err(ProfileParseError::UnknownId {
            line,
            what: "call site",
            token: toks[1].to_string(),
        });
    }
    let Some(ref_pos) = toks.iter().position(|&t| t == "ref") else {
        return Err(ProfileParseError::Syntax {
            line,
            msg: "missing `ref` section".into(),
        });
    };
    let site = CallSiteId(id);
    let mods = p.call_mod.entry(site).or_default();
    for t in &toks[3..ref_pos] {
        mods.insert(parse_loc(t, line, m)?);
    }
    let refs = p.call_ref.entry(site).or_default();
    for t in &toks[ref_pos + 1..] {
        refs.insert(parse_loc(t, line, m)?);
    }
    Ok(())
}

/// Parses one LOC token (`G<n>`, `S<f>.<s>`, `H<n>`), validating indices
/// against the module.
fn parse_loc(t: &str, line: usize, m: &Module) -> Result<Loc, ProfileParseError> {
    let syntax = || ProfileParseError::Syntax {
        line,
        msg: format!("bad LOC token `{t}`"),
    };
    let unknown = |what: &'static str| ProfileParseError::UnknownId {
        line,
        what,
        token: t.to_string(),
    };
    match t.as_bytes().first() {
        Some(b'G') => {
            let i: usize = t[1..].parse().map_err(|_| syntax())?;
            if i >= m.globals.len() {
                return Err(unknown("global"));
            }
            Ok(Loc::Global(GlobalId::from_index(i)))
        }
        Some(b'S') => {
            let (fs, ss) = t[1..].split_once('.').ok_or_else(syntax)?;
            let fi: usize = fs.parse().map_err(|_| syntax())?;
            let si: usize = ss.parse().map_err(|_| syntax())?;
            if fi >= m.funcs.len() || si >= m.funcs[fi].slots.len() {
                return Err(unknown("slot"));
            }
            Ok(Loc::Slot(FuncSlot {
                func: FuncId::from_index(fi),
                slot: SlotId(si as u32),
            }))
        }
        Some(b'H') => {
            let i: u32 = t[1..].parse().map_err(|_| syntax())?;
            if i >= m.next_alloc_site {
                return Err(unknown("alloc site"));
            }
            Ok(Loc::Heap(AllocSiteId(i)))
        }
        _ => Err(syntax()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aliasprof::AliasProfiler;
    use crate::interp::run_with;
    use specframe_ir::{parse_module, Value};

    const SRC: &str = r#"
global a: i64[1]
global b: i64[1]

func leaf(sel: i64) -> i64 {
  var p: ptr
  var v: i64
entry:
  br sel, yes, no
yes:
  p = @a
  jmp go
no:
  p = @b
  jmp go
go:
  v = load.i64 [p]
  ret v
}

func main(sel: i64) -> i64 {
  var r: i64
entry:
  r = call leaf(sel)
  ret r
}
"#;

    fn profile_and_module() -> (AliasProfile, Module) {
        let m = parse_module(SRC).unwrap();
        let mut prof = AliasProfiler::new();
        run_with(&m, "main", &[Value::I(1)], 10_000, &mut prof).unwrap();
        run_with(&m, "main", &[Value::I(0)], 10_000, &mut prof).unwrap();
        (prof.finish(), m)
    }

    #[test]
    fn roundtrip_preserves_profile() {
        let (p, m) = profile_and_module();
        let text = write_alias_profile(&p);
        assert!(text.starts_with(PROFILE_HEADER));
        assert!(text.ends_with("end\n"));
        let q = parse_alias_profile(&text, &m).unwrap();
        assert_eq!(p.mem, q.mem);
        assert_eq!(p.mem_count, q.mem_count);
        assert_eq!(p.call_mod, q.call_mod);
        assert_eq!(p.call_ref, q.call_ref);
        // serialization is deterministic
        assert_eq!(text, write_alias_profile(&q));
    }

    #[test]
    fn truncated_file_detected() {
        let (p, m) = profile_and_module();
        let text = write_alias_profile(&p);
        // cut off the terminator — like a writer killed mid-flush
        let cut = text.strip_suffix("end\n").unwrap();
        assert_eq!(
            parse_alias_profile(cut, &m),
            Err(ProfileParseError::Truncated)
        );
        // cutting mid-line is Truncated or Syntax, never a panic
        for n in [10, cut.len() / 2, cut.len().saturating_sub(3)] {
            let prefix = &cut[..n.min(cut.len())];
            assert!(parse_alias_profile(prefix, &m).is_err(), "prefix {n}");
        }
    }

    #[test]
    fn unknown_ids_rejected() {
        let (_, m) = profile_and_module();
        let bad_site = format!("{PROFILE_HEADER}\nsite 9999 count 1 locs G0\nend\n");
        assert!(matches!(
            parse_alias_profile(&bad_site, &m),
            Err(ProfileParseError::UnknownId {
                what: "mem site",
                ..
            })
        ));
        let bad_loc = format!("{PROFILE_HEADER}\nsite 0 count 1 locs G7\nend\n");
        assert!(matches!(
            parse_alias_profile(&bad_loc, &m),
            Err(ProfileParseError::UnknownId { what: "global", .. })
        ));
        let bad_slot = format!("{PROFILE_HEADER}\nsite 0 count 1 locs S0.9\nend\n");
        assert!(matches!(
            parse_alias_profile(&bad_slot, &m),
            Err(ProfileParseError::UnknownId { what: "slot", .. })
        ));
        let bad_call = format!("{PROFILE_HEADER}\ncall 50 mod ref\nend\n");
        assert!(matches!(
            parse_alias_profile(&bad_call, &m),
            Err(ProfileParseError::UnknownId {
                what: "call site",
                ..
            })
        ));
    }

    #[test]
    fn negative_count_rejected() {
        let (_, m) = profile_and_module();
        let text = format!("{PROFILE_HEADER}\nsite 0 count -3 locs\nend\n");
        assert_eq!(
            parse_alias_profile(&text, &m),
            Err(ProfileParseError::NegativeCount { line: 2 })
        );
    }

    #[test]
    fn garbage_rejected_with_position() {
        let (_, m) = profile_and_module();
        assert_eq!(
            parse_alias_profile("", &m),
            Err(ProfileParseError::BadHeader)
        );
        assert_eq!(
            parse_alias_profile("my profile\n", &m),
            Err(ProfileParseError::BadHeader)
        );
        let text = format!("{PROFILE_HEADER}\nwibble 1 2 3\nend\n");
        assert!(matches!(
            parse_alias_profile(&text, &m),
            Err(ProfileParseError::Syntax { line: 2, .. })
        ));
        let text = format!("{PROFILE_HEADER}\nend\nsite 0 count 1 locs\n");
        assert!(matches!(
            parse_alias_profile(&text, &m),
            Err(ProfileParseError::Syntax { line: 3, .. })
        ));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let (_, m) = profile_and_module();
        let text = format!("{PROFILE_HEADER}\n\n# a comment\nsite 0 count 2 locs G0\n\nend\n");
        let p = parse_alias_profile(&text, &m).unwrap();
        assert_eq!(p.mem_count[&MemSiteId(0)], 2);
    }

    #[test]
    fn parsed_profile_drives_compilation() {
        // the reloaded profile must be usable exactly like a fresh one
        let (p, m) = profile_and_module();
        let text = write_alias_profile(&p);
        let q = parse_alias_profile(&text, &m).unwrap();
        let site = *p.mem.keys().next().unwrap();
        assert_eq!(p.locs(site), q.locs(site));
        assert_eq!(p.site_executed(site), q.site_executed(site));
    }
}
