//! The alias profiler (§3.2.1 of the paper).
//!
//! For every static memory-reference site, the profiler records the set of
//! abstract memory locations (LOCs) the site actually touched during the
//! run; for every call site it records the modified and referenced LOC
//! sets. `specframe-hssa` later compares these dynamic sets against the
//! compile-time χ/μ lists to place speculation flags: a may-alias that
//! *never happened* in the profile becomes a speculative weak update that
//! optimizations may ignore.
//!
//! The paper contrasts this scheme with Wu–Lee invalidation profiling,
//! which monitors every reference pair-wise and "could slow down the
//! program execution by an order of magnitude"; recording per-site LOC sets
//! is the cheaper alternative the authors advocate.

use crate::observer::{MemAccess, Observer};
use specframe_alias::{Loc, LocSet};
use specframe_ir::{CallSiteId, FuncId, MemSiteId};
use std::collections::HashMap;

/// The collected alias profile.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct AliasProfile {
    /// Per memory site: LOCs it touched.
    pub mem: HashMap<MemSiteId, LocSet>,
    /// Per memory site: how many times it executed.
    pub mem_count: HashMap<MemSiteId, u64>,
    /// Per call site: LOCs modified during the call (transitively).
    pub call_mod: HashMap<CallSiteId, LocSet>,
    /// Per call site: LOCs referenced during the call (transitively).
    pub call_ref: HashMap<CallSiteId, LocSet>,
}

impl AliasProfile {
    /// The profiled LOC set of a memory site (empty if never executed).
    pub fn locs(&self, site: MemSiteId) -> Option<&LocSet> {
        self.mem.get(&site)
    }

    /// Whether `site` ever touched `loc` in the profile.
    pub fn touched(&self, site: MemSiteId, loc: Loc) -> bool {
        self.mem.get(&site).is_some_and(|s| s.contains(&loc))
    }

    /// Whether the profile saw `site` execute at all. Sites that never
    /// executed carry no evidence — the speculative SSA construction treats
    /// their aliases conservatively.
    pub fn site_executed(&self, site: MemSiteId) -> bool {
        self.mem_count.get(&site).copied().unwrap_or(0) > 0
    }

    /// Merges another profile (e.g. from a second training input) into
    /// this one.
    pub fn merge(&mut self, other: &AliasProfile) {
        for (s, locs) in &other.mem {
            self.mem.entry(*s).or_default().extend(locs.iter().copied());
        }
        for (s, n) in &other.mem_count {
            *self.mem_count.entry(*s).or_insert(0) += n;
        }
        for (s, locs) in &other.call_mod {
            self.call_mod
                .entry(*s)
                .or_default()
                .extend(locs.iter().copied());
        }
        for (s, locs) in &other.call_ref {
            self.call_ref
                .entry(*s)
                .or_default()
                .extend(locs.iter().copied());
        }
    }
}

/// Observer that builds an [`AliasProfile`].
#[derive(Debug, Default)]
pub struct AliasProfiler {
    profile: AliasProfile,
    /// Call sites currently on the dynamic call stack; every access inside
    /// the callee is charged to each enclosing site's mod/ref set.
    active_calls: Vec<CallSiteId>,
}

impl AliasProfiler {
    /// A fresh profiler.
    pub fn new() -> AliasProfiler {
        AliasProfiler::default()
    }

    /// Consumes the profiler and yields the profile.
    pub fn finish(self) -> AliasProfile {
        self.profile
    }

    /// Borrow the profile mid-run.
    pub fn profile(&self) -> &AliasProfile {
        &self.profile
    }
}

impl Observer for AliasProfiler {
    fn on_mem(&mut self, a: &MemAccess) {
        *self.profile.mem_count.entry(a.site).or_insert(0) += 1;
        if let Some(loc) = a.loc {
            self.profile.mem.entry(a.site).or_default().insert(loc);
            for &cs in &self.active_calls {
                if a.is_load {
                    self.profile.call_ref.entry(cs).or_default().insert(loc);
                } else {
                    self.profile.call_mod.entry(cs).or_default().insert(loc);
                }
            }
        } else {
            self.profile.mem.entry(a.site).or_default();
        }
    }

    fn on_call(&mut self, site: CallSiteId, _caller: FuncId, _callee: FuncId) {
        self.active_calls.push(site);
        self.profile.call_mod.entry(site).or_default();
        self.profile.call_ref.entry(site).or_default();
    }

    fn on_return(&mut self, site: CallSiteId) {
        let popped = self.active_calls.pop();
        debug_assert_eq!(popped, Some(site));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run_with;
    use specframe_ir::{parse_module, Value};

    #[test]
    fn records_loc_sets_per_site() {
        let src = r#"
global a: i64[1]
global b: i64[1]

func f(sel: i64) -> i64 {
  var p: ptr
  var v: i64
entry:
  br sel, yes, no
yes:
  p = @a
  jmp go
no:
  p = @b
  jmp go
go:
  v = load.i64 [p]
  ret v
}
"#;
        let m = parse_module(src).unwrap();
        let mut prof = AliasProfiler::new();
        run_with(&m, "f", &[Value::I(1)], 1000, &mut prof).unwrap();
        run_with(&m, "f", &[Value::I(0)], 1000, &mut prof).unwrap();
        let p = prof.finish();
        // the single load site saw both globals
        let site = p.mem.keys().next().copied().unwrap();
        assert_eq!(p.locs(site).unwrap().len(), 2);
        assert_eq!(p.mem_count[&site], 2);
    }

    #[test]
    fn profile_reflects_input_sensitivity() {
        let src = r#"
global a: i64[1]
global b: i64[1]

func f(sel: i64) -> i64 {
  var p: ptr
  var v: i64
entry:
  br sel, yes, no
yes:
  p = @a
  jmp go
no:
  p = @b
  jmp go
go:
  v = load.i64 [p]
  ret v
}
"#;
        let m = parse_module(src).unwrap();
        let mut prof = AliasProfiler::new();
        run_with(&m, "f", &[Value::I(1)], 1000, &mut prof).unwrap();
        let p = prof.finish();
        let site = p.mem.keys().next().copied().unwrap();
        // only @a observed — this is exactly the imperfect information the
        // paper says requires data-speculation support
        assert_eq!(p.locs(site).unwrap().len(), 1);
    }

    #[test]
    fn call_sites_accumulate_mod_ref() {
        let src = r#"
global g: i64[1]

func set() {
entry:
  store.i64 [@g], 1
  ret
}

func get() -> i64 {
  var v: i64
entry:
  v = load.i64 [@g]
  ret v
}

func main() -> i64 {
  var v: i64
entry:
  call set()
  v = call get()
  ret v
}
"#;
        let m = parse_module(src).unwrap();
        let mut prof = AliasProfiler::new();
        run_with(&m, "main", &[], 1000, &mut prof).unwrap();
        let p = prof.finish();
        // two call sites: set (mods g) and get (refs g)
        let mods: Vec<_> = p.call_mod.values().filter(|s| !s.is_empty()).collect();
        let refs: Vec<_> = p.call_ref.values().filter(|s| !s.is_empty()).collect();
        assert_eq!(mods.len(), 1);
        assert_eq!(refs.len(), 1);
    }

    #[test]
    fn merge_unions_loc_sets() {
        let src = r#"
global a: i64[1]
global b: i64[1]

func f(sel: i64) -> i64 {
  var p: ptr
  var v: i64
entry:
  br sel, yes, no
yes:
  p = @a
  jmp go
no:
  p = @b
  jmp go
go:
  v = load.i64 [p]
  ret v
}
"#;
        let m = parse_module(src).unwrap();
        let mut p1 = AliasProfiler::new();
        run_with(&m, "f", &[Value::I(1)], 1000, &mut p1).unwrap();
        let mut p2 = AliasProfiler::new();
        run_with(&m, "f", &[Value::I(0)], 1000, &mut p2).unwrap();
        let mut a = p1.finish();
        a.merge(&p2.finish());
        let site = a.mem.keys().next().copied().unwrap();
        assert_eq!(a.locs(site).unwrap().len(), 2);
        assert_eq!(a.mem_count[&site], 2);
    }
}
