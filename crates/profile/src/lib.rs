//! # specframe-profile
//!
//! The dynamic half of the paper's framework: a reference interpreter for
//! the IR plus the profiling observers that feed the speculative SSA
//! construction (Figure 3's "alias profile" and "edge/path profile" inputs)
//! and the load-reuse study of §5.3.
//!
//! * [`interp`] — the IR interpreter: word-addressed memory, call frames,
//!   heap, NaT semantics for control-speculative loads. It doubles as the
//!   semantic oracle in tests: optimized programs must compute exactly what
//!   the interpreter computes.
//! * [`observer`] — instrumentation hooks streamed during execution.
//! * [`aliasprof`] — the **alias profiler** (§3.2.1): per memory-reference
//!   site, the set of abstract memory locations (LOCs) it touched; per call
//!   site, the modified/referenced LOC sets.
//! * [`edgeprof`] — edge profiling for control speculation.
//! * [`reuse`] — the simulation-based potential-load-reduction estimator
//!   used by Figure 12 (after Bodík et al.'s load-reuse analysis).

pub mod aliasprof;
pub mod edgeprof;
pub mod interp;
pub mod observer;
pub mod reuse;
pub mod serialize;

pub use aliasprof::{AliasProfile, AliasProfiler};
pub use edgeprof::EdgeProfiler;
pub use interp::{run, run_with, InterpError, Interpreter, RunStats};
pub use observer::{MemAccess, NullObserver, Observer};
pub use reuse::{ReuseReport, ReuseSimulator};
pub use serialize::{parse_alias_profile, write_alias_profile, ProfileParseError, PROFILE_HEADER};
