//! Simulation-based potential-load-reduction estimator (§5.3, Figure 12).
//!
//! The paper instruments every memory reference and tracks, per *equivalence
//! class* of references, whether consecutive loads to the same address
//! return the same value within one procedure invocation — each such load
//! could in principle have been kept in a register by a (speculative)
//! register promoter. Classes follow the paper's definition: references
//! with identical names (scalars/direct accesses) or identical syntax trees
//! (indirect accesses through the same base register and offset).
//!
//! The estimate is an *upper bound* oracle: it sees dynamic values, so it
//! counts reuse across aliasing stores that happened not to change the
//! value — exactly the headroom speculative promotion with `ld.c` checks
//! can chase.

use crate::observer::{MemAccess, Observer};
use specframe_ir::{FuncId, Inst, MemSiteId, Module, Operand, Value};
use std::collections::HashMap;

/// Static equivalence-class key for one memory reference site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ClassKey {
    Direct(FuncId, Operandish, i64),
    Indirect(FuncId, u32, i64),
}

/// Hash-friendly projection of base operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Operandish {
    Global(u32),
    Slot(u32),
}

/// Result of the reuse simulation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReuseReport {
    /// Dynamic loads observed.
    pub total_loads: u64,
    /// Loads whose value was available from the previous load of their
    /// equivalence class (same address, same value, same invocation).
    pub redundant_loads: u64,
}

impl ReuseReport {
    /// Fraction of loads that were potentially removable, in `[0, 1]`.
    pub fn ratio(&self) -> f64 {
        if self.total_loads == 0 {
            0.0
        } else {
            self.redundant_loads as f64 / self.total_loads as f64
        }
    }
}

/// Observer implementing the §5.3 simulation method.
#[derive(Debug)]
pub struct ReuseSimulator {
    site_class: HashMap<MemSiteId, u32>,
    /// Per class: (address, value, invocation) of the previous load.
    last: Vec<Option<(i64, Value, u64)>>,
    report: ReuseReport,
}

impl ReuseSimulator {
    /// Builds the static equivalence classes for `m` and a fresh simulator.
    pub fn new(m: &Module) -> ReuseSimulator {
        let mut keys: HashMap<ClassKey, u32> = HashMap::new();
        let mut site_class = HashMap::new();
        for (fi, f) in m.funcs.iter().enumerate() {
            let fid = FuncId::from_index(fi);
            for b in &f.blocks {
                for inst in &b.insts {
                    let (site, base, offset) = match inst {
                        Inst::Load {
                            site, base, offset, ..
                        }
                        | Inst::CheckLoad {
                            site, base, offset, ..
                        } => (*site, *base, *offset),
                        _ => continue,
                    };
                    let key = match base {
                        Operand::Var(v) => ClassKey::Indirect(fid, v.0, offset),
                        Operand::GlobalAddr(g) => {
                            ClassKey::Direct(fid, Operandish::Global(g.0), offset)
                        }
                        Operand::SlotAddr(s) => {
                            ClassKey::Direct(fid, Operandish::Slot(s.0), offset)
                        }
                        _ => continue,
                    };
                    let next = keys.len() as u32;
                    let class = *keys.entry(key).or_insert(next);
                    site_class.insert(site, class);
                }
            }
        }
        let n = keys.len();
        ReuseSimulator {
            site_class,
            last: vec![None; n],
            report: ReuseReport::default(),
        }
    }

    /// The report accumulated so far.
    pub fn report(&self) -> ReuseReport {
        self.report
    }
}

impl Observer for ReuseSimulator {
    fn on_mem(&mut self, a: &MemAccess) {
        if !a.is_load {
            return;
        }
        self.report.total_loads += 1;
        let Some(&class) = self.site_class.get(&a.site) else {
            return;
        };
        let slot = &mut self.last[class as usize];
        if let Some((addr, value, inv)) = slot {
            if *addr == a.addr && value.bits_eq(a.value) && *inv == a.invocation {
                self.report.redundant_loads += 1;
            }
        }
        *slot = Some((a.addr, a.value, a.invocation));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run_with;
    use specframe_ir::parse_module;

    #[test]
    fn loop_invariant_load_is_reusable() {
        // v[i] pattern where the load address and value never change:
        // every iteration after the first is a potential reuse
        let src = r#"
global a: i64[1] = [42]

func f(n: i64) -> i64 {
  var i: i64
  var c: i64
  var v: i64
  var acc: i64
entry:
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  v = load.i64 [@a]
  acc = add acc, v
  i = add i, 1
  jmp head
exit:
  ret acc
}
"#;
        let m = parse_module(src).unwrap();
        let mut sim = ReuseSimulator::new(&m);
        run_with(&m, "f", &[Value::I(10)], 10_000, &mut sim).unwrap();
        let r = sim.report();
        assert_eq!(r.total_loads, 10);
        assert_eq!(r.redundant_loads, 9);
        assert!((r.ratio() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn value_change_breaks_reuse() {
        let src = r#"
global a: i64[1]

func f(n: i64) -> i64 {
  var i: i64
  var c: i64
  var v: i64
entry:
  i = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  v = load.i64 [@a]
  v = add v, 1
  store.i64 [@a], v
  i = add i, 1
  jmp head
exit:
  ret i
}
"#;
        let m = parse_module(src).unwrap();
        let mut sim = ReuseSimulator::new(&m);
        run_with(&m, "f", &[Value::I(10)], 10_000, &mut sim).unwrap();
        let r = sim.report();
        assert_eq!(r.total_loads, 10);
        assert_eq!(r.redundant_loads, 0);
    }

    #[test]
    fn silent_store_keeps_reuse_visible() {
        // a store that rewrites the same value does NOT break value-based
        // reuse — this is precisely the headroom data speculation exposes
        let src = r#"
global a: i64[1] = [5]

func f(n: i64) -> i64 {
  var i: i64
  var c: i64
  var v: i64
entry:
  i = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  v = load.i64 [@a]
  store.i64 [@a], 5
  i = add i, 1
  jmp head
exit:
  ret i
}
"#;
        let m = parse_module(src).unwrap();
        let mut sim = ReuseSimulator::new(&m);
        run_with(&m, "f", &[Value::I(8)], 10_000, &mut sim).unwrap();
        let r = sim.report();
        assert_eq!(r.redundant_loads, 7);
    }

    #[test]
    fn different_sites_same_syntax_share_class() {
        // two textual loads of [@a] are the same "syntax tree": the second
        // load in each iteration reuses the first
        let src = r#"
global a: i64[1] = [3]

func f() -> i64 {
  var x: i64
  var y: i64
entry:
  x = load.i64 [@a]
  y = load.i64 [@a]
  x = add x, y
  ret x
}
"#;
        let m = parse_module(src).unwrap();
        let mut sim = ReuseSimulator::new(&m);
        run_with(&m, "f", &[], 1000, &mut sim).unwrap();
        let r = sim.report();
        assert_eq!(r.total_loads, 2);
        assert_eq!(r.redundant_loads, 1);
    }

    #[test]
    fn reuse_does_not_cross_invocations() {
        let src = r#"
global a: i64[1] = [3]

func g() -> i64 {
  var x: i64
entry:
  x = load.i64 [@a]
  ret x
}

func f() -> i64 {
  var x: i64
  var y: i64
entry:
  x = call g()
  y = call g()
  x = add x, y
  ret x
}
"#;
        let m = parse_module(src).unwrap();
        let mut sim = ReuseSimulator::new(&m);
        run_with(&m, "f", &[], 1000, &mut sim).unwrap();
        let r = sim.report();
        assert_eq!(r.total_loads, 2);
        // same site, same address, same value — but different invocations
        assert_eq!(r.redundant_loads, 0);
    }
}
