//! Instrumentation hooks for the interpreter.

use specframe_alias::Loc;
use specframe_ir::{BlockId, CallSiteId, FuncId, MemSiteId, Ty, Value};

/// One dynamic memory access, as seen by observers.
#[derive(Debug, Clone, Copy)]
pub struct MemAccess {
    /// The static reference site.
    pub site: MemSiteId,
    /// Executing function.
    pub func: FuncId,
    /// Absolute word address touched.
    pub addr: i64,
    /// The abstract location the address resolves to, when the address lies
    /// in a named region (globals, live slots, heap objects).
    pub loc: Option<Loc>,
    /// Value loaded or stored.
    pub value: Value,
    /// Access type.
    pub ty: Ty,
    /// `true` for loads and check loads, `false` for stores.
    pub is_load: bool,
    /// Monotone counter distinguishing procedure invocations (the reuse
    /// simulator only pairs loads within one invocation, following §5.3).
    pub invocation: u64,
}

/// Execution events streamed by the interpreter.
///
/// All methods default to no-ops so observers implement only what they
/// need.
pub trait Observer {
    /// A CFG edge `from -> to` was traversed in `func`.
    fn on_edge(&mut self, _func: FuncId, _from: BlockId, _to: BlockId) {}

    /// A function was entered (before its first block runs).
    fn on_entry(&mut self, _func: FuncId, _invocation: u64) {}

    /// A call site is about to transfer control.
    fn on_call(&mut self, _site: CallSiteId, _caller: FuncId, _callee: FuncId) {}

    /// The matching call site returned.
    fn on_return(&mut self, _site: CallSiteId) {}

    /// A load, store or check load executed.
    fn on_mem(&mut self, _access: &MemAccess) {}
}

/// An observer that records nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl Observer for NullObserver {}

/// Fans events out to several observers.
pub struct Compose<'a>(pub Vec<&'a mut dyn Observer>);

impl Observer for Compose<'_> {
    fn on_edge(&mut self, func: FuncId, from: BlockId, to: BlockId) {
        for o in &mut self.0 {
            o.on_edge(func, from, to);
        }
    }

    fn on_entry(&mut self, func: FuncId, invocation: u64) {
        for o in &mut self.0 {
            o.on_entry(func, invocation);
        }
    }

    fn on_call(&mut self, site: CallSiteId, caller: FuncId, callee: FuncId) {
        for o in &mut self.0 {
            o.on_call(site, caller, callee);
        }
    }

    fn on_return(&mut self, site: CallSiteId) {
        for o in &mut self.0 {
            o.on_return(site);
        }
    }

    fn on_mem(&mut self, access: &MemAccess) {
        for o in &mut self.0 {
            o.on_mem(access);
        }
    }
}
