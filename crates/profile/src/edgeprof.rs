//! Edge profiling observer.
//!
//! Fills the shared [`EdgeProfile`] representation from an actual execution;
//! the paper's SSAPRE uses this to pick profitable merge points for control
//! speculation ("the edge profile of the program can be used to select the
//! appropriate merge points for insertion", §4.1).

use crate::observer::Observer;
use specframe_analysis::EdgeProfile;
use specframe_ir::{BlockId, FuncId};

/// Observer that counts CFG edge traversals and function entries.
#[derive(Debug, Default)]
pub struct EdgeProfiler {
    profile: EdgeProfile,
}

impl EdgeProfiler {
    /// A fresh profiler.
    pub fn new() -> EdgeProfiler {
        EdgeProfiler::default()
    }

    /// Consumes the profiler and yields the profile.
    pub fn finish(self) -> EdgeProfile {
        self.profile
    }

    /// Borrow the profile mid-run.
    pub fn profile(&self) -> &EdgeProfile {
        &self.profile
    }
}

impl Observer for EdgeProfiler {
    fn on_edge(&mut self, func: FuncId, from: BlockId, to: BlockId) {
        self.profile.record_edge(func, from, to);
    }

    fn on_entry(&mut self, func: FuncId, _invocation: u64) {
        self.profile.record_entry(func);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run_with;
    use specframe_ir::{parse_module, Value};

    #[test]
    fn loop_edges_dominate() {
        let src = r#"
func f(n: i64) -> i64 {
  var i: i64
  var c: i64
entry:
  i = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  i = add i, 1
  jmp head
exit:
  ret i
}
"#;
        let m = parse_module(src).unwrap();
        let mut prof = EdgeProfiler::new();
        run_with(&m, "f", &[Value::I(50)], 10_000, &mut prof).unwrap();
        let p = prof.finish();
        let f = FuncId(0);
        assert_eq!(p.entry_count(f), 1);
        assert_eq!(p.edge_count(f, BlockId(1), BlockId(2)), 50);
        assert_eq!(p.edge_count(f, BlockId(1), BlockId(3)), 1);
        let prob = p
            .edge_probability(f, &m.funcs[0], BlockId(1), BlockId(2))
            .unwrap();
        assert!(prob > 0.97);
    }

    #[test]
    fn matches_static_estimate_shape() {
        // the dynamic profile and the static heuristic must agree on which
        // successor of the loop header is hot
        let src = r#"
func f(n: i64) -> i64 {
  var i: i64
  var c: i64
entry:
  i = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  i = add i, 1
  jmp head
exit:
  ret i
}
"#;
        let m = parse_module(src).unwrap();
        let mut prof = EdgeProfiler::new();
        run_with(&m, "f", &[Value::I(30)], 10_000, &mut prof).unwrap();
        let dynamic = prof.finish();
        let statics = specframe_analysis::estimate_profile(&m);
        let f = FuncId(0);
        let dyn_hot = dynamic.edge_count(f, BlockId(1), BlockId(2))
            > dynamic.edge_count(f, BlockId(1), BlockId(3));
        let stat_hot = statics.edge_count(f, BlockId(1), BlockId(2))
            > statics.edge_count(f, BlockId(1), BlockId(3));
        assert_eq!(dyn_hot, stat_hot);
    }
}
