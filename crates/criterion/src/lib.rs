//! A dependency-free subset of the `criterion` API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the slice of criterion it uses as a local crate with the same
//! name: `Criterion`, benchmark groups, `BenchmarkId`, `Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros.
//!
//! Statistics are deliberately simple: after a warm-up window, `iter`
//! closures run until the measurement window elapses (at least
//! `sample_size` times) and the harness reports min / mean / max
//! per-iteration wall time on stdout in a stable, greppable format:
//!
//! ```text
//! bench group/id ... mean 12.345 µs (min 11.8 µs, max 14.1 µs, 240 iters)
//! ```

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_id/parameter`.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Builds a parameterless id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// The benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 50,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(900),
        }
    }
}

impl Criterion {
    /// Minimum number of measured iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up window before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up = d;
        self
    }

    /// Measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement = d;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Registers a group-less benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_bench(self, &id.to_string(), &mut f);
        println!("{report}");
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` against a shared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let report = run_bench(self.criterion, &label, &mut |b: &mut Bencher| {
            b_input(b, input, &mut f)
        });
        println!("{report}");
        self
    }

    /// Benchmarks a closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let report = run_bench(self.criterion, &label, &mut f);
        println!("{report}");
        self
    }

    /// Ends the group (formatting no-op; kept for API parity).
    pub fn finish(self) {}
}

fn b_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(b: &mut Bencher, input: &I, f: &mut F) {
    f(b, input)
}

/// Passed to the benchmarked closure; collects per-iteration timings.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples_ns: Vec<u64>,
}

impl Bencher {
    /// Times `f` repeatedly: warm-up first, then measure until the window
    /// elapses and at least `sample_size` iterations ran.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            std_black_box(f());
        }
        let measure_start = Instant::now();
        while self.samples_ns.len() < self.sample_size || measure_start.elapsed() < self.measurement
        {
            let t = Instant::now();
            std_black_box(f());
            self.samples_ns.push(t.elapsed().as_nanos() as u64);
            // hard cap so pathologically fast bodies cannot grow unbounded
            if self.samples_ns.len() >= 1_000_000 {
                break;
            }
        }
    }
}

fn run_bench(c: &Criterion, label: &str, f: &mut dyn FnMut(&mut Bencher)) -> String {
    let mut b = Bencher {
        warm_up: c.warm_up,
        measurement: c.measurement,
        sample_size: c.sample_size,
        samples_ns: Vec::new(),
    };
    f(&mut b);
    if b.samples_ns.is_empty() {
        return format!("bench {label} ... no samples (iter was never called)");
    }
    let n = b.samples_ns.len() as u64;
    let sum: u64 = b.samples_ns.iter().sum();
    let min = *b.samples_ns.iter().min().unwrap();
    let max = *b.samples_ns.iter().max().unwrap();
    format!(
        "bench {label} ... mean {} (min {}, max {}, {} iters)",
        fmt_ns(sum / n),
        fmt_ns(min),
        fmt_ns(max),
        n
    )
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares the benchmark entry function from a config and target list.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` from one or more group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_mean() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("g");
        // runs without panicking and records at least sample_size samples
        g.bench_with_input(BenchmarkId::new("id", "param"), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }

    #[test]
    fn id_formats_as_path() {
        assert_eq!(BenchmarkId::new("jobs", 8).to_string(), "jobs/8");
    }
}
