//! # specframe-workloads
//!
//! Synthetic kernels with the *memory-aliasing personalities* of the eight
//! SPEC2000 benchmarks the paper evaluates (§5.2: ammp, art, equake, gzip,
//! mcf, twolf, plus vpr and parser). The paper ran the real benchmarks on
//! real Itanium hardware; those inputs and that hardware are unavailable
//! here, so each kernel is built to reproduce the property that actually
//! drives the paper's numbers: **which fraction of its dynamic loads sit
//! behind a may-alias that almost never (or sometimes!) materializes at
//! run time**.
//!
//! Two structural devices create honest may-aliases for the Steensgaard
//! analysis, mirroring what C does to ORC's analysis:
//!
//! * **pointer tables** — data arrays are reached through pointers stored
//!   in a common global table, which puts all of them into one alias class
//!   (like C pointers loaded from a shared struct);
//! * **selected pointers** — a pointer that runtime-selects between
//!   targets, only one of which is hot.
//!
//! Every workload is a self-contained IR module with a `main(scale)` that
//! builds its data and runs the kernel; all are deterministic.

pub mod kernels;
pub mod megamod;

pub use kernels::{all_workloads, workload_by_name, Scale, Workload};
pub use megamod::{inst_count, mega_module, mega_source};

#[cfg(test)]
mod tests {
    use super::*;
    use specframe_ir::verify_module;
    use specframe_profile::run;

    #[test]
    fn all_workloads_build_verify_and_run() {
        for w in all_workloads(Scale::Test) {
            verify_module(&w.module).unwrap_or_else(|e| panic!("{}: verify failed: {e}", w.name));
            let (r, stats) = run(&w.module, w.entry, &w.ref_args, w.fuel)
                .unwrap_or_else(|e| panic!("{}: run failed: {e}", w.name));
            assert!(r.is_some(), "{}: kernel must return a checksum", w.name);
            assert!(
                stats.loads > 100,
                "{}: kernel must actually do memory work ({} loads)",
                w.name,
                stats.loads
            );
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        for w in all_workloads(Scale::Test) {
            let (a, _) = run(&w.module, w.entry, &w.ref_args, w.fuel).unwrap();
            let (b, _) = run(&w.module, w.entry, &w.ref_args, w.fuel).unwrap();
            assert_eq!(a, b, "{} must be deterministic", w.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(workload_by_name("equake_smvp", Scale::Test).is_some());
        assert!(workload_by_name("nonesuch", Scale::Test).is_none());
    }

    #[test]
    fn expected_workloads_present() {
        let names: Vec<_> = all_workloads(Scale::Test)
            .into_iter()
            .map(|w| w.name)
            .collect();
        for expected in [
            "ammp",
            "art",
            "equake_smvp",
            "gzip",
            "many_funcs",
            "mcf",
            "parser",
            "twolf",
            "vpr",
        ] {
            assert!(names.contains(&expected), "missing {expected}: {names:?}");
        }
        assert_eq!(names.len(), 9);
    }
}
