//! `many_funcs` — a wide module for driver-parallelism measurement.
//!
//! Not one of the paper's eight benchmarks: this workload exists to
//! exercise the *compiler*, not the ALAT. It contains 32 independent
//! functions, each the paper's core promotion scenario in miniature (a
//! loop-invariant load may-aliased with a store through a selected
//! pointer), so every function gives SSAPRE real work and the per-function
//! fan-out in `specframe_core::optimize` has something to fan out over.
//! The `compile_time` bench runs `jobs=1` vs `jobs=N` over it.
//!
//! `mode` selects the pointer targets in `main`: 0 routes every store away
//! from the loaded global (speculation always pays), 1 routes it at the
//! same cell (every check fails). Unlike `gzip`, training and measurement
//! both use mode 0 — this workload is not an input-sensitivity story, and
//! the cross-benchmark invariant "profile holds ⇒ checks never fail" must
//! keep holding for it.

use super::{parse, Scale, Workload};
use specframe_ir::Value;

/// Number of independent kernel functions in the module.
pub const FUNCS: usize = 32;

fn source(n: i64) -> String {
    let mut s = String::new();
    for j in 0..FUNCS {
        s.push_str(&format!("global d{j}: i64[1] = [{}]\n", j + 1));
        s.push_str(&format!("global e{j}: i64[1]\n"));
    }
    for j in 0..FUNCS {
        s.push_str(&format!(
            r#"
func w{j}(n: i64, p: ptr) -> i64 {{
  var i: i64
  var c: i64
  var v: i64
  var acc: i64
entry:
  i = 0
  acc = 0
  jmp head
head:
  c = lt i, n
  br c, body, exit
body:
  v = load.i64 [@d{j}]
  acc = add acc, v
  store.i64 [p], acc
  i = add i, 1
  jmp head
exit:
  ret acc
}}
"#
        ));
    }
    s.push_str(
        "\nfunc main(mode: i64) -> i64 {\n  var chk: i64\n  var t: i64\n  var p: ptr\nentry:\n  chk = 0\n  jmp s0\n",
    );
    for j in 0..FUNCS {
        s.push_str(&format!(
            "s{j}:\n  br mode, a{j}, b{j}\na{j}:\n  p = @d{j}\n  jmp c{j}\nb{j}:\n  p = @e{j}\n  jmp c{j}\nc{j}:\n  t = call w{j}({n}, p)\n  chk = add chk, t\n  jmp s{}\n",
            j + 1
        ));
    }
    s.push_str(&format!("s{FUNCS}:\n  ret chk\n}}\n"));
    s
}

/// Builds the workload.
pub fn build(scale: Scale) -> Workload {
    let (n, fuel) = match scale {
        Scale::Test => (40, 2_000_000),
        Scale::Reference => (400, 20_000_000),
    };
    Workload {
        name: "many_funcs",
        description: "32 independent promotion loops (selected-pointer \
                      may-alias each): compiler-parallelism stressor for \
                      the per-function driver fan-out",
        module: parse("many_funcs", &source(n)),
        entry: "main",
        train_args: vec![Value::I(0)],
        ref_args: vec![Value::I(0)],
        fuel,
    }
}
