//! `parser` — 197.parser, the link-grammar parser.
//!
//! parser spends its time walking dictionary hash chains and linkage
//! lists, marking visited entries as it goes. Chain-node key loads are
//! may-aliased with the visited-mark stores (both hang off `Dict_node*`
//! pointers); the marks live in a separate table at run time. Mostly
//! irreducible pointer chasing with a thin layer of speculative reloads —
//! near the bottom of the paper's Figure 10.

use super::{parse, Scale, Workload};
use specframe_ir::Value;

fn source(words: i64, lookups: i64) -> String {
    format!(
        r#"
global ptrs: ptr[3]

func setup(words: i64) {{
  var pkey: ptr
  var pnxt: ptr
  var pseen: ptr
  var i: i64
  var c: i64
  var q: ptr
  var t: i64
entry:
  pkey = alloc words
  store.ptr [@ptrs], pkey
  pnxt = alloc words
  store.ptr [@ptrs + 1], pnxt
  pseen = alloc words
  store.ptr [@ptrs + 2], pseen
  i = 0
  jmp fl
fl:
  c = lt i, words
  br c, fb, done
fb:
  q = add pkey, i
  t = mul i, 131
  t = mod t, 257
  store.i64 [q], t
  q = add pnxt, i
  t = mul i, 31
  t = add t, 1
  t = mod t, words
  store.i64 [q], t
  q = add pseen, i
  store.i64 [q], 0
  i = add i, 1
  jmp fl
done:
  ret
}}

func lookup(words: i64, lookups: i64) -> i64 {{
  var pkey: ptr
  var pnxt: ptr
  var pseen: ptr
  var l: i64
  var c: i64
  var c2: i64
  var cur: i64
  var depth: i64
  var qk: i64
  var qs: i64
  var qn: i64
  var key: i64
  var key2: i64
  var nxt: i64
  var want: i64
  var hitc: i64
  var chk: i64
entry:
  pkey = load.ptr [@ptrs]
  pnxt = load.ptr [@ptrs + 1]
  pseen = load.ptr [@ptrs + 2]
  chk = 0
  l = 0
  jmp oh
oh:
  c = lt l, lookups
  br c, ob, oexit
ob:
  cur = mul l, 7
  cur = mod cur, words
  want = mul l, 131
  want = mod want, 257
  depth = 0
  jmp wh
wh:
  c2 = lt depth, 6
  br c2, wb, we
wb:
  qk = add pkey, cur
  key = load.i64 [qk]
  qs = add pseen, cur
  hitc = load.i64 [qs]
  hitc = add hitc, 1
  qs = add pseen, cur
  store.i64 [qs], hitc
  qk = add pkey, cur
  key2 = load.i64 [qk]
  chk = add chk, key2
  c2 = eq key, want
  br c2, found, step
step:
  qn = add pnxt, cur
  nxt = load.i64 [qn]
  cur = nxt
  depth = add depth, 1
  jmp wh
found:
  chk = add chk, 1000
  jmp we
we:
  l = add l, 1
  jmp oh
oexit:
  ret chk
}}

func main(mode: i64) -> i64 {{
  var r: i64
entry:
  call setup({words})
  r = call lookup({words}, {lookups})
  r = add r, mode
  ret r
}}
"#
    )
}

/// Builds the workload.
pub fn build(scale: Scale) -> Workload {
    let (words, lookups, fuel) = match scale {
        Scale::Test => (64, 60, 2_000_000),
        Scale::Reference => (2048, 8_000, 200_000_000),
    };
    Workload {
        name: "parser",
        description: "197.parser dictionary chains: key reloads across \
                      visited-mark stores; dominated by irreducible chain \
                      walking",
        module: parse("parser", &source(words, lookups)),
        entry: "main",
        train_args: vec![Value::I(0)],
        ref_args: vec![Value::I(0)],
        fuel,
    }
}
