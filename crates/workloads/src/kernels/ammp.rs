//! `ammp` — 188.ammp, molecular dynamics.
//!
//! ammp's force loops read atom positions while accumulating into force
//! fields of the same atom set; the stores can alias the loads as far as
//! the compiler knows (everything hangs off `ATOM*` pointers), but
//! positions and forces are distinct fields. Modeled as structure-of-
//! arrays (positions and forces in separate allocations, reached through
//! one pointer table — the finer heap granularity the authors' companion
//! LCPC'02 study advocates), so the alias profile can prove the force
//! stores never touch the position loads:
//!
//! * the central atom's position (3 f64 loads) is invariant across the
//!   neighbor loop and re-read after force stores — speculative hoist +
//!   `ld.c`;
//! * neighbor positions stay plain loads (they vary every iteration).

use super::{parse, Scale, Workload};
use specframe_ir::Value;

fn source(n: i64, nbr: i64, steps: i64) -> String {
    format!(
        r#"
global ptrs: ptr[3]

func setup(n: i64, nbr: i64) {{
  var n3: i64
  var nn: i64
  var ppos: ptr
  var pfrc: ptr
  var pnb: ptr
  var i: i64
  var c: i64
  var q: ptr
  var t: i64
  var f: f64
entry:
  n3 = mul n, 3
  ppos = alloc n3
  store.ptr [@ptrs], ppos
  pfrc = alloc n3
  store.ptr [@ptrs + 1], pfrc
  nn = mul n, nbr
  pnb = alloc nn
  store.ptr [@ptrs + 2], pnb
  i = 0
  jmp fp
fp:
  c = lt i, n3
  br c, fpb, fn0
fpb:
  q = add ppos, i
  t = mod i, 23
  f = i2f t
  f = fmul f, 0.375
  store.f64 [q], f
  q = add pfrc, i
  store.f64 [q], 0.0
  i = add i, 1
  jmp fp
fn0:
  i = 0
  jmp fnl
fnl:
  c = lt i, nn
  br c, fnb, done
fnb:
  q = add pnb, i
  t = mul i, 11
  t = add t, 5
  t = mod t, n
  store.i64 [q], t
  i = add i, 1
  jmp fnl
done:
  ret
}}

func forces(n: i64, nbr: i64) -> f64 {{
  var ppos: ptr
  var pfrc: ptr
  var pnb: ptr
  var i: i64
  var k: i64
  var c: i64
  var c2: i64
  var xb: i64
  var yb: i64
  var fb: i64
  var nq: i64
  var j: i64
  var x0: f64
  var x1: f64
  var x2: f64
  var x0r: f64
  var x1r: f64
  var x2r: f64
  var y0: f64
  var y1: f64
  var y2: f64
  var d0: f64
  var d1: f64
  var d2: f64
  var dd: f64
  var f0: f64
  var f1: f64
  var f2: f64
  var chk: f64
  var i3: i64
  var j3: i64
  var idx: i64
entry:
  ppos = load.ptr [@ptrs]
  pfrc = load.ptr [@ptrs + 1]
  pnb = load.ptr [@ptrs + 2]
  chk = 0.0
  i = 0
  jmp oh
oh:
  c = lt i, n
  br c, ob, oexit
ob:
  i3 = mul i, 3
  xb = add ppos, i3
  fb = add pfrc, i3
  x0 = load.f64 [xb]
  x1 = load.f64 [xb + 1]
  x2 = load.f64 [xb + 2]
  chk = fadd chk, x0
  k = 0
  jmp ih
ih:
  c2 = lt k, nbr
  br c2, ib, ie
ib:
  idx = mul i, nbr
  idx = add idx, k
  nq = add pnb, idx
  j = load.i64 [nq]
  j3 = mul j, 3
  yb = add ppos, j3
  y0 = load.f64 [yb]
  y1 = load.f64 [yb + 1]
  y2 = load.f64 [yb + 2]
  x0r = load.f64 [xb]
  x1r = load.f64 [xb + 1]
  x2r = load.f64 [xb + 2]
  d0 = fsub x0r, y0
  d1 = fsub x1r, y1
  d2 = fsub x2r, y2
  d0 = fmul d0, d0
  d1 = fmul d1, d1
  d2 = fmul d2, d2
  dd = fadd d0, d1
  dd = fadd dd, d2
  f0 = load.f64 [fb]
  f0 = fadd f0, dd
  store.f64 [fb], f0
  f1 = load.f64 [fb + 1]
  f1 = fadd f1, d1
  store.f64 [fb + 1], f1
  f2 = load.f64 [fb + 2]
  f2 = fadd f2, d2
  store.f64 [fb + 2], f2
  k = add k, 1
  jmp ih
ie:
  f0 = load.f64 [fb]
  chk = fadd chk, f0
  i = add i, 1
  jmp oh
oexit:
  ret chk
}}

func main(mode: i64) -> i64 {{
  var r: i64
  var s: f64
  var acc: f64
  var k: i64
  var c: i64
entry:
  call setup({n}, {nbr})
  acc = 0.0
  k = 0
  jmp rh
rh:
  c = lt k, {steps}
  br c, rb, rex
rb:
  s = call forces({n}, {nbr})
  acc = fadd acc, s
  k = add k, 1
  jmp rh
rex:
  r = f2i acc
  r = add r, mode
  ret r
}}
"#
    )
}

/// Builds the workload.
pub fn build(scale: Scale) -> Workload {
    let (n, nbr, steps, fuel) = match scale {
        Scale::Test => (12, 4, 3, 2_000_000),
        Scale::Reference => (64, 8, 16, 200_000_000),
    };
    Workload {
        name: "ammp",
        description: "188.ammp force loop: central-atom position reloads \
                      across force-field stores (SoA layout, shared pointer \
                      class, disjoint at run time)",
        module: parse("ammp", &source(n, nbr, steps)),
        entry: "main",
        train_args: vec![Value::I(0)],
        ref_args: vec![Value::I(0)],
        fuel,
    }
}
