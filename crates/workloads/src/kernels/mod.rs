//! The eight benchmark kernels.
//!
//! Each submodule documents which SPEC2000 program it stands in for and
//! which memory-aliasing property of that program it reproduces. All
//! kernels share two conventions:
//!
//! * the entry point is `main(mode: i64) -> i64` returning a checksum —
//!   `mode` selects the *training* (0) vs *reference* (1) input where the
//!   two differ (only `gzip` uses it, to reproduce the paper's §5.2
//!   mis-speculation discussion);
//! * data arrays are reached through pointers kept in a global pointer
//!   table, which places them in one Steensgaard alias class — the honest
//!   equivalent of what C pointer passing does to ORC's analysis.

mod ammp;
mod art;
mod equake;
mod gzip;
mod many_funcs;
mod mcf;
mod parser_bench;
mod twolf;
mod vpr;

use specframe_ir::{Module, Value};

/// Problem size selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small inputs for unit/integration tests (sub-second in debug).
    Test,
    /// "Reference"-style inputs for figure regeneration (run in release).
    Reference,
}

/// One benchmark: an IR module plus how to run it.
pub struct Workload {
    /// Benchmark name (matches the paper's benchmark where applicable).
    pub name: &'static str,
    /// What it models and why the substitution is faithful.
    pub description: &'static str,
    /// The program.
    pub module: Module,
    /// Entry function name.
    pub entry: &'static str,
    /// Arguments for the profiling (training) run.
    pub train_args: Vec<Value>,
    /// Arguments for the measurement (reference) run.
    pub ref_args: Vec<Value>,
    /// Interpreter/simulator fuel budget.
    pub fuel: u64,
}

/// All workloads, alphabetically: the eight benchmark kernels plus the
/// `many_funcs` compiler-parallelism stressor.
pub fn all_workloads(scale: Scale) -> Vec<Workload> {
    vec![
        ammp::build(scale),
        art::build(scale),
        equake::build(scale),
        gzip::build(scale),
        many_funcs::build(scale),
        mcf::build(scale),
        parser_bench::build(scale),
        twolf::build(scale),
        vpr::build(scale),
    ]
}

/// Looks a benchmark up by name.
pub fn workload_by_name(name: &str, scale: Scale) -> Option<Workload> {
    all_workloads(scale).into_iter().find(|w| w.name == name)
}

pub(crate) fn parse(name: &str, src: &str) -> Module {
    specframe_ir::parse_module(src)
        .unwrap_or_else(|e| panic!("workload `{name}` failed to parse: {e}"))
}
