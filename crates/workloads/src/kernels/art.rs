//! `art` — 179.art, the ART neural-network image recognizer.
//!
//! art's hot loops scan an f64 weight matrix against an input vector while
//! updating per-neuron match values; the weight/input loads are
//! may-aliased with the match stores (all reached through pointers in the
//! net structure) but never actually alias. The paper's Figure 10 shows
//! art with the largest load reduction of the eight. Reproduced here:
//!
//! * `W[i][j]` re-loaded across a `match[j]` store — speculative
//!   redundancy, becomes `ld.c`;
//! * four bias/threshold parameters loaded per neuron, loop-invariant —
//!   speculatively hoisted across the match/out stores;
//! * everything is f64, so each removed load saves the 9-cycle FP latency.

use super::{parse, Scale, Workload};
use specframe_ir::Value;

fn source(n: i64, m: i64, trains: i64) -> String {
    format!(
        r#"
global ptrs: ptr[5]

func setup(n: i64, m: i64) {{
  var nm: i64
  var pW: ptr
  var pin: ptr
  var pmatch: ptr
  var pout: ptr
  var pbias: ptr
  var i: i64
  var c: i64
  var q: ptr
  var t: i64
  var f: f64
entry:
  nm = mul n, m
  pW = alloc nm
  store.ptr [@ptrs], pW
  pin = alloc m
  store.ptr [@ptrs + 1], pin
  pmatch = alloc m
  store.ptr [@ptrs + 2], pmatch
  pout = alloc n
  store.ptr [@ptrs + 3], pout
  pbias = alloc 4
  store.ptr [@ptrs + 4], pbias
  i = 0
  jmp fw
fw:
  c = lt i, nm
  br c, fwb, fi0
fwb:
  q = add pW, i
  t = mod i, 13
  t = add t, 1
  f = i2f t
  f = fmul f, 0.125
  store.f64 [q], f
  i = add i, 1
  jmp fw
fi0:
  i = 0
  jmp fil
fil:
  c = lt i, m
  br c, fib, fb0
fib:
  q = add pin, i
  t = mod i, 7
  f = i2f t
  f = fmul f, 0.25
  store.f64 [q], f
  q = add pmatch, i
  store.f64 [q], 0.0
  i = add i, 1
  jmp fil
fb0:
  q = add pbias, 0
  store.f64 [q], 0.5
  q = add pbias, 1
  store.f64 [q], 1.25
  q = add pbias, 2
  store.f64 [q], 0.75
  q = add pbias, 3
  store.f64 [q], 2.0
  ret
}}

func scan(n: i64, m: i64) -> f64 {{
  var pW: ptr
  var pin: ptr
  var pmatch: ptr
  var pout: ptr
  var pbias: ptr
  var i: i64
  var j: i64
  var c: i64
  var c2: i64
  var acc: f64
  var norm: f64
  var chk: f64
  var idx: i64
  var wq: i64
  var iq: i64
  var mq: i64
  var oq: i64
  var w1: f64
  var w2: f64
  var inj: f64
  var p0: f64
  var b0: f64
  var b1: f64
  var b2: f64
  var b3: f64
  var outv: f64
entry:
  pW = load.ptr [@ptrs]
  pin = load.ptr [@ptrs + 1]
  pmatch = load.ptr [@ptrs + 2]
  pout = load.ptr [@ptrs + 3]
  pbias = load.ptr [@ptrs + 4]
  chk = 0.0
  i = 0
  jmp oh
oh:
  c = lt i, n
  br c, ob, oexit
ob:
  acc = 0.0
  norm = 0.0
  j = 0
  jmp ih
ih:
  c2 = lt j, m
  br c2, ib, ie
ib:
  idx = mul i, m
  idx = add idx, j
  wq = add pW, idx
  w1 = load.f64 [wq]
  iq = add pin, j
  inj = load.f64 [iq]
  p0 = fmul w1, inj
  acc = fadd acc, p0
  mq = add pmatch, j
  store.f64 [mq], acc
  w2 = load.f64 [wq]
  norm = fadd norm, w2
  j = add j, 1
  jmp ih
ie:
  b0 = load.f64 [pbias]
  b1 = load.f64 [pbias + 1]
  b2 = load.f64 [pbias + 2]
  b3 = load.f64 [pbias + 3]
  outv = fmul acc, b0
  norm = fmul norm, b1
  outv = fadd outv, norm
  outv = fadd outv, b2
  outv = fdiv outv, b3
  oq = add pout, i
  store.f64 [oq], outv
  chk = fadd chk, outv
  i = add i, 1
  jmp oh
oexit:
  ret chk
}}

func main(mode: i64) -> i64 {{
  var r: i64
  var s: f64
  var acc: f64
  var k: i64
  var c: i64
entry:
  call setup({n}, {m})
  acc = 0.0
  k = 0
  jmp rh
rh:
  c = lt k, {trains}
  br c, rb, rex
rb:
  s = call scan({n}, {m})
  acc = fadd acc, s
  k = add k, 1
  jmp rh
rex:
  r = f2i acc
  r = add r, mode
  ret r
}}
"#
    )
}

/// Builds the workload.
pub fn build(scale: Scale) -> Workload {
    let (n, m, trains, fuel) = match scale {
        Scale::Test => (10, 8, 3, 2_000_000),
        Scale::Reference => (48, 24, 20, 200_000_000),
    };
    Workload {
        name: "art",
        description: "179.art neural-net scan: f64 weight reloads across \
                      match-array stores and loop-invariant bias parameters, \
                      may-aliased through the net's pointer structure",
        module: parse("art", &source(n, m, trains)),
        entry: "main",
        train_args: vec![Value::I(0)],
        ref_args: vec![Value::I(0)],
        fuel,
    }
}
