//! `twolf` — 300.twolf, standard-cell placement.
//!
//! twolf's inner loops evaluate cell-swap costs: they read coordinates of
//! two candidate cells, write the updated cost of one, and read the first
//! cell's coordinates again for the reverse direction. The coordinate
//! loads and the cost stores sit behind `CELLBOX*` pointers the compiler
//! cannot separate; at run time coordinates and costs are distinct arrays.
//! Integer loads, mid-pack reduction in the paper's Figure 10.

use super::{parse, Scale, Workload};
use specframe_ir::Value;

fn source(cells: i64, iters: i64) -> String {
    format!(
        r#"
global ptrs: ptr[4]

func setup(cells: i64) {{
  var px: ptr
  var py: ptr
  var pcost: ptr
  var pnet: ptr
  var i: i64
  var c: i64
  var q: ptr
  var t: i64
entry:
  px = alloc cells
  store.ptr [@ptrs], px
  py = alloc cells
  store.ptr [@ptrs + 1], py
  pcost = alloc cells
  store.ptr [@ptrs + 2], pcost
  pnet = alloc cells
  store.ptr [@ptrs + 3], pnet
  i = 0
  jmp fl
fl:
  c = lt i, cells
  br c, fb, done
fb:
  q = add px, i
  t = mul i, 37
  t = mod t, 1024
  store.i64 [q], t
  q = add py, i
  t = mul i, 53
  t = mod t, 1024
  store.i64 [q], t
  q = add pcost, i
  store.i64 [q], 0
  q = add pnet, i
  t = mul i, 19
  t = add t, 3
  t = mod t, cells
  store.i64 [q], t
  i = add i, 1
  jmp fl
done:
  ret
}}

func place(cells: i64, iters: i64) -> i64 {{
  var px: ptr
  var py: ptr
  var pcost: ptr
  var pnet: ptr
  var s: i64
  var c: i64
  var a: i64
  var b: i64
  var xa: i64
  var ya: i64
  var xb: i64
  var yb: i64
  var xa2: i64
  var ya2: i64
  var na: i64
  var dx: i64
  var dy: i64
  var cost: i64
  var rev: i64
  var qxa: i64
  var qya: i64
  var qxb: i64
  var qyb: i64
  var qna: i64
  var qca: i64
  var chk: i64
entry:
  px = load.ptr [@ptrs]
  py = load.ptr [@ptrs + 1]
  pcost = load.ptr [@ptrs + 2]
  pnet = load.ptr [@ptrs + 3]
  chk = 0
  s = 0
  jmp head
head:
  c = lt s, iters
  br c, body, exit
body:
  a = mul s, 7
  a = mod a, cells
  b = mul s, 13
  b = add b, 5
  b = mod b, cells
  qxa = add px, a
  xa = load.i64 [qxa]
  qya = add py, a
  ya = load.i64 [qya]
  qxb = add px, b
  xb = load.i64 [qxb]
  qyb = add py, b
  yb = load.i64 [qyb]
  qna = add pnet, a
  na = load.i64 [qna]
  dx = sub xa, xb
  dy = sub ya, yb
  cost = mul dx, dx
  dy = mul dy, dy
  cost = add cost, dy
  cost = add cost, na
  qca = add pcost, a
  store.i64 [qca], cost
  qxa = add px, a
  xa2 = load.i64 [qxa]
  qya = add py, a
  ya2 = load.i64 [qya]
  rev = sub xb, xa2
  rev = mul rev, rev
  chk = add chk, cost
  chk = add chk, rev
  chk = add chk, ya2
  s = add s, 1
  jmp head
exit:
  ret chk
}}

func main(mode: i64) -> i64 {{
  var r: i64
entry:
  call setup({cells})
  r = call place({cells}, {iters})
  r = add r, mode
  ret r
}}
"#
    )
}

/// Builds the workload.
pub fn build(scale: Scale) -> Workload {
    let (cells, iters, fuel) = match scale {
        Scale::Test => (32, 300, 2_000_000),
        Scale::Reference => (1024, 40_000, 200_000_000),
    };
    Workload {
        name: "twolf",
        description: "300.twolf swap-cost loop: coordinate reloads across \
                      cost stores behind shared cell pointers; integer loads",
        module: parse("twolf", &source(cells, iters)),
        entry: "main",
        train_args: vec![Value::I(0)],
        ref_args: vec![Value::I(0)],
        fuel,
    }
}
