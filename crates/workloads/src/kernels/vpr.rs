//! `vpr` — 175.vpr, FPGA place-and-route.
//!
//! vpr's router walks a cost grid, expanding neighbors and updating
//! occupancy; the grid-cost loads and the occupancy stores live behind
//! `rr_node` pointers. Most loads vary per expansion (no redundancy);
//! a per-expansion base-cost parameter is invariant, and the source cost
//! is re-read after the occupancy store. Small-to-mid reduction.

use super::{parse, Scale, Workload};
use specframe_ir::Value;

fn source(nodes: i64, iters: i64) -> String {
    format!(
        r#"
global ptrs: ptr[3]

func setup(nodes: i64) {{
  var pcost: ptr
  var pocc: ptr
  var pbase: ptr
  var i: i64
  var c: i64
  var q: ptr
  var t: i64
entry:
  pcost = alloc nodes
  store.ptr [@ptrs], pcost
  pocc = alloc nodes
  store.ptr [@ptrs + 1], pocc
  pbase = alloc 4
  store.ptr [@ptrs + 2], pbase
  store.i64 [pbase], 11
  i = 0
  jmp fl
fl:
  c = lt i, nodes
  br c, fb, done
fb:
  q = add pcost, i
  t = mul i, 41
  t = mod t, 97
  store.i64 [q], t
  q = add pocc, i
  store.i64 [q], 0
  i = add i, 1
  jmp fl
done:
  ret
}}

func route(nodes: i64, iters: i64) -> i64 {{
  var pcost: ptr
  var pocc: ptr
  var pbase: ptr
  var s: i64
  var c: i64
  var src: i64
  var n1: i64
  var n2: i64
  var n3: i64
  var qsrc: i64
  var q1: i64
  var q2: i64
  var q3: i64
  var qo: i64
  var qw: i64
  var cs: i64
  var cs2: i64
  var c1: i64
  var c2v: i64
  var c3v: i64
  var bc: i64
  var o1: i64
  var total: i64
  var chk: i64
entry:
  pcost = load.ptr [@ptrs]
  pocc = load.ptr [@ptrs + 1]
  pbase = load.ptr [@ptrs + 2]
  chk = 0
  s = 0
  jmp head
head:
  c = lt s, iters
  br c, body, exit
body:
  src = mul s, 3
  src = mod src, nodes
  n1 = add src, 1
  n1 = mod n1, nodes
  n2 = mul s, 11
  n2 = mod n2, nodes
  n3 = mul s, 23
  n3 = add n3, 2
  n3 = mod n3, nodes
  qsrc = add pcost, src
  cs = load.i64 [qsrc]
  q1 = add pcost, n1
  c1 = load.i64 [q1]
  q2 = add pcost, n2
  c2v = load.i64 [q2]
  q3 = add pcost, n3
  c3v = load.i64 [q3]
  qo = add pocc, n2
  o1 = load.i64 [qo]
  bc = load.i64 [pbase]
  total = add cs, c1
  total = add total, c2v
  total = add total, c3v
  total = add total, bc
  total = add total, o1
  qw = add pocc, n1
  store.i64 [qw], total
  qsrc = add pcost, src
  cs2 = load.i64 [qsrc]
  chk = add chk, total
  chk = add chk, cs2
  s = add s, 1
  jmp head
exit:
  ret chk
}}

func main(mode: i64) -> i64 {{
  var r: i64
entry:
  call setup({nodes})
  r = call route({nodes}, {iters})
  r = add r, mode
  ret r
}}
"#
    )
}

/// Builds the workload.
pub fn build(scale: Scale) -> Workload {
    let (nodes, iters, fuel) = match scale {
        Scale::Test => (64, 300, 2_000_000),
        Scale::Reference => (2048, 40_000, 200_000_000),
    };
    Workload {
        name: "vpr",
        description: "175.vpr router expansion: many per-expansion cost \
                      loads (irreducible), one invariant base-cost and one \
                      source-cost reload across the occupancy store",
        module: parse("vpr", &source(nodes, iters)),
        entry: "main",
        train_args: vec![Value::I(0)],
        ref_args: vec![Value::I(0)],
        fuel,
    }
}
