//! `gzip` — 164.gzip, LZ77 compression.
//!
//! gzip offers the framework almost nothing: its hot loops stream bytes
//! through hash chains with little cross-store redundancy. The paper
//! observes (i) a near-zero share of check loads among retired loads and
//! (ii) the *highest mis-speculation ratio* of the suite (~6%) — yet "the
//! total number of check instructions is nearly negligible ... therefore
//! there is little performance impact from the high mis-speculation
//! ratio."
//!
//! Reproduced: a window-scanning loop (bulk non-reducible loads) plus a
//! promoted hash-head cache cell whose promoted load is *occasionally*
//! truly aliased — the hash index hits the cached slot for 1/16 of the
//! reference input's iterations, and never for the training input. The
//! alias profile (trained on `mode = 0`) therefore flags the alias as
//! unlikely, and the reference run (`mode = 1`) pays real ALAT misses —
//! the paper's input-sensitivity story (§1) end to end.

use super::{parse, Scale, Workload};
use specframe_ir::Value;

fn source(n: i64, winwords: i64) -> String {
    format!(
        r#"
global ptrs: ptr[2]
global pwin: ptr[1]

func setup(winwords: i64) {{
  var pcache: ptr
  var ptab: ptr
  var pw: ptr
  var i: i64
  var c: i64
  var q: ptr
  var t: i64
entry:
  pcache = alloc 2
  store.ptr [@ptrs], pcache
  ptab = alloc 16
  store.ptr [@ptrs + 1], ptab
  store.i64 [pcache], 7777
  pw = alloc winwords
  store.ptr [@pwin], pw
  i = 0
  jmp fl
fl:
  c = lt i, winwords
  br c, fb, done
fb:
  q = add pw, i
  t = mul i, 251
  t = mod t, 256
  store.i64 [q], t
  i = add i, 1
  jmp fl
done:
  ret
}}

func deflate(n: i64, winwords: i64, mode: i64) -> i64 {{
  var pcache: ptr
  var ptab: ptr
  var pw: ptr
  var i: i64
  var j: i64
  var c: i64
  var c2: i64
  var c0: i64
  var q: i64
  var widx: i64
  var wv: i64
  var hsum: i64
  var x: i64
  var h: i64
  var hbit: i64
  var train: i64
  var chk: i64
entry:
  pcache = load.ptr [@ptrs]
  ptab = load.ptr [@ptrs + 1]
  pw = load.ptr [@pwin]
  train = eq mode, 0
  chk = 0
  i = 0
  jmp oh
oh:
  c = lt i, n
  br c, ob, oexit
ob:
  hsum = 0
  j = 0
  jmp wh
wh:
  c2 = lt j, 8
  br c2, wb, we
wb:
  widx = mul i, 3
  widx = add widx, j
  widx = mod widx, winwords
  q = add pw, widx
  wv = load.i64 [q]
  hsum = mul hsum, 31
  hsum = add hsum, wv
  j = add j, 1
  jmp wh
we:
  x = load.i64 [pcache]
  h = mul i, 13
  h = mod h, 16
  h = or h, train
  c0 = eq h, 0
  br c0, hit, miss
hit:
  store.i64 [pcache], hsum
  jmp join
miss:
  q = add ptab, h
  store.i64 [q], hsum
  jmp join
join:
  chk = add chk, x
  chk = add chk, hsum
  i = add i, 1
  jmp oh
oexit:
  ret chk
}}

func main(mode: i64) -> i64 {{
  var r: i64
entry:
  call setup({winwords})
  r = call deflate({n}, {winwords}, mode)
  ret r
}}
"#
    )
}

/// Builds the workload.
pub fn build(scale: Scale) -> Workload {
    let (n, winwords, fuel) = match scale {
        Scale::Test => (256, 64, 2_000_000),
        Scale::Reference => (20_000, 512, 200_000_000),
    };
    Workload {
        name: "gzip",
        description: "164.gzip hash loop: bulk window loads with one \
                      promoted hash-head cell that truly aliases for 1/16 \
                      of reference iterations (trains clean) — tiny check \
                      share, ~6% mis-speculation",
        module: parse("gzip", &source(n, winwords)),
        entry: "main",
        train_args: vec![Value::I(0)],
        ref_args: vec![Value::I(1)],
        fuel,
    }
}
