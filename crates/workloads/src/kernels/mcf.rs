//! `mcf` — 181.mcf, network simplex minimum-cost flow.
//!
//! mcf chases pointers through node/arc records and updates flow fields
//! while reading potentials and costs. Loads are integer (2-cycle), so the
//! paper reports a solid load reduction (~6%) but only ~2% speedup — the
//! removed loads are cheap and mcf is cache-bound. Modeled as
//! structure-of-arrays node records (`next/potential/cost/flow/depth`),
//! all reached through one pointer table (one alias class); the flow
//! stores never touch the potential array at run time:
//!
//! * `potential[cur]` re-loaded across the `flow[cur]` store — `ld.c`;
//! * a second pure pointer-chasing pass with no redundancy dilutes the
//!   reduction to mcf's single-digit profile.

use super::{parse, Scale, Workload};
use specframe_ir::Value;

fn source(n: i64, reps: i64) -> String {
    format!(
        r#"
global ptrs: ptr[5]

func setup(n: i64) {{
  var pnext: ptr
  var ppot: ptr
  var pcost: ptr
  var pflow: ptr
  var pdep: ptr
  var i: i64
  var c: i64
  var q: ptr
  var t: i64
entry:
  pnext = alloc n
  store.ptr [@ptrs], pnext
  ppot = alloc n
  store.ptr [@ptrs + 1], ppot
  pcost = alloc n
  store.ptr [@ptrs + 2], pcost
  pflow = alloc n
  store.ptr [@ptrs + 3], pflow
  pdep = alloc n
  store.ptr [@ptrs + 4], pdep
  i = 0
  jmp fl
fl:
  c = lt i, n
  br c, fb, done
fb:
  q = add pnext, i
  t = mul i, 17
  t = add t, 7
  t = mod t, n
  store.i64 [q], t
  q = add ppot, i
  t = mul i, 5
  t = add t, 100
  store.i64 [q], t
  q = add pcost, i
  t = mod i, 29
  store.i64 [q], t
  q = add pflow, i
  store.i64 [q], 0
  q = add pdep, i
  t = mod i, 11
  store.i64 [q], t
  i = add i, 1
  jmp fl
done:
  ret
}}

func simplex(n: i64, steps: i64) -> i64 {{
  var pnext: ptr
  var ppot: ptr
  var pcost: ptr
  var pflow: ptr
  var pdep: ptr
  var cur: i64
  var s: i64
  var c: i64
  var nq: i64
  var pq: i64
  var cq: i64
  var fq: i64
  var dq: i64
  var nx: i64
  var pot: i64
  var cost: i64
  var dep: i64
  var pot2: i64
  var fl: i64
  var chk: i64
entry:
  pnext = load.ptr [@ptrs]
  ppot = load.ptr [@ptrs + 1]
  pcost = load.ptr [@ptrs + 2]
  pflow = load.ptr [@ptrs + 3]
  pdep = load.ptr [@ptrs + 4]
  chk = 0
  cur = 0
  s = 0
  jmp head
head:
  c = lt s, steps
  br c, body, exit
body:
  nq = add pnext, cur
  nx = load.i64 [nq]
  pq = add ppot, cur
  pot = load.i64 [pq]
  cq = add pcost, cur
  cost = load.i64 [cq]
  dq = add pdep, cur
  dep = load.i64 [dq]
  fq = add pflow, cur
  fl = load.i64 [fq]
  fl = add fl, cost
  fl = add fl, dep
  store.i64 [fq], fl
  pot2 = load.i64 [pq]
  chk = add chk, pot2
  cur = nx
  s = add s, 1
  jmp head
exit:
  ret chk
}}

func chase(n: i64, steps: i64) -> i64 {{
  var pnext: ptr
  var pcost: ptr
  var pdep: ptr
  var cur: i64
  var s: i64
  var c: i64
  var nq: i64
  var cq: i64
  var dq: i64
  var cost: i64
  var dep: i64
  var chk: i64
entry:
  pnext = load.ptr [@ptrs]
  pcost = load.ptr [@ptrs + 2]
  pdep = load.ptr [@ptrs + 4]
  chk = 0
  cur = 1
  s = 0
  jmp head
head:
  c = lt s, steps
  br c, body, exit
body:
  nq = add pnext, cur
  cur = load.i64 [nq]
  cq = add pcost, cur
  cost = load.i64 [cq]
  dq = add pdep, cur
  dep = load.i64 [dq]
  chk = add chk, cost
  chk = add chk, dep
  s = add s, 1
  jmp head
exit:
  ret chk
}}

func main(mode: i64) -> i64 {{
  var r: i64
  var t: i64
  var k: i64
  var c: i64
  var steps: i64
entry:
  call setup({n})
  steps = mul {n}, 2
  r = 0
  k = 0
  jmp rh
rh:
  c = lt k, {reps}
  br c, rb, rex
rb:
  t = call simplex({n}, steps)
  r = add r, t
  t = call chase({n}, steps)
  r = add r, t
  t = call chase({n}, steps)
  r = add r, t
  k = add k, 1
  jmp rh
rex:
  r = add r, mode
  ret r
}}
"#
    )
}

/// Builds the workload.
pub fn build(scale: Scale) -> Workload {
    let (n, reps, fuel) = match scale {
        Scale::Test => (48, 3, 2_000_000),
        Scale::Reference => (512, 20, 200_000_000),
    };
    Workload {
        name: "mcf",
        description: "181.mcf network walk: potential reloads across flow \
                      stores (SoA records, one pointer class), diluted by \
                      pure pointer chasing — integer loads, modest speedup",
        module: parse("mcf", &source(n, reps)),
        entry: "main",
        train_args: vec![Value::I(0)],
        ref_args: vec![Value::I(0)],
        fuel,
    }
}
