//! `equake_smvp` — the paper's §5.1 case study.
//!
//! 183.equake spends ~60% of its time in `smvp`, the sparse matrix-vector
//! product of Figure 9. The performance story there: the loads of
//! `A[Anext][i][i]` and `v[i][j]` cannot be register-promoted because the
//! `w[col][j] +=` stores may alias them (the three arrays arrive through
//! pointers the compiler cannot disambiguate), yet at run time they never
//! do. Speculative promotion turns the repeated loads into `ld.c` checks
//! and hoists the loop-invariant `v[i][*]` out of the inner loop.
//!
//! The kernel below is that exact access pattern: a row-compressed matrix
//! with three values per entry, `sum{0,1,2}` accumulation followed by the
//! three `w` updates which *re-load* the `A` and `v` values across the `w`
//! stores — the speculative redundancy of Figure 5(c).

use super::{parse, Scale, Workload};
use specframe_ir::Value;

fn source(nodes: i64, epr: i64, reps: i64) -> String {
    format!(
        r#"
global ptrs: ptr[4]

func setup(nodes: i64, epr: i64) {{
  var total: i64
  var t0: i64
  var t1: i64
  var n3: i64
  var pA: ptr
  var pc: ptr
  var pv: ptr
  var pw: ptr
  var i: i64
  var c: i64
  var q: ptr
  var f0: f64
entry:
  total = mul nodes, epr
  t0 = mul total, 3
  pA = alloc t0
  store.ptr [@ptrs], pA
  pc = alloc total
  store.ptr [@ptrs + 1], pc
  n3 = mul nodes, 3
  pv = alloc n3
  store.ptr [@ptrs + 2], pv
  pw = alloc n3
  store.ptr [@ptrs + 3], pw
  i = 0
  jmp fa
fa:
  c = lt i, t0
  br c, fab, fc0
fab:
  q = add pA, i
  t1 = mod i, 17
  t1 = add t1, 1
  f0 = i2f t1
  store.f64 [q], f0
  i = add i, 1
  jmp fa
fc0:
  i = 0
  jmp fcl
fcl:
  c = lt i, total
  br c, fcb, fv0
fcb:
  q = add pc, i
  t1 = mul i, 7
  t1 = add t1, 3
  t1 = mod t1, nodes
  store.i64 [q], t1
  i = add i, 1
  jmp fcl
fv0:
  i = 0
  jmp fvl
fvl:
  c = lt i, n3
  br c, fvb, done
fvb:
  q = add pv, i
  t1 = mod i, 9
  f0 = i2f t1
  f0 = fmul f0, 0.5
  store.f64 [q], f0
  q = add pw, i
  store.f64 [q], 0.0
  i = add i, 1
  jmp fvl
done:
  ret
}}

func smvp(nodes: i64, epr: i64) -> f64 {{
  var pA: ptr
  var pc: ptr
  var pv: ptr
  var pw: ptr
  var chk: f64
  var i: i64
  var j: i64
  var c: i64
  var c2: i64
  var i3: i64
  var vb: i64
  var idx: i64
  var cq: i64
  var col: i64
  var ab: i64
  var col3: i64
  var wb: i64
  var sum0: f64
  var sum1: f64
  var sum2: f64
  var a0: f64
  var a1: f64
  var a2: f64
  var v0: f64
  var v1: f64
  var v2: f64
  var m0: f64
  var m1: f64
  var m2: f64
  var w0: f64
  var w1: f64
  var w2: f64
  var a0r: f64
  var a1r: f64
  var a2r: f64
  var v0r: f64
  var v1r: f64
  var v2r: f64
  var m0r: f64
  var m1r: f64
  var m2r: f64
  var w0n: f64
  var w1n: f64
  var w2n: f64
entry:
  pA = load.ptr [@ptrs]
  pc = load.ptr [@ptrs + 1]
  pv = load.ptr [@ptrs + 2]
  pw = load.ptr [@ptrs + 3]
  chk = 0.0
  i = 0
  jmp oh
oh:
  c = lt i, nodes
  br c, ob, oexit
ob:
  i3 = mul i, 3
  vb = add pv, i3
  sum0 = 0.0
  sum1 = 0.0
  sum2 = 0.0
  j = 0
  jmp ih
ih:
  c2 = lt j, epr
  br c2, ib, ie
ib:
  idx = mul i, epr
  idx = add idx, j
  cq = add pc, idx
  col = load.i64 [cq]
  ab = mul idx, 3
  ab = add ab, pA
  a0 = load.f64 [ab]
  v0 = load.f64 [vb]
  m0 = fmul a0, v0
  sum0 = fadd sum0, m0
  a1 = load.f64 [ab + 1]
  v1 = load.f64 [vb + 1]
  m1 = fmul a1, v1
  sum1 = fadd sum1, m1
  a2 = load.f64 [ab + 2]
  v2 = load.f64 [vb + 2]
  m2 = fmul a2, v2
  sum2 = fadd sum2, m2
  col3 = mul col, 3
  wb = add pw, col3
  w0 = load.f64 [wb]
  a0r = load.f64 [ab]
  v0r = load.f64 [vb]
  m0r = fmul a0r, v0r
  w0n = fadd w0, m0r
  store.f64 [wb], w0n
  w1 = load.f64 [wb + 1]
  a1r = load.f64 [ab + 1]
  v1r = load.f64 [vb + 1]
  m1r = fmul a1r, v1r
  w1n = fadd w1, m1r
  store.f64 [wb + 1], w1n
  w2 = load.f64 [wb + 2]
  a2r = load.f64 [ab + 2]
  v2r = load.f64 [vb + 2]
  m2r = fmul a2r, v2r
  w2n = fadd w2, m2r
  store.f64 [wb + 2], w2n
  j = add j, 1
  jmp ih
ie:
  chk = fadd chk, sum0
  chk = fadd chk, sum1
  chk = fadd chk, sum2
  i = add i, 1
  jmp oh
oexit:
  ret chk
}}

func main(mode: i64) -> i64 {{
  var r: i64
  var s: f64
  var acc: f64
  var k: i64
  var c: i64
entry:
  call setup({nodes}, {epr})
  acc = 0.0
  k = 0
  jmp rh
rh:
  c = lt k, {reps}
  br c, rb, rex
rb:
  s = call smvp({nodes}, {epr})
  acc = fadd acc, s
  k = add k, 1
  jmp rh
rex:
  r = f2i acc
  r = add r, mode
  ret r
}}
"#
    )
}

/// Builds the workload.
pub fn build(scale: Scale) -> Workload {
    let (nodes, epr, reps, fuel) = match scale {
        Scale::Test => (24, 4, 3, 2_000_000),
        Scale::Reference => (120, 8, 12, 200_000_000),
    };
    Workload {
        name: "equake_smvp",
        description: "183.equake smvp sparse mat-vec (Fig. 9): A/v loads \
                      may-aliased by w stores through shared pointers, never \
                      aliasing at run time; v is inner-loop invariant",
        module: parse("equake_smvp", &source(nodes, epr, reps)),
        entry: "main",
        train_args: vec![Value::I(0)],
        ref_args: vec![Value::I(0)],
        fuel,
    }
}
