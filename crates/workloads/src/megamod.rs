//! `megamod` — a seeded synthetic mega-module generator.
//!
//! The benchmark kernels in [`crate::kernels`] model the *memory behavior*
//! of the paper's SPEC2000 programs; they are tiny (a handful of
//! functions) and exist to be interpreted. This module exists to exercise
//! the **compiler** at production scale: it emits a module with thousands
//! of functions and on the order of a million instructions, deterministic
//! from a `u64` seed, so optimizer-throughput numbers (funcs/sec,
//! insts/sec) have a fixed, reproducible workload to stand on.
//!
//! Three function shapes are mixed, weighted so the average function is
//! ~100 instructions:
//!
//! * **loop nests** (~45%) — one- or two-deep counted loops whose bodies
//!   reload globals across a store through a pointer parameter: the
//!   paper's speculative-promotion scenario, so SSAPRE, register
//!   promotion, and strength reduction all get real work;
//! * **straight-line arithmetic** (~35%) — long dependence chains with a
//!   few redundant global loads: exercises HSSA build/lower and the
//!   expression-PRE occurrence machinery at width;
//! * **call-heavy stubs** (~20%) — short functions fanning out calls to
//!   earlier functions: many small pipeline tasks, the driver-overhead
//!   stressor.
//!
//! Nothing here registers with [`crate::all_workloads`]: the mega-module
//! is compile-only (running 10k functions through the interpreter is not
//! the point) and its size is caller-chosen.

use specframe_ir::Module;

/// Deterministic splitmix64 — the generator's only entropy source, so a
/// seed pins the module byte-for-byte across platforms and runs.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (bound > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform value in `lo..=hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }
}

/// Number of shared data globals (`g0..`). All loop/straight-line loads
/// draw from this pool; keeping it fixed and shared puts the loads into a
/// small number of alias classes, like the kernels' pointer tables do.
const GLOBALS: usize = 48;

/// Small prime-ish constants folded into arithmetic chains.
const CONSTS: [i64; 8] = [3, 7, 11, 13, 17, 23, 31, 41];

fn bin_op(rng: &mut Rng) -> &'static str {
    ["add", "sub", "mul", "xor", "and", "or"][rng.below(6) as usize]
}

/// Emits a straight-line arithmetic function: a long dependence chain over
/// a few rotating temporaries, salted with redundant global loads.
fn straight_line(s: &mut String, idx: usize, rng: &mut Rng) {
    let vars = rng.range(4, 7) as usize;
    let len = rng.range(60, 140);
    s.push_str(&format!("func f{idx}(n: i64, p: ptr) -> i64 {{\n"));
    for v in 0..vars {
        s.push_str(&format!("  var t{v}: i64\n"));
    }
    s.push_str("entry:\n");
    for v in 0..vars {
        s.push_str(&format!("  t{v} = add n, {}\n", CONSTS[v % CONSTS.len()]));
    }
    for k in 0..len {
        let d = (k as usize) % vars;
        if rng.below(10) == 0 {
            // A load from the shared pool; repeats within a function make
            // PRE/promotion candidates.
            let g = rng.below(GLOBALS as u64);
            s.push_str(&format!("  t{d} = load.i64 [@g{g}]\n"));
        } else {
            let a = rng.below(vars as u64);
            let b = rng.below(vars as u64);
            s.push_str(&format!("  t{d} = {} t{a}, t{b}\n", bin_op(rng)));
        }
    }
    s.push_str("  ret t0\n}\n");
}

/// Emits a loop nest whose body holds loop-invariant loads may-aliased
/// with a store through the pointer parameter — the speculative register
/// promotion scenario, at 1 or 2 nesting levels.
fn loop_nest(s: &mut String, idx: usize, rng: &mut Rng) {
    let depth = 1 + rng.below(2); // 1 or 2
    let loads = rng.range(1, 3) as usize;
    let chain = rng.range(6, 18);
    s.push_str(&format!("func f{idx}(n: i64, p: ptr) -> i64 {{\n"));
    s.push_str("  var i: i64\n  var j: i64\n  var c: i64\n  var acc: i64\n");
    for v in 0..loads {
        s.push_str(&format!("  var v{v}: i64\n"));
    }
    s.push_str("  var t: i64\nentry:\n  i = 0\n  acc = 0\n  jmp h0\n");
    s.push_str("h0:\n  c = lt i, n\n  br c, b0, x0\nb0:\n");
    if depth == 2 {
        s.push_str("  j = 0\n  jmp h1\nh1:\n  c = lt j, n\n  br c, b1, x1\nb1:\n");
    }
    let base = rng.below(GLOBALS as u64);
    for v in 0..loads {
        // Invariant loads clustered near one pool slot so repeated runs of
        // the same class appear both within and across functions.
        let g = (base + v as u64) % GLOBALS as u64;
        s.push_str(&format!("  v{v} = load.i64 [@g{g}]\n"));
        s.push_str(&format!("  acc = add acc, v{v}\n"));
    }
    s.push_str(&format!(
        "  t = mul acc, {}\n",
        CONSTS[rng.below(8) as usize]
    ));
    for _ in 0..chain {
        s.push_str(&format!("  t = {} t, acc\n", bin_op(rng)));
    }
    s.push_str("  acc = add acc, t\n  store.i64 [p], acc\n");
    if depth == 2 {
        s.push_str("  j = add j, 1\n  jmp h1\nx1:\n");
    }
    s.push_str("  i = add i, 1\n  jmp h0\nx0:\n  ret acc\n}\n");
}

/// Emits a call-heavy stub fanning out to earlier functions. Falls back to
/// straight-line when there is nothing yet to call.
fn call_heavy(s: &mut String, idx: usize, rng: &mut Rng) {
    if idx == 0 {
        return straight_line(s, idx, rng);
    }
    let calls = rng.range(3, 8);
    s.push_str(&format!("func f{idx}(n: i64, p: ptr) -> i64 {{\n"));
    s.push_str("  var acc: i64\n  var t: i64\nentry:\n  acc = 0\n");
    for _ in 0..calls {
        let callee = rng.below(idx as u64);
        s.push_str(&format!("  t = call f{callee}(n, p)\n"));
        s.push_str("  acc = add acc, t\n");
    }
    s.push_str("  ret acc\n}\n");
}

/// Renders the mega-module's IR text. Deterministic: the same
/// `(seed, funcs)` pair always yields byte-identical text.
pub fn mega_source(seed: u64, funcs: usize) -> String {
    let mut rng = Rng::new(seed);
    // Rough capacity: ~100 insts/function at ~20 bytes/line.
    let mut s = String::with_capacity(64 + funcs * 2200);
    for g in 0..GLOBALS {
        s.push_str(&format!("global g{g}: i64[1] = [{}]\n", g as i64 + 1));
    }
    for idx in 0..funcs {
        match rng.below(100) {
            0..=44 => loop_nest(&mut s, idx, &mut rng),
            45..=79 => straight_line(&mut s, idx, &mut rng),
            _ => call_heavy(&mut s, idx, &mut rng),
        }
    }
    s
}

/// Generates and parses the mega-module.
pub fn mega_module(seed: u64, funcs: usize) -> Module {
    specframe_ir::parse_module(&mega_source(seed, funcs))
        .unwrap_or_else(|e| panic!("mega-module (seed={seed}, funcs={funcs}) failed to parse: {e}"))
}

/// Counts instructions (including terminators) in a module — the
/// denominator of the insts/sec throughput row.
pub fn inst_count(m: &Module) -> usize {
    m.funcs
        .iter()
        .map(|f| f.blocks.iter().map(|b| b.insts.len() + 1).sum::<usize>())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Same seed → byte-identical module text; fresh RNG state each call.
    #[test]
    fn same_seed_is_byte_identical() {
        for seed in [0u64, 1, 42, 0xdead_beef, u64::MAX] {
            let a = mega_source(seed, 50);
            let b = mega_source(seed, 50);
            assert_eq!(a, b, "seed {seed} must reproduce byte-identically");
        }
    }

    /// Different seeds → different modules (shape mix and bodies shift).
    #[test]
    fn different_seeds_differ() {
        let texts: Vec<String> = (0..8u64).map(|s| mega_source(s * 7 + 1, 50)).collect();
        for i in 0..texts.len() {
            for j in i + 1..texts.len() {
                assert_ne!(texts[i], texts[j], "seeds {i}/{j} collided");
            }
        }
    }

    /// The generated text parses, verifies, and hits the requested
    /// function count with a plausible instruction volume.
    #[test]
    fn parses_verifies_and_scales() {
        let m = mega_module(7, 120);
        specframe_ir::verify_module(&m).expect("mega-module must verify");
        assert_eq!(m.funcs.len(), 120);
        let insts = inst_count(&m);
        // ~100 insts/function on average, with generous slack.
        assert!(
            insts > 120 * 40 && insts < 120 * 250,
            "unexpected instruction volume: {insts}"
        );
    }

    /// Shape mix: all three generators must actually appear.
    #[test]
    fn mixes_function_shapes() {
        let src = mega_source(3, 80);
        assert!(src.contains("jmp h0"), "no loop nests generated");
        assert!(src.contains("call f"), "no call-heavy stubs generated");
        // Straight-line functions have no branches; find one function body
        // with a ret but no jmp by scanning chunks between `func` headers.
        let has_straight = src
            .split("func ")
            .skip(1)
            .any(|body| !body.contains("jmp") && body.contains("ret"));
        assert!(has_straight, "no straight-line functions generated");
    }
}
